//! # edonkey-honeypots
//!
//! A distributed honeypot measurement platform for the eDonkey
//! peer-to-peer network — a full reproduction of Allali, Latapy & Magnien,
//! *Measurement of eDonkey Activity with Distributed Honeypots* (2009) —
//! together with every substrate it needs: a from-scratch eDonkey wire
//! protocol, a deterministic discrete-event network simulator, a synthetic
//! eDonkey world, a real-TCP loopback substrate, analytics, and calibrated
//! experiment harnesses regenerating every table and figure of the paper.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`proto`] | MD4, IDs, tags, messages, framing, part geometry |
//! | [`netsim`] | engine, event queue, RNG, distributions, metrics |
//! | [`sim`] | catalog, identities, index server, peer models, world |
//! | [`platform`] | **the paper's contribution**: honeypots, manager, logs, anonymisation |
//! | [`analysis`] | Table I, Figs. 2–12 analytics, reports |
//! | [`experiments`] | calibrated scenarios + per-figure binaries |
//! | [`net`] | the same platform over real TCP sockets |
//! | [`control`] | live control plane: manager daemon + supervised agents over TCP |
//!
//! ## Quickstart
//!
//! ```
//! use edonkey_honeypots::sim::{run_scenario, ScenarioConfig};
//! use edonkey_honeypots::analysis::basic_stats;
//!
//! // A two-day miniature measurement with one honeypot.
//! let out = run_scenario(ScenarioConfig::tiny(42).scaled(0.3));
//! let stats = basic_stats(&out.log);
//! assert!(stats.distinct_peers > 0);
//! ```

pub use edonkey_analysis as analysis;
pub use edonkey_experiments as experiments;
pub use edonkey_net as net;
pub use edonkey_platform as control;
pub use edonkey_proto as proto;
pub use edonkey_sim as sim;
pub use honeypot as platform;
pub use netsim;
