//! Whole-scenario benchmarks: how fast the simulated eDonkey world runs
//! the paper's two measurements (scaled down so a bench iteration stays in
//! the hundreds of milliseconds).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use edonkey_experiments::scenarios;
use edonkey_sim::{run_scenario, ScenarioConfig};

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenarios");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("tiny/2days", |b| {
        b.iter(|| black_box(run_scenario(ScenarioConfig::tiny(42))));
    });

    group.bench_function("distributed/scale0.01/32days", |b| {
        b.iter(|| black_box(run_scenario(scenarios::distributed(7, 0.01))));
    });

    group.bench_function("greedy/scale0.005/15days", |b| {
        b.iter(|| black_box(run_scenario(scenarios::greedy(7, 0.005))));
    });
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
