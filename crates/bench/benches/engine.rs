//! Simulation-engine benchmarks: event queue, chained timers, RNG and
//! distribution sampling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use netsim::dist::{exponential, poisson};
use netsim::engine::{Engine, Scheduler, World};
use netsim::{CalendarQueue, EventQueue, PendingQueue, Rng, SimTime, Zipf};

/// Pushes every `(time, i)` pair, then drains the queue — the fill/drain
/// pattern both [`PendingQueue`] implementations must handle.
fn fill_then_drain<Q: PendingQueue<u32>>(q: &mut Q, times: &[u64]) {
    for (i, &t) in times.iter().enumerate() {
        q.push(SimTime(t), i as u32);
    }
    while let Some(e) = q.pop() {
        black_box(e);
    }
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(100_000));
    let mut rng = Rng::seed_from(1);
    let times: Vec<u64> = (0..100_000).map(|_| rng.below(1_000_000)).collect();
    group.bench_function("push_pop_100k_random_times/binary_heap", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| fill_then_drain(&mut q, &times),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("push_pop_100k_random_times/calendar", |b| {
        b.iter_batched(
            // 1-second buckets covering the full range of pushed times.
            || CalendarQueue::<u32>::new(1_024, 1_000),
            |mut q| fill_then_drain(&mut q, &times),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// A world that keeps `fanout` timer chains alive until the horizon.
struct TimerWorld {
    handled: u64,
}

impl World for TimerWorld {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
        self.handled += 1;
        sched.in_ms(10 + u64::from(ev % 17), ev);
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(200_000));
    group.bench_function("chained_timers_200k_events", |b| {
        b.iter(|| {
            let mut engine: Engine<TimerWorld> = Engine::new();
            let mut world = TimerWorld { handled: 0 };
            for i in 0..64 {
                engine.schedule(SimTime(u64::from(i)), i);
            }
            engine.run_until_with_budget(&mut world, SimTime(u64::MAX), 200_000);
            assert!(world.handled >= 200_000);
            black_box(world.handled)
        });
    });
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("xoshiro_u64_1M", |b| {
        let mut rng = Rng::seed_from(3);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        });
    });
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("exponential_100k", |b| {
        let mut rng = Rng::seed_from(4);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += exponential(&mut rng, 2.5);
            }
            black_box(acc)
        });
    });
    group.bench_function("poisson_lambda8_100k", |b| {
        let mut rng = Rng::seed_from(5);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc += poisson(&mut rng, 8.0);
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf");
    for n in [1_000usize, 100_000] {
        let z = Zipf::new(n, 0.8);
        let mut rng = Rng::seed_from(6);
        group.throughput(Throughput::Elements(100_000));
        group.bench_function(format!("sample_100k/n={n}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..100_000 {
                    acc ^= z.sample(&mut rng);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

/// Ablation: binary-heap event queue vs bucketed calendar queue under the
/// simulator's actual scheduling pattern (hold model: pop one, schedule a
/// near-future follow-up — retries and timeouts cluster within minutes).
fn bench_queue_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_ablation");
    const OPS: u64 = 200_000;
    group.throughput(Throughput::Elements(OPS));

    group.bench_function("hold_model/binary_heap", |b| {
        b.iter(|| {
            let mut rng = Rng::seed_from(1);
            let mut q = EventQueue::new();
            for i in 0..256u32 {
                q.push(SimTime(u64::from(i)), i);
            }
            for _ in 0..OPS {
                let (t, e) = q.pop().expect("self-sustaining");
                q.push(t.plus_millis(500 + rng.below(120_000)), e);
            }
            black_box(q.len())
        });
    });

    group.bench_function("hold_model/calendar", |b| {
        b.iter(|| {
            let mut rng = Rng::seed_from(1);
            // One-minute buckets spanning four hours.
            let mut q = CalendarQueue::new(240, 60_000);
            for i in 0..256u32 {
                q.push(SimTime(u64::from(i)), i);
            }
            for _ in 0..OPS {
                let (t, e) = q.pop().expect("self-sustaining");
                q.push(t.plus_millis(500 + rng.below(120_000)), e);
            }
            black_box(q.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_engine,
    bench_rng,
    bench_zipf,
    bench_queue_ablation
);
criterion_main!(benches);
