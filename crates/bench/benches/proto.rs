//! Protocol-layer benchmarks: MD4 digest throughput, message codec
//! round-trips, tag lists, streaming frame decoding.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use edonkey_proto::codec::{encode_peer_message, FrameDecoder};
use edonkey_proto::md4::{md4, Md4};
use edonkey_proto::messages::{PartRange, PeerMessage};
use edonkey_proto::tags::{special, Tag};
use edonkey_proto::wire::{Reader, Writer};
use edonkey_proto::{ClientId, FileId, UserId};

fn bench_md4(c: &mut Criterion) {
    let mut group = c.benchmark_group("md4");
    for size in [64usize, 4 << 10, 180 << 10, 9_728_000 / 8] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("oneshot/{size}"), |b| {
            b.iter(|| md4(black_box(&data)));
        });
    }
    let data = vec![7u8; 1 << 20];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("incremental/1MiB/4KiB-chunks", |b| {
        b.iter(|| {
            let mut h = Md4::new();
            for chunk in data.chunks(4096) {
                h.update(chunk);
            }
            h.finalize()
        });
    });
    group.finish();
}

fn hello() -> PeerMessage {
    PeerMessage::Hello {
        user_id: UserId::from_seed(b"bench"),
        client_id: ClientId(0x0A01_0203),
        port: 4662,
        tags: vec![Tag::string(special::NAME, "eMule v0.49a"), Tag::u32(special::VERSION, 0x49)],
    }
}

fn request() -> PeerMessage {
    PeerMessage::RequestParts {
        file_id: FileId::from_seed(b"f"),
        ranges: [
            PartRange::new(0, 184_320),
            PartRange::new(184_320, 368_640),
            PartRange::new(368_640, 552_960),
        ],
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for (name, msg) in [("hello", hello()), ("request_parts", request())] {
        group.bench_function(format!("encode/{name}"), |b| {
            b.iter(|| encode_peer_message(black_box(&msg)));
        });
        let frame = encode_peer_message(&msg);
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| {
                let (raw, _) = edonkey_proto::codec::decode_frame(black_box(&frame)).unwrap();
                PeerMessage::decode_payload(raw.opcode, &raw.payload).unwrap()
            });
        });
    }
    // Streaming: 1000 frames fed in 1460-byte chunks (a TCP-ish MSS).
    let mut stream = Vec::new();
    for _ in 0..1_000 {
        stream.extend_from_slice(&encode_peer_message(&hello()));
    }
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.bench_function("stream_decode/1000-hellos", |b| {
        b.iter_batched(
            FrameDecoder::new,
            |mut dec| {
                let mut n = 0;
                for chunk in stream.chunks(1460) {
                    dec.feed(chunk);
                    while let Some(f) = dec.next_frame().unwrap() {
                        black_box(&f);
                        n += 1;
                    }
                }
                assert_eq!(n, 1_000);
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_tags(c: &mut Criterion) {
    let tags: Vec<Tag> = (0..16)
        .map(|i| {
            if i % 2 == 0 {
                Tag::string(special::NAME, format!("value-{i}"))
            } else {
                Tag::u32(special::SIZE, i)
            }
        })
        .collect();
    c.bench_function("tags/encode_decode_16", |b| {
        b.iter(|| {
            let mut w = Writer::new();
            Tag::encode_list(black_box(&tags), &mut w);
            let buf = w.into_bytes();
            Tag::decode_list(&mut Reader::new(&buf)).unwrap()
        });
    });
}

criterion_group!(benches, bench_md4, bench_codec, bench_tags);
criterion_main!(benches);
