//! Anonymisation benchmarks: step-1 salted hashing, step-2 interning, and
//! file-name word anonymisation — including the "what does anonymisation
//! cost per logged query" number that justifies keeping it always-on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use edonkey_proto::Ipv4;
use honeypot::anonymize::{AnonMap, IpHasher, NameAnonymizer};
use netsim::Rng;

fn random_ips(n: usize, seed: u64) -> Vec<Ipv4> {
    let mut rng = Rng::seed_from(seed);
    (0..n).map(|_| Ipv4(rng.next_u32())).collect()
}

fn bench_ip_hashing(c: &mut Criterion) {
    let hasher = IpHasher::from_seed(42);
    let ips = random_ips(10_000, 1);
    let mut group = c.benchmark_group("anonymise");
    group.throughput(Throughput::Elements(ips.len() as u64));
    group.bench_function("step1_salted_md4_10k_ips", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for ip in &ips {
                acc ^= hasher.hash(black_box(*ip)).0[0];
            }
            black_box(acc)
        });
    });

    group.bench_function("step2_intern_10k_hashes", |b| {
        let hashes: Vec<_> = ips.iter().map(|ip| hasher.hash(*ip)).collect();
        b.iter_batched(
            AnonMap::new,
            |mut map| {
                for h in &hashes {
                    black_box(map.intern(*h));
                }
                // Re-intern (the hot path during merging: most records
                // belong to already-known peers).
                for h in &hashes {
                    black_box(map.intern(*h));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_name_anonymiser(c: &mut Criterion) {
    // A corpus with both common and rare words.
    let names: Vec<String> =
        (0..5_000).map(|i| format!("ubuntu linux {:04}.release.user{}.iso", i % 50, i)).collect();
    let mut group = c.benchmark_group("anonymise_names");
    group.throughput(Throughput::Elements(names.len() as u64));
    group.bench_function("count_freeze_5k_names", |b| {
        b.iter(|| {
            let mut counter = NameAnonymizer::new();
            for n in &names {
                counter.count(n);
            }
            black_box(counter.freeze(5))
        });
    });
    let mut counter = NameAnonymizer::new();
    for n in &names {
        counter.count(n);
    }
    let frozen = counter.freeze(5);
    group.bench_function("rewrite_5k_names", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for n in &names {
                total += frozen.anonymize(n).len();
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ip_hashing, bench_name_anonymiser);
criterion_main!(benches);
