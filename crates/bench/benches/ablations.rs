//! Ablation benches for the design choices DESIGN.md calls out: each one
//! perturbs a single mechanism of the synthetic world and reports both the
//! runtime and (via eprintln on first run) the effect on the headline
//! observable, so the sensitivity of the reproduced figures to each knob
//! is measurable.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use edonkey_analysis::{distinct_peers_by_strategy, hourly_counts};
use edonkey_experiments::scenarios;
use edonkey_sim::run_scenario;
use honeypot::QueryKind;
use netsim::DiurnalCurve;

const SCALE: f64 = 0.01;

fn bench_diurnal(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_diurnal");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));
    for (name, curve) in [("european", DiurnalCurve::european()), ("flat", DiurnalCurve::flat())] {
        group.bench_function(format!("distributed/{name}"), |b| {
            b.iter(|| {
                let mut config = scenarios::distributed(21, SCALE);
                config.population.diurnal = curve;
                let out = run_scenario(config);
                let ratio = hourly_counts(&out.log, QueryKind::Hello).day_night_ratio();
                black_box((out.log.distinct_peers, ratio))
            });
        });
    }
    group.finish();
}

fn bench_detection_knobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_detection");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));
    // The strategy gap of Figs. 5–7 hinges on detection being faster and
    // surer against silence; equalising the probabilities removes it.
    for (name, nc, rc) in [("paper", 0.85, 0.30), ("equalised", 0.5, 0.5)] {
        group.bench_function(format!("distributed/{name}"), |b| {
            b.iter(|| {
                let mut config = scenarios::distributed(22, SCALE);
                config.behavior.nc_detect_prob = nc;
                config.behavior.rc_detect_prob = rc;
                let out = run_scenario(config);
                let gap = distinct_peers_by_strategy(&out.log, QueryKind::Hello).finals();
                black_box(gap)
            });
        });
    }
    group.finish();
}

fn bench_blacklist(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_blacklist");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));
    for (name, cap) in [("on", 0.5), ("off", 0.0)] {
        group.bench_function(format!("distributed/{name}"), |b| {
            b.iter(|| {
                let mut config = scenarios::distributed(23, SCALE);
                config.blacklist.skip_cap = cap;
                let out = run_scenario(config);
                black_box(out.log.distinct_peers)
            });
        });
    }
    group.finish();
}

fn bench_subset_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_provider_subset");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));
    // Fig. 10's curvature tracks how many providers a peer contacts.
    for (name, mean, all_prob) in [("paper", 3.0, 0.10), ("narrow", 1.2, 0.0), ("broad", 8.0, 0.3)]
    {
        group.bench_function(format!("distributed/{name}"), |b| {
            b.iter(|| {
                let mut config = scenarios::distributed(24, SCALE);
                config.behavior.subset_mean = mean;
                config.behavior.subset_all_prob = all_prob;
                let out = run_scenario(config);
                black_box(out.log.distinct_peers)
            });
        });
    }
    group.finish();
}

fn bench_crash_resilience(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_crashes");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));
    for (name, crashes) in [
        ("stable", None),
        ("mtbf_3d", Some(edonkey_sim::CrashConfig { mtbf_ms: 3 * netsim::time::MS_PER_DAY })),
    ] {
        group.bench_function(format!("distributed/{name}"), |b| {
            b.iter(|| {
                let mut config = scenarios::distributed(25, SCALE);
                config.crashes = crashes;
                let out = run_scenario(config);
                black_box((out.log.distinct_peers, out.relaunches))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_diurnal,
    bench_detection_knobs,
    bench_blacklist,
    bench_subset_sizes,
    bench_crash_resilience
);
criterion_main!(benches);
