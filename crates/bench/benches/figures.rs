//! One benchmark per paper artefact: given a pre-computed measurement log
//! (built once, outside the timing loop), how fast does the analysis
//! regenerate each table/figure?

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use edonkey_analysis::LogIndex;
use edonkey_experiments::figures;
use edonkey_experiments::scenarios;
use edonkey_sim::run_scenario;
use honeypot::MeasurementLog;

fn logs() -> (MeasurementLog, MeasurementLog) {
    // Scaled-down runs keep bench wall time sane while preserving every
    // code path of the analyses.
    let dist = run_scenario(scenarios::distributed(11, 0.02)).log;
    let greedy = run_scenario(scenarios::greedy(11, 0.01)).log;
    (dist, greedy)
}

fn bench_figures(c: &mut Criterion) {
    let (dist, greedy) = logs();
    let (dist_ix, greedy_ix) = (LogIndex::build(&dist), LogIndex::build(&greedy));
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("index_build_both", |b| {
        b.iter(|| (black_box(LogIndex::build(&dist)), black_box(LogIndex::build(&greedy))));
    });

    group.bench_function("table1", |b| {
        b.iter(|| black_box(figures::table1(&dist, &greedy)));
    });
    group.bench_function("fig02_growth_distributed", |b| {
        b.iter(|| black_box(figures::fig_growth(&dist_ix, 2)));
    });
    group.bench_function("fig03_growth_greedy", |b| {
        b.iter(|| black_box(figures::fig_growth(&greedy_ix, 3)));
    });
    group.bench_function("fig04_hourly_hello", |b| {
        b.iter(|| black_box(figures::fig04(&dist_ix)));
    });
    group.bench_function("fig05_distinct_hello_by_strategy", |b| {
        b.iter(|| black_box(figures::fig05(&dist_ix)));
    });
    group.bench_function("fig06_distinct_startupload_by_strategy", |b| {
        b.iter(|| black_box(figures::fig06(&dist_ix)));
    });
    group.bench_function("fig07_requestpart_by_strategy", |b| {
        b.iter(|| black_box(figures::fig07(&dist_ix)));
    });
    group.bench_function("fig08_top_peer_startupload", |b| {
        b.iter(|| black_box(figures::fig_top_peer(&dist, &dist_ix, 8)));
    });
    group.bench_function("fig09_top_peer_requestpart", |b| {
        b.iter(|| black_box(figures::fig_top_peer(&dist, &dist_ix, 9)));
    });
    group.bench_function("fig10_subset_honeypots", |b| {
        b.iter(|| black_box(figures::fig10(&dist_ix, 50, 3)));
    });
    group.bench_function("fig11_subset_random_files", |b| {
        b.iter(|| black_box(figures::fig_files(&greedy_ix, 11, 50, 3)));
    });
    group.bench_function("fig12_subset_popular_files", |b| {
        b.iter(|| black_box(figures::fig_files(&greedy_ix, 12, 50, 3)));
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
