//! Monte-Carlo subset-sampling benchmarks (the analysis behind Figs.
//! 10–12), including the rayon-vs-sequential comparison.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use edonkey_analysis::{subset_curve, subset_curve_sequential, PeerSet};
use netsim::Rng;

/// Builds `k` random peer sets over a `universe`, each holding ~`fill`
/// peers.
fn build_sets(k: usize, universe: usize, fill: usize, seed: u64) -> Vec<PeerSet> {
    let mut rng = Rng::seed_from(seed);
    (0..k)
        .map(|_| {
            let mut s = PeerSet::new(universe);
            for _ in 0..fill {
                s.insert(rng.below(universe as u64) as u32);
            }
            s
        })
        .collect()
}

fn bench_subsets(c: &mut Criterion) {
    let mut group = c.benchmark_group("subset_curve");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));

    // Fig. 10 shape: 24 honeypots over a 110k-peer universe.
    let hp_sets = build_sets(24, 110_000, 25_000, 1);
    group.bench_function("fig10_shape/24x25k/100samples/rayon", |b| {
        b.iter(|| black_box(subset_curve(&hp_sets, 100, 7)));
    });
    group.bench_function("fig10_shape/24x25k/100samples/sequential", |b| {
        b.iter(|| black_box(subset_curve_sequential(&hp_sets, 100, 7)));
    });

    // Fig. 11/12 shape: 100 files over a 400k-peer universe.
    let file_sets = build_sets(100, 400_000, 2_000, 2);
    group.bench_function("fig11_shape/100x2k/100samples/rayon", |b| {
        b.iter(|| black_box(subset_curve(&file_sets, 100, 7)));
    });
    group.finish();
}

criterion_group!(benches, bench_subsets);
criterion_main!(benches);
