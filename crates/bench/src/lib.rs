//! Benchmarks live in benches/.
