//! Hand-rolled performance baseline for the hot paths this crate's
//! criterion benches cover statistically: raw engine throughput under both
//! pending-event queues, one-pass index build throughput, and the
//! wall-clock of a scaled end-to-end `all` pipeline.  Writes the numbers
//! to `BENCH_baseline.json` at the repository root so scale sweeps and
//! future optimisation PRs have a committed reference point.
//!
//! Usage: `cargo run --release -p edonkey-bench --bin perf_baseline -- [--scale F]`

use std::time::Instant;

use edonkey_analysis::LogIndex;
use edonkey_experiments::{figures, scenarios};
use edonkey_sim::config::QueueKind;
use edonkey_sim::run_scenario;
use netsim::engine::{Engine, Scheduler, World};
use netsim::{CalendarQueue, EventQueue, PendingQueue, SimTime};

const ENGINE_EVENTS: u64 = 2_000_000;
const DEFAULT_SCALE: f64 = 0.05;

/// The simulator's dominant scheduling pattern: every handled event
/// schedules a near-future follow-up (retries, keepalives, timeouts).
struct TimerWorld {
    handled: u64,
}

impl World for TimerWorld {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
        self.handled += 1;
        sched.in_ms(500 + u64::from(ev % 7_919) * 17, ev);
    }
}

fn engine_events_per_sec<Q: PendingQueue<u32>>(queue: Q) -> f64 {
    let mut engine = Engine::with_queue(queue);
    let mut world = TimerWorld { handled: 0 };
    for i in 0..256u32 {
        engine.schedule(SimTime(u64::from(i)), i);
    }
    let t = Instant::now();
    engine.run_until_with_budget(&mut world, SimTime(u64::MAX), ENGINE_EVENTS);
    assert_eq!(world.handled, ENGINE_EVENTS);
    ENGINE_EVENTS as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    let mut scale = DEFAULT_SCALE;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("usage: perf_baseline [--scale F]");
                        std::process::exit(2)
                    });
            }
            other => {
                eprintln!("unknown argument {other}; usage: perf_baseline [--scale F]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // 1. Raw engine throughput, heap vs calendar, chained-timer pattern.
    //    The calendar's buckets are sized to the workload (256 chains over
    //    a ~4.3 s delay spread → ~50 ms buckets, a few events per bucket),
    //    as a user of CalendarQueue::new would size them; the scenario
    //    below exercises the minute-scale for_simulation geometry.
    eprintln!("[bench] engine: {ENGINE_EVENTS} chained-timer events per queue …");
    let heap_eps = engine_events_per_sec(EventQueue::new());
    let cal_eps = engine_events_per_sec(CalendarQueue::new(4_096, 50));
    eprintln!("[bench] engine: heap {heap_eps:.0}/s, calendar {cal_eps:.0}/s");

    // 2. Scaled scenario wall-clock under both queues (same log either
    //    way — asserted by sim/tests/determinism.rs).
    let seed = scenarios::DEFAULT_SEED;
    let mut heap_cfg = scenarios::distributed(seed, scale);
    heap_cfg.queue = QueueKind::Heap;
    let t = Instant::now();
    let heap_out = run_scenario(heap_cfg);
    let dist_heap_secs = t.elapsed().as_secs_f64();
    let mut cal_cfg = scenarios::distributed(seed, scale);
    cal_cfg.queue = QueueKind::Calendar;
    let t = Instant::now();
    let dist = run_scenario(cal_cfg).log;
    let dist_cal_secs = t.elapsed().as_secs_f64();
    eprintln!(
        "[bench] distributed @ {scale}: heap {dist_heap_secs:.2}s, calendar {dist_cal_secs:.2}s ({} records)",
        dist.records.len()
    );
    drop(heap_out);

    // 3. Index build throughput over the distributed log.
    let reps = 5;
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(LogIndex::build(&dist));
    }
    let par_rps = (dist.records.len() * reps) as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(LogIndex::build_sequential(&dist));
    }
    let seq_rps = (dist.records.len() * reps) as f64 / t.elapsed().as_secs_f64();
    eprintln!("[bench] index: parallel {par_rps:.0} rec/s, sequential {seq_rps:.0} rec/s");

    // 4. End-to-end scaled `all` pipeline (greedy sim + indexes + the
    //    figure set; the distributed log is reused from step 2).
    let t = Instant::now();
    let greedy = run_scenario(scenarios::greedy(seed, scale)).log;
    let dist_ix = LogIndex::build(&dist);
    let greedy_ix = LogIndex::build(&greedy);
    let figs = [
        figures::table1(&dist, &greedy),
        figures::fig_growth(&dist_ix, 2),
        figures::fig_growth(&greedy_ix, 3),
        figures::fig04(&dist_ix),
        figures::fig05(&dist_ix),
        figures::fig06(&dist_ix),
        figures::fig07(&dist_ix),
        figures::fig_top_peer(&dist, &dist_ix, 8),
        figures::fig_top_peer(&dist, &dist_ix, 9),
        figures::fig10(&dist_ix, 100, seed),
        figures::fig_files(&greedy_ix, 11, 100, seed),
        figures::fig_files(&greedy_ix, 12, 100, seed),
    ];
    let all_secs = dist_cal_secs + t.elapsed().as_secs_f64();
    eprintln!("[bench] scaled all pipeline: {all_secs:.2}s ({} artefacts)", figs.len());

    // Hand-rolled JSON (no serde needed for a dozen scalars).
    let json = format!(
        "{{\n  \
         \"generated_by\": \"cargo run --release -p edonkey-bench --bin perf_baseline -- --scale {scale}\",\n  \
         \"threads\": {threads},\n  \
         \"engine\": {{\n    \
           \"pattern\": \"chained timers, {ENGINE_EVENTS} events\",\n    \
           \"heap_events_per_sec\": {heap_eps:.0},\n    \
           \"calendar_events_per_sec\": {cal_eps:.0},\n    \
           \"calendar_over_heap\": {ratio:.3}\n  \
         }},\n  \
         \"index_build\": {{\n    \
           \"records\": {records},\n    \
           \"parallel_records_per_sec\": {par_rps:.0},\n    \
           \"sequential_records_per_sec\": {seq_rps:.0}\n  \
         }},\n  \
         \"scaled_run\": {{\n    \
           \"scale\": {scale},\n    \
           \"distributed_sim_heap_secs\": {dist_heap_secs:.3},\n    \
           \"distributed_sim_calendar_secs\": {dist_cal_secs:.3},\n    \
           \"all_pipeline_secs\": {all_secs:.3}\n  \
         }}\n}}\n",
        threads = rayon::current_num_threads(),
        ratio = cal_eps / heap_eps,
        records = dist.records.len(),
    );

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("BENCH_baseline.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[bench] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[bench] could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    print!("{json}");
}
