//! Hand-rolled performance baseline for the hot paths this crate's
//! criterion benches cover statistically: raw engine throughput under both
//! pending-event queues, index build throughput (parallel, sequential, and
//! what `build()` auto-selects), the lane-sharded scenario execution swept
//! across rayon pool sizes, the content-addressed run cache warm-path, and
//! the live control plane (chunk upload throughput and heartbeat
//! round-trips against a real manager daemon, swept over agent counts).
//! Writes the numbers to `BENCH_pr2.json` (simulation/pipeline),
//! `BENCH_pr3.json` (control plane), `BENCH_pr4.json` (durability:
//! spooled vs in-memory upload throughput, spool append/recovery-scan and
//! checkpoint save/load micro-costs) and `BENCH_pr6.json` (windowed
//! pipelined upload: agents × window-size sweep against the reactor
//! daemon, plus a 1,000-agent exactly-once/replay gate) at the repository
//! root so scale sweeps and future optimisation PRs have a committed
//! reference point (`BENCH_baseline.json` holds the pre-sharding numbers).
//!
//! Usage: `cargo run --release -p edonkey-bench --bin perf_baseline -- [--scale F]`
//!
//! Extra modes:
//!
//! * `--pr7` — the scale sweep of PR 7: scales 0.05 → 1.0 × the three
//!   pending-event queues (heap, calendar, timing wheel), each point a
//!   fresh child process so peak RSS (`VmHWM`) is per-point; writes
//!   `BENCH_pr7.json`.
//! * `--pr6` — regenerates only `BENCH_pr6.json` (the windowed-upload
//!   sweep plus the 1,000-agent gate), skipping everything else.
//! * `--pr8` — the server-capture overhead sweep of PR 8: the ten-week
//!   `server_ten_weeks` scenario with the capture off vs on at each scale,
//!   one child process per point; writes `BENCH_pr8.json`.
//! * `--pr8-point F on|off DAYS` — internal: one child point of `--pr8`.
//! * `--pr9` — the adversarial-robustness sweep of PR 9: windowed uploads
//!   through the deterministic link-impairment shim (clean, 1 % and 5 %
//!   frame loss, added latency) plus a pressured-merge-queue point that
//!   exhibits window shrinking and shedding; writes `BENCH_pr9.json`.
//! * `--pr10` — the observability-overhead pair of PR 10: the clean
//!   windowed harness with obs fully dark vs the default live posture
//!   (Info events, hot histograms, snapshot scraper); writes
//!   `BENCH_pr10.json` with the relative overhead against a 3 % budget.
//! * `--obs-smoke` — CI gate for PR 10: a short live swarm with obs
//!   enabled, a mid-flight scrape of the snapshot endpoint, JSONL
//!   time-series schema validation, and a generous overhead ceiling.
//! * `--scale-smoke [F]` — CI gate: one coupled run at scale `F`
//!   (default 0.25) on the timing wheel, index built through the
//!   *streaming* builder and cross-checked against the one-shot build,
//!   with generous events/sec and peak-RSS thresholds.
//! * `--pr7-point F Q` — internal: one child point of the `--pr7` sweep.

use std::time::Instant;

use edonkey_analysis::LogIndex;
use edonkey_experiments::{figures, scenarios, RunCache};
use edonkey_sim::config::QueueKind;
use edonkey_sim::{run_scenario, run_sharded};
use netsim::engine::{Engine, Scheduler, World};
use netsim::{CalendarQueue, EventQueue, PendingQueue, SimTime};

const ENGINE_EVENTS: u64 = 2_000_000;
const DEFAULT_SCALE: f64 = 0.05;

/// The simulator's dominant scheduling pattern: every handled event
/// schedules a near-future follow-up (retries, keepalives, timeouts).
struct TimerWorld {
    handled: u64,
}

impl World for TimerWorld {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
        self.handled += 1;
        sched.in_ms(500 + u64::from(ev % 7_919) * 17, ev);
    }
}

fn engine_events_per_sec<Q: PendingQueue<u32>>(queue: Q) -> f64 {
    let mut engine = Engine::with_queue(queue);
    let mut world = TimerWorld { handled: 0 };
    for i in 0..256u32 {
        engine.schedule(SimTime(u64::from(i)), i);
    }
    let t = Instant::now();
    engine.run_until_with_budget(&mut world, SimTime(u64::MAX), ENGINE_EVENTS);
    assert_eq!(world.handled, ENGINE_EVENTS);
    ENGINE_EVENTS as f64 / t.elapsed().as_secs_f64()
}

/// One agent-count point of the control-plane sweep.
struct ControlPoint {
    agents: usize,
    upload_mb_per_sec: f64,
    chunk_bytes: u64,
    chunks: u64,
    heartbeats_per_sec: f64,
    heartbeats: u64,
}

/// Measures the manager daemon under raw control-plane clients: each
/// "agent" is a bare protocol speaker (no honeypot, no eDonkey server)
/// that registers and then drives stop-and-wait sequenced uploads and
/// heartbeat round-trips as fast as the daemon acks them.  With
/// `durable`, the full crash-safe write path is on: each client appends
/// every chunk to its own on-disk spool before sending (trimming on ack)
/// and the daemon runs its chunk WAL + checkpoint under the given root —
/// the throughput delta against the in-memory point is the price of
/// durability.
fn control_plane_point(agents: usize, durable: Option<&std::path::Path>) -> ControlPoint {
    use edonkey_platform::daemon::{Daemon, DaemonConfig};
    use edonkey_platform::messages::{AgentConfig, ControlMessage};
    use edonkey_platform::{CheckpointOptions, ConnEvent, ControlConn, Spool};
    use edonkey_proto::{FileId, Ipv4, UserId};
    use honeypot::log::{HoneypotLog, QueryRecord, FILE_NONE};
    use honeypot::{
        ContentStrategy, FileStrategy, HoneypotId, IdStatus, IpHasher, QueryKind, ServerInfo,
    };

    const CHUNKS_PER_AGENT: u64 = 24;
    const RECORDS_PER_CHUNK: usize = 2_000;
    const HEARTBEATS_PER_AGENT: u64 = 400;

    let server = ServerInfo::new("bench", Ipv4::new(127, 0, 0, 1), 4661);
    let configs: Vec<AgentConfig> = (0..agents)
        .map(|i| AgentConfig {
            id: HoneypotId(i as u32),
            content: ContentStrategy::NoContent,
            files: FileStrategy::Fixed(Vec::new()),
            server: server.clone(),
            ip_salt: 1,
            rng_seed: 1,
            heartbeat_ms: 1_000,
            collect_ms: 1_000,
            client_name: format!("bench-{i}"),
        })
        .collect();
    // Generous deadline: bench clients only "heartbeat" during the
    // heartbeat phase, and nothing here should ever be declared dead.
    let cfg = DaemonConfig {
        heartbeat_timeout_ms: 60_000,
        checkpoint: durable.map(|root| CheckpointOptions::new(root.join("ckpt"))),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(cfg, configs, Box::new(|_, _, _| {})).expect("start daemon");
    let addr = daemon.addr();

    // One synthetic chunk, reused by every upload.
    let chunk = {
        let hasher = IpHasher::from_seed(1);
        let mut log = HoneypotLog::new(HoneypotId(0), server.clone());
        let name = log.intern_name("bench-peer");
        let file = log.files.intern(FileId::from_seed(b"bench"), "bench.avi", 1_000_000);
        for i in 0..RECORDS_PER_CHUNK {
            log.push(QueryRecord {
                at: netsim::SimTime::from_millis(i as u64),
                kind: QueryKind::Hello,
                peer: hasher.hash(Ipv4::new(
                    10,
                    (i / 65_536) as u8,
                    (i / 256) as u8,
                    (i % 256) as u8,
                )),
                port: 4662,
                id_status: IdStatus::High,
                user_id: UserId::from_seed(b"bench-user"),
                name,
                version: 0x49,
                file: if i % 2 == 0 { file } else { FILE_NONE },
            });
        }
        log.take_chunk()
    };
    let frame_len =
        ControlMessage::LogUpload { agent: 0, seq: 0, chunk: chunk.clone() }.encode_frame().len();

    let workers: Vec<std::thread::JoinHandle<(f64, f64)>> = (0..agents as u32)
        .map(|agent| {
            // Each agent uploads under its own honeypot identity (the
            // merge pipeline dedups sequence numbers per honeypot).
            let mut chunk = chunk.clone();
            chunk.honeypot = HoneypotId(agent);
            let spool_dir = durable.map(|root| root.join(format!("agent-{agent}")));
            std::thread::spawn(move || {
                let mut spool = spool_dir.map(|d| Spool::open(d).expect("open bench spool"));
                let mut conn = ControlConn::connect(addr).expect("connect");
                conn.send(&ControlMessage::Register { agent, incarnation: 0, resume: false })
                    .expect("register");
                // Handshake (RegisterAck + ConfigPush); blocking reads.
                let mut acked = false;
                while !acked {
                    for ev in conn.poll().expect("handshake") {
                        if let ConnEvent::Msg(ControlMessage::RegisterAck { .. }) = ev {
                            acked = true;
                        }
                    }
                }

                // Heartbeat round-trips, stop-and-wait.
                let t = Instant::now();
                for seq in 0..HEARTBEATS_PER_AGENT {
                    conn.send(&ControlMessage::Heartbeat {
                        agent,
                        seq,
                        sent_micros: 0,
                        rtt_micros: 0,
                        flags: 0,
                    })
                    .expect("heartbeat");
                    let mut got = false;
                    while !got {
                        for ev in conn.poll().expect("heartbeat ack") {
                            if let ConnEvent::Msg(ControlMessage::HeartbeatAck { .. }) = ev {
                                got = true;
                            }
                        }
                    }
                }
                let hb_secs = t.elapsed().as_secs_f64();

                // Sequenced chunk uploads, stop-and-wait (spool-first on
                // the durable path, exactly like the real agent).
                let t = Instant::now();
                for seq in 0..CHUNKS_PER_AGENT {
                    let msg = ControlMessage::LogUpload { agent, seq, chunk: chunk.clone() };
                    if let Some(spool) = &mut spool {
                        spool.append(seq, &msg.encode_payload()).expect("spool append");
                    }
                    conn.send(&msg).expect("upload");
                    let mut got = false;
                    while !got {
                        for ev in conn.poll().expect("chunk ack") {
                            // Cumulative frontier: `next_seq > seq` means
                            // this sequence is acknowledged.
                            if let ConnEvent::Msg(ControlMessage::ChunkAck { next_seq, .. }) = ev {
                                if next_seq > seq {
                                    got = true;
                                }
                            }
                        }
                    }
                    if let Some(spool) = &mut spool {
                        spool.trim_acked(seq).expect("spool trim");
                    }
                }
                let up_secs = t.elapsed().as_secs_f64();
                conn.send(&ControlMessage::Goodbye { agent, final_seq: CHUNKS_PER_AGENT })
                    .expect("goodbye");
                (hb_secs, up_secs)
            })
        })
        .collect();

    let mut hb_max = 0f64;
    let mut up_max = 0f64;
    for w in workers {
        let (hb, up) = w.join().expect("bench worker");
        hb_max = hb_max.max(hb);
        up_max = up_max.max(up);
    }
    let (log, _metrics, _order) =
        daemon.finish(netsim::SimTime::from_secs(60), 0, 1, std::time::Duration::from_secs(2));
    assert_eq!(
        log.records.len(),
        agents * CHUNKS_PER_AGENT as usize * RECORDS_PER_CHUNK,
        "every uploaded record must be merged exactly once"
    );

    let total_chunks = agents as u64 * CHUNKS_PER_AGENT;
    let total_bytes = total_chunks * frame_len as u64;
    let total_heartbeats = agents as u64 * HEARTBEATS_PER_AGENT;
    ControlPoint {
        agents,
        upload_mb_per_sec: total_bytes as f64 / (1024.0 * 1024.0) / up_max.max(1e-9),
        chunk_bytes: total_bytes,
        chunks: total_chunks,
        heartbeats_per_sec: total_heartbeats as f64 / hb_max.max(1e-9),
        heartbeats: total_heartbeats,
    }
}

/// One synthetic log chunk with `records` hello records — the upload
/// payload unit of the windowed sweep.
fn synthetic_chunk(records: usize) -> honeypot::LogChunk {
    use edonkey_proto::{FileId, Ipv4, UserId};
    use honeypot::log::{HoneypotLog, QueryRecord, FILE_NONE};
    use honeypot::{HoneypotId, IdStatus, IpHasher, QueryKind, ServerInfo};

    let server = ServerInfo::new("bench", Ipv4::new(127, 0, 0, 1), 4661);
    let hasher = IpHasher::from_seed(1);
    let mut log = HoneypotLog::new(HoneypotId(0), server);
    let name = log.intern_name("bench-peer");
    let file = log.files.intern(FileId::from_seed(b"bench"), "bench.avi", 1_000_000);
    for i in 0..records {
        log.push(QueryRecord {
            at: netsim::SimTime::from_millis(i as u64),
            kind: QueryKind::Hello,
            peer: hasher.hash(Ipv4::new(10, (i / 65_536) as u8, (i / 256) as u8, (i % 256) as u8)),
            port: 4662,
            id_status: IdStatus::High,
            user_id: UserId::from_seed(b"bench-user"),
            name,
            version: 0x49,
            file: if i % 2 == 0 { file } else { FILE_NONE },
        });
    }
    log.take_chunk()
}

/// One point of the windowed-upload sweep (PR 6).
struct WindowedPoint {
    agents: usize,
    window: u32,
    upload_mb_per_sec: f64,
    chunk_bytes: u64,
    chunks: u64,
    records_per_chunk: usize,
    window_peak: u64,
    merge_queue_peak: u64,
}

/// Measures the reactor daemon under windowed, pipelined uploaders:
/// every client keeps up to `window` sequenced chunks in flight,
/// advances on cumulative acks and rewinds on go-back-N retries —
/// window 1 degenerates to stop-and-wait on the same transport, so the
/// sweep isolates what pipelining itself buys.  With `validate`, every
/// upload is journaled pre-transport and the merged measurement must
/// replay bit-identical with zero double merges (the 1,000-agent
/// acceptance gate runs through this path).
fn windowed_control_point(
    agents: usize,
    window: u32,
    records_per_chunk: usize,
    chunks_per_agent: u64,
    validate: bool,
) -> WindowedPoint {
    use edonkey_platform::daemon::{Daemon, DaemonConfig};
    use edonkey_platform::messages::{AgentConfig, ControlMessage};
    use edonkey_platform::{measurement_diff, ChunkJournal, ConnEvent, ControlConn};
    use edonkey_proto::Ipv4;
    use honeypot::{ContentStrategy, FileStrategy, HoneypotId, HoneypotSpec, ServerInfo};

    let server = ServerInfo::new("bench", Ipv4::new(127, 0, 0, 1), 4661);
    let configs: Vec<AgentConfig> = (0..agents)
        .map(|i| AgentConfig {
            id: HoneypotId(i as u32),
            content: ContentStrategy::NoContent,
            files: FileStrategy::Fixed(Vec::new()),
            server: server.clone(),
            ip_salt: 1,
            rng_seed: 1,
            heartbeat_ms: 1_000,
            collect_ms: 1_000,
            client_name: format!("bench-{i}"),
        })
        .collect();
    let hp_specs: Vec<HoneypotSpec> = configs
        .iter()
        .map(|c| HoneypotSpec { id: c.id, content: c.content, server: c.server.clone() })
        .collect();
    let cfg = DaemonConfig {
        heartbeat_timeout_ms: 60_000,
        upload_window: window,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(cfg, configs, Box::new(|_, _, _| {})).expect("start daemon");
    let addr = daemon.addr();

    let chunk = synthetic_chunk(records_per_chunk);
    let frame_len =
        ControlMessage::LogUpload { agent: 0, seq: 0, chunk: chunk.clone() }.encode_frame().len();
    let journal = validate.then(ChunkJournal::new);

    let workers: Vec<std::thread::JoinHandle<f64>> = (0..agents as u32)
        .map(|agent| {
            let mut chunk = chunk.clone();
            chunk.honeypot = HoneypotId(agent);
            let journal = journal.clone();
            std::thread::spawn(move || {
                let mut conn = ControlConn::connect(addr).expect("connect");
                conn.set_read_timeout(std::time::Duration::from_millis(1)).expect("timeout");
                conn.send(&ControlMessage::Register { agent, incarnation: 0, resume: false })
                    .expect("register");
                let mut granted = 0u64;
                while granted == 0 {
                    for ev in conn.poll().expect("handshake") {
                        if let ConnEvent::Msg(ControlMessage::RegisterAck { window, .. }) = ev {
                            granted = u64::from(window.max(1));
                        }
                    }
                }

                if let Some(journal) = &journal {
                    for seq in 0..chunks_per_agent {
                        journal.record(agent, seq, chunk.clone());
                    }
                }

                // The windowed upload loop: fill the window, then drain
                // acks; `ChunkRetry` rewinds the send cursor (go-back-N).
                let t = Instant::now();
                let mut next_send = 0u64;
                let mut next_ack = 0u64;
                while next_ack < chunks_per_agent {
                    while next_send < chunks_per_agent && next_send - next_ack < granted {
                        conn.send(&ControlMessage::LogUpload {
                            agent,
                            seq: next_send,
                            chunk: chunk.clone(),
                        })
                        .expect("upload");
                        next_send += 1;
                    }
                    for ev in conn.poll().expect("ack poll") {
                        match ev {
                            ConnEvent::Msg(ControlMessage::ChunkAck { next_seq, .. }) => {
                                next_ack = next_ack.max(next_seq);
                            }
                            ConnEvent::Msg(ControlMessage::ChunkRetry { seq }) => {
                                next_send = next_send.min(seq);
                            }
                            _ => {}
                        }
                    }
                }
                let secs = t.elapsed().as_secs_f64();
                conn.send(&ControlMessage::Goodbye { agent, final_seq: chunks_per_agent })
                    .expect("goodbye");
                secs
            })
        })
        .collect();

    let mut up_max = 0f64;
    for w in workers {
        up_max = up_max.max(w.join().expect("bench worker"));
    }
    let (log, metrics, order) =
        daemon.finish(netsim::SimTime::from_secs(60), 0, 1, std::time::Duration::from_secs(2));
    assert_eq!(
        log.records.len(),
        agents * chunks_per_agent as usize * records_per_chunk,
        "every uploaded record must be merged exactly once"
    );
    assert_eq!(metrics.double_merge_violation(), None, "no sequence may merge twice");
    if let Some(journal) = &journal {
        let replayed = journal.replay(&order, hp_specs, netsim::SimTime::from_secs(60), 0, 1);
        assert_eq!(
            measurement_diff(&log, &replayed),
            None,
            "windowed transport must replay bit-identical"
        );
    }

    let total_chunks = agents as u64 * chunks_per_agent;
    let total_bytes = total_chunks * frame_len as u64;
    WindowedPoint {
        agents,
        window,
        upload_mb_per_sec: total_bytes as f64 / (1024.0 * 1024.0) / up_max.max(1e-9),
        chunk_bytes: total_bytes,
        chunks: total_chunks,
        records_per_chunk,
        window_peak: metrics.max_window_peak(),
        merge_queue_peak: metrics.merge_queue_peak,
    }
}

/// Isolated micro-costs of the durability primitives.
struct DurabilityMicro {
    spool_append_mb_per_sec: f64,
    spool_scan_secs: f64,
    spool_records: usize,
    ckpt_save_micros: f64,
    ckpt_load_micros: f64,
    ckpt_slots: usize,
}

/// Benchmarks the spool (append throughput, then the reopen/recovery
/// scan over the same records) and the checkpoint (atomic save, load)
/// in isolation, outside any socket traffic.
fn durability_micro(root: &std::path::Path) -> DurabilityMicro {
    use edonkey_platform::checkpoint::{
        load_checkpoint, save_checkpoint, ManagerCheckpoint, SlotCheckpoint,
    };
    use edonkey_platform::Spool;

    const SPOOL_RECORDS: usize = 10_000;
    const PAYLOAD_BYTES: usize = 4 * 1024;
    const CKPT_SLOTS: usize = 24;
    const CKPT_REPS: u32 = 500;

    let spool_dir = root.join("micro-spool");
    let payload = vec![0xEDu8; PAYLOAD_BYTES];
    let mut spool = Spool::open(&spool_dir).expect("open micro spool");
    let t = Instant::now();
    for seq in 0..SPOOL_RECORDS as u64 {
        spool.append(seq, &payload).expect("append");
    }
    let append_secs = t.elapsed().as_secs_f64();
    drop(spool);
    let t = Instant::now();
    let reopened = Spool::open(&spool_dir).expect("reopen micro spool");
    let scan_secs = t.elapsed().as_secs_f64();
    assert_eq!(reopened.unacked().len(), SPOOL_RECORDS, "scan must recover every record");
    drop(reopened);

    // The checkpoint at the paper's fleet size (24 honeypots).
    let ckpt_dir = root.join("micro-ckpt");
    std::fs::create_dir_all(&ckpt_dir).expect("ckpt dir");
    let ckpt = ManagerCheckpoint {
        slots: (0..CKPT_SLOTS)
            .map(|i| SlotCheckpoint {
                expected_seq: i as u64 * 100,
                next_incarnation: 2,
                relaunches: 1,
                registrations: 3,
                uptime_ms: 1_000_000,
                ..SlotCheckpoint::default()
            })
            .collect(),
    };
    let t = Instant::now();
    for _ in 0..CKPT_REPS {
        save_checkpoint(&ckpt_dir, &ckpt).expect("save checkpoint");
    }
    let save_micros = t.elapsed().as_secs_f64() * 1e6 / f64::from(CKPT_REPS);
    let t = Instant::now();
    for _ in 0..CKPT_REPS {
        assert!(load_checkpoint(&ckpt_dir).is_some());
    }
    let load_micros = t.elapsed().as_secs_f64() * 1e6 / f64::from(CKPT_REPS);

    DurabilityMicro {
        spool_append_mb_per_sec: (SPOOL_RECORDS * PAYLOAD_BYTES) as f64
            / (1024.0 * 1024.0)
            / append_secs.max(1e-9),
        spool_scan_secs: scan_secs,
        spool_records: SPOOL_RECORDS,
        ckpt_save_micros: save_micros,
        ckpt_load_micros: load_micros,
        ckpt_slots: CKPT_SLOTS,
    }
}

/// Resolves `name` at the workspace root (two levels above the bench
/// crate's manifest).
fn workspace_file(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join(name)
}

/// Host annotation shared by every `BENCH_*.json`: available parallelism
/// plus an explicit single-core flag, because fleet and sharding sweeps
/// recorded on a one-core container cannot exhibit parallel speedups and
/// must not be read as if they could.
fn host_json() -> String {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    format!("\"threads_available\": {threads},\n  \"single_core_container\": {}", threads == 1)
}

/// High-water-mark resident set of this process in kB (`VmHWM` from
/// `/proc/self/status`); 0 on platforms without procfs.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

fn queue_kind(name: &str) -> Option<QueueKind> {
    match name {
        "heap" => Some(QueueKind::Heap),
        "calendar" => Some(QueueKind::Calendar),
        "wheel" => Some(QueueKind::Wheel),
        _ => None,
    }
}

/// One point of the PR 7 scale sweep, as reported by a child process.
struct Pr7Point {
    scale: f64,
    queue: String,
    events: u64,
    records: usize,
    secs: f64,
    peak_rss_kb: u64,
}

/// Child mode: run one coupled distributed scenario at `scale` on `queue`
/// and print a single machine-readable line.  Runs in its own process so
/// the parent gets an uncontaminated per-point `VmHWM`.
fn pr7_point_main(scale: f64, queue: &str) -> ! {
    let kind = queue_kind(queue).unwrap_or_else(|| {
        eprintln!("unknown queue {queue}; expected heap|calendar|wheel");
        std::process::exit(2)
    });
    let mut cfg = scenarios::distributed(scenarios::DEFAULT_SEED, scale);
    cfg.queue = kind;
    let t = Instant::now();
    let out = run_scenario(cfg);
    let secs = t.elapsed().as_secs_f64();
    println!(
        "pr7-point scale={scale} queue={queue} events={} records={} secs={secs:.3} peak_rss_kb={}",
        out.events_handled,
        out.log.records.len(),
        peak_rss_kb(),
    );
    std::process::exit(0)
}

/// Parent mode: spawn one `--pr7-point` child per (scale, queue) pair and
/// collect the points.
fn pr7_sweep(scales: &[f64]) -> Vec<Pr7Point> {
    let exe = std::env::current_exe().expect("current exe");
    let mut points = Vec::new();
    for &scale in scales {
        for queue in ["heap", "calendar", "wheel"] {
            let out = std::process::Command::new(&exe)
                .args(["--pr7-point", &scale.to_string(), queue])
                .output()
                .expect("spawn pr7 child");
            if !out.status.success() {
                eprintln!(
                    "[bench] pr7 child failed at scale {scale} queue {queue}:\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
                std::process::exit(1);
            }
            let stdout = String::from_utf8_lossy(&out.stdout);
            let line = stdout
                .lines()
                .find(|l| l.starts_with("pr7-point "))
                .expect("child must print a pr7-point line");
            let field = |key: &str| -> &str {
                line.split_whitespace()
                    .find_map(|kv| kv.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
                    .unwrap_or_else(|| panic!("missing {key} in: {line}"))
            };
            let p = Pr7Point {
                scale,
                queue: queue.to_string(),
                events: field("events").parse().expect("events"),
                records: field("records").parse().expect("records"),
                secs: field("secs").parse().expect("secs"),
                peak_rss_kb: field("peak_rss_kb").parse().expect("peak_rss_kb"),
            };
            eprintln!(
                "[bench] pr7 @ scale {scale}, {queue}: {:.0} events/s, {:.1} MB peak RSS ({} records)",
                p.events as f64 / p.secs.max(1e-9),
                p.peak_rss_kb as f64 / 1024.0,
                p.records,
            );
            points.push(p);
        }
    }
    points
}

/// Writes `BENCH_pr7.json` from the sweep points.
fn write_pr7(points: &[Pr7Point]) {
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"scale\": {}, \"queue\": \"{}\", \"events_handled\": {}, \
             \"records\": {}, \"secs\": {:.3}, \"events_per_sec\": {:.0}, \
             \"peak_rss_kb\": {} }}",
            p.scale,
            p.queue,
            p.events,
            p.records,
            p.secs,
            p.events as f64 / p.secs.max(1e-9),
            p.peak_rss_kb,
        ));
    }
    let json = format!(
        "{{\n  \
         \"generated_by\": \"cargo run --release -p edonkey-bench --bin perf_baseline -- --pr7\",\n  \
         \"note\": \"coupled distributed scenario, one fresh child process per point so peak RSS (VmHWM) is per-point; all three queues produce byte-identical logs (sim/tests/determinism.rs), so the deltas are pure scheduler cost; when single_core_container is true the rayon substitute runs sequentially — lane-sharding speedups are not represented here\",\n  \
         {},\n  \
         \"scale_sweep\": [\n{rows}\n  ]\n}}\n",
        host_json(),
    );
    let path = workspace_file("BENCH_pr7.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[bench] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[bench] could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    print!("{json}");
}

/// One point of the PR 8 capture-overhead sweep, as reported by a child
/// process.
struct Pr8Point {
    scale: f64,
    capture: bool,
    days: u64,
    events: u64,
    hp_records: usize,
    server_records: u64,
    compressed_bytes: u64,
    secs: f64,
    peak_rss_kb: u64,
}

/// Child mode: one `server_ten_weeks` run at `scale` over `days` simulated
/// days, with the server capture on or off, printing one machine-readable
/// line.  Own process so the parent reads an uncontaminated `VmHWM`.
fn pr8_point_main(scale: f64, capture: bool, days: u64) -> ! {
    let mut cfg = scenarios::server_ten_weeks(scenarios::DEFAULT_SEED, scale);
    cfg.duration = SimTime::from_days(days);
    let (events, hp_records, server_records, compressed_bytes, secs) = if capture {
        let dir = std::env::temp_dir().join(format!("edhp-pr8-capture-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Instant::now();
        let out = edonkey_sim::run_scenario_with_capture(cfg, &dir).expect("capture run");
        let secs = t.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&dir);
        (
            out.output.events_handled,
            out.output.log.records.len(),
            out.capture.records,
            out.capture.compressed_bytes,
            secs,
        )
    } else {
        cfg.server_capture = None;
        let t = Instant::now();
        let out = run_scenario(cfg);
        (out.events_handled, out.log.records.len(), 0, 0, t.elapsed().as_secs_f64())
    };
    println!(
        "pr8-point scale={scale} capture={} days={days} events={events} hp_records={hp_records} \
         server_records={server_records} compressed_bytes={compressed_bytes} secs={secs:.3} \
         peak_rss_kb={}",
        if capture { "on" } else { "off" },
        peak_rss_kb(),
    );
    std::process::exit(0)
}

/// Parent mode: capture on/off × scale, one child per point.
fn pr8_sweep(scales: &[f64], days: u64) -> Vec<Pr8Point> {
    let exe = std::env::current_exe().expect("current exe");
    let mut points = Vec::new();
    for &scale in scales {
        for capture in [false, true] {
            let mode = if capture { "on" } else { "off" };
            let out = std::process::Command::new(&exe)
                .args(["--pr8-point", &scale.to_string(), mode, &days.to_string()])
                .output()
                .expect("spawn pr8 child");
            if !out.status.success() {
                eprintln!(
                    "[bench] pr8 child failed at scale {scale} capture {mode}:\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
                std::process::exit(1);
            }
            let stdout = String::from_utf8_lossy(&out.stdout);
            let line = stdout
                .lines()
                .find(|l| l.starts_with("pr8-point "))
                .expect("child must print a pr8-point line");
            let field = |key: &str| -> &str {
                line.split_whitespace()
                    .find_map(|kv| kv.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
                    .unwrap_or_else(|| panic!("missing {key} in: {line}"))
            };
            let p = Pr8Point {
                scale,
                capture,
                days,
                events: field("events").parse().expect("events"),
                hp_records: field("hp_records").parse().expect("hp_records"),
                server_records: field("server_records").parse().expect("server_records"),
                compressed_bytes: field("compressed_bytes").parse().expect("compressed_bytes"),
                secs: field("secs").parse().expect("secs"),
                peak_rss_kb: field("peak_rss_kb").parse().expect("peak_rss_kb"),
            };
            eprintln!(
                "[bench] pr8 @ scale {scale}, capture {mode}: {:.0} events/s, \
                 {} server records ({:.1} B/record), {:.1} MB peak RSS",
                p.events as f64 / p.secs.max(1e-9),
                p.server_records,
                p.compressed_bytes as f64 / (p.server_records as f64).max(1.0),
                p.peak_rss_kb as f64 / 1024.0,
            );
            points.push(p);
        }
    }
    points
}

/// Writes `BENCH_pr8.json`: the capture on/off × scale sweep with the
/// per-scale capture overhead (wall-clock delta) made explicit.
fn write_pr8(points: &[Pr8Point]) {
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"scale\": {}, \"capture\": {}, \"days\": {}, \"queue\": \"calendar\", \
             \"events_handled\": {}, \"events_per_sec\": {:.0}, \"hp_records\": {}, \
             \"server_records\": {}, \"compressed_bytes\": {}, \
             \"compressed_bytes_per_record\": {:.2}, \"secs\": {:.3}, \"peak_rss_kb\": {} }}",
            p.scale,
            p.capture,
            p.days,
            p.events,
            p.events as f64 / p.secs.max(1e-9),
            p.hp_records,
            p.server_records,
            p.compressed_bytes,
            p.compressed_bytes as f64 / (p.server_records as f64).max(1.0),
            p.secs,
            p.peak_rss_kb,
        ));
    }
    let mut overhead = String::new();
    for pair in points.chunks(2) {
        if let [off, on] = pair {
            if !overhead.is_empty() {
                overhead.push_str(",\n");
            }
            overhead.push_str(&format!(
                "    {{ \"scale\": {}, \"capture_overhead_pct\": {:.1}, \
                 \"rss_overhead_kb\": {} }}",
                off.scale,
                (on.secs / off.secs.max(1e-9) - 1.0) * 100.0,
                on.peak_rss_kb.saturating_sub(off.peak_rss_kb),
            ));
        }
    }
    let json = format!(
        "{{\n  \
         \"generated_by\": \"cargo run --release -p edonkey-bench --bin perf_baseline -- --pr8\",\n  \
         \"note\": \"server_ten_weeks scenario, capture off vs on at each scale, one fresh child process per point so peak RSS (VmHWM) is per-point; capture streams CRC-framed compressed segments to a temp dir and never holds the capture in memory, so rss_overhead_kb stays flat as records grow\",\n  \
         {host},\n  \
         \"capture_sweep\": [\n{rows}\n  ],\n  \
         \"capture_overhead\": [\n{overhead}\n  ]\n}}\n",
        host = host_json(),
    );
    let path = workspace_file("BENCH_pr8.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[bench] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[bench] could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    print!("{json}");
}

/// One point of the PR 9 impairment sweep: windowed uploads across a
/// deterministically damaged link (or a pressured merge queue), with the
/// client running the same go-back-N resend discipline as the real agent.
struct Pr9Point {
    label: &'static str,
    drop_permille: u32,
    delay_ms: u64,
    merge_queue_limit: usize,
    upload_mb_per_sec: f64,
    secs: f64,
    chunks: u64,
    chunk_bytes: u64,
    duplicate_chunks: u64,
    chunks_shed: u64,
    window_shrinks: u64,
}

/// One cell of the PR 9 sweep.  The loss cells want a long transfer and a
/// deep window (bandwidth-delay-product sizing: enough bytes in flight to
/// ride out the shim's ~200 ms retransmission stalls, or the ack drought
/// drains the pipe and loss prices as idle time, not throughput).  The
/// queue-pressure cell wants the opposite — a shallow window and a small
/// transfer — so the shed/resend flood stays a bounded episode.
struct Pr9Cell {
    label: &'static str,
    impair: Option<edonkey_platform::ImpairPlan>,
    window: u32,
    merge_queue_limit: usize,
    merge_stall_ms: u64,
    records_per_chunk: usize,
    chunks_per_agent: u64,
}

impl Default for Pr9Cell {
    fn default() -> Self {
        Pr9Cell {
            label: "",
            impair: None,
            window: 128,
            merge_queue_limit: 0,
            merge_stall_ms: 0,
            records_per_chunk: 2_000,
            chunks_per_agent: 96,
        }
    }
}

/// Measures windowed upload throughput through the daemon with an
/// optional [`ImpairPlan`] on every accepted connection and optional
/// merge-queue pressure.  Lost frames, lost acks and shed chunks are all
/// recovered by an RTT-scaled go-back-N resend timer — the discipline the
/// real agent runs — so every point still merges every sequence exactly
/// once; the impairment only costs time, never data.
fn pr9_point(cell: Pr9Cell) -> Pr9Point {
    use edonkey_platform::daemon::{Daemon, DaemonConfig};
    use edonkey_platform::messages::{AgentConfig, ControlMessage};
    use edonkey_platform::{ConnEvent, ControlConn};
    use edonkey_proto::Ipv4;
    use honeypot::{ContentStrategy, FileStrategy, HoneypotId, ServerInfo};

    const AGENTS: usize = 4;
    let Pr9Cell {
        label,
        impair,
        window,
        merge_queue_limit,
        merge_stall_ms,
        records_per_chunk,
        chunks_per_agent,
    } = cell;

    let server = ServerInfo::new("bench", Ipv4::new(127, 0, 0, 1), 4661);
    let configs: Vec<AgentConfig> = (0..AGENTS)
        .map(|i| AgentConfig {
            id: HoneypotId(i as u32),
            content: ContentStrategy::NoContent,
            files: FileStrategy::Fixed(Vec::new()),
            server: server.clone(),
            ip_salt: 1,
            rng_seed: 1,
            heartbeat_ms: 1_000,
            collect_ms: 1_000,
            client_name: format!("bench-{i}"),
        })
        .collect();
    let (drop_permille, delay_ms) =
        impair.as_ref().map_or((0, 0), |p| (p.drop_permille, p.delay_ms));
    // Generous supervision and hostile-peer deadlines: the bench workers
    // never heartbeat, and a saturating bulk upload parks a partial frame
    // in the decoder for most of the run — exactly the signatures the
    // dead-agent and slow-loris reapers hunt.  Those paths have their own
    // tests (chaos_matrix); here they would only cut the measurement
    // short.
    let mut cfg = DaemonConfig {
        heartbeat_timeout_ms: 600_000,
        idle_timeout_ms: 600_000,
        slow_loris_timeout_ms: 600_000,
        upload_window: window,
        impair,
        merge_stall_ms,
        ..DaemonConfig::default()
    };
    if merge_queue_limit > 0 {
        cfg.merge_queue_limit = merge_queue_limit;
    }
    let limit = cfg.merge_queue_limit;
    let daemon = Daemon::start(cfg, configs, Box::new(|_, _, _| {})).expect("start daemon");
    let addr = daemon.addr();

    let chunk = synthetic_chunk(records_per_chunk);
    let frame_len =
        ControlMessage::LogUpload { agent: 0, seq: 0, chunk: chunk.clone() }.encode_frame().len();

    let workers: Vec<std::thread::JoinHandle<f64>> = (0..AGENTS as u32)
        .map(|agent| {
            let mut chunk = chunk.clone();
            chunk.honeypot = HoneypotId(agent);
            std::thread::spawn(move || {
                let mut conn = ControlConn::connect(addr).expect("connect");
                conn.set_read_timeout(std::time::Duration::from_millis(1)).expect("timeout");
                // The handshake itself can be impaired away: re-register
                // on a timer until the ack lands.
                let mut granted = 0u64;
                let mut last_try: Option<Instant> = None;
                while granted == 0 {
                    if last_try.is_none_or(|t| t.elapsed().as_millis() >= 200) {
                        conn.send(&ControlMessage::Register {
                            agent,
                            incarnation: 0,
                            resume: false,
                        })
                        .expect("register");
                        last_try = Some(Instant::now());
                    }
                    for ev in conn.poll().expect("handshake") {
                        if let ConnEvent::Msg(ControlMessage::RegisterAck { window, .. }) = ev {
                            granted = u64::from(window.max(1));
                        }
                    }
                }

                let t = Instant::now();
                let mut next_send = 0u64;
                let mut next_ack = 0u64;
                let mut last_progress = Instant::now();
                while next_ack < chunks_per_agent {
                    while next_send < chunks_per_agent && next_send - next_ack < granted {
                        conn.send(&ControlMessage::LogUpload {
                            agent,
                            seq: next_send,
                            chunk: chunk.clone(),
                        })
                        .expect("upload");
                        next_send += 1;
                    }
                    for ev in conn.poll().expect("ack poll") {
                        match ev {
                            ConnEvent::Msg(ControlMessage::ChunkAck { next_seq, window }) => {
                                if next_seq > next_ack {
                                    next_ack = next_seq;
                                    last_progress = Instant::now();
                                }
                                // Live re-grant: a shrunken window takes
                                // effect on the next fill.
                                granted = u64::from(window.max(1));
                            }
                            ConnEvent::Msg(ControlMessage::ChunkRetry { seq }) => {
                                next_send = next_send.min(seq);
                            }
                            _ => {}
                        }
                    }
                    // Stall recovery: probe-retransmit the frontier chunk
                    // only.  An interior loss is already healed by the
                    // daemon's go-back-N `ChunkRetry`; the probe covers a
                    // lost tail frame, a lost ack or a shed chunk, and a
                    // spurious probe costs one duplicate frame instead of
                    // a full-window resend flooding the link.
                    let resend_ms = 50 + 4 * delay_ms as u128;
                    if next_send > next_ack && last_progress.elapsed().as_millis() >= resend_ms {
                        conn.send(&ControlMessage::LogUpload {
                            agent,
                            seq: next_ack,
                            chunk: chunk.clone(),
                        })
                        .expect("probe resend");
                        last_progress = Instant::now();
                    }
                }
                let secs = t.elapsed().as_secs_f64();
                conn.send(&ControlMessage::Goodbye { agent, final_seq: chunks_per_agent })
                    .expect("goodbye");
                secs
            })
        })
        .collect();

    let mut up_max = 0f64;
    for w in workers {
        up_max = up_max.max(w.join().expect("bench worker"));
    }
    let (log, metrics, _order) =
        daemon.finish(netsim::SimTime::from_secs(60), 0, 1, std::time::Duration::from_secs(2));
    assert_eq!(
        log.records.len(),
        AGENTS * chunks_per_agent as usize * records_per_chunk,
        "impairment may cost time, never data"
    );
    assert_eq!(metrics.double_merge_violation(), None, "no sequence may merge twice");

    let total_chunks = AGENTS as u64 * chunks_per_agent;
    let total_bytes = total_chunks * frame_len as u64;
    let point = Pr9Point {
        label,
        drop_permille,
        delay_ms,
        merge_queue_limit: limit,
        upload_mb_per_sec: total_bytes as f64 / (1024.0 * 1024.0) / up_max.max(1e-9),
        secs: up_max,
        chunks: total_chunks,
        chunk_bytes: total_bytes,
        duplicate_chunks: metrics.total_duplicate_chunks(),
        chunks_shed: metrics.chunks_shed,
        window_shrinks: metrics.window_shrinks,
    };
    eprintln!(
        "[bench] pr9 {label}: {:.1} MB/s ({} dup, {} shed, {} shrinks)",
        point.upload_mb_per_sec, point.duplicate_chunks, point.chunks_shed, point.window_shrinks
    );
    point
}

/// The PR 9 sweep: clean link, 1 % and 5 % frame loss, added latency, and
/// a pressured merge queue (shrinking windows + shedding).
fn pr9_sweep() -> Vec<Pr9Point> {
    use edonkey_platform::ImpairPlan;
    let plan = |drop: u32, delay: u64, jitter: u64| ImpairPlan {
        drop_permille: drop,
        delay_ms: delay,
        jitter_ms: jitter,
        ..ImpairPlan::clean(0x9E9)
    };
    // Default cells: 128 chunks in flight ≈ 14 MB, deep enough that the
    // shim's ~200 ms loss stalls are paid from the pipe, not as idle
    // window drain.  The queue-pressure cell inverts the sizing (shallow
    // window, short transfer) so its shed/resend flood stays a bounded
    // episode instead of a minutes-long probe-paced crawl.
    vec![
        pr9_point(Pr9Cell { label: "clean", ..Pr9Cell::default() }),
        pr9_point(Pr9Cell {
            label: "loss_1pct",
            impair: Some(plan(10, 1, 1)),
            ..Pr9Cell::default()
        }),
        pr9_point(Pr9Cell {
            label: "loss_5pct",
            impair: Some(plan(50, 1, 1)),
            ..Pr9Cell::default()
        }),
        pr9_point(Pr9Cell {
            label: "delay_5ms",
            impair: Some(plan(0, 5, 2)),
            ..Pr9Cell::default()
        }),
        pr9_point(Pr9Cell {
            label: "queue_pressure",
            window: 16,
            merge_queue_limit: 4,
            merge_stall_ms: 2,
            records_per_chunk: 500,
            chunks_per_agent: 32,
            ..Pr9Cell::default()
        }),
    ]
}

/// Writes `BENCH_pr9.json` from the sweep points, including the headline
/// acceptance ratio (1 % loss must stay within 2× of clean).
fn write_pr9(points: &[Pr9Point]) {
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"label\": \"{}\", \"drop_permille\": {}, \"delay_ms\": {}, \
             \"merge_queue_limit\": {}, \"upload_mb_per_sec\": {:.2}, \"secs\": {:.3}, \
             \"chunks\": {}, \"chunk_bytes\": {}, \"duplicate_chunks\": {}, \
             \"chunks_shed\": {}, \"window_shrinks\": {} }}",
            p.label,
            p.drop_permille,
            p.delay_ms,
            p.merge_queue_limit,
            p.upload_mb_per_sec,
            p.secs,
            p.chunks,
            p.chunk_bytes,
            p.duplicate_chunks,
            p.chunks_shed,
            p.window_shrinks,
        ));
    }
    let clean = points.iter().find(|p| p.label == "clean").map_or(0.0, |p| p.upload_mb_per_sec);
    let lossy = points.iter().find(|p| p.label == "loss_1pct").map_or(0.0, |p| p.upload_mb_per_sec);
    let slowdown = clean / lossy.max(1e-9);
    if slowdown > 2.0 {
        eprintln!("[bench] WARNING: 1% loss slowdown {slowdown:.2}x exceeds the 2x budget");
    }
    let json = format!(
        "{{\n  \
         \"generated_by\": \"cargo run --release -p edonkey-bench --bin perf_baseline -- --pr9\",\n  \
         \"note\": \"windowed uploads (4 agents, 96x2000-record chunks each, window 128 sized to the stall bandwidth-delay product) through the daemon-side deterministic impairment shim; the client runs the agent's go-back-N resend discipline, so every point merges every sequence exactly once — impairment costs time, never data; queue_pressure uses window 16 with merge_queue_limit 4 and a 2 ms injected merge stall to exhibit window shrinking and shedding\",\n  \
         {host},\n  \
         \"clean_over_loss_1pct_slowdown\": {slowdown:.3},\n  \
         \"loss_1pct_within_2x_clean\": {within},\n  \
         \"impairment_sweep\": [\n{rows}\n  ]\n}}\n",
        host = host_json(),
        within = slowdown <= 2.0,
    );
    let path = workspace_file("BENCH_pr9.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[bench] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[bench] could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    print!("{json}");
}

/// One cell of the PR 10 observability-overhead pair: the clean windowed
/// harness of [`pr9_point`], sized down so the off/on pair stays a
/// minutes-scale run.
fn pr10_cell(label: &'static str, records_per_chunk: usize, chunks_per_agent: u64) -> Pr9Cell {
    Pr9Cell { label, impair: None, records_per_chunk, chunks_per_agent, ..Pr9Cell::default() }
}

/// Best-of-two throughput for one cell, damping scheduler noise the way
/// a human benchmarker would rerun a suspicious number.
fn best_of_two(mut run: impl FnMut() -> Pr9Point) -> Pr9Point {
    let a = run();
    let b = run();
    if b.upload_mb_per_sec > a.upload_mb_per_sec {
        b
    } else {
        a
    }
}

/// The PR 10 pair: obs fully dark vs the default live posture —
/// `Info`-level events, every registry histogram hot, and the snapshot
/// scraper sampling (and reachable) at its default cadence.
fn pr10_pair(records_per_chunk: usize, chunks_per_agent: u64) -> (Pr9Point, Pr9Point) {
    use edonkey_platform::{ObsConfig, Registry, Scraper};
    use netsim::obs::{set_level, Level};

    set_level(Level::Off);
    let off = best_of_two(|| pr9_point(pr10_cell("obs_off", records_per_chunk, chunks_per_agent)));

    set_level(Level::Info);
    let scraper = Scraper::start(Registry::global(), ObsConfig::default()).ok();
    let on = best_of_two(|| pr9_point(pr10_cell("obs_on", records_per_chunk, chunks_per_agent)));
    drop(scraper);
    set_level(Level::Off);
    (off, on)
}

/// Writes `BENCH_pr10.json`: obs-off vs obs-on upload throughput and the
/// relative overhead, gated (as a recorded boolean plus a warning, like
/// the PR 9 loss budget) at 3 %.
fn write_pr10(off: &Pr9Point, on: &Pr9Point) {
    let overhead_pct = (off.upload_mb_per_sec / on.upload_mb_per_sec.max(1e-9) - 1.0) * 100.0;
    if overhead_pct > 3.0 {
        eprintln!("[bench] WARNING: obs-on overhead {overhead_pct:.2}% exceeds the 3% budget");
    }
    let row = |p: &Pr9Point| {
        format!(
            "{{ \"label\": \"{}\", \"upload_mb_per_sec\": {:.2}, \"secs\": {:.3}, \
             \"chunks\": {}, \"chunk_bytes\": {} }}",
            p.label, p.upload_mb_per_sec, p.secs, p.chunks, p.chunk_bytes
        )
    };
    let json = format!(
        "{{\n  \
         \"generated_by\": \"cargo run --release -p edonkey-bench --bin perf_baseline -- --pr10\",\n  \
         \"note\": \"windowed uploads (4 agents, clean link, window 128) with the PR 10 observability layer fully dark vs the default live posture: Info-level structured events, all registry histograms recording, and the snapshot scraper sampling every 250 ms with its loopback endpoint bound; best of two runs per side\",\n  \
         {host},\n  \
         \"obs_off\": {off_row},\n  \
         \"obs_on\": {on_row},\n  \
         \"obs_overhead_pct\": {overhead_pct:.3},\n  \
         \"within_3pct_budget\": {within}\n}}\n",
        host = host_json(),
        off_row = row(off),
        on_row = row(on),
        within = overhead_pct <= 3.0,
    );
    let path = workspace_file("BENCH_pr10.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[bench] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[bench] could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    print!("{json}");
}

/// CI gate for the observability layer: a short live swarm with obs
/// enabled end to end.  Scrapes the daemon's snapshot endpoint *while
/// uploads are in flight* and validates that the reply parses and
/// carries non-empty latency histograms with p50/p99; then validates the
/// JSONL time series (schema tag, monotone sample numbers, every line
/// parseable); finally enforces a deliberately generous overhead
/// threshold — this smoke catches order-of-magnitude regressions, the
/// tight 3 % budget lives in `--pr10`.
fn obs_smoke() -> ! {
    use edonkey_platform::daemon::{Daemon, DaemonConfig};
    use edonkey_platform::messages::{AgentConfig, ControlMessage};
    use edonkey_platform::{ConnEvent, ControlConn, ObsConfig};
    use edonkey_proto::Ipv4;
    use honeypot::{ContentStrategy, FileStrategy, HoneypotId, ServerInfo};
    use std::io::Read as _;

    /// Extracts the integer following `"key":` in a flat obs JSON line
    /// (the workspace's offline `serde_json` stub cannot deserialise, so
    /// the schema check scans the machine-generated text directly).
    fn json_u64(s: &str, key: &str) -> Option<u64> {
        let needle = format!("\"{key}\":");
        let at = s.find(&needle)? + needle.len();
        let digits: String = s[at..].chars().take_while(char::is_ascii_digit).collect();
        digits.parse().ok()
    }

    /// The `{...}` object following `"key":` (obs objects never nest).
    fn json_object<'a>(s: &'a str, key: &str) -> Option<&'a str> {
        let needle = format!("\"{key}\":{{");
        let at = s.find(&needle)? + needle.len() - 1;
        Some(&s[at..=at + s[at..].find('}')?])
    }

    const MAX_OVERHEAD_PCT: f64 = 25.0;
    const AGENTS: u32 = 2;
    const CHUNKS: u64 = 24;

    netsim::obs::set_level(netsim::obs::Level::Info);
    let series_path = workspace_file("target/obs/smoke-series.jsonl");
    let _ = std::fs::remove_file(&series_path);

    let server = ServerInfo::new("smoke", Ipv4::new(127, 0, 0, 1), 4661);
    let configs: Vec<AgentConfig> = (0..AGENTS)
        .map(|i| AgentConfig {
            id: HoneypotId(i),
            content: ContentStrategy::NoContent,
            files: FileStrategy::Fixed(Vec::new()),
            server: server.clone(),
            ip_salt: 1,
            rng_seed: 1,
            heartbeat_ms: 1_000,
            collect_ms: 1_000,
            client_name: format!("smoke-{i}"),
        })
        .collect();
    let cfg = DaemonConfig {
        heartbeat_timeout_ms: 600_000,
        idle_timeout_ms: 600_000,
        slow_loris_timeout_ms: 600_000,
        obs: Some(ObsConfig {
            interval: std::time::Duration::from_millis(50),
            series_path: Some(series_path.clone()),
            serve: true,
        }),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(cfg, configs, Box::new(|_, _, _| {})).expect("start daemon");
    let addr = daemon.addr();
    let obs_addr = daemon.obs_addr().expect("obs endpoint must be bound");

    let chunk = synthetic_chunk(500);
    let workers: Vec<std::thread::JoinHandle<()>> = (0..AGENTS)
        .map(|agent| {
            let mut chunk = chunk.clone();
            chunk.honeypot = HoneypotId(agent);
            std::thread::spawn(move || {
                let mut conn = ControlConn::connect(addr).expect("connect");
                conn.set_read_timeout(std::time::Duration::from_millis(5)).expect("timeout");
                conn.send(&ControlMessage::Register { agent, incarnation: 0, resume: false })
                    .expect("register");
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
                'handshake: while std::time::Instant::now() < deadline {
                    for ev in conn.poll().expect("handshake") {
                        if matches!(ev, ConnEvent::Msg(ControlMessage::RegisterAck { .. })) {
                            break 'handshake;
                        }
                    }
                }
                for seq in 0..CHUNKS {
                    conn.send(&ControlMessage::LogUpload { agent, seq, chunk: chunk.clone() })
                        .expect("upload");
                    'ack: while std::time::Instant::now() < deadline {
                        for ev in conn.poll().expect("ack poll") {
                            if let ConnEvent::Msg(ControlMessage::ChunkAck { next_seq, .. }) = ev {
                                if next_seq > seq {
                                    break 'ack;
                                }
                            }
                        }
                        // Pace the smoke so the 50 ms sampler sees a live
                        // run, not one burst.
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                }
                conn.send(&ControlMessage::Goodbye { agent, final_seq: CHUNKS }).expect("goodbye");
            })
        })
        .collect();

    // Scrape while the daemon runs: connect, read one JSON line, check
    // the shape.  The reactor batches its loop latency into the live
    // registry every 128 passes, so keep scraping until the histogram
    // goes hot rather than trusting one early sample.
    let scrape = || -> String {
        let mut reply = String::new();
        std::net::TcpStream::connect(obs_addr)
            .expect("connect obs endpoint")
            .read_to_string(&mut reply)
            .expect("read snapshot");
        reply.trim().to_string()
    };
    let scrape_deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let (snap, loop_hist) = loop {
        let snap = scrape();
        assert!(
            snap.starts_with('{') && snap.ends_with('}'),
            "snapshot must be one JSON object, got: {snap:.120}"
        );
        assert!(snap.contains("\"schema\":\"obs-v1\""), "snapshot schema tag missing: {snap:.120}");
        let loop_hist = json_object(&snap, "reactor_loop_micros")
            .expect("live snapshot must carry the reactor-loop histogram")
            .to_string();
        if json_u64(&loop_hist, "count").expect("histogram count") > 0 {
            break (snap, loop_hist);
        }
        assert!(
            std::time::Instant::now() < scrape_deadline,
            "reactor-loop histogram never went hot: {snap:.200}"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    };
    let p50 = json_u64(&loop_hist, "p50").expect("histogram p50");
    let p99 = json_u64(&loop_hist, "p99").expect("histogram p99");
    assert!(p50 <= p99, "percentiles must be ordered: {loop_hist}");
    assert!(json_u64(&snap, "sample").is_some(), "snapshot sample number missing");
    eprintln!("[obs-smoke] live scrape ok: reactor loop p50={p50} p99={p99} micros");

    for w in workers {
        w.join().expect("smoke worker");
    }
    let (log, metrics, _order) =
        daemon.finish(netsim::SimTime::from_secs(60), 0, 1, std::time::Duration::from_secs(2));
    assert_eq!(log.records.len(), AGENTS as usize * CHUNKS as usize * 500);
    assert_eq!(metrics.double_merge_violation(), None);

    // The JSONL series: every line parses, the schema tag is present,
    // and sample numbers are strictly monotone.
    let series = std::fs::read_to_string(&series_path).expect("series file written");
    let mut last_sample: Option<u64> = None;
    let mut lines = 0u64;
    for line in series.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "series line must be one JSON object: {line:.120}"
        );
        assert!(line.contains("\"schema\":\"obs-v1\""), "series schema tag missing: {line:.120}");
        assert!(line.contains("\"unix_ms\":"), "series timestamp missing: {line:.120}");
        let sample = json_u64(line, "sample").expect("series sample number");
        assert!(last_sample.is_none_or(|s| sample > s), "sample numbers must be monotone");
        last_sample = Some(sample);
        lines += 1;
    }
    assert!(lines >= 2, "a multi-second run must leave several samples, got {lines}");
    eprintln!("[obs-smoke] series ok: {lines} samples in {}", series_path.display());

    // Generous overhead gate on a small off/on pair.
    let (off, on) = pr10_pair(500, 16);
    let overhead_pct = (off.upload_mb_per_sec / on.upload_mb_per_sec.max(1e-9) - 1.0) * 100.0;
    eprintln!(
        "[obs-smoke] overhead {overhead_pct:.2}% (off {:.1} MB/s, on {:.1} MB/s)",
        off.upload_mb_per_sec, on.upload_mb_per_sec
    );
    if overhead_pct > MAX_OVERHEAD_PCT {
        eprintln!(
            "[obs-smoke] FAIL: overhead above the generous {MAX_OVERHEAD_PCT}% smoke ceiling"
        );
        std::process::exit(1);
    }
    eprintln!("[obs-smoke] PASS");
    std::process::exit(0)
}

/// CI gate: one coupled run on the timing wheel at `scale`, the index
/// built through the *streaming* builder and cross-checked against the
/// one-shot build, under deliberately generous throughput and memory
/// thresholds (a single-core CI container cannot validate sharding
/// speedups — this gate only catches order-of-magnitude regressions).
fn scale_smoke(scale: f64) -> ! {
    const MIN_EVENTS_PER_SEC: f64 = 10_000.0;
    const MAX_PEAK_RSS_KB: u64 = 4 * 1024 * 1024; // 4 GiB

    let mut cfg = scenarios::distributed(scenarios::DEFAULT_SEED, scale);
    cfg.queue = QueueKind::Wheel;
    let t = Instant::now();
    let out = run_scenario(cfg);
    let secs = t.elapsed().as_secs_f64();
    let eps = out.events_handled as f64 / secs.max(1e-9);

    // Streaming index over ragged chunks, checked against the one-shot
    // build: the smoke exercises the incremental contract end to end.
    let mut b = edonkey_analysis::IndexBuilder::for_log(&out.log);
    for records in out.log.records.chunks(10_000) {
        b.push_records(records);
    }
    for l in &out.log.shared_lists {
        b.push_shared_list(l.at, &l.files);
    }
    let streamed = b.finish();
    let reference = LogIndex::build(&out.log);
    assert_eq!(
        streamed.peer_growth().cumulative,
        reference.peer_growth().cumulative,
        "streaming index must match the one-shot build"
    );
    assert_eq!(
        streamed.recount_distinct_peers(),
        reference.recount_distinct_peers(),
        "streaming index must match the one-shot build"
    );

    let rss = peak_rss_kb();
    eprintln!(
        "[smoke] scale {scale} on wheel: {eps:.0} events/s ({} events, {:.1}s), \
         peak RSS {:.1} MB, streaming index verified ({} records)",
        out.events_handled,
        secs,
        rss as f64 / 1024.0,
        out.log.records.len(),
    );
    if eps < MIN_EVENTS_PER_SEC {
        eprintln!("[smoke] FAIL: {eps:.0} events/s below the {MIN_EVENTS_PER_SEC} floor");
        std::process::exit(1);
    }
    if rss > MAX_PEAK_RSS_KB {
        eprintln!("[smoke] FAIL: peak RSS {rss} kB above the {MAX_PEAK_RSS_KB} kB ceiling");
        std::process::exit(1);
    }
    eprintln!("[smoke] PASS");
    std::process::exit(0)
}

fn main() {
    let mut scale = DEFAULT_SCALE;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pr6_only = false;
    let mut pr7 = false;
    let mut pr8 = false;
    let mut pr9 = false;
    let mut pr10 = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale =
                    args.get(i).and_then(|v| v.parse().ok()).filter(|&s| s > 0.0).unwrap_or_else(
                        || {
                            eprintln!("usage: perf_baseline [--scale F]");
                            std::process::exit(2)
                        },
                    );
            }
            "--pr6" => pr6_only = true,
            "--pr7" => pr7 = true,
            "--pr8" => pr8 = true,
            "--pr9" => pr9 = true,
            "--pr10" => pr10 = true,
            "--obs-smoke" => obs_smoke(),
            "--pr8-point" => {
                let s: f64 = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("usage: perf_baseline --pr8-point F on|off DAYS");
                    std::process::exit(2)
                });
                let capture = match args.get(i + 2).map(String::as_str) {
                    Some("on") => true,
                    Some("off") => false,
                    _ => {
                        eprintln!("usage: perf_baseline --pr8-point F on|off DAYS");
                        std::process::exit(2)
                    }
                };
                let days: u64 = args.get(i + 3).and_then(|v| v.parse().ok()).unwrap_or(70);
                pr8_point_main(s, capture, days);
            }
            "--pr7-point" => {
                let s: f64 = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("usage: perf_baseline --pr7-point F heap|calendar|wheel");
                    std::process::exit(2)
                });
                let q = args.get(i + 2).cloned().unwrap_or_default();
                pr7_point_main(s, &q);
            }
            "--scale-smoke" => {
                let s: f64 = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(0.25);
                scale_smoke(s);
            }
            other => {
                eprintln!("unknown argument {other}; usage: perf_baseline [--scale F] [--pr6] [--pr7] [--pr8] [--pr9] [--pr10] [--obs-smoke] [--scale-smoke F]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if pr9 {
        let points = pr9_sweep();
        write_pr9(&points);
        return;
    }
    if pr10 {
        let (off, on) = pr10_pair(2_000, 48);
        write_pr10(&off, &on);
        return;
    }
    if pr7 {
        let points = pr7_sweep(&[0.05, 0.1, 0.25, 0.5, 1.0]);
        write_pr7(&points);
        return;
    }
    if pr8 {
        let points = pr8_sweep(&[0.05, 0.2], scenarios::SERVER_CAPTURE_DAYS);
        write_pr8(&points);
        return;
    }
    if pr6_only {
        run_pr6(scale);
        return;
    }

    // 1. Raw engine throughput, heap vs calendar, chained-timer pattern.
    //    The calendar's buckets are sized to the workload (256 chains over
    //    a ~4.3 s delay spread → ~50 ms buckets, a few events per bucket),
    //    as a user of CalendarQueue::new would size them; the scenario
    //    below exercises the minute-scale for_simulation geometry.
    eprintln!("[bench] engine: {ENGINE_EVENTS} chained-timer events per queue …");
    let heap_eps = engine_events_per_sec(EventQueue::new());
    let cal_eps = engine_events_per_sec(CalendarQueue::new(4_096, 50));
    eprintln!("[bench] engine: heap {heap_eps:.0}/s, calendar {cal_eps:.0}/s");

    // 2. Scaled coupled scenario wall-clock under both queues (same log
    //    either way — asserted by sim/tests/determinism.rs).  The calendar
    //    run is also the coupled reference the sharding sweep compares to.
    let seed = scenarios::DEFAULT_SEED;
    let mut heap_cfg = scenarios::distributed(seed, scale);
    heap_cfg.queue = QueueKind::Heap;
    let t = Instant::now();
    let heap_out = run_scenario(heap_cfg);
    let dist_heap_secs = t.elapsed().as_secs_f64();
    let mut cal_cfg = scenarios::distributed(seed, scale);
    cal_cfg.queue = QueueKind::Calendar;
    let t = Instant::now();
    let dist = run_scenario(cal_cfg).log;
    let dist_cal_secs = t.elapsed().as_secs_f64();
    eprintln!(
        "[bench] distributed @ {scale}: heap {dist_heap_secs:.2}s, calendar {dist_cal_secs:.2}s ({} records)",
        dist.records.len()
    );
    drop(heap_out);

    // 3. Lane-sharded execution swept across pool sizes.  The sharded log
    //    is a different (equally valid) sample than the coupled one, so the
    //    honest comparison is sharded-vs-sharded across thread counts plus
    //    the coupled wall-clock for context.
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, max_threads];
    counts.sort_unstable();
    counts.dedup();
    let mut sweep: Vec<(usize, f64, usize)> = Vec::new();
    for &threads in &counts {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("rayon pool");
        let cfg = scenarios::distributed(seed, scale);
        let t = Instant::now();
        let out = pool.install(|| run_sharded(cfg));
        let secs = t.elapsed().as_secs_f64();
        eprintln!(
            "[bench] sharded @ {scale}, {threads} thread(s): {secs:.2}s ({} records)",
            out.log.records.len()
        );
        sweep.push((threads, secs, out.log.records.len()));
    }
    let sharded_1t = sweep.first().map(|&(_, s, _)| s).unwrap_or(f64::NAN);

    // 4. Index build throughput over the distributed log: the chunked
    //    parallel path, the sequential path, and which one `build()`
    //    auto-selects for a log of this size (small logs pick sequential —
    //    the parallel partials allocate per-universe state per chunk).
    let reps = 5;
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(LogIndex::build_parallel(&dist));
    }
    let par_rps = (dist.records.len() * reps) as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(LogIndex::build_sequential(&dist));
    }
    let seq_rps = (dist.records.len() * reps) as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(LogIndex::build(&dist));
    }
    let auto_rps = (dist.records.len() * reps) as f64 / t.elapsed().as_secs_f64();
    let auto_picks = if dist.records.len() < edonkey_analysis::index::PAR_BUILD_MIN_RECORDS
        || rayon::current_num_threads() <= 1
    {
        "sequential"
    } else {
        "parallel"
    };
    eprintln!(
        "[bench] index: parallel {par_rps:.0} rec/s, sequential {seq_rps:.0} rec/s, auto ({auto_picks}) {auto_rps:.0} rec/s"
    );

    // 5. Run-cache warm path: storing the distributed log once, then
    //    loading it back, versus the simulation wall-clock it replaces.
    let cache_dir = std::env::temp_dir().join(format!("edhp-bench-cache-{}", std::process::id()));
    let cache = RunCache::new(cache_dir.clone());
    let cfg = scenarios::distributed(seed, scale);
    let t = Instant::now();
    cache.store(&cfg, &dist).expect("cache store");
    let store_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let warm = cache.load(&cfg).expect("cache load");
    let load_secs = t.elapsed().as_secs_f64();
    assert_eq!(warm.records.len(), dist.records.len());
    drop(warm);
    let _ = std::fs::remove_dir_all(&cache_dir);
    eprintln!(
        "[bench] run-cache: store {store_secs:.3}s, warm load {load_secs:.3}s (vs {dist_cal_secs:.2}s simulate)"
    );

    // 6. End-to-end scaled `all` pipeline (greedy sim + indexes + the
    //    figure set; the distributed log is reused from step 2).
    let t = Instant::now();
    let greedy = run_scenario(scenarios::greedy(seed, scale)).log;
    let dist_ix = LogIndex::build(&dist);
    let greedy_ix = LogIndex::build(&greedy);
    let figs = [
        figures::table1(&dist, &greedy),
        figures::fig_growth(&dist_ix, 2),
        figures::fig_growth(&greedy_ix, 3),
        figures::fig04(&dist_ix),
        figures::fig05(&dist_ix),
        figures::fig06(&dist_ix),
        figures::fig07(&dist_ix),
        figures::fig_top_peer(&dist, &dist_ix, 8),
        figures::fig_top_peer(&dist, &dist_ix, 9),
        figures::fig10(&dist_ix, 100, seed),
        figures::fig_files(&greedy_ix, 11, 100, seed),
        figures::fig_files(&greedy_ix, 12, 100, seed),
    ];
    let all_secs = dist_cal_secs + t.elapsed().as_secs_f64();
    eprintln!("[bench] scaled all pipeline: {all_secs:.2}s ({} artefacts)", figs.len());

    // 7. Control plane: chunk-upload throughput and heartbeat round-trips
    //    against a real manager daemon, swept over agent counts.
    let mut control: Vec<ControlPoint> = Vec::new();
    for &n in &[1usize, 2, 4] {
        let p = control_plane_point(n, None);
        eprintln!(
            "[bench] control plane @ {n} agent(s): {:.1} MB/s chunk upload, {:.0} heartbeat round-trips/s",
            p.upload_mb_per_sec, p.heartbeats_per_sec
        );
        control.push(p);
    }

    // 8. Durability overheads: the same sweep with the crash-safe write
    //    path on (client-side spool-before-send + daemon-side
    //    WAL-before-ack + periodic checkpoint), plus the spool and
    //    checkpoint micro-costs in isolation.
    let durable_root =
        std::env::temp_dir().join(format!("edhp-bench-durable-{}", std::process::id()));
    let mut durable: Vec<ControlPoint> = Vec::new();
    for &n in &[1usize, 2, 4] {
        let point_root = durable_root.join(format!("sweep-{n}"));
        let p = control_plane_point(n, Some(point_root.as_path()));
        eprintln!(
            "[bench] durable control plane @ {n} agent(s): {:.1} MB/s chunk upload (spool + WAL)",
            p.upload_mb_per_sec
        );
        durable.push(p);
    }
    let micro = durability_micro(&durable_root);
    let _ = std::fs::remove_dir_all(&durable_root);
    eprintln!(
        "[bench] spool: append {:.1} MB/s, recovery scan {:.3}s for {} records; \
         checkpoint: save {:.1} µs, load {:.1} µs ({} slots)",
        micro.spool_append_mb_per_sec,
        micro.spool_scan_secs,
        micro.spool_records,
        micro.ckpt_save_micros,
        micro.ckpt_load_micros,
        micro.ckpt_slots,
    );

    // 9-10. PR 6: the windowed-upload sweep and the 1,000-agent gate
    //        (also reachable standalone via `--pr6`).
    run_pr6(scale);

    // Hand-rolled JSON (no serde needed for a few dozen scalars).
    let mut sweep_json = String::new();
    for (i, &(threads, secs, records)) in sweep.iter().enumerate() {
        if i > 0 {
            sweep_json.push_str(",\n");
        }
        sweep_json.push_str(&format!(
            "      {{ \"threads\": {threads}, \"secs\": {secs:.3}, \
             \"records\": {records}, \
             \"speedup_vs_1_thread\": {s1:.3}, \
             \"speedup_vs_coupled\": {sc:.3} }}",
            s1 = sharded_1t / secs,
            sc = dist_cal_secs / secs,
        ));
    }
    let json = format!(
        "{{\n  \
         \"generated_by\": \"cargo run --release -p edonkey-bench --bin perf_baseline -- --scale {scale}\",\n  \
         \"note\": \"lane-sharding sweep speedups are bounded by threads_available; when single_core_container is true the sweep reports ~1.0x regardless of pool size\",\n  \
         {host},\n  \
         \"rayon_default_threads\": {rayon_threads},\n  \
         \"queues_used\": [\"heap\", \"calendar\"],\n  \
         \"engine\": {{\n    \
           \"pattern\": \"chained timers, {ENGINE_EVENTS} events\",\n    \
           \"heap_events_per_sec\": {heap_eps:.0},\n    \
           \"calendar_events_per_sec\": {cal_eps:.0},\n    \
           \"calendar_over_heap\": {ratio:.3}\n  \
         }},\n  \
         \"index_build\": {{\n    \
           \"records\": {records},\n    \
           \"parallel_records_per_sec\": {par_rps:.0},\n    \
           \"sequential_records_per_sec\": {seq_rps:.0},\n    \
           \"auto_records_per_sec\": {auto_rps:.0},\n    \
           \"auto_selected\": \"{auto_picks}\",\n    \
           \"parallel_min_records\": {par_min}\n  \
         }},\n  \
         \"lane_sharding\": {{\n    \
           \"scale\": {scale},\n    \
           \"coupled_calendar_secs\": {dist_cal_secs:.3},\n    \
           \"sweep\": [\n{sweep_json}\n    ]\n  \
         }},\n  \
         \"run_cache\": {{\n    \
           \"store_secs\": {store_secs:.4},\n    \
           \"warm_load_secs\": {load_secs:.4},\n    \
           \"simulate_secs\": {dist_cal_secs:.3},\n    \
           \"warm_speedup\": {warm_speedup:.1}\n  \
         }},\n  \
         \"scaled_run\": {{\n    \
           \"scale\": {scale},\n    \
           \"distributed_sim_heap_secs\": {dist_heap_secs:.3},\n    \
           \"distributed_sim_calendar_secs\": {dist_cal_secs:.3},\n    \
           \"all_pipeline_secs\": {all_secs:.3}\n  \
         }}\n}}\n",
        host = host_json(),
        rayon_threads = rayon::current_num_threads(),
        ratio = cal_eps / heap_eps,
        records = dist.records.len(),
        par_min = edonkey_analysis::index::PAR_BUILD_MIN_RECORDS,
        warm_speedup = dist_cal_secs / load_secs.max(1e-9),
    );

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("BENCH_pr2.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[bench] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[bench] could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    print!("{json}");

    // The control-plane sweep gets its own file: these numbers track the
    // live platform's transport, not the simulation pipeline.
    let mut control_json = String::new();
    for (i, p) in control.iter().enumerate() {
        if i > 0 {
            control_json.push_str(",\n");
        }
        control_json.push_str(&format!(
            "    {{ \"agents\": {}, \"chunk_upload_mb_per_sec\": {:.2}, \
             \"chunk_bytes\": {}, \"chunks\": {}, \
             \"heartbeat_roundtrips_per_sec\": {:.0}, \"heartbeats\": {} }}",
            p.agents,
            p.upload_mb_per_sec,
            p.chunk_bytes,
            p.chunks,
            p.heartbeats_per_sec,
            p.heartbeats,
        ));
    }
    let pr3 = format!(
        "{{\n  \
         \"generated_by\": \"cargo run --release -p edonkey-bench --bin perf_baseline -- --scale {scale}\",\n  \
         \"note\": \"raw control-plane clients against a real manager daemon over loopback TCP; stop-and-wait sequenced uploads and heartbeat round-trips, per-point wall-clock is the slowest agent; when single_core_container is true all agent threads timeshare one core\",\n  \
         {host},\n  \
         \"queue\": \"none (loopback control plane, no simulation event queue)\",\n  \
         \"control_plane_sweep\": [\n{control_json}\n  ]\n}}\n",
        host = host_json(),
    );
    let path3 = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("BENCH_pr3.json");
    match std::fs::write(&path3, &pr3) {
        Ok(()) => eprintln!("[bench] wrote {}", path3.display()),
        Err(e) => {
            eprintln!("[bench] could not write {}: {e}", path3.display());
            std::process::exit(1);
        }
    }
    print!("{pr3}");

    // Durability numbers (PR 4): the spooled sweep against the in-memory
    // one, plus the primitive micro-costs.
    let mut durable_json = String::new();
    for (i, (mem, dur)) in control.iter().zip(&durable).enumerate() {
        if i > 0 {
            durable_json.push_str(",\n");
        }
        durable_json.push_str(&format!(
            "    {{ \"agents\": {}, \"in_memory_mb_per_sec\": {:.2}, \
             \"durable_mb_per_sec\": {:.2}, \"overhead_pct\": {:.1}, \
             \"chunks\": {} }}",
            dur.agents,
            mem.upload_mb_per_sec,
            dur.upload_mb_per_sec,
            (mem.upload_mb_per_sec / dur.upload_mb_per_sec.max(1e-9) - 1.0) * 100.0,
            dur.chunks,
        ));
    }
    let pr4 = format!(
        "{{\n  \
         \"generated_by\": \"cargo run --release -p edonkey-bench --bin perf_baseline -- --scale {scale}\",\n  \
         \"note\": \"crash-safe write path vs in-memory: durable points append every chunk to an on-disk spool before sending (trim on ack) while the daemon WAL-appends before every ack and checkpoints supervision state; micro section isolates the primitives; when single_core_container is true all agent threads timeshare one core\",\n  \
         {host},\n  \
         \"queue\": \"none (loopback control plane, no simulation event queue)\",\n  \
         \"upload_throughput\": [\n{durable_json}\n  ],\n  \
         \"spool\": {{\n    \
           \"append_mb_per_sec\": {append:.2},\n    \
           \"recovery_scan_secs\": {scan:.4},\n    \
           \"records\": {srecords}\n  \
         }},\n  \
         \"checkpoint\": {{\n    \
           \"slots\": {slots},\n    \
           \"save_micros\": {save:.1},\n    \
           \"load_micros\": {load:.1}\n  \
         }}\n}}\n",
        host = host_json(),
        append = micro.spool_append_mb_per_sec,
        scan = micro.spool_scan_secs,
        srecords = micro.spool_records,
        slots = micro.ckpt_slots,
        save = micro.ckpt_save_micros,
        load = micro.ckpt_load_micros,
    );
    let path4 = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("BENCH_pr4.json");
    match std::fs::write(&path4, &pr4) {
        Ok(()) => eprintln!("[bench] wrote {}", path4.display()),
        Err(e) => {
            eprintln!("[bench] could not write {}: {e}", path4.display());
            std::process::exit(1);
        }
    }
    print!("{pr4}");
}

/// The PR 6 benchmark: the agents × window windowed-upload sweep, the
/// 1,000-agent exactly-once/replay gate, and the `BENCH_pr6.json` write.
fn run_pr6(scale: f64) {
    // Windowed, pipelined upload against the reactor daemon — agent count
    // × window size.  Window 1 is the stop-and-wait reference on the same
    // event-loop transport, so each row isolates what pipelining buys at
    // that agent count.  Chunk payloads shrink as agent counts grow to
    // keep the sweep's wall-clock sane; MB/s normalises across rows.
    let mut windowed: Vec<WindowedPoint> = Vec::new();
    for &n in &[1usize, 4, 16, 64, 256] {
        let (records, chunks) = if n <= 64 { (2_000, 24) } else { (500, 12) };
        for &w in &[1u32, 8, 32] {
            let p = windowed_control_point(n, w, records, chunks, false);
            eprintln!(
                "[bench] windowed control plane @ {n} agent(s), window {w}: \
                 {:.1} MB/s chunk upload (daemon window peak {})",
                p.upload_mb_per_sec, p.window_peak
            );
            windowed.push(p);
        }
    }

    // The scale gate: 1,000 windowed agents against one daemon, every
    // upload journaled pre-transport; the merged measurement must replay
    // bit-identical with zero double merges.
    let gate = windowed_control_point(1_000, 32, 200, 8, true);
    eprintln!(
        "[bench] 1000-agent gate: {:.1} MB/s, {} chunks merged exactly once, replay identical",
        gate.upload_mb_per_sec, gate.chunks
    );

    let mut windowed_json = String::new();
    for (i, p) in windowed.iter().enumerate() {
        if i > 0 {
            windowed_json.push_str(",\n");
        }
        windowed_json.push_str(&format!(
            "    {{ \"agents\": {}, \"window\": {}, \"chunk_upload_mb_per_sec\": {:.2}, \
             \"chunk_bytes\": {}, \"chunks\": {}, \"records_per_chunk\": {}, \
             \"daemon_window_peak\": {}, \"merge_queue_peak\": {} }}",
            p.agents,
            p.window,
            p.upload_mb_per_sec,
            p.chunk_bytes,
            p.chunks,
            p.records_per_chunk,
            p.window_peak,
            p.merge_queue_peak,
        ));
    }
    let pr6 = format!(
        "{{\n  \
         \"generated_by\": \"cargo run --release -p edonkey-bench --bin perf_baseline -- --scale {scale}\",\n  \
         \"note\": \"windowed pipelined uploads against the reactor daemon over loopback TCP; window 1 is stop-and-wait on the same transport, per-point wall-clock is the slowest agent; the gate journals every upload pre-transport and asserts bit-identical replay with zero double merges; when single_core_container is true all agent threads timeshare one core\",\n  \
         {host},\n  \
         \"queue\": \"none (loopback control plane, no simulation event queue)\",\n  \
         \"windowed_sweep\": [\n{windowed_json}\n  ],\n  \
         \"thousand_agent_gate\": {{\n    \
           \"agents\": {gagents},\n    \
           \"window\": {gwindow},\n    \
           \"chunk_upload_mb_per_sec\": {gmb:.2},\n    \
           \"chunks\": {gchunks},\n    \
           \"records_per_chunk\": {grecords},\n    \
           \"daemon_window_peak\": {gpeak},\n    \
           \"double_merge_violations\": 0,\n    \
           \"replay_identical\": true\n  \
         }}\n}}\n",
        host = host_json(),
        gagents = gate.agents,
        gwindow = gate.window,
        gmb = gate.upload_mb_per_sec,
        gchunks = gate.chunks,
        grecords = gate.records_per_chunk,
        gpeak = gate.window_peak,
    );
    let path6 = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("BENCH_pr6.json");
    match std::fs::write(&path6, &pr6) {
        Ok(()) => eprintln!("[bench] wrote {}", path6.display()),
        Err(e) => {
            eprintln!("[bench] could not write {}: {e}", path6.display());
            std::process::exit(1);
        }
    }
    print!("{pr6}");
}
