//! Scenario configuration: every behavioural knob of the simulated eDonkey
//! world, with defaults calibrated against the paper's published curves.
//!
//! The measurement platform itself (crate `honeypot`) has no tunables beyond
//! its strategies; everything here parameterises the *synthetic network* the
//! platform is immersed in.  `edonkey-experiments` ships two calibrated
//! instances (the *distributed* and *greedy* scenarios); the ablation
//! benches perturb individual knobs.

use honeypot::strategy::ContentStrategy;
use netsim::time::{MS_PER_HOUR, MS_PER_MIN, MS_PER_SEC};
use netsim::{DiurnalCurve, SimTime};
use serde::{Deserialize, Serialize};

use crate::catalog::CatalogConfig;

/// How one honeypot is set up within a scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HoneypotSetup {
    pub content: ContentStrategy,
    /// Catalog indices of the fixed advertised files, or `None` for greedy.
    pub fixed_files: Option<Vec<u32>>,
    /// Greedy parameters (used when `fixed_files` is `None`).
    pub greedy_seeds: Vec<u32>,
    pub greedy_adopt_until: SimTime,
    pub greedy_max_files: usize,
    /// Relative attractiveness weight: how likely peers are to include this
    /// honeypot in their provider subset (heterogeneity behind the min/max
    /// spread at n = 1 in Fig. 10).
    pub attractiveness: f64,
}

impl HoneypotSetup {
    /// A fixed-list honeypot.
    pub fn fixed(content: ContentStrategy, files: Vec<u32>, attractiveness: f64) -> Self {
        HoneypotSetup {
            content,
            fixed_files: Some(files),
            greedy_seeds: Vec::new(),
            greedy_adopt_until: SimTime::ZERO,
            greedy_max_files: 0,
            attractiveness,
        }
    }

    /// A greedy honeypot.
    pub fn greedy(seeds: Vec<u32>, adopt_until: SimTime, max_files: usize) -> Self {
        HoneypotSetup {
            content: ContentStrategy::NoContent,
            fixed_files: None,
            greedy_seeds: seeds,
            greedy_adopt_until: adopt_until,
            greedy_max_files: max_files,
            attractiveness: 1.0,
        }
    }
}

/// Peer arrival process.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Expected new interested peers per day *per unit of advertised
    /// popularity mass* (see `Catalog::popularity_sum`).  The instantaneous
    /// arrival rate is `rate_per_popularity × popularity_sum(advertised) ×
    /// diurnal(t) × decay(day)`.
    pub rate_per_popularity: f64,
    /// Daily multiplicative decay of interest in the advertised files
    /// (Fig. 2: new-peers-per-day shrinks over a month as popularity
    /// fades).  1.0 = no decay.
    pub daily_decay: f64,
    /// Day/night modulation (Fig. 4).
    pub diurnal: DiurnalCurve,
    /// Offset between simulation hour 0 and the dominant user population's
    /// local clock.
    pub local_offset_hours: f64,
    /// Mean number of advertised files a peer wants (≥ 1; geometric).
    pub wanted_files_mean: f64,
    /// Probability a peer exposes its shared-file list when asked (the
    /// feature "can be disabled by the user", paper §III-B).
    pub share_list_prob: f64,
    /// Mean length of a peer's shared list (geometric, ≥ 1).
    pub shared_list_mean: f64,
    /// Width of the arrival batching tick.
    pub arrival_tick_ms: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            rate_per_popularity: 1_000.0,
            daily_decay: 0.979,
            diurnal: DiurnalCurve::european(),
            local_offset_hours: 0.0,
            wanted_files_mean: 1.3,
            share_list_prob: 0.35,
            shared_list_mean: 12.0,
            arrival_tick_ms: 5 * MS_PER_MIN,
        }
    }
}

/// Download behaviour of genuine peers.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BehaviorConfig {
    /// Probability a session stops after HELLO (alive-probe / PEX-style
    /// contacts) — the gap between Fig. 5 and Fig. 6 magnitudes.
    pub hello_only_prob: f64,
    /// Mean size of the provider subset a normal peer contacts (geometric,
    /// ≥ 1, capped at the provider count).
    pub subset_mean: f64,
    /// Probability a peer is a "contact everything" client (robots aside):
    /// its subset is all providers.
    pub subset_all_prob: f64,
    /// Mean request timeout against silent sources, ms (paces no-content
    /// sessions; Fig. 9's smooth curve).
    pub nc_timeout_ms: u64,
    /// Consecutive unanswered REQUEST-PARTs before the peer considers the
    /// source dead.
    pub nc_timeouts_to_fail: u32,
    /// Probability that a dead-source experience becomes a *detection*
    /// (client-level blacklist + community exposure).
    pub nc_detect_prob: f64,
    /// Mean per-REQUEST-PARTS service time of a random-content honeypot,
    /// ms (three 180 KB blocks at ADSL rates).
    pub rc_transfer_ms: u64,
    /// Mean number of REQUEST-PARTS a peer issues per random-content
    /// session before losing patience (geometric).
    pub rc_budget_mean: f64,
    /// Probability a random-content session ends in detection (the peer
    /// completed a part and the MD4 check failed).  Lower than
    /// `nc_detect_prob`: corrupt content takes longer to expose than
    /// silence (paper §IV-B).
    pub rc_detect_prob: f64,
    /// Cumulative hard failures after which a peer abandons the file
    /// entirely.
    pub abandon_failures: u32,
    /// Mean pause between retry rounds, ms (eDonkey clients re-poll
    /// sources periodically).
    pub retry_interval_ms: u64,
    /// Mean of the exponential peer interest lifetime, ms.
    pub interest_mean_ms: u64,
    /// Probability a retry-round session proceeds past START-UPLOAD into
    /// part requests (later rounds are mostly source re-polls).
    pub retry_request_prob: f64,
    /// Gap between consecutive provider contacts within a round, ms.
    pub contact_gap_ms: u64,
}

impl Default for BehaviorConfig {
    fn default() -> Self {
        BehaviorConfig {
            hello_only_prob: 0.30,
            subset_mean: 3.2,
            subset_all_prob: 0.10,
            nc_timeout_ms: 45 * MS_PER_SEC,
            nc_timeouts_to_fail: 2,
            nc_detect_prob: 0.85,
            rc_transfer_ms: 9 * MS_PER_SEC,
            rc_budget_mean: 3.0,
            rc_detect_prob: 0.30,
            abandon_failures: 6,
            retry_interval_ms: 75 * MS_PER_MIN,
            interest_mean_ms: 30 * MS_PER_HOUR,
            retry_request_prob: 0.35,
            contact_gap_ms: 2 * MS_PER_SEC,
        }
    }
}

/// Community-level blacklisting (the paper's §IV-B hypothesis: honeypots do
/// get noticed, and faster when they send nothing).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BlacklistConfig {
    /// Asymptotic skip probability: the community never blacklists a
    /// honeypot completely (new users keep arriving), so the skip
    /// saturates at this value.
    pub skip_cap: f64,
    /// Detections at which the skip reaches half its cap
    /// (`skip = cap · d / (d + halfway)`).  Honeypots detected more often
    /// — the no-content ones, whose silence is quick and unambiguous —
    /// climb this curve faster, which is what separates the two groups'
    /// distinct-peer counts in Figs. 5–6.
    pub halfway_detections: f64,
    /// Preference for sources that actually deliver data: a honeypot's
    /// selection weight is multiplied by `1 + bonus × delivery_ratio`.
    /// Sources that answer get re-shared through peer exchange and stay in
    /// client source caches; silent ones quietly age out — the paper's
    /// "implicit blacklisting at client level" acting from day one.
    pub source_quality_bonus: f64,
}

impl Default for BlacklistConfig {
    fn default() -> Self {
        BlacklistConfig { skip_cap: 0.5, halfway_detections: 40_000.0, source_quality_bonus: 0.35 }
    }
}

/// Heavy-tail automated clients (the paper's "top peer" in Figs. 8–9 sends
/// queries back-to-back for a month, with occasional silent periods).
///
/// A robot runs one *independent* query chain per honeypot: finish a
/// session, wait out the lockout, start the next.  Sessions against silent
/// sources last `nc_timeout_ms × budget` instead of the transfer time, so
/// no-content honeypots accumulate fewer queries per day from the same
/// peer — the pacing difference of Figs. 8–9.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RobotConfig {
    /// Number of robot peers (0 disables the feature).
    pub count: usize,
    /// REQUEST-PARTS per session.
    pub budget: u32,
    /// How long a robot waits on an unanswered part request (automated
    /// clients are patient).
    pub nc_timeout_ms: u64,
    /// Pause between consecutive sessions against the same source.
    pub lockout_ms: u64,
    /// Probability that a finished session sends the whole robot into an
    /// off period (the plateaus of Figs. 8–9).
    pub off_prob: f64,
    /// Off-period duration, ms.
    pub off_duration_ms: u64,
}

impl Default for RobotConfig {
    fn default() -> Self {
        RobotConfig {
            count: 4,
            budget: 2,
            nc_timeout_ms: 12 * MS_PER_MIN,
            lockout_ms: 100 * MS_PER_MIN,
            off_prob: 0.000_4,
            off_duration_ms: 36 * MS_PER_HOUR,
        }
    }
}

/// Server-side capture: the "ten weeks in the life of an eDonkey server"
/// modality.  When set, the simulated index server logs every query it
/// handles (login, offer-files, search, get-sources, disconnect, plus
/// periodic status snapshots) through the streaming compressed
/// `honeypot::serverlog` writer.
///
/// Only behavioural knobs live here — the capture *directory* is a
/// property of the machine running the scenario, not of the scenario
/// itself, so it stays out of the config (and out of the run-cache
/// content address) and is supplied to `run_scenario_with_capture`
/// directly.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ServerCaptureConfig {
    /// Records per compressed frame (the writer's only in-memory buffer;
    /// bounds capture RSS).
    pub frame_records: usize,
    /// Records per segment file before rotation.
    pub segment_records: u64,
    /// Period of server STATUS self-snapshots, ms (the users/files curve
    /// of the server-side paper).
    pub status_interval_ms: u64,
}

impl Default for ServerCaptureConfig {
    fn default() -> Self {
        ServerCaptureConfig {
            frame_records: 4_096,
            segment_records: 1_000_000,
            status_interval_ms: 30 * MS_PER_MIN,
        }
    }
}

/// Failure injection: honeypot crashes that the manager must notice and
/// repair (exercises the relaunch path end-to-end).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CrashConfig {
    /// Mean time between crashes per honeypot, ms (exponential).
    pub mtbf_ms: u64,
}

/// Which pending-event queue drives the engine.
///
/// All three queues are observably identical (`determinism.rs` in this
/// crate's tests asserts byte-identical measurement logs), so this is
/// purely a performance knob: the calendar queue wins on the simulator's
/// tightly-clustered retry/keepalive traffic, the timing wheel wins on
/// million-peer populations where pending-event counts make per-operation
/// `log n` visible, and the heap is the safe general-purpose default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueKind {
    /// Binary heap ([`netsim::EventQueue`]).
    #[default]
    Heap,
    /// Bucketed calendar queue ([`netsim::CalendarQueue`]), sized for one
    /// day of one-minute buckets.
    Calendar,
    /// Hierarchical timing wheel ([`netsim::TimingWheel`]), amortised
    /// O(1) push/pop with a per-event scheduling horizon.
    Wheel,
}

/// How the scenario is executed.
///
/// Like [`QueueKind`], this is a performance knob with a determinism
/// contract: a sharded run is bit-identical to its lane-ordered sequential
/// reference (`lanes.rs` tests pin this), though *not* to the coupled
/// execution — lanes draw from split RNG streams, so the two modes are two
/// different (equally valid) samples of the same scenario distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// One world, one event loop — the classic execution.
    #[default]
    Coupled,
    /// Per-honeypot lanes run on a rayon pool, merged deterministically by
    /// `(SimTime, lane, seq)` (see [`crate::lanes`]).
    Sharded,
}

/// The full scenario.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Master seed; every random choice derives from it.
    pub seed: u64,
    /// Measurement horizon.
    pub duration: SimTime,
    pub catalog: CatalogConfig,
    pub honeypots: Vec<HoneypotSetup>,
    pub population: PopulationConfig,
    pub behavior: BehaviorConfig,
    pub blacklist: BlacklistConfig,
    pub robots: RobotConfig,
    pub crashes: Option<CrashConfig>,
    /// Server-side query capture (`None` = the classic honeypot-only
    /// measurement; `Some` additionally records the server's view through
    /// `honeypot::serverlog` — observation only, the honeypot log is
    /// bit-identical either way).
    pub server_capture: Option<ServerCaptureConfig>,
    /// Manager status-check period.
    pub manager_check_ms: u64,
    /// Log-collection period.
    pub collect_ms: u64,
    /// OFFER-FILES keep-alive period.
    pub keepalive_ms: u64,
    /// Word-frequency threshold of the file-name anonymiser.
    pub name_threshold: u32,
    /// Engine queue selection (performance only; results are identical).
    pub queue: QueueKind,
    /// Execution mode (coupled vs lane-sharded).
    pub exec: ExecMode,
    /// Lane number when this configuration *is* one lane of a sharded run:
    /// 0 means "not a lane" (the default); lane `n ≥ 1` re-roots the
    /// world's behavioural RNG at `netsim::rng::stream_seed(seed, n)` and
    /// mints peer identities from the lane's disjoint serial slice.
    /// Scenario authors never set this — `crate::lanes` does.
    pub lane: u32,
}

impl ScenarioConfig {
    /// A minimal scenario around a single no-content honeypot advertising
    /// catalog file 0 — the base for unit tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            duration: SimTime::from_days(2),
            catalog: CatalogConfig { n_files: 200, ..Default::default() },
            honeypots: vec![HoneypotSetup::fixed(ContentStrategy::NoContent, vec![0], 1.0)],
            population: PopulationConfig { rate_per_popularity: 2_000.0, ..Default::default() },
            behavior: BehaviorConfig::default(),
            blacklist: BlacklistConfig::default(),
            robots: RobotConfig { count: 1, ..Default::default() },
            crashes: None,
            server_capture: None,
            manager_check_ms: 10 * MS_PER_MIN,
            collect_ms: 6 * MS_PER_HOUR,
            keepalive_ms: 30 * MS_PER_MIN,
            name_threshold: 3,
            queue: QueueKind::default(),
            exec: ExecMode::default(),
            lane: 0,
        }
    }

    /// Scales peer volume by `factor` (shape-preserving quick runs: the
    /// curves keep their form, magnitudes shrink).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.population.rate_per_popularity *= factor;
        self
    }

    /// Generates the exact catalog the world will build for this
    /// configuration (same seed derivation), so scenario builders can pick
    /// concrete files and normalise arrival rates before the run.
    pub fn build_catalog(&self) -> crate::catalog::Catalog {
        let mut root = netsim::Rng::seed_from(self.seed);
        let mut rng = root.substream("catalog");
        crate::catalog::Catalog::generate(&self.catalog, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = PopulationConfig::default();
        assert!(p.rate_per_popularity > 0.0);
        assert!(p.daily_decay > 0.0 && p.daily_decay <= 1.0);
        assert!(p.share_list_prob >= 0.0 && p.share_list_prob <= 1.0);
        let b = BehaviorConfig::default();
        assert!(b.nc_timeout_ms > b.rc_transfer_ms, "silence must pace slower than transfer");
        assert!(b.nc_detect_prob > b.rc_detect_prob, "silence is detected more reliably");
        assert!(b.hello_only_prob < 1.0);
    }

    #[test]
    fn tiny_scenario_constructs() {
        let s = ScenarioConfig::tiny(7);
        assert_eq!(s.honeypots.len(), 1);
        assert!(s.duration > SimTime::ZERO);
    }

    #[test]
    fn scaling_multiplies_rate() {
        let base = ScenarioConfig::tiny(7);
        let rate = base.population.rate_per_popularity;
        let scaled = base.scaled(0.25);
        assert!((scaled.population.rate_per_popularity - rate * 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = ScenarioConfig::tiny(7).scaled(0.0);
    }

    #[test]
    fn honeypot_setup_constructors() {
        let f = HoneypotSetup::fixed(ContentStrategy::RandomContent, vec![1, 2], 1.3);
        assert_eq!(f.fixed_files.as_deref(), Some(&[1, 2][..]));
        let g = HoneypotSetup::greedy(vec![0], SimTime::from_days(1), 5_000);
        assert!(g.fixed_files.is_none());
        assert_eq!(g.greedy_max_files, 5_000);
    }
}
