//! The simulated eDonkey world: honeypots, manager, index server and a
//! synthetic peer population, driven by the `netsim` discrete-event engine.
//!
//! Design notes:
//!
//! * Only traffic that touches the measurement infrastructure is simulated;
//!   peers that would never contact a honeypot are never allocated.
//! * Honeypot ↔ peer exchanges use the *typed protocol messages* of
//!   `edonkey-proto`, handled by the *actual* [`honeypot::Honeypot`] state
//!   machine — the simulation exercises the same code as the TCP substrate.
//! * A request/response pair is one event: the honeypot's reply is computed
//!   inline and the peer's next move is scheduled after the appropriate
//!   pacing delay (timeout for silence, transfer time for data) — this is
//!   what makes month-scale measurements with ~10⁷ messages tractable.

use edonkey_proto::parts::BLOCK_SIZE;
use edonkey_proto::tags::{special, Tag};
use edonkey_proto::{FileId, PartRange, PeerAddr, PeerMessage, PublishedFile, SearchExpr};
use honeypot::serverlog::{ServerLogStats, SERVER_PEER_SESSION_BASE};
use honeypot::{
    Action, AdvertisedFile, ConnId, ContentStrategy, FileStrategy, Honeypot, HoneypotConfig,
    HoneypotId, HoneypotSpec, IpHasher, Manager, MeasurementLog, ServerInfo,
};
use netsim::dist::{exponential, poisson};
use netsim::engine::{Scheduler, World};
use netsim::time::MS_PER_DAY;
use netsim::{CalendarQueue, Engine, EventQueue, PendingQueue, Rng, SimTime, TimingWheel};
use std::collections::HashMap;

use crate::capture::ServerCapture;
use crate::catalog::Catalog;
use crate::config::{QueueKind, ScenarioConfig};
use crate::identity::IdentityFactory;
use crate::peer::{NewPeer, PeerTable, Session, SessionOutcome, SessionState, MAX_HONEYPOTS};
use crate::server::SimServer;

/// Events of the eDonkey world.
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// Spawn the next batch of peer arrivals.
    ArrivalTick,
    /// Advance one peer's session state machine.
    SessionStep { peer: u32 },
    /// Begin a peer's next retry round.
    RoundStart { peer: u32 },
    /// Manager's periodic status check (relaunches dead honeypots).
    ManagerCheck,
    /// Manager's periodic log collection.
    CollectLogs,
    /// Honeypots re-offer their shared lists.
    Keepalive,
    /// Failure injection: kill one honeypot.
    Crash { hp: u8 },
    /// One step of a robot's independent per-honeypot query chain.
    RobotStep { peer: u32, hp: u8, phase: RobotPhase, remaining: u8, conn: u64 },
    /// A robot goes dark for a while (the plateaus of Figs. 8–9).
    RobotOff { peer: u32, duration_ms: u64 },
    /// Periodic SERVER-STATUS self-snapshot, scheduled only when a server
    /// capture is attached (the users/files curve of the server-side
    /// measurement).  Draws no randomness, so attaching a capture leaves
    /// the honeypot measurement bit-identical.
    StatusSample,
}

/// Phase of a robot session (paper Fig. 1 flow, automated client).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RobotPhase {
    Greet,
    Upload,
    Request,
}

/// Aggregate counters for diagnostics and calibration.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorldStats {
    pub arrivals: u64,
    pub skipped_invisible: u64,
    pub sessions: u64,
    pub hello_sent: u64,
    pub start_upload_sent: u64,
    pub request_parts_sent: u64,
    pub detections_nc: u64,
    pub detections_rc: u64,
    pub dead_contacts: u64,
    pub crashes: u64,
}

impl WorldStats {
    /// Adds another world's counters (lane-sharded runs sum their lanes).
    pub fn absorb(&mut self, other: &WorldStats) {
        self.arrivals += other.arrivals;
        self.skipped_invisible += other.skipped_invisible;
        self.sessions += other.sessions;
        self.hello_sent += other.hello_sent;
        self.start_upload_sent += other.start_upload_sent;
        self.request_parts_sent += other.request_parts_sent;
        self.detections_nc += other.detections_nc;
        self.detections_rc += other.detections_rc;
        self.dead_contacts += other.dead_contacts;
        self.crashes += other.crashes;
    }
}

/// The world state machine.
pub struct EdonkeyWorld {
    pub config: ScenarioConfig,
    pub catalog: Catalog,
    server: SimServer,
    honeypots: Vec<Honeypot>,
    hp_attract: Vec<f64>,
    manager: Manager,
    identities: IdentityFactory,
    /// The peer population, struct-of-arrays (see [`crate::peer`]).
    peers: PeerTable,
    /// Reusable scratch for per-round contact orders and wanted-file
    /// snapshots (the hot loop allocates nothing per event).
    scratch_order: Vec<u8>,
    scratch_wanted: Vec<u32>,
    /// Community-blacklist exposure per honeypot (detections so far).
    exposure: Vec<u32>,
    /// Per-honeypot sessions that reached part requests / that delivered
    /// any data (drives the source-quality selection bonus).
    hp_request_sessions: Vec<u64>,
    hp_delivered_sessions: Vec<u64>,
    /// FileId → catalog index for the whole catalog.
    id_index: HashMap<FileId, u32>,
    /// Advertised catalog indices (deduplicated, insertion-ordered).
    advert_list: Vec<u32>,
    advert_set: std::collections::HashSet<u32>,
    /// Cumulative popularity over `advert_list` (rebuilt when dirty).
    advert_cum: Vec<f64>,
    advert_dirty: bool,
    rng_arrival: Rng,
    rng_behavior: Rng,
    next_conn: u64,
    /// Per-robot off-period gate (indexed by robot = peer index, robots
    /// are spawned first).
    robot_off_until: Vec<SimTime>,
    pub stats: WorldStats,
}

impl EdonkeyWorld {
    /// Builds the world and seeds the initial events into `engine`.
    pub fn new<Q: PendingQueue<Event>>(
        config: ScenarioConfig,
        engine: &mut Engine<Self, Q>,
    ) -> Self {
        Self::new_with_capture(config, engine, None)
    }

    /// [`Self::new`] with an optional server-side query capture attached.
    /// The capture is pure observation — it draws no randomness and feeds
    /// nothing back into the world, so the honeypot measurement is
    /// bit-identical with or without it (pinned in `tests/capture.rs`).
    pub fn new_with_capture<Q: PendingQueue<Event>>(
        config: ScenarioConfig,
        engine: &mut Engine<Self, Q>,
        capture: Option<ServerCapture>,
    ) -> Self {
        assert!(
            config.honeypots.len() <= MAX_HONEYPOTS,
            "at most {MAX_HONEYPOTS} honeypots supported"
        );
        let mut root = Rng::seed_from(config.seed);
        let mut rng_catalog = root.substream("catalog");
        let catalog = Catalog::generate(&config.catalog, &mut rng_catalog);
        let id_index: HashMap<FileId, u32> =
            (0..catalog.len() as u32).map(|i| (catalog.file(i).id, i)).collect();

        let server_info =
            ServerInfo::new("Big Server One", edonkey_proto::Ipv4::new(195, 200, 1, 1), 4661);
        let mut server = SimServer::new(server_info.clone());
        let ip_hasher = IpHasher::from_seed(root.substream("salt").next_u64());
        if let Some(mut cap) = capture {
            // The capture anonymises with the run's own step-1 salt, so
            // server-side and honeypot-side peer digests coincide.
            cap.set_hasher(ip_hasher.clone());
            server.attach_capture(cap);
        }

        // Lane-sharded runs share the catalog and the step-1 salt with
        // every sibling lane (both derive from the unsalted root above, so
        // the same peer IP hashes identically across lanes), but all
        // *behavioural* randomness — honeypot, identity, arrival and
        // behaviour streams — comes from a lane-specific root: lanes are
        // decorrelated, and each is a pure function of `(seed, lane)`
        // regardless of scheduling.
        if config.lane != 0 {
            root = Rng::seed_from(netsim::rng::stream_seed(config.seed, u64::from(config.lane)));
        }
        // Disjoint per-lane identity serials keep user hashes globally
        // unique across lanes (see `identity::LANE_SERIAL_STRIDE`).
        let identity_base = match config.lane {
            0 => 0,
            n => u64::from(n - 1) * crate::identity::LANE_SERIAL_STRIDE,
        };

        let mut honeypots = Vec::with_capacity(config.honeypots.len());
        let mut hp_attract = Vec::with_capacity(config.honeypots.len());
        let mut specs = Vec::with_capacity(config.honeypots.len());
        for (i, setup) in config.honeypots.iter().enumerate() {
            let id = HoneypotId(i as u32);
            let to_files = |idxs: &[u32]| -> Vec<AdvertisedFile> {
                idxs.iter()
                    .map(|&ci| {
                        let f = catalog.file(ci);
                        AdvertisedFile::new(f.id, f.name.clone(), f.size)
                    })
                    .collect()
            };
            let files = match &setup.fixed_files {
                Some(fixed) => FileStrategy::Fixed(to_files(fixed)),
                None => FileStrategy::Greedy {
                    seeds: to_files(&setup.greedy_seeds),
                    adopt_until: setup.greedy_adopt_until,
                    max_files: setup.greedy_max_files,
                },
            };
            let hp_config = HoneypotConfig {
                id,
                content: setup.content,
                files,
                ask_shared_files: true,
                materialize_content: false,
                port: 4662,
                client_name: format!("client-{i}"),
            };
            honeypots.push(Honeypot::new(
                hp_config,
                server_info.clone(),
                ip_hasher.clone(),
                root.substream_indexed("hp", i as u64),
            ));
            hp_attract.push(setup.attractiveness);
            specs.push(HoneypotSpec { id, content: setup.content, server: server_info.clone() });
        }
        let manager = Manager::new(specs);

        let mut world = EdonkeyWorld {
            catalog,
            server,
            honeypots,
            hp_attract,
            manager,
            identities: IdentityFactory::with_base(root.substream("identities"), identity_base),
            peers: PeerTable::new(),
            scratch_order: Vec::new(),
            scratch_wanted: Vec::new(),
            exposure: vec![0; config.honeypots.len()],
            hp_request_sessions: vec![0; config.honeypots.len()],
            hp_delivered_sessions: vec![0; config.honeypots.len()],
            id_index,
            advert_list: Vec::new(),
            advert_set: std::collections::HashSet::new(),
            advert_cum: Vec::new(),
            advert_dirty: true,
            rng_arrival: root.substream("arrival"),
            rng_behavior: root.substream("behavior"),
            next_conn: 0,
            robot_off_until: Vec::new(),
            stats: WorldStats::default(),
            config,
        };

        world.launch_all(SimTime::ZERO);
        world.spawn_robots();
        world.robot_off_until = vec![SimTime::ZERO; world.peers.len()];
        // Robots run one independent query chain per honeypot, staggered
        // so they do not lock-step.  Each robot also takes two scheduled
        // multi-day off periods (client restarts / maintenance) — the
        // plateaus the paper observes in its top peer's curves.
        for robot in 0..world.peers.len() as u32 {
            for hp in 0..world.honeypots.len() as u8 {
                engine.schedule(
                    SimTime::from_mins(10 + 3 * u64::from(robot) + 7 * u64::from(hp)),
                    Event::RobotStep {
                        peer: robot,
                        hp,
                        phase: RobotPhase::Greet,
                        remaining: 0,
                        conn: 0,
                    },
                );
            }
            let off = world.config.robots.off_duration_ms;
            if off > 0 {
                for (i, start_day_x10) in [70u64, 200].iter().enumerate() {
                    engine.schedule(
                        SimTime::from_hours(
                            (start_day_x10 * 24) / 10 + 13 * u64::from(robot) + i as u64,
                        ),
                        Event::RobotOff { peer: robot, duration_ms: off },
                    );
                }
            }
        }

        // The honeypots need a few minutes of server-side indexing and
        // source propagation before the first genuine peer finds them
        // (the paper waited ten minutes for its first query).
        engine.schedule(SimTime::from_mins(6), Event::ArrivalTick);
        engine.schedule(SimTime::from_millis(world.config.manager_check_ms), Event::ManagerCheck);
        engine.schedule(SimTime::from_millis(world.config.collect_ms), Event::CollectLogs);
        engine.schedule(SimTime::from_millis(world.config.keepalive_ms), Event::Keepalive);
        if world.server.capture_enabled() {
            engine.schedule(SimTime::from_millis(world.status_interval_ms()), Event::StatusSample);
        }
        if let Some(crash) = world.config.crashes {
            for hp in 0..world.honeypots.len() as u8 {
                let delay = exponential(&mut world.rng_behavior, 1.0 / crash.mtbf_ms as f64);
                engine.schedule(SimTime::from_millis(delay as u64), Event::Crash { hp });
            }
        }
        world
    }

    /// Connects (or reconnects) every honeypot needing it, inline: the
    /// latency of login handshakes is irrelevant at measurement scale.
    fn launch_all(&mut self, now: SimTime) {
        for id in self.manager.needing_relaunch() {
            self.manager.mark_relaunched(id);
            self.launch_one(now, id.0 as usize);
        }
    }

    fn launch_one(&mut self, now: SimTime, idx: usize) {
        let actions = self.honeypots[idx].connect(now);
        self.route_actions(now, idx, actions);
        // The server answers the login immediately.
        let addr = PeerAddr::new(edonkey_proto::Ipv4::new(138, 96, 1, (idx + 1) as u8), 4662);
        let id_change = self.server.login(now, idx as u64, addr, true);
        let actions = self.honeypots[idx].on_server_message(now, &id_change);
        self.route_actions(now, idx, actions);
    }

    /// The configured STATUS self-snapshot period.
    fn status_interval_ms(&self) -> u64 {
        self.config.server_capture.unwrap_or_default().status_interval_ms.max(1)
    }

    fn spawn_robots(&mut self) {
        self.refresh_advert();
        if self.advert_list.is_empty() {
            return;
        }
        // Robots chase the most popular advertised file and sweep every
        // honeypot.
        let target = *self
            .advert_list
            .iter()
            .max_by(|&&a, &&b| {
                self.catalog
                    .file(a)
                    .popularity
                    .partial_cmp(&self.catalog.file(b).popularity)
                    .expect("finite popularity")
            })
            .expect("non-empty");
        let providers: Vec<u8> = (0..self.honeypots.len() as u8).collect();
        for _ in 0..self.config.robots.count {
            let identity = self.identities.create();
            let idx = self.peers.push(NewPeer {
                identity,
                probe_only: false,
                shares_list: false,
                robot: true,
                shared_files: &[],
                wanted: &[target],
                providers: &providers,
                interest_until: SimTime(u64::MAX),
            });
            // Robots are online from t=0 and stay for the whole capture.
            if self.server.capture_enabled() {
                let addr = PeerAddr::new(identity.ip, identity.port);
                self.server.login(
                    SimTime::ZERO,
                    SERVER_PEER_SESSION_BASE + u64::from(idx),
                    addr,
                    identity.client_id.is_high(),
                );
            }
        }
        self.stats.arrivals += self.config.robots.count as u64;
    }

    /// Applies honeypot actions: server messages are routed to the index
    /// server, status reports to the manager.  Peer replies are handled by
    /// the session logic at the call site.
    fn route_actions(&mut self, now: SimTime, hp_idx: usize, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::SendServer(msg) => match &msg {
                    edonkey_proto::ClientServerMessage::OfferFiles { files } => {
                        for f in files {
                            if let Some(&ci) = self.id_index.get(&f.file_id) {
                                if self.advert_set.insert(ci) {
                                    self.advert_list.push(ci);
                                    self.advert_dirty = true;
                                }
                            }
                        }
                        self.server.offer_files(now, hp_idx as u64, &msg);
                    }
                    edonkey_proto::ClientServerMessage::LoginRequest { .. } => {
                        // Login round-trips are handled inline in
                        // `launch_one`.
                    }
                    _ => {}
                },
                Action::Report(report) => self.manager.on_status(report),
                Action::Reply(_) => {
                    debug_assert!(false, "peer replies must be consumed by session logic");
                }
            }
        }
    }

    fn refresh_advert(&mut self) {
        if !self.advert_dirty {
            return;
        }
        self.advert_cum.clear();
        let mut acc = 0.0;
        for &ci in &self.advert_list {
            acc += self.catalog.file(ci).popularity;
            self.advert_cum.push(acc);
        }
        self.advert_dirty = false;
    }

    /// Popularity-weighted draw over the advertised set.
    fn sample_advertised(&mut self, rng_draw: f64) -> Option<u32> {
        self.refresh_advert();
        let total = *self.advert_cum.last()?;
        let x = rng_draw * total;
        let idx = self.advert_cum.partition_point(|&c| c <= x).min(self.advert_list.len() - 1);
        Some(self.advert_list[idx])
    }

    /// Instantaneous arrival rate (peers per ms) at `now`.
    fn arrival_rate(&mut self, now: SimTime) -> f64 {
        self.refresh_advert();
        let pop = self.advert_cum.last().copied().unwrap_or(0.0);
        let p = &self.config.population;
        let decay = p.daily_decay.powi(now.day_index() as i32);
        let diurnal = p.diurnal.multiplier(now, p.local_offset_hours);
        p.rate_per_popularity * pop * decay * diurnal / MS_PER_DAY as f64
    }

    /// Community-blacklist skip probability for honeypot `hp`:
    /// a saturating function of its accumulated detections.
    fn skip_prob(&self, hp: usize) -> f64 {
        let d = f64::from(self.exposure[hp]);
        let b = self.config.blacklist;
        if b.skip_cap <= 0.0 {
            return 0.0;
        }
        b.skip_cap * d / (d + b.halfway_detections.max(1.0))
    }

    /// Builds a new peer on arrival and appends it to the population,
    /// returning its index; `None` when the peer would never contact a
    /// honeypot (invisible to the measurement).
    fn build_arrival(&mut self, now: SimTime) -> Option<u32> {
        let behavior = self.config.behavior;
        let population = self.config.population;
        // Wanted files: popularity-weighted over the advertised set.
        let n_wanted = 1 + geometric(&mut self.rng_behavior, population.wanted_files_mean - 1.0);
        let mut wanted = Vec::with_capacity(n_wanted as usize);
        for _ in 0..n_wanted {
            let draw = self.rng_behavior.f64();
            if let Some(ci) = self.sample_advertised(draw) {
                if !wanted.contains(&ci) {
                    wanted.push(ci);
                }
            }
        }
        if wanted.is_empty() {
            return None;
        }
        // Provider candidates: every live provider of any wanted file,
        // minus community-blacklist skips.
        let mut candidates: Vec<u8> = Vec::new();
        for &ci in &wanted {
            let fid = self.catalog.file(ci).id;
            for &session in self.server.provider_sessions(&fid) {
                let hp = session as u8;
                if !candidates.contains(&hp) {
                    candidates.push(hp);
                }
            }
        }
        let skips: Vec<f64> = candidates.iter().map(|&hp| self.skip_prob(hp as usize)).collect();
        let rng = &mut self.rng_behavior;
        let mut i = 0;
        candidates.retain(|_| {
            let keep = !rng.chance(skips[i]);
            i += 1;
            keep
        });
        if candidates.is_empty() {
            self.stats.skipped_invisible += 1;
            return None;
        }
        // Subset selection: all-providers clients vs. small-subset clients,
        // weighted by honeypot attractiveness times the source-quality
        // bonus (delivering sources circulate via peer exchange).
        let providers: Vec<u8> = if self.rng_behavior.chance(behavior.subset_all_prob) {
            candidates
        } else {
            let bonus = self.config.blacklist.source_quality_bonus;
            let weights: Vec<f64> = (0..self.honeypots.len())
                .map(|h| {
                    let ratio = self.hp_delivered_sessions[h] as f64
                        / (self.hp_request_sessions[h] + 1) as f64;
                    self.hp_attract[h] * (1.0 + bonus * ratio)
                })
                .collect();
            let k = (1 + geometric(&mut self.rng_behavior, behavior.subset_mean - 1.0) as usize)
                .min(candidates.len());
            weighted_distinct(&mut self.rng_behavior, &candidates, &weights, k)
        };

        let shares_list = self.rng_behavior.chance(population.share_list_prob);
        // Probe-only clients (PEX crawlers, source checkers) greet sources
        // but never request uploads — a per-client trait, which is why the
        // paper's Fig. 6 (START-UPLOAD peers) tops well below Fig. 5
        // (HELLO peers).
        let probe_only = self.rng_behavior.chance(behavior.hello_only_prob);
        let shared_files = if shares_list {
            let n = 1 + geometric(&mut self.rng_behavior, population.shared_list_mean - 1.0);
            self.catalog.sample_distinct_by_popularity(&mut self.rng_behavior, n as usize)
        } else {
            Vec::new()
        };
        let life_ms =
            exponential(&mut self.rng_behavior, 1.0 / behavior.interest_mean_ms as f64) as u64;

        let idx = self.peers.push(NewPeer {
            identity: self.identities.create(),
            probe_only,
            shares_list,
            robot: false,
            shared_files: &shared_files,
            wanted: &wanted,
            providers: &providers,
            interest_until: now.plus_millis(life_ms.max(60_000)),
        });
        if self.server.capture_enabled() {
            self.capture_arrival(now, idx);
        }
        Some(idx)
    }

    /// Server-side view of a peer arrival: before contacting any source, a
    /// real client logs into its index server, searches for what it wants
    /// and asks for sources — exactly the query mix the server-side paper
    /// records.  Pure observation (no randomness, no feedback into the
    /// honeypot path).
    fn capture_arrival(&mut self, now: SimTime, peer_idx: u32) {
        let identity = *self.peers.identity(peer_idx);
        let session = SERVER_PEER_SESSION_BASE + u64::from(peer_idx);
        let addr = PeerAddr::new(identity.ip, identity.port);
        self.server.login(now, session, addr, identity.client_id.is_high());
        // One SEARCH for the primary wanted file (by its first name word),
        // then GET-SOURCES for every wanted file.
        let primary = self.peers.wanted(peer_idx)[0];
        let word = self
            .catalog
            .file(primary)
            .name
            .split(|c: char| !c.is_alphanumeric())
            .find(|w| !w.is_empty())
            .map(str::to_owned);
        if let Some(word) = word {
            let expr = SearchExpr::keyword(&word);
            self.server.search(now, session, &expr, 50);
        }
        for i in 0..self.peers.wanted(peer_idx).len() {
            let ci = self.peers.wanted(peer_idx)[i];
            let fid = self.catalog.file(ci).id;
            self.server.get_sources(now, session, fid);
        }
        // Sharing clients publish their list; the simulation keeps genuine
        // peers out of the provider index (honeypots are the only sources
        // under measurement), so the offer is recorded without indexing.
        if self.peers.shares_list(peer_idx) && !self.peers.shared_files(peer_idx).is_empty() {
            let n = self.peers.shared_files(peer_idx).len() as u32;
            let first = self.catalog.file(self.peers.shared_files(peer_idx)[0]).id;
            self.server.log_offer_only(now, session, addr, n, first);
        }
    }

    /// Server-side view of a retry round: eDonkey clients re-poll their
    /// server for fresh sources before re-contacting providers.
    fn capture_repoll(&mut self, now: SimTime, peer_idx: u32) {
        let session = SERVER_PEER_SESSION_BASE + u64::from(peer_idx);
        for i in 0..self.peers.wanted(peer_idx).len() {
            let ci = self.peers.wanted(peer_idx)[i];
            let fid = self.catalog.file(ci).id;
            self.server.get_sources(now, session, fid);
        }
    }

    /// Server-side view of a peer leaving the network for good (interest
    /// expired or file abandoned).  Idempotent: the server only records a
    /// DISCONNECT while the session is still registered.
    fn capture_peer_done(&mut self, now: SimTime, peer_idx: u32) {
        if self.server.capture_enabled() {
            self.server.disconnect(now, SERVER_PEER_SESSION_BASE + u64::from(peer_idx));
        }
    }

    /// Starts a retry round: ordered contact list over non-blacklisted
    /// providers.
    fn start_round(&mut self, now: SimTime, peer_idx: u32, sched: &mut Scheduler<'_, Event>) {
        let mut order = std::mem::take(&mut self.scratch_order);
        order.clear();
        let mask_filter = |&hp: &u8| !self.peers.is_blacklisted(peer_idx, hp);
        order.extend(self.peers.providers(peer_idx).iter().copied().filter(mask_filter));
        self.rng_behavior.shuffle(&mut order);
        self.peers.set_order(peer_idx, &order);
        let empty = order.is_empty();
        self.scratch_order = order;
        if empty {
            return;
        }
        if self.peers.rounds(peer_idx) > 0 && self.server.capture_enabled() {
            self.capture_repoll(now, peer_idx);
        }
        self.session_step(peer_idx, sched);
    }

    /// Ends the current session with `outcome` and advances to the next
    /// provider or the next round.
    fn finish_session(
        &mut self,
        now: SimTime,
        peer_idx: u32,
        outcome: SessionOutcome,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let behavior = self.config.behavior;
        let Some(session) = self.peers.take_session(peer_idx) else { return };
        match outcome {
            SessionOutcome::Detected => {
                if !self.peers.robot(peer_idx) {
                    self.peers.blacklist_hp(peer_idx, session.hp);
                    self.peers.bump_failures(peer_idx);
                }
                let strategy = self.honeypots[session.hp as usize].content_strategy();
                self.exposure[session.hp as usize] += 1;
                match strategy {
                    ContentStrategy::NoContent => self.stats.detections_nc += 1,
                    ContentStrategy::RandomContent => self.stats.detections_rc += 1,
                }
            }
            SessionOutcome::NoAnswer => {
                self.stats.dead_contacts += 1;
            }
            SessionOutcome::HelloOnly | SessionOutcome::Inconclusive => {}
        }

        self.peers.bump_pos(peer_idx);
        if (self.peers.pos(peer_idx) as usize) < self.peers.order(peer_idx).len()
            && !self.peers.done(peer_idx, now, behavior.abandon_failures)
        {
            sched.in_ms(behavior.contact_gap_ms, Event::SessionStep { peer: peer_idx });
            return;
        }
        // Round over.
        self.peers.bump_rounds(peer_idx);
        if !self.peers.done(peer_idx, now, behavior.abandon_failures) {
            let delay =
                exponential(&mut self.rng_behavior, 1.0 / behavior.retry_interval_ms as f64) as u64;
            sched.in_ms(delay.max(60_000), Event::RoundStart { peer: peer_idx });
        } else {
            self.capture_peer_done(now, peer_idx);
        }
    }

    /// Advances one peer's session machine by one message exchange.
    fn session_step(&mut self, peer_idx: u32, sched: &mut Scheduler<'_, Event>) {
        let now = sched.now();
        let behavior = self.config.behavior;

        // Open a session with the provider at `pos` if none is in flight.
        if self.peers.session(peer_idx).is_none() {
            if (self.peers.pos(peer_idx) as usize) >= self.peers.order(peer_idx).len() {
                return;
            }
            let hp = self.peers.order(peer_idx)[self.peers.pos(peer_idx) as usize];
            let file = {
                // Sessions ask for one wanted file; robots always use their
                // single target.
                let wanted = self.peers.wanted(peer_idx);
                let i = self.rng_behavior.below(wanted.len() as u64) as usize;
                wanted[i]
            };
            debug_assert!(!self.peers.robot(peer_idx), "robots use their own chain events");
            let hello_only = self.peers.probe_only(peer_idx);
            // First-round sessions always attempt the download (the peer
            // genuinely wants the file); later rounds are mostly re-polls.
            let do_request = self.peers.rounds(peer_idx) == 0
                || self.rng_behavior.chance(behavior.retry_request_prob);
            let budget = (1 + geometric(&mut self.rng_behavior, behavior.rc_budget_mean - 1.0))
                .min(60) as u8;
            let conn = self.next_conn;
            self.next_conn += 1;
            *self.peers.session_mut(peer_idx) = Some(Session {
                hp,
                file,
                state: SessionState::Greet,
                budget,
                timeouts: 0,
                hello_only,
                do_request,
                conn,
                block_cursor: 0,
                delivered: false,
            });
            self.stats.sessions += 1;
        }

        let identity = *self.peers.identity(peer_idx);
        let session = self.peers.session(peer_idx).expect("session just ensured");
        let hp_idx = session.hp as usize;

        match session.state {
            SessionState::Greet => {
                let msg = PeerMessage::Hello {
                    user_id: identity.user_id,
                    client_id: identity.client_id,
                    port: identity.port,
                    tags: vec![
                        Tag::string(special::NAME, identity.name()),
                        Tag::u32(special::VERSION, identity.version),
                    ],
                };
                self.stats.hello_sent += 1;
                let conn = ConnId(session.conn);
                let replies = self.honeypots[hp_idx].on_peer_message(now, conn, identity.ip, &msg);
                let answered = replies
                    .iter()
                    .any(|a| matches!(a, Action::Reply(PeerMessage::HelloAnswer { .. })));
                let asked_shared =
                    replies.iter().any(|a| matches!(a, Action::Reply(PeerMessage::AskSharedFiles)));
                self.route_non_replies(now, hp_idx, replies);
                if !answered {
                    self.finish_session(now, peer_idx, SessionOutcome::NoAnswer, sched);
                    return;
                }
                // Answer the shared-files request once per honeypot.
                if asked_shared
                    && self.peers.shares_list(peer_idx)
                    && !self.peers.shared_sent_to(peer_idx, session.hp)
                {
                    self.peers.mark_shared_sent(peer_idx, session.hp);
                    let files: Vec<PublishedFile> = self
                        .peers
                        .shared_files(peer_idx)
                        .iter()
                        .map(|&ci| {
                            let f = self.catalog.file(ci);
                            PublishedFile::new(f.id, &f.name, f.size)
                        })
                        .collect();
                    let answer = PeerMessage::AskSharedFilesAnswer { files };
                    let replies = self.honeypots[hp_idx].on_peer_message(
                        now,
                        ConnId(session.conn),
                        identity.ip,
                        &answer,
                    );
                    self.route_non_replies(now, hp_idx, replies);
                }
                if session.hello_only {
                    self.finish_session(now, peer_idx, SessionOutcome::HelloOnly, sched);
                    return;
                }
                if let Some(s) = self.peers.session_mut(peer_idx) {
                    s.state = SessionState::Upload;
                }
                sched.in_ms(400, Event::SessionStep { peer: peer_idx });
            }
            SessionState::Upload => {
                // The client declares interest in *every* wanted file this
                // source advertises (real clients ask a multi-file source
                // about each download in progress); the part-request loop
                // then proceeds on the session's primary file.  This is
                // what populates the per-file peer sets of Figs. 11-12.
                let src_ip = identity.ip;
                let mut wanted = std::mem::take(&mut self.scratch_wanted);
                wanted.clear();
                wanted.extend_from_slice(self.peers.wanted(peer_idx));
                let primary = session.file;
                let mut accepted = false;
                for ci in wanted.iter().copied().filter(|&ci| ci != primary).chain([primary]) {
                    if !self.honeypots[hp_idx].advertises(&self.catalog.file(ci).id) {
                        continue;
                    }
                    let msg = PeerMessage::StartUpload { file_id: self.catalog.file(ci).id };
                    self.stats.start_upload_sent += 1;
                    let replies = self.honeypots[hp_idx].on_peer_message(
                        now,
                        ConnId(session.conn),
                        src_ip,
                        &msg,
                    );
                    accepted = replies
                        .iter()
                        .any(|a| matches!(a, Action::Reply(PeerMessage::AcceptUpload)));
                    self.route_non_replies(now, hp_idx, replies);
                }
                self.scratch_wanted = wanted;
                if !accepted {
                    self.finish_session(now, peer_idx, SessionOutcome::NoAnswer, sched);
                    return;
                }
                if !session.do_request {
                    self.finish_session(now, peer_idx, SessionOutcome::Inconclusive, sched);
                    return;
                }
                if let Some(s) = self.peers.session_mut(peer_idx) {
                    s.state = SessionState::Request;
                }
                sched.in_ms(400, Event::SessionStep { peer: peer_idx });
            }
            SessionState::Request => {
                let file = self.catalog.file(session.file);
                let size = file.size.min(u64::from(u32::MAX - 1));
                let msg = PeerMessage::RequestParts {
                    file_id: file.id,
                    ranges: block_triple(size, session.block_cursor),
                };
                self.stats.request_parts_sent += 1;
                let replies = self.honeypots[hp_idx].on_peer_message(
                    now,
                    ConnId(session.conn),
                    identity.ip,
                    &msg,
                );
                let got_data = replies
                    .iter()
                    .any(|a| matches!(a, Action::Reply(PeerMessage::SendingPart { .. })));
                self.route_non_replies(now, hp_idx, replies);
                if session.block_cursor == 0 {
                    // First part request of this session.
                    self.hp_request_sessions[hp_idx] += 1;
                }
                if got_data && !session.delivered {
                    self.hp_delivered_sessions[hp_idx] += 1;
                }
                let Some(s) = self.peers.session_mut(peer_idx).as_mut() else { return };
                if got_data {
                    s.delivered = true;
                    s.timeouts = 0;
                    s.block_cursor += 3;
                    s.budget = s.budget.saturating_sub(1);
                    if s.budget == 0 {
                        let detected = self.rng_behavior.chance(behavior.rc_detect_prob);
                        let outcome = if detected {
                            SessionOutcome::Detected
                        } else {
                            SessionOutcome::Inconclusive
                        };
                        self.finish_session(now, peer_idx, outcome, sched);
                        return;
                    }
                    let delay =
                        exponential(&mut self.rng_behavior, 1.0 / behavior.rc_transfer_ms as f64)
                            as u64;
                    sched.in_ms(delay.max(500), Event::SessionStep { peer: peer_idx });
                } else {
                    s.timeouts += 1;
                    if u32::from(s.timeouts) >= behavior.nc_timeouts_to_fail {
                        let detected = self.rng_behavior.chance(behavior.nc_detect_prob);
                        let outcome = if detected {
                            SessionOutcome::Detected
                        } else {
                            SessionOutcome::Inconclusive
                        };
                        self.finish_session(now, peer_idx, outcome, sched);
                        return;
                    }
                    // Silence paces at the timeout, near-constant (Fig. 9's
                    // smooth no-content curve).
                    let jitter = self.rng_behavior.below(2_000);
                    sched.in_ms(
                        behavior.nc_timeout_ms + jitter,
                        Event::SessionStep { peer: peer_idx },
                    );
                }
            }
        }
    }

    /// One step of a robot's independent query chain against honeypot
    /// `hp`: the automated client re-runs HELLO → START-UPLOAD →
    /// REQUEST-PARTS sessions back-to-back (modulo a lockout), paced by
    /// the source's answer behaviour — silence holds it for the robot's
    /// generous timeout, data only for the transfer (Figs. 8–9).
    #[allow(clippy::too_many_arguments)]
    fn robot_step(
        &mut self,
        peer_idx: u32,
        hp: u8,
        phase: RobotPhase,
        remaining: u8,
        conn: u64,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let now = sched.now();
        let robots = self.config.robots;
        let hp_idx = hp as usize;
        // Off periods gate new sessions only; an in-flight session runs out.
        if phase == RobotPhase::Greet {
            let off_until = self.robot_off_until[peer_idx as usize];
            if now < off_until {
                sched.at(
                    off_until.plus_millis(u64::from(hp) * 30_000),
                    Event::RobotStep { peer: peer_idx, hp, phase, remaining, conn },
                );
                return;
            }
        }
        let next = |phase: RobotPhase, remaining: u8, conn: u64| Event::RobotStep {
            peer: peer_idx,
            hp,
            phase,
            remaining,
            conn,
        };
        match phase {
            RobotPhase::Greet => {
                // Automated clients re-poll their server before every
                // session — the server-side measurement's heavy-tail "top
                // peers" come from exactly this back-to-back query chain.
                if self.server.capture_enabled() {
                    let fid = self.catalog.file(self.peers.wanted(peer_idx)[0]).id;
                    let session = SERVER_PEER_SESSION_BASE + u64::from(peer_idx);
                    self.server.get_sources(now, session, fid);
                }
                let conn = self.next_conn;
                self.next_conn += 1;
                let identity = *self.peers.identity(peer_idx);
                let msg = PeerMessage::Hello {
                    user_id: identity.user_id,
                    client_id: identity.client_id,
                    port: identity.port,
                    tags: vec![
                        Tag::string(special::NAME, identity.name()),
                        Tag::u32(special::VERSION, identity.version),
                    ],
                };
                self.stats.hello_sent += 1;
                let replies =
                    self.honeypots[hp_idx].on_peer_message(now, ConnId(conn), identity.ip, &msg);
                let answered = replies
                    .iter()
                    .any(|a| matches!(a, Action::Reply(PeerMessage::HelloAnswer { .. })));
                self.route_non_replies(now, hp_idx, replies);
                if answered {
                    sched.in_ms(400, next(RobotPhase::Upload, 0, conn));
                } else {
                    // Dead source: try again after the lockout.
                    sched.in_ms(robots.lockout_ms, next(RobotPhase::Greet, 0, 0));
                }
            }
            RobotPhase::Upload => {
                let file = self.peers.wanted(peer_idx)[0];
                let src_ip = self.peers.identity(peer_idx).ip;
                let msg = PeerMessage::StartUpload { file_id: self.catalog.file(file).id };
                self.stats.start_upload_sent += 1;
                let replies =
                    self.honeypots[hp_idx].on_peer_message(now, ConnId(conn), src_ip, &msg);
                let accepted =
                    replies.iter().any(|a| matches!(a, Action::Reply(PeerMessage::AcceptUpload)));
                self.route_non_replies(now, hp_idx, replies);
                if accepted {
                    let budget = robots.budget.clamp(1, 250) as u8;
                    sched.in_ms(400, next(RobotPhase::Request, budget, conn));
                } else {
                    sched.in_ms(robots.lockout_ms, next(RobotPhase::Greet, 0, 0));
                }
            }
            RobotPhase::Request => {
                let file = self.catalog.file(self.peers.wanted(peer_idx)[0]);
                let size = file.size.min(u64::from(u32::MAX - 1));
                let msg = PeerMessage::RequestParts {
                    file_id: file.id,
                    ranges: block_triple(size, u32::from(remaining) * 3),
                };
                self.stats.request_parts_sent += 1;
                let src_ip = self.peers.identity(peer_idx).ip;
                let replies =
                    self.honeypots[hp_idx].on_peer_message(now, ConnId(conn), src_ip, &msg);
                let got_data = replies
                    .iter()
                    .any(|a| matches!(a, Action::Reply(PeerMessage::SendingPart { .. })));
                self.route_non_replies(now, hp_idx, replies);
                let remaining = remaining.saturating_sub(1);
                let pace = if got_data {
                    (exponential(
                        &mut self.rng_behavior,
                        1.0 / self.config.behavior.rc_transfer_ms as f64,
                    ) as u64)
                        .max(500)
                } else {
                    // Near-constant timeout pacing: the smooth no-content
                    // curve of Fig. 9.
                    robots.nc_timeout_ms + self.rng_behavior.below(2_000)
                };
                if remaining == 0 {
                    // Session over; occasionally the whole robot goes dark
                    // (the plateaus of Figs. 8-9).
                    if self.rng_behavior.chance(robots.off_prob) {
                        self.robot_off_until[peer_idx as usize] =
                            now.plus_millis(robots.off_duration_ms);
                    }
                    sched.in_ms(pace + robots.lockout_ms, next(RobotPhase::Greet, 0, 0));
                } else {
                    sched.in_ms(pace, next(RobotPhase::Request, remaining, conn));
                }
            }
        }
    }

    /// Routes the non-`Reply` subset of honeypot actions (server traffic,
    /// status reports); `Reply` actions were inspected by the caller.
    fn route_non_replies(&mut self, now: SimTime, hp_idx: usize, actions: Vec<Action>) {
        let forward: Vec<Action> =
            actions.into_iter().filter(|a| !matches!(a, Action::Reply(_))).collect();
        if !forward.is_empty() {
            self.route_actions(now, hp_idx, forward);
        }
    }

    /// Finishes the measurement: collects outstanding logs and produces the
    /// merged anonymised dataset plus final statistics.
    pub fn finish(mut self, duration: SimTime) -> SimOutput {
        for hp in &mut self.honeypots {
            let chunk = hp.collect_log();
            self.manager.collect(chunk);
        }
        let shared_final = self.honeypots.iter().map(|h| h.shared_files().len()).max().unwrap_or(0);
        let relaunches = self.manager.relaunch_count();
        let log = self.manager.finalize(duration, shared_final as u32, self.config.name_threshold);
        SimOutput { log, stats: self.stats, relaunches, events_handled: 0 }
    }

    /// Finishes one lane of a sharded run: collects outstanding logs but
    /// stops *before* finalisation, handing the manager's merge state to
    /// the caller for the global `(SimTime, lane, seq)` merge
    /// (see [`crate::lanes`] and `honeypot::merge`).
    pub fn finish_lane(mut self, _duration: SimTime) -> crate::lanes::LaneOutput {
        for hp in &mut self.honeypots {
            let chunk = hp.collect_log();
            self.manager.collect(chunk);
        }
        let shared_final = self.honeypots.iter().map(|h| h.shared_files().len()).max().unwrap_or(0);
        let relaunches = self.manager.relaunch_count();
        crate::lanes::LaneOutput {
            harvest: self.manager.harvest(),
            stats: self.stats,
            relaunches,
            shared_files_final: shared_final as u32,
            events_handled: 0,
        }
    }

    /// Number of materialised peers (diagnostics).
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// The honeypots (tests & diagnostics).
    pub fn honeypots(&self) -> &[Honeypot] {
        &self.honeypots
    }

    /// The index server (tests & diagnostics).
    pub fn server(&self) -> &SimServer {
        &self.server
    }

    /// Detaches the server capture (to finish it after the run).
    pub fn take_capture(&mut self) -> Option<ServerCapture> {
        self.server.take_capture()
    }
}

/// Result of a completed scenario run.
pub struct SimOutput {
    pub log: MeasurementLog,
    pub stats: WorldStats,
    pub relaunches: u64,
    /// Discrete events the engine dispatched (summed over lanes for a
    /// sharded run) — the numerator of events-per-second throughput.
    pub events_handled: u64,
}

impl World for EdonkeyWorld {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<'_, Event>) {
        match event {
            Event::ArrivalTick => {
                let tick = self.config.population.arrival_tick_ms;
                let rate = self.arrival_rate(now);
                let n = poisson(&mut self.rng_arrival, rate * tick as f64);
                for _ in 0..n {
                    let offset = self.rng_arrival.below(tick);
                    if let Some(idx) = self.build_arrival(now) {
                        self.stats.arrivals += 1;
                        sched.in_ms(offset, Event::RoundStart { peer: idx });
                    }
                }
                sched.in_ms(tick, Event::ArrivalTick);
            }
            Event::RoundStart { peer } => {
                if self.peers.done(peer, now, self.config.behavior.abandon_failures) {
                    self.capture_peer_done(now, peer);
                    return;
                }
                // Users follow the daily rhythm in their retries too (the
                // client is off at night): defer rounds falling into
                // low-activity hours — this, not just arrivals, carries the
                // day/night oscillation of Fig. 4 into the query volume.
                let p = &self.config.population;
                let gate =
                    p.diurnal.multiplier(now, p.local_offset_hours) / (1.0 + p.diurnal.amplitude);
                if !self.rng_behavior.chance(gate) {
                    let delay = 45 * 60_000 + self.rng_behavior.below(45 * 60_000);
                    sched.in_ms(delay, Event::RoundStart { peer });
                    return;
                }
                self.start_round(now, peer, sched);
            }
            Event::SessionStep { peer } => self.session_step(peer, sched),
            Event::ManagerCheck => {
                self.launch_all(now);
                sched.in_ms(self.config.manager_check_ms, Event::ManagerCheck);
            }
            Event::CollectLogs => {
                for i in 0..self.honeypots.len() {
                    let chunk = self.honeypots[i].collect_log();
                    self.manager.collect(chunk);
                }
                sched.in_ms(self.config.collect_ms, Event::CollectLogs);
            }
            Event::Keepalive => {
                for i in 0..self.honeypots.len() {
                    let actions = self.honeypots[i].keepalive(now);
                    self.route_actions(now, i, actions);
                }
                sched.in_ms(self.config.keepalive_ms, Event::Keepalive);
            }
            Event::RobotStep { peer, hp, phase, remaining, conn } => {
                self.robot_step(peer, hp, phase, remaining, conn, sched);
            }
            Event::RobotOff { peer, duration_ms } => {
                let until = now.plus_millis(duration_ms);
                let slot = &mut self.robot_off_until[peer as usize];
                *slot = (*slot).max(until);
            }
            Event::StatusSample => {
                let _ = self.server.status(now);
                sched.in_ms(self.status_interval_ms(), Event::StatusSample);
            }
            Event::Crash { hp } => {
                let idx = hp as usize;
                let actions = self.honeypots[idx].kill(now);
                self.route_actions(now, idx, actions);
                self.server.disconnect(now, idx as u64);
                self.stats.crashes += 1;
                if let Some(crash) = self.config.crashes {
                    let delay =
                        exponential(&mut self.rng_behavior, 1.0 / crash.mtbf_ms as f64) as u64;
                    sched.in_ms(delay.max(60_000), Event::Crash { hp });
                }
            }
        }
    }
}

/// Geometric sample with the given mean (number of successes before
/// failure); mean 0 yields constant 0.
fn geometric(rng: &mut Rng, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (1.0 + mean);
    let u = rng.f64_open();
    (u.ln() / (1.0 - p).ln()).floor() as u32
}

/// Samples `k` distinct items from `candidates`, weighted by
/// `weights[item]` (weights indexed by honeypot id).
fn weighted_distinct(rng: &mut Rng, candidates: &[u8], weights: &[f64], k: usize) -> Vec<u8> {
    let k = k.min(candidates.len());
    let mut pool: Vec<u8> = candidates.to_vec();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let total: f64 = pool.iter().map(|&c| weights[c as usize]).sum();
        let mut x = rng.f64() * total;
        let mut chosen = pool.len() - 1;
        for (i, &c) in pool.iter().enumerate() {
            x -= weights[c as usize];
            if x <= 0.0 {
                chosen = i;
                break;
            }
        }
        out.push(pool.swap_remove(chosen));
    }
    out
}

/// The three consecutive block ranges starting at block index `cursor`,
/// wrapped within the first part of a file of `size` bytes (u32 offsets per
/// the classic protocol).
fn block_triple(size: u64, cursor: u32) -> [PartRange; 3] {
    let size32 = size.min(u64::from(u32::MAX - 1)) as u32;
    let blocks_total = (u64::from(size32).div_ceil(BLOCK_SIZE)).max(1) as u32;
    let mut ranges = [PartRange::new(0, 0); 3];
    for (i, r) in ranges.iter_mut().enumerate() {
        let b = (cursor + i as u32) % blocks_total;
        let start = (u64::from(b) * BLOCK_SIZE) as u32;
        let end = ((u64::from(b) + 1) * BLOCK_SIZE).min(u64::from(size32)) as u32;
        *r = PartRange::new(start, end);
    }
    ranges
}

/// Runs a scenario end-to-end and returns its output.
///
/// Dispatches on [`crate::config::ExecMode`] and
/// [`crate::config::QueueKind`] once, up front; all three queues produce
/// byte-identical output (see `tests/determinism.rs`), so the queue choice
/// only affects wall-clock time.
pub fn run_scenario(config: ScenarioConfig) -> SimOutput {
    if config.exec == crate::config::ExecMode::Sharded && config.lane == 0 {
        return crate::lanes::run_sharded(config);
    }
    match config.queue {
        QueueKind::Heap => run_scenario_on(config, EventQueue::new()),
        QueueKind::Calendar => run_scenario_on(config, CalendarQueue::for_simulation()),
        QueueKind::Wheel => run_scenario_on(config, TimingWheel::for_simulation()),
    }
}

/// Runs one lane of a sharded scenario on the configured queue, stopping
/// before finalisation (the global merge happens in [`crate::lanes`]).
pub(crate) fn run_lane(config: ScenarioConfig) -> crate::lanes::LaneOutput {
    fn on<Q: PendingQueue<Event>>(config: ScenarioConfig, queue: Q) -> crate::lanes::LaneOutput {
        let duration = config.duration;
        let mut engine = Engine::with_queue(queue);
        let mut world = EdonkeyWorld::new(config, &mut engine);
        engine.run_until(&mut world, duration);
        let mut out = world.finish_lane(duration);
        out.events_handled = engine.events_handled();
        out
    }
    match config.queue {
        QueueKind::Heap => on(config, EventQueue::new()),
        QueueKind::Calendar => on(config, CalendarQueue::for_simulation()),
        QueueKind::Wheel => on(config, TimingWheel::for_simulation()),
    }
}

/// [`run_scenario`] on a concrete queue.
fn run_scenario_on<Q: PendingQueue<Event>>(config: ScenarioConfig, queue: Q) -> SimOutput {
    let duration = config.duration;
    // Phase spans keyed on deterministic sim quantities only (duration,
    // seed, event counts) — the trace is as reproducible as the run, and
    // recording it cannot change the measurement (tests/obs_purity.rs in
    // the sim crate pins this).
    netsim::obs_event!(
        netsim::obs::Level::Trace,
        "sim",
        "scenario_setup",
        seed = config.seed,
        duration_ms = duration.as_millis()
    );
    let mut engine = Engine::with_queue(queue);
    let mut world = EdonkeyWorld::new(config, &mut engine);
    netsim::obs_event!(
        netsim::obs::Level::Trace,
        "sim",
        "scenario_run",
        duration_ms = duration.as_millis()
    );
    engine.run_until(&mut world, duration);
    netsim::obs_event!(
        netsim::obs::Level::Trace,
        "sim",
        "scenario_finalize",
        events_handled = engine.events_handled()
    );
    let mut out = world.finish(duration);
    out.events_handled = engine.events_handled();
    netsim::obs_event!(
        netsim::obs::Level::Trace,
        "sim",
        "scenario_done",
        events_handled = out.events_handled,
        records = out.log.records.len()
    );
    out
}

/// Result of a capture-enabled run: the usual honeypot measurement plus
/// the statistics of the server-side log streamed to disk.
pub struct CaptureRunOutput {
    pub output: SimOutput,
    pub capture: ServerLogStats,
    /// A write error disabled the capture mid-run; `capture` covers only
    /// the flushed prefix and `capture_dropped` counts the rest.
    pub capture_degraded: bool,
    pub capture_dropped: u64,
}

/// Runs a scenario with the server-side query capture streaming into
/// `dir` (see `honeypot::serverlog` for the on-disk format).  The capture
/// knobs come from `config.server_capture` (defaults when `None`).
///
/// Requires the coupled engine: a lane-sharded run splits the server into
/// per-lane replicas, and a sliced capture would not be one server's view.
pub fn run_scenario_with_capture(
    config: ScenarioConfig,
    dir: &std::path::Path,
) -> std::io::Result<CaptureRunOutput> {
    assert!(
        config.exec == crate::config::ExecMode::Coupled,
        "server capture requires the coupled engine (one server, one event loop)"
    );
    fn on<Q: PendingQueue<Event>>(
        config: ScenarioConfig,
        queue: Q,
        capture: ServerCapture,
    ) -> std::io::Result<CaptureRunOutput> {
        let duration = config.duration;
        let mut engine = Engine::with_queue(queue);
        let mut world = EdonkeyWorld::new_with_capture(config, &mut engine, Some(capture));
        engine.run_until(&mut world, duration);
        let capture = world.take_capture().expect("capture attached");
        let capture_degraded = capture.degraded();
        let capture_dropped = capture.dropped();
        let capture = capture.finish()?;
        let mut output = world.finish(duration);
        output.events_handled = engine.events_handled();
        Ok(CaptureRunOutput { output, capture, capture_degraded, capture_dropped })
    }
    let cap_cfg = config.server_capture.unwrap_or_default();
    let capture = ServerCapture::create(dir, &cap_cfg)?;
    match config.queue {
        QueueKind::Heap => on(config, EventQueue::new(), capture),
        QueueKind::Calendar => on(config, CalendarQueue::for_simulation(), capture),
        QueueKind::Wheel => on(config, TimingWheel::for_simulation(), capture),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use honeypot::QueryKind;

    #[test]
    fn geometric_mean_approximately_right() {
        let mut rng = Rng::seed_from(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| f64::from(geometric(&mut rng, 3.0))).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
        assert_eq!(geometric(&mut rng, 0.0), 0);
    }

    #[test]
    fn weighted_distinct_is_distinct_and_biased() {
        let mut rng = Rng::seed_from(2);
        let candidates = [0u8, 1, 2, 3];
        let weights = [10.0, 1.0, 1.0, 1.0];
        let mut count0 = 0;
        for _ in 0..2_000 {
            let s = weighted_distinct(&mut rng, &candidates, &weights, 2);
            assert_eq!(s.len(), 2);
            assert_ne!(s[0], s[1]);
            if s.contains(&0) {
                count0 += 1;
            }
        }
        assert!(count0 > 1_500, "heavy item picked in {count0}/2000 pairs");
    }

    #[test]
    fn block_triple_within_bounds() {
        let size = 1_000_000u64;
        for cursor in [0u32, 1, 5, 100] {
            for r in block_triple(size, cursor) {
                assert!(u64::from(r.end) <= size);
                assert!(r.start < r.end);
                assert!(u64::from(r.len()) <= BLOCK_SIZE);
            }
        }
    }

    #[test]
    fn block_triple_tiny_file() {
        let ranges = block_triple(1_000, 0);
        for r in ranges {
            assert_eq!((r.start, r.end), (0, 1_000), "single-block file wraps onto itself");
        }
    }

    #[test]
    fn tiny_scenario_produces_coherent_log() {
        let out = run_scenario(ScenarioConfig::tiny(42));
        assert!(out.log.distinct_peers > 0, "some peers must be observed");
        assert!(out.log.records_of(QueryKind::Hello).count() > 0);
        assert!(out.log.validate().is_empty(), "{:?}", out.log.validate());
        assert!(out.stats.hello_sent >= out.log.records_of(QueryKind::Hello).count() as u64);
    }

    #[test]
    fn determinism_same_seed_same_log() {
        let a = run_scenario(ScenarioConfig::tiny(7));
        let b = run_scenario(ScenarioConfig::tiny(7));
        assert_eq!(a.log.records.len(), b.log.records.len());
        assert_eq!(a.log.distinct_peers, b.log.distinct_peers);
        assert_eq!(a.stats.request_parts_sent, b.stats.request_parts_sent);
        // Spot-check full record equality on a sample.
        for i in (0..a.log.records.len()).step_by(97) {
            assert_eq!(a.log.records[i], b.log.records[i]);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_scenario(ScenarioConfig::tiny(1));
        let b = run_scenario(ScenarioConfig::tiny(2));
        assert_ne!(
            (a.log.records.len(), a.log.distinct_peers),
            (b.log.records.len(), b.log.distinct_peers)
        );
    }

    #[test]
    fn scaling_shrinks_population() {
        let full = run_scenario(ScenarioConfig::tiny(5));
        let small = run_scenario(ScenarioConfig::tiny(5).scaled(0.25));
        assert!(
            (small.log.distinct_peers as f64) < 0.6 * full.log.distinct_peers as f64,
            "scaled run {} vs full {}",
            small.log.distinct_peers,
            full.log.distinct_peers
        );
    }

    #[test]
    fn crashes_trigger_relaunches() {
        let mut config = ScenarioConfig::tiny(11);
        config.crashes =
            Some(crate::config::CrashConfig { mtbf_ms: 6 * netsim::time::MS_PER_HOUR });
        let out = run_scenario(config);
        assert!(out.stats.crashes > 0, "failure injection must fire");
        assert!(out.relaunches > 0, "manager must relaunch dead honeypots");
        assert!(out.log.distinct_peers > 0, "measurement survives crashes");
    }
}
