//! # edonkey-sim
//!
//! The synthetic eDonkey world the honeypot platform is measured against —
//! the substitution for the live network the paper used (see DESIGN.md):
//!
//! * [`catalog`] — a deterministic file universe with heavy-tailed
//!   popularity, class-dependent sizes and generated names;
//! * [`identity`] — synthetic peer identities (unique IPs, user hashes,
//!   client names/versions, high/low IDs);
//! * [`server`] — the eDonkey index server (login, OFFER-FILES indexing,
//!   GET-SOURCES);
//! * [`peer`] — the genuine-peer download state machine (paper Fig. 1) with
//!   timeout- vs corruption-based honeypot detection and client-level
//!   blacklisting;
//! * [`config`] — every behavioural knob, with paper-calibrated defaults;
//! * [`world`] — the discrete-event world tying it all together, hosting
//!   the *actual* `honeypot` crate state machines.
//!
//! ```
//! use edonkey_sim::config::ScenarioConfig;
//! use edonkey_sim::world::run_scenario;
//!
//! let out = run_scenario(ScenarioConfig::tiny(42).scaled(0.2));
//! assert!(out.log.distinct_peers > 0);
//! ```

pub mod capture;
pub mod catalog;
pub mod config;
pub mod identity;
pub mod lanes;
pub mod peer;
pub mod server;
pub mod world;

pub use capture::ServerCapture;
pub use catalog::{Catalog, CatalogConfig};
pub use config::{
    BehaviorConfig, BlacklistConfig, CrashConfig, ExecMode, HoneypotSetup, PopulationConfig,
    QueueKind, RobotConfig, ScenarioConfig, ServerCaptureConfig,
};
pub use lanes::{run_sharded, run_sharded_reference, shardable};
pub use server::SimServer;
pub use world::{
    run_scenario, run_scenario_with_capture, CaptureRunOutput, EdonkeyWorld, Event, SimOutput,
    WorldStats,
};
