//! The simulated eDonkey index server.
//!
//! The paper's honeypots connect to a large public server; the server's
//! role in the measurement is narrow but essential: grant client IDs,
//! index OFFER-FILES advertisements, and answer GET-SOURCES with provider
//! lists.  This module implements exactly that (plus user/file counters for
//! SERVER-STATUS), keyed by `FileId`, speaking the typed protocol messages.
//!
//! With a [`ServerCapture`] attached (the "ten weeks in the life of an
//! eDonkey server" modality), every handled query additionally emits one
//! compact `honeypot::serverlog::ServerRecord` — pure observation, no
//! effect on any answer the server gives.

use std::collections::HashMap;

#[cfg(test)]
use edonkey_proto::Ipv4;
use edonkey_proto::{ClientId, ClientServerMessage, FileId, PeerAddr, PublishedFile, SearchExpr};

use honeypot::anonymize::IpHash;
use honeypot::serverlog::{ServerQueryKind, ServerRecord};
use honeypot::types::ServerInfo;
use netsim::SimTime;

use crate::capture::ServerCapture;

/// The all-zero file digest used when a record concerns no file.
const NO_FILE: FileId = FileId([0; 16]);

/// A connected client's registration.
#[derive(Clone, Debug)]
struct Registration {
    addr: PeerAddr,
    client_id: ClientId,
    /// Files this client currently offers.
    offered: Vec<FileId>,
}

/// The index server.
pub struct SimServer {
    info: ServerInfo,
    /// Provider lists per file.
    index: HashMap<FileId, Vec<u64>>,
    /// Published metadata per file (first-offer name and size), for
    /// SEARCH-REQUEST answering.
    metadata: HashMap<FileId, (String, u64)>,
    /// Connected clients by session token.
    clients: HashMap<u64, Registration>,
    next_low_id: u32,
    /// Optional server-side query capture (observation only).
    capture: Option<ServerCapture>,
}

impl SimServer {
    pub fn new(info: ServerInfo) -> Self {
        SimServer {
            info,
            index: HashMap::new(),
            metadata: HashMap::new(),
            clients: HashMap::new(),
            next_low_id: 1,
            capture: None,
        }
    }

    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Attaches a query capture: from now on every handled query emits one
    /// server-side record.
    pub fn attach_capture(&mut self, capture: ServerCapture) {
        self.capture = Some(capture);
    }

    /// Detaches the capture (to finish it after the run).
    pub fn take_capture(&mut self) -> Option<ServerCapture> {
        self.capture.take()
    }

    /// Whether a capture is attached.
    pub fn capture_enabled(&self) -> bool {
        self.capture.is_some()
    }

    /// Emits one capture record (no-op without a capture attached).
    #[allow(clippy::too_many_arguments)]
    fn capture_emit(
        &mut self,
        at: SimTime,
        kind: ServerQueryKind,
        session: u64,
        addr: Option<PeerAddr>,
        file: FileId,
        payload: u32,
        flag: u8,
    ) {
        let Some(cap) = self.capture.as_mut() else { return };
        let (peer, port) = match addr {
            Some(a) => (cap.hash_ip(a.ip), a.port),
            None => (IpHash([0; 16]), 0),
        };
        cap.emit(&ServerRecord { at, kind, peer, port, flag, file, session, payload });
    }

    /// Handles a LOGIN-REQUEST from the client at `addr` (session token
    /// `session`); returns the ID-CHANGE answer.
    ///
    /// Clients dialling in from a publicly reachable address receive their
    /// IP as a high ID; `reachable = false` models NATed clients and yields
    /// a low ID.
    ///
    /// A login over a still-live session supersedes the previous
    /// incarnation: its offers are withdrawn first (otherwise the index
    /// would keep provider entries the final disconnect can never clean).
    pub fn login(
        &mut self,
        now: SimTime,
        session: u64,
        addr: PeerAddr,
        reachable: bool,
    ) -> ClientServerMessage {
        if self.clients.contains_key(&session) {
            self.disconnect(now, session);
        }
        let client_id = if reachable {
            ClientId::high_from_ip(addr.ip)
        } else {
            let id = ClientId::low(self.next_low_id);
            self.next_low_id = (self.next_low_id % (edonkey_proto::ids::LOW_ID_LIMIT - 1)) + 1;
            id
        };
        self.clients.insert(session, Registration { addr, client_id, offered: Vec::new() });
        self.capture_emit(
            now,
            ServerQueryKind::Login,
            session,
            Some(addr),
            NO_FILE,
            0,
            u8::from(client_id.is_high()),
        );
        ClientServerMessage::IdChange { client_id }
    }

    /// Handles OFFER-FILES: merges the published files into the session's
    /// offer set and the global index (additive, like real servers treat
    /// keep-alive offers).
    pub fn offer_files(&mut self, now: SimTime, session: u64, msg: &ClientServerMessage) {
        let ClientServerMessage::OfferFiles { files } = msg else {
            debug_assert!(false, "offer_files fed a non-OFFER message");
            return;
        };
        let first = files.first().map_or(NO_FILE, |f| f.file_id);
        let Some(reg) = self.clients.get_mut(&session) else {
            // Not logged in: real servers drop such packets (the capture
            // still sees them arrive).
            self.capture_emit(
                now,
                ServerQueryKind::OfferFiles,
                session,
                None,
                first,
                files.len() as u32,
                0,
            );
            return;
        };
        let addr = reg.addr;
        for f in files {
            if !reg.offered.contains(&f.file_id) {
                reg.offered.push(f.file_id);
                let providers = self.index.entry(f.file_id).or_default();
                if !providers.contains(&session) {
                    providers.push(session);
                }
                self.metadata
                    .entry(f.file_id)
                    .or_insert_with(|| (f.name().unwrap_or("").to_string(), f.size().unwrap_or(0)));
            }
        }
        self.capture_emit(
            now,
            ServerQueryKind::OfferFiles,
            session,
            Some(addr),
            first,
            files.len() as u32,
            1,
        );
    }

    /// Records an OFFER-FILES the server receives but deliberately does
    /// *not* index (the simulation keeps genuine peers out of the provider
    /// index — honeypots are the only sources under measurement — yet a
    /// real server would handle these queries, so the capture must see
    /// them).  No-op without a capture attached.
    pub fn log_offer_only(
        &mut self,
        now: SimTime,
        session: u64,
        addr: PeerAddr,
        n_files: u32,
        first: FileId,
    ) {
        self.capture_emit(now, ServerQueryKind::OfferFiles, session, Some(addr), first, n_files, 0);
    }

    /// Handles GET-SOURCES: returns FOUND-SOURCES with the providers'
    /// addresses.
    pub fn get_sources(
        &mut self,
        now: SimTime,
        session: u64,
        file_id: FileId,
    ) -> ClientServerMessage {
        let sources: Vec<PeerAddr> = self
            .index
            .get(&file_id)
            .map(|sessions| {
                sessions.iter().filter_map(|s| self.clients.get(s)).map(|r| r.addr).collect()
            })
            .unwrap_or_default();
        let addr = self.clients.get(&session).map(|r| r.addr);
        self.capture_emit(
            now,
            ServerQueryKind::GetSources,
            session,
            addr,
            file_id,
            sources.len() as u32,
            0,
        );
        ClientServerMessage::FoundSources { file_id, sources }
    }

    /// Provider session tokens for a file (the simulation's fast path,
    /// avoiding address round-trips).
    pub fn provider_sessions(&self, file_id: &FileId) -> &[u64] {
        self.index.get(file_id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The client ID granted to a session (None if not logged in).
    pub fn client_id_of(&self, session: u64) -> Option<ClientId> {
        self.clients.get(&session).map(|r| r.client_id)
    }

    /// Answers a SEARCH-REQUEST: indexed files (with at least one live
    /// provider) matching the expression, capped at `limit` results like
    /// real servers.
    pub fn search(
        &mut self,
        now: SimTime,
        session: u64,
        expr: &SearchExpr,
        limit: usize,
    ) -> ClientServerMessage {
        let mut files = Vec::new();
        for (fid, providers) in &self.index {
            if providers.is_empty() {
                continue;
            }
            let Some((name, size)) = self.metadata.get(fid) else { continue };
            let file_type = match name.rsplit('.').next() {
                Some("avi") | Some("mpg") | Some("mkv") => "Video",
                Some("mp3") | Some("ogg") => "Audio",
                Some("iso") | Some("zip") | Some("rar") => "Archive",
                _ => "Document",
            };
            if expr.matches(name, *size, file_type) {
                files.push(PublishedFile::new(*fid, name, *size));
                if files.len() >= limit {
                    break;
                }
            }
        }
        let addr = self.clients.get(&session).map(|r| r.addr);
        self.capture_emit(
            now,
            ServerQueryKind::Search,
            session,
            addr,
            NO_FILE,
            files.len() as u32,
            0,
        );
        ClientServerMessage::SearchResult { files }
    }

    /// Disconnects a session, dropping its offers from the index.
    pub fn disconnect(&mut self, now: SimTime, session: u64) {
        if let Some(reg) = self.clients.remove(&session) {
            let withdrawn = reg.offered.len() as u32;
            for f in reg.offered {
                if let Some(list) = self.index.get_mut(&f) {
                    list.retain(|&s| s != session);
                    if list.is_empty() {
                        self.index.remove(&f);
                    }
                }
            }
            self.capture_emit(
                now,
                ServerQueryKind::Disconnect,
                session,
                Some(reg.addr),
                NO_FILE,
                withdrawn,
                1,
            );
        }
    }

    /// SERVER-STATUS snapshot.  With a capture attached, the snapshot is
    /// itself recorded (users in `payload`, indexed files in `session` —
    /// the snapshot has no session of its own).
    pub fn status(&mut self, now: SimTime) -> ClientServerMessage {
        let users = self.clients.len() as u32;
        let files = self.index.len() as u32;
        self.capture_emit(now, ServerQueryKind::Status, u64::from(files), None, NO_FILE, users, 0);
        ClientServerMessage::ServerStatus { users, files }
    }

    /// Number of connected clients.
    pub fn clients(&self) -> usize {
        self.clients.len()
    }

    /// Number of indexed files.
    pub fn indexed_files(&self) -> usize {
        self.index.len()
    }
}

impl std::fmt::Debug for SimServer {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("SimServer")
            .field("clients", &self.clients.len())
            .field("indexed_files", &self.index.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::PublishedFile;

    const T0: SimTime = SimTime::ZERO;

    fn server() -> SimServer {
        SimServer::new(ServerInfo::new("srv", Ipv4::new(195, 0, 0, 1), 4661))
    }

    fn addr(last: u8) -> PeerAddr {
        PeerAddr::new(Ipv4::new(80, 1, 1, last), 4662)
    }

    fn offer(ids: &[FileId]) -> ClientServerMessage {
        ClientServerMessage::OfferFiles {
            files: ids.iter().map(|id| PublishedFile::new(*id, "f", 10)).collect(),
        }
    }

    #[test]
    fn login_grants_high_id_to_reachable_clients() {
        let mut s = server();
        let msg = s.login(T0, 1, addr(5), true);
        let ClientServerMessage::IdChange { client_id } = msg else { panic!() };
        assert!(client_id.is_high());
        assert_eq!(client_id.ip(), Some(addr(5).ip));
        assert_eq!(s.client_id_of(1), Some(client_id));
        assert_eq!(s.client_id_of(99), None);
    }

    #[test]
    fn login_grants_distinct_low_ids_to_nated_clients() {
        let mut s = server();
        let ClientServerMessage::IdChange { client_id: a } = s.login(T0, 1, addr(5), false) else {
            panic!()
        };
        let ClientServerMessage::IdChange { client_id: b } = s.login(T0, 2, addr(6), false) else {
            panic!()
        };
        assert!(a.is_low() && b.is_low());
        assert_ne!(a, b);
    }

    #[test]
    fn offers_build_the_index_and_sources_return_providers() {
        let mut s = server();
        let f = FileId::from_seed(b"f");
        s.login(T0, 1, addr(1), true);
        s.login(T0, 2, addr(2), true);
        s.offer_files(T0, 1, &offer(&[f]));
        s.offer_files(T0, 2, &offer(&[f]));
        let ClientServerMessage::FoundSources { sources, .. } = s.get_sources(T0, 3, f) else {
            panic!()
        };
        assert_eq!(sources.len(), 2);
        assert!(sources.contains(&addr(1)) && sources.contains(&addr(2)));
        assert_eq!(s.provider_sessions(&f), &[1, 2]);
    }

    #[test]
    fn offers_are_idempotent_and_additive() {
        let mut s = server();
        let f1 = FileId::from_seed(b"a");
        let f2 = FileId::from_seed(b"b");
        s.login(T0, 1, addr(1), true);
        s.offer_files(T0, 1, &offer(&[f1]));
        s.offer_files(T0, 1, &offer(&[f1, f2])); // keep-alive with one new file
        assert_eq!(s.provider_sessions(&f1).len(), 1, "no duplicate provider entries");
        assert_eq!(s.indexed_files(), 2);
    }

    #[test]
    fn unknown_file_has_no_sources() {
        let mut s = server();
        let ClientServerMessage::FoundSources { sources, .. } =
            s.get_sources(T0, 1, FileId::from_seed(b"nope"))
        else {
            panic!()
        };
        assert!(sources.is_empty());
    }

    #[test]
    fn offers_from_unlogged_sessions_dropped() {
        let mut s = server();
        s.offer_files(T0, 99, &offer(&[FileId::from_seed(b"f")]));
        assert_eq!(s.indexed_files(), 0);
    }

    #[test]
    fn disconnect_withdraws_offers() {
        let mut s = server();
        let f = FileId::from_seed(b"f");
        s.login(T0, 1, addr(1), true);
        s.login(T0, 2, addr(2), true);
        s.offer_files(T0, 1, &offer(&[f]));
        s.offer_files(T0, 2, &offer(&[f]));
        s.disconnect(T0, 1);
        assert_eq!(s.provider_sessions(&f), &[2]);
        assert_eq!(s.clients(), 1);
        s.disconnect(T0, 2);
        assert_eq!(s.indexed_files(), 0, "empty provider lists pruned");
    }

    #[test]
    fn relogin_of_live_session_supersedes_previous_incarnation() {
        let mut s = server();
        let f = FileId::from_seed(b"f");
        s.login(T0, 1, addr(1), true);
        s.offer_files(T0, 1, &offer(&[f]));
        assert_eq!(s.provider_sessions(&f), &[1]);
        // Same session logs in again (crash + relaunch reusing the token):
        // the old incarnation's offers must be withdrawn, not leaked.
        s.login(T0, 1, addr(1), true);
        assert_eq!(s.clients(), 1);
        assert_eq!(s.indexed_files(), 0, "stale offers withdrawn on re-login");
        assert!(s.provider_sessions(&f).is_empty());
        // The fresh incarnation starts clean and can offer again.
        s.offer_files(T0, 1, &offer(&[f]));
        assert_eq!(s.provider_sessions(&f), &[1]);
        s.disconnect(T0, 1);
        assert_eq!(s.indexed_files(), 0, "no double-entry to clean twice");
    }

    #[test]
    fn search_finds_matching_indexed_files() {
        let mut s = server();
        s.login(T0, 1, addr(1), true);
        s.offer_files(
            T0,
            1,
            &ClientServerMessage::OfferFiles {
                files: vec![
                    PublishedFile::new(FileId::from_seed(b"u"), "ubuntu.8.10.iso", 700 << 20),
                    PublishedFile::new(FileId::from_seed(b"m"), "some.song.mp3", 5 << 20),
                ],
            },
        );
        let expr = SearchExpr::keyword("ubuntu");
        let ClientServerMessage::SearchResult { files } = s.search(T0, 2, &expr, 100) else {
            panic!()
        };
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].name(), Some("ubuntu.8.10.iso"));
        // Withdrawn offers disappear from results.
        s.disconnect(T0, 1);
        let ClientServerMessage::SearchResult { files } = s.search(T0, 2, &expr, 100) else {
            panic!()
        };
        assert!(files.is_empty());
    }

    #[test]
    fn search_respects_result_limit() {
        let mut s = server();
        s.login(T0, 1, addr(1), true);
        let files: Vec<PublishedFile> = (0..50)
            .map(|i| {
                PublishedFile::new(
                    FileId::from_seed(format!("f{i}").as_bytes()),
                    &format!("linux.{i}.iso"),
                    1,
                )
            })
            .collect();
        s.offer_files(T0, 1, &ClientServerMessage::OfferFiles { files });
        let ClientServerMessage::SearchResult { files } =
            s.search(T0, 1, &SearchExpr::keyword("linux"), 10)
        else {
            panic!()
        };
        assert_eq!(files.len(), 10);
    }

    #[test]
    fn status_reports_counts() {
        let mut s = server();
        s.login(T0, 1, addr(1), true);
        s.offer_files(T0, 1, &offer(&[FileId::from_seed(b"f")]));
        let ClientServerMessage::ServerStatus { users, files } = s.status(T0) else { panic!() };
        assert_eq!((users, files), (1, 1));
    }

    #[test]
    fn capture_records_every_handled_query() {
        use honeypot::serverlog::ServerLogReader;

        let dir = std::env::temp_dir().join(format!("simsrv-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = crate::config::ServerCaptureConfig::default();
        let mut s = server();
        s.attach_capture(ServerCapture::create(&dir, &cfg).unwrap());
        assert!(s.capture_enabled());

        let f = FileId::from_seed(b"f");
        let t1 = SimTime::from_secs(1);
        s.login(T0, 1, addr(1), true);
        s.offer_files(T0, 1, &offer(&[f]));
        s.search(t1, 1, &SearchExpr::keyword("f"), 10);
        s.get_sources(t1, 1, f);
        s.log_offer_only(t1, 7, addr(9), 3, f);
        s.status(t1);
        s.disconnect(t1, 1);

        let stats = s.take_capture().unwrap().finish().unwrap();
        assert_eq!(stats.records, 7);
        let mut reader = ServerLogReader::open(&dir).unwrap();
        let mut kinds = Vec::new();
        let mut records = Vec::new();
        while let Some(r) = reader.next() {
            kinds.push(r.kind);
            records.push(r);
        }
        assert!(!reader.truncated());
        assert_eq!(
            kinds,
            vec![
                ServerQueryKind::Login,
                ServerQueryKind::OfferFiles,
                ServerQueryKind::Search,
                ServerQueryKind::GetSources,
                ServerQueryKind::OfferFiles,
                ServerQueryKind::Status,
                ServerQueryKind::Disconnect,
            ]
        );
        assert_eq!(records[0].flag, 1, "high-ID login");
        assert_eq!(records[1].payload, 1, "one file offered");
        assert_eq!(records[3].file, f);
        assert_eq!(records[3].payload, 1, "one source");
        assert_eq!(records[4].flag, 0, "offer-only is not indexed");
        assert_eq!(records[5].payload, 1, "one user at status time");
        assert_eq!(records[6].payload, 1, "one offer withdrawn");
        // Same hasher ⇒ login and offer share the peer digest; status has none.
        assert_eq!(records[0].peer, records[1].peer);
        assert_eq!(records[5].peer, IpHash([0; 16]));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
