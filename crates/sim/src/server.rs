//! The simulated eDonkey index server.
//!
//! The paper's honeypots connect to a large public server; the server's
//! role in the measurement is narrow but essential: grant client IDs,
//! index OFFER-FILES advertisements, and answer GET-SOURCES with provider
//! lists.  This module implements exactly that (plus user/file counters for
//! SERVER-STATUS), keyed by `FileId`, speaking the typed protocol messages.

use std::collections::HashMap;

#[cfg(test)]
use edonkey_proto::Ipv4;
use edonkey_proto::{ClientId, ClientServerMessage, FileId, PeerAddr, PublishedFile, SearchExpr};

use honeypot::types::ServerInfo;

/// A connected client's registration.
#[derive(Clone, Debug)]
struct Registration {
    addr: PeerAddr,
    client_id: ClientId,
    /// Files this client currently offers.
    offered: Vec<FileId>,
}

/// The index server.
pub struct SimServer {
    info: ServerInfo,
    /// Provider lists per file.
    index: HashMap<FileId, Vec<u64>>,
    /// Published metadata per file (first-offer name and size), for
    /// SEARCH-REQUEST answering.
    metadata: HashMap<FileId, (String, u64)>,
    /// Connected clients by session token.
    clients: HashMap<u64, Registration>,
    next_low_id: u32,
}

impl SimServer {
    pub fn new(info: ServerInfo) -> Self {
        SimServer {
            info,
            index: HashMap::new(),
            metadata: HashMap::new(),
            clients: HashMap::new(),
            next_low_id: 1,
        }
    }

    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Handles a LOGIN-REQUEST from the client at `addr` (session token
    /// `session`); returns the ID-CHANGE answer.
    ///
    /// Clients dialling in from a publicly reachable address receive their
    /// IP as a high ID; `reachable = false` models NATed clients and yields
    /// a low ID.
    pub fn login(&mut self, session: u64, addr: PeerAddr, reachable: bool) -> ClientServerMessage {
        let client_id = if reachable {
            ClientId::high_from_ip(addr.ip)
        } else {
            let id = ClientId::low(self.next_low_id);
            self.next_low_id = (self.next_low_id % (edonkey_proto::ids::LOW_ID_LIMIT - 1)) + 1;
            id
        };
        self.clients.insert(session, Registration { addr, client_id, offered: Vec::new() });
        ClientServerMessage::IdChange { client_id }
    }

    /// Handles OFFER-FILES: merges the published files into the session's
    /// offer set and the global index (additive, like real servers treat
    /// keep-alive offers).
    pub fn offer_files(&mut self, session: u64, msg: &ClientServerMessage) {
        let ClientServerMessage::OfferFiles { files } = msg else {
            debug_assert!(false, "offer_files fed a non-OFFER message");
            return;
        };
        let Some(reg) = self.clients.get_mut(&session) else {
            return; // not logged in: real servers drop such packets
        };
        for f in files {
            if !reg.offered.contains(&f.file_id) {
                reg.offered.push(f.file_id);
                let providers = self.index.entry(f.file_id).or_default();
                if !providers.contains(&session) {
                    providers.push(session);
                }
                self.metadata
                    .entry(f.file_id)
                    .or_insert_with(|| (f.name().unwrap_or("").to_string(), f.size().unwrap_or(0)));
            }
        }
    }

    /// Handles GET-SOURCES: returns FOUND-SOURCES with the providers'
    /// addresses.
    pub fn get_sources(&self, file_id: FileId) -> ClientServerMessage {
        let sources = self
            .index
            .get(&file_id)
            .map(|sessions| {
                sessions.iter().filter_map(|s| self.clients.get(s)).map(|r| r.addr).collect()
            })
            .unwrap_or_default();
        ClientServerMessage::FoundSources { file_id, sources }
    }

    /// Provider session tokens for a file (the simulation's fast path,
    /// avoiding address round-trips).
    pub fn provider_sessions(&self, file_id: &FileId) -> &[u64] {
        self.index.get(file_id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The client ID granted to a session (None if not logged in).
    pub fn client_id_of(&self, session: u64) -> Option<ClientId> {
        self.clients.get(&session).map(|r| r.client_id)
    }

    /// Answers a SEARCH-REQUEST: indexed files (with at least one live
    /// provider) matching the expression, capped at `limit` results like
    /// real servers.
    pub fn search(&self, expr: &SearchExpr, limit: usize) -> ClientServerMessage {
        let mut files = Vec::new();
        for (fid, providers) in &self.index {
            if providers.is_empty() {
                continue;
            }
            let Some((name, size)) = self.metadata.get(fid) else { continue };
            let file_type = match name.rsplit('.').next() {
                Some("avi") | Some("mpg") | Some("mkv") => "Video",
                Some("mp3") | Some("ogg") => "Audio",
                Some("iso") | Some("zip") | Some("rar") => "Archive",
                _ => "Document",
            };
            if expr.matches(name, *size, file_type) {
                files.push(PublishedFile::new(*fid, name, *size));
                if files.len() >= limit {
                    break;
                }
            }
        }
        ClientServerMessage::SearchResult { files }
    }

    /// Disconnects a session, dropping its offers from the index.
    pub fn disconnect(&mut self, session: u64) {
        if let Some(reg) = self.clients.remove(&session) {
            for f in reg.offered {
                if let Some(list) = self.index.get_mut(&f) {
                    list.retain(|&s| s != session);
                    if list.is_empty() {
                        self.index.remove(&f);
                    }
                }
            }
        }
    }

    /// SERVER-STATUS snapshot.
    pub fn status(&self) -> ClientServerMessage {
        ClientServerMessage::ServerStatus {
            users: self.clients.len() as u32,
            files: self.index.len() as u32,
        }
    }

    /// Number of connected clients.
    pub fn clients(&self) -> usize {
        self.clients.len()
    }

    /// Number of indexed files.
    pub fn indexed_files(&self) -> usize {
        self.index.len()
    }
}

impl std::fmt::Debug for SimServer {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("SimServer")
            .field("clients", &self.clients.len())
            .field("indexed_files", &self.index.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::PublishedFile;

    fn server() -> SimServer {
        SimServer::new(ServerInfo::new("srv", Ipv4::new(195, 0, 0, 1), 4661))
    }

    fn addr(last: u8) -> PeerAddr {
        PeerAddr::new(Ipv4::new(80, 1, 1, last), 4662)
    }

    fn offer(ids: &[FileId]) -> ClientServerMessage {
        ClientServerMessage::OfferFiles {
            files: ids.iter().map(|id| PublishedFile::new(*id, "f", 10)).collect(),
        }
    }

    #[test]
    fn login_grants_high_id_to_reachable_clients() {
        let mut s = server();
        let msg = s.login(1, addr(5), true);
        let ClientServerMessage::IdChange { client_id } = msg else { panic!() };
        assert!(client_id.is_high());
        assert_eq!(client_id.ip(), Some(addr(5).ip));
        assert_eq!(s.client_id_of(1), Some(client_id));
        assert_eq!(s.client_id_of(99), None);
    }

    #[test]
    fn login_grants_distinct_low_ids_to_nated_clients() {
        let mut s = server();
        let ClientServerMessage::IdChange { client_id: a } = s.login(1, addr(5), false) else {
            panic!()
        };
        let ClientServerMessage::IdChange { client_id: b } = s.login(2, addr(6), false) else {
            panic!()
        };
        assert!(a.is_low() && b.is_low());
        assert_ne!(a, b);
    }

    #[test]
    fn offers_build_the_index_and_sources_return_providers() {
        let mut s = server();
        let f = FileId::from_seed(b"f");
        s.login(1, addr(1), true);
        s.login(2, addr(2), true);
        s.offer_files(1, &offer(&[f]));
        s.offer_files(2, &offer(&[f]));
        let ClientServerMessage::FoundSources { sources, .. } = s.get_sources(f) else { panic!() };
        assert_eq!(sources.len(), 2);
        assert!(sources.contains(&addr(1)) && sources.contains(&addr(2)));
        assert_eq!(s.provider_sessions(&f), &[1, 2]);
    }

    #[test]
    fn offers_are_idempotent_and_additive() {
        let mut s = server();
        let f1 = FileId::from_seed(b"a");
        let f2 = FileId::from_seed(b"b");
        s.login(1, addr(1), true);
        s.offer_files(1, &offer(&[f1]));
        s.offer_files(1, &offer(&[f1, f2])); // keep-alive with one new file
        assert_eq!(s.provider_sessions(&f1).len(), 1, "no duplicate provider entries");
        assert_eq!(s.indexed_files(), 2);
    }

    #[test]
    fn unknown_file_has_no_sources() {
        let s = server();
        let ClientServerMessage::FoundSources { sources, .. } =
            s.get_sources(FileId::from_seed(b"nope"))
        else {
            panic!()
        };
        assert!(sources.is_empty());
    }

    #[test]
    fn offers_from_unlogged_sessions_dropped() {
        let mut s = server();
        s.offer_files(99, &offer(&[FileId::from_seed(b"f")]));
        assert_eq!(s.indexed_files(), 0);
    }

    #[test]
    fn disconnect_withdraws_offers() {
        let mut s = server();
        let f = FileId::from_seed(b"f");
        s.login(1, addr(1), true);
        s.login(2, addr(2), true);
        s.offer_files(1, &offer(&[f]));
        s.offer_files(2, &offer(&[f]));
        s.disconnect(1);
        assert_eq!(s.provider_sessions(&f), &[2]);
        assert_eq!(s.clients(), 1);
        s.disconnect(2);
        assert_eq!(s.indexed_files(), 0, "empty provider lists pruned");
    }

    #[test]
    fn search_finds_matching_indexed_files() {
        let mut s = server();
        s.login(1, addr(1), true);
        s.offer_files(
            1,
            &ClientServerMessage::OfferFiles {
                files: vec![
                    PublishedFile::new(FileId::from_seed(b"u"), "ubuntu.8.10.iso", 700 << 20),
                    PublishedFile::new(FileId::from_seed(b"m"), "some.song.mp3", 5 << 20),
                ],
            },
        );
        let expr = SearchExpr::keyword("ubuntu");
        let ClientServerMessage::SearchResult { files } = s.search(&expr, 100) else { panic!() };
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].name(), Some("ubuntu.8.10.iso"));
        // Withdrawn offers disappear from results.
        s.disconnect(1);
        let ClientServerMessage::SearchResult { files } = s.search(&expr, 100) else { panic!() };
        assert!(files.is_empty());
    }

    #[test]
    fn search_respects_result_limit() {
        let mut s = server();
        s.login(1, addr(1), true);
        let files: Vec<PublishedFile> = (0..50)
            .map(|i| {
                PublishedFile::new(
                    FileId::from_seed(format!("f{i}").as_bytes()),
                    &format!("linux.{i}.iso"),
                    1,
                )
            })
            .collect();
        s.offer_files(1, &ClientServerMessage::OfferFiles { files });
        let ClientServerMessage::SearchResult { files } =
            s.search(&SearchExpr::keyword("linux"), 10)
        else {
            panic!()
        };
        assert_eq!(files.len(), 10);
    }

    #[test]
    fn status_reports_counts() {
        let mut s = server();
        s.login(1, addr(1), true);
        s.offer_files(1, &offer(&[FileId::from_seed(b"f")]));
        let ClientServerMessage::ServerStatus { users, files } = s.status() else { panic!() };
        assert_eq!((users, files), (1, 1));
    }
}
