//! The server-side capture sink: glue between [`crate::server::SimServer`]
//! and the streaming compressed log in `honeypot::serverlog`.
//!
//! A [`ServerCapture`] owns the [`ServerLogWriter`] plus the step-1 IP
//! hasher the records are anonymised with (the *same* salted hasher the
//! honeypots use, so peer digests are comparable across the two
//! modalities).  The sink is pure observation: it draws no randomness and
//! mutates no simulation state, so a run with capture attached produces a
//! bit-identical honeypot `MeasurementLog` (asserted in
//! `tests/capture.rs`).
//!
//! I/O errors don't abort a multi-week run: the first error is stored,
//! capturing stops, and [`ServerCapture::finish`] surfaces it.

use std::io;
use std::path::Path;

use edonkey_proto::Ipv4;
use honeypot::anonymize::{IpHash, IpHasher};
use honeypot::serverlog::{ServerLogStats, ServerLogWriter, ServerRecord};

use crate::config::ServerCaptureConfig;

/// Streaming sink for server-side query records.
pub struct ServerCapture {
    writer: ServerLogWriter,
    hasher: IpHasher,
    error: Option<io::Error>,
}

impl ServerCapture {
    /// Opens a capture under `dir` with the given knobs.  The hasher is a
    /// placeholder until the world installs its own seeded instance via
    /// [`Self::set_hasher`].
    pub fn create(dir: &Path, cfg: &ServerCaptureConfig) -> io::Result<Self> {
        Ok(ServerCapture {
            writer: ServerLogWriter::create(dir, cfg.frame_records, cfg.segment_records)?,
            hasher: IpHasher::from_seed(0),
            error: None,
        })
    }

    /// Installs the run's step-1 anonymisation hasher (the world's, so
    /// server and honeypot peer digests coincide).
    pub fn set_hasher(&mut self, hasher: IpHasher) {
        self.hasher = hasher;
    }

    /// Step-1 anonymises a client IP.
    pub fn hash_ip(&self, ip: Ipv4) -> IpHash {
        self.hasher.hash(ip)
    }

    /// Appends one record.  After a write error the capture goes quiet
    /// (the error resurfaces from [`Self::finish`]).
    pub fn emit(&mut self, record: &ServerRecord) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.push(record) {
            self.error = Some(e);
        }
    }

    /// Records emitted so far.
    pub fn records(&self) -> u64 {
        self.writer.records()
    }

    /// Flushes and closes the capture, returning its statistics (or the
    /// first error encountered while writing).
    pub fn finish(self) -> io::Result<ServerLogStats> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.finish()
    }
}

impl std::fmt::Debug for ServerCapture {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("ServerCapture")
            .field("records", &self.records())
            .field("errored", &self.error.is_some())
            .finish()
    }
}
