//! The server-side capture sink: glue between [`crate::server::SimServer`]
//! and the streaming compressed log in `honeypot::serverlog`.
//!
//! A [`ServerCapture`] owns the [`ServerLogWriter`] plus the step-1 IP
//! hasher the records are anonymised with (the *same* salted hasher the
//! honeypots use, so peer digests are comparable across the two
//! modalities).  The sink is pure observation: it draws no randomness and
//! mutates no simulation state, so a run with capture attached produces a
//! bit-identical honeypot `MeasurementLog` (asserted in
//! `tests/capture.rs`).
//!
//! I/O errors don't abort a multi-week run: the first error disables the
//! capture (the measurement itself continues untouched), every record
//! arriving after it is counted as dropped, and [`ServerCapture::finish`]
//! still returns the statistics of what made it to disk — degradation is
//! a *metric* ([`ServerCapture::degraded`]), not a run failure.

use std::io;
use std::path::Path;

use edonkey_proto::Ipv4;
use honeypot::anonymize::{IpHash, IpHasher};
use honeypot::serverlog::{ServerLogStats, ServerLogWriter, ServerRecord};

use crate::config::ServerCaptureConfig;

/// Streaming sink for server-side query records.
pub struct ServerCapture {
    writer: ServerLogWriter,
    hasher: IpHasher,
    error: Option<io::Error>,
    dropped: u64,
}

impl ServerCapture {
    /// Opens a capture under `dir` with the given knobs.  The hasher is a
    /// placeholder until the world installs its own seeded instance via
    /// [`Self::set_hasher`].
    pub fn create(dir: &Path, cfg: &ServerCaptureConfig) -> io::Result<Self> {
        Ok(ServerCapture {
            writer: ServerLogWriter::create(dir, cfg.frame_records, cfg.segment_records)?,
            hasher: IpHasher::from_seed(0),
            error: None,
            dropped: 0,
        })
    }

    /// Chaos hook: arms a one-shot write failure on the underlying log
    /// writer, so degraded capture can be exercised without a full disk.
    pub fn inject_write_fault(&mut self) {
        self.writer.inject_write_fault();
    }

    /// Installs the run's step-1 anonymisation hasher (the world's, so
    /// server and honeypot peer digests coincide).
    pub fn set_hasher(&mut self, hasher: IpHasher) {
        self.hasher = hasher;
    }

    /// Step-1 anonymises a client IP.
    pub fn hash_ip(&self, ip: Ipv4) -> IpHash {
        self.hasher.hash(ip)
    }

    /// Appends one record.  After a write error the capture goes quiet;
    /// later records are counted in [`Self::dropped`].
    pub fn emit(&mut self, record: &ServerRecord) {
        if self.error.is_some() {
            self.dropped += 1;
            return;
        }
        if let Err(e) = self.writer.push(record) {
            self.error = Some(e);
        }
    }

    /// Records emitted so far.
    pub fn records(&self) -> u64 {
        self.writer.records()
    }

    /// Whether a write error disabled the capture.
    pub fn degraded(&self) -> bool {
        self.error.is_some()
    }

    /// Records that arrived after the capture went quiet.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flushes and closes the capture, returning its statistics.  A
    /// degraded capture still reports the flushed prefix (check
    /// [`Self::degraded`] before consuming): losing the server-side log is
    /// a degradation, never a reason to lose the honeypot measurement.
    pub fn finish(self) -> io::Result<ServerLogStats> {
        if self.error.is_some() {
            return Ok(self.writer.stats());
        }
        self.writer.finish()
    }
}

impl std::fmt::Debug for ServerCapture {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("ServerCapture")
            .field("records", &self.records())
            .field("errored", &self.error.is_some())
            .finish()
    }
}
