//! Synthetic peer identities.
//!
//! Every simulated peer carries the metadata a honeypot logs: an IPv4
//! address (hashed before storage), TCP port, a user hash stable across
//! sessions, a client name and version, and a high/low ID status.  The
//! generator avoids reserved address space and keeps IPs unique so that
//! "distinct peers" is well-defined.

use edonkey_proto::{ClientId, Ipv4, UserId};
use netsim::Rng;

/// Client software names observed in the wild circa 2008, used as the peer
/// name pool.
pub const CLIENT_NAMES: &[&str] = &[
    "eMule",
    "aMule",
    "eMule Plus",
    "MLDonkey",
    "Shareaza",
    "lphant",
    "eDonkey2000",
    "Hydranode",
    "Jubster",
    "eMule Xtreme",
];

/// Client version tags matching the name pool's era.
pub const CLIENT_VERSIONS: &[u32] = &[0x46, 0x47, 0x48, 0x49, 0x4A, 0x3C, 0x3D, 0x50];

/// One peer's immutable identity.
#[derive(Clone, Copy, Debug)]
pub struct PeerIdentity {
    pub ip: Ipv4,
    pub port: u16,
    pub user_id: UserId,
    pub client_id: ClientId,
    /// Index into [`CLIENT_NAMES`].
    pub name_idx: u8,
    pub version: u32,
}

impl PeerIdentity {
    /// The client name string.
    pub fn name(&self) -> &'static str {
        CLIENT_NAMES[self.name_idx as usize]
    }
}

/// Deterministic identity factory.
pub struct IdentityFactory {
    rng: Rng,
    /// Fraction of peers behind NAT (low ID).  Studies of 2008-era eDonkey
    /// populations put this around 30–40 %.
    pub low_id_fraction: f64,
    base_serial: u64,
    next_serial: u64,
}

/// Serial-space stride between lanes of a sharded run: each lane mints
/// identities from its own `2^26`-wide slice of the bijective scramble
/// domain, so user hashes are globally unique and cross-lane IP collisions
/// are no more likely than within a single factory (the first-octet fold
/// makes the serial→IP map lossy either way; a collision reads as one
/// NAT-shared address, as on the real network).  64 lanes
/// (`MAX_HONEYPOTS`) × 2^26 tiles the 32-bit domain exactly.
pub const LANE_SERIAL_STRIDE: u64 = 1 << 26;

impl IdentityFactory {
    pub fn new(rng: Rng) -> Self {
        IdentityFactory { rng, low_id_fraction: 0.35, base_serial: 0, next_serial: 0 }
    }

    /// A factory whose serials start at `base` — used by lane-sharded
    /// execution to give each lane a disjoint identity space.
    pub fn with_base(rng: Rng, base: u64) -> Self {
        IdentityFactory { rng, low_id_fraction: 0.35, base_serial: base, next_serial: base }
    }

    /// Creates the `n`-th peer identity.  IPs are unique by construction:
    /// the serial number is bijectively scrambled into the address space.
    pub fn create(&mut self) -> PeerIdentity {
        let serial = self.next_serial;
        self.next_serial += 1;
        // Feistel-ish scramble of the serial into 30 bits, then mapped into
        // public-looking space (avoid 0.x, 10.x, 127.x, 192.168.x, ≥224.x).
        let scrambled = scramble30(serial as u32);
        let a = 1 + (scrambled >> 24) % 222; // 1..=222
        let a = match a {
            10 | 127 | 192 => a + 1,
            x => x,
        };
        let ip =
            Ipv4::new(a as u8, (scrambled >> 16) as u8, (scrambled >> 8) as u8, scrambled as u8);
        let low = self.rng.chance(self.low_id_fraction);
        // Note the protocol quirk: an address ending in .0 encodes (LE) to
        // a value below 2^24, so a directly-reachable peer at x.y.z.0 is
        // numerically indistinguishable from a low ID — exactly as on the
        // real network.  ~1/256 of "reachable" identities land there.
        let client_id = if low {
            ClientId::low(1 + (serial as u32 % (edonkey_proto::ids::LOW_ID_LIMIT - 1)))
        } else {
            ClientId::high_from_ip(ip)
        };
        PeerIdentity {
            ip,
            port: 4660 + (self.rng.below(16)) as u16,
            user_id: UserId::from_seed(format!("peer/{serial}").as_bytes()),
            client_id,
            name_idx: self.rng.below(CLIENT_NAMES.len() as u64) as u8,
            version: *self.rng.choose(CLIENT_VERSIONS),
        }
    }

    /// Number of identities created so far.
    pub fn created(&self) -> u64 {
        self.next_serial - self.base_serial
    }
}

/// A bijective scramble of 32-bit values (two rounds of xorshift-multiply,
/// both invertible), keeping serial→IP collision-free.
fn scramble30(x: u32) -> u32 {
    let mut v = x;
    v ^= v >> 16;
    v = v.wrapping_mul(0x7FEB_352D);
    v ^= v >> 15;
    v = v.wrapping_mul(0x846C_A68B);
    v ^= v >> 16;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ips_are_unique() {
        let mut f = IdentityFactory::new(Rng::seed_from(1));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100_000 {
            assert!(seen.insert(f.create().ip), "IP collision");
        }
        assert_eq!(f.created(), 100_000);
    }

    #[test]
    fn ips_avoid_reserved_first_octet() {
        let mut f = IdentityFactory::new(Rng::seed_from(2));
        for _ in 0..10_000 {
            let [a, ..] = f.create().ip.octets();
            assert!((1..=223).contains(&a), "first octet {a}");
            assert!(a != 10 && a != 127 && a != 192, "reserved octet {a}");
        }
    }

    #[test]
    fn low_id_fraction_respected() {
        let mut f = IdentityFactory::new(Rng::seed_from(3));
        f.low_id_fraction = 0.5;
        let low = (0..10_000).filter(|_| f.create().client_id.is_low()).count();
        assert!((4_500..5_500).contains(&low), "low-ID count {low}");
    }

    #[test]
    fn high_id_encodes_ip() {
        let mut f = IdentityFactory::new(Rng::seed_from(4));
        f.low_id_fraction = 0.0;
        let mut highs = 0;
        for _ in 0..500 {
            let p = f.create();
            if p.client_id.is_high() {
                highs += 1;
                assert_eq!(p.client_id.ip(), Some(p.ip));
            } else {
                // The x.y.z.0 quirk: addresses ending in .0 encode below
                // 2^24 and read as low IDs.
                assert_eq!(p.ip.octets()[3], 0, "only .0 hosts may read as low");
            }
        }
        assert!(highs > 450, "almost all reachable peers carry high IDs: {highs}");
    }

    #[test]
    fn user_ids_stable_and_distinct() {
        let mut f1 = IdentityFactory::new(Rng::seed_from(5));
        let mut f2 = IdentityFactory::new(Rng::seed_from(99));
        let a1 = f1.create();
        let a2 = f2.create();
        // User hash depends only on the serial, not the RNG: the same peer
        // across re-runs keeps its identity.
        assert_eq!(a1.user_id, a2.user_id);
        assert_ne!(f1.create().user_id, a1.user_id);
    }

    #[test]
    fn names_and_versions_from_pools() {
        let mut f = IdentityFactory::new(Rng::seed_from(6));
        for _ in 0..1_000 {
            let p = f.create();
            assert!(CLIENT_NAMES.get(p.name_idx as usize).is_some());
            assert!(CLIENT_VERSIONS.contains(&p.version));
            assert!((4660..4676).contains(&p.port));
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn disjoint_serial_bases_never_collide_on_ip_or_user_id() {
        let mut a = IdentityFactory::new(Rng::seed_from(1));
        let mut b = IdentityFactory::with_base(Rng::seed_from(1), LANE_SERIAL_STRIDE);
        let mut ips = std::collections::HashSet::new();
        let mut users = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let pa = a.create();
            let pb = b.create();
            assert!(ips.insert(pa.ip) && ips.insert(pb.ip), "cross-lane IP collision");
            assert!(users.insert(pa.user_id) && users.insert(pb.user_id));
        }
        assert_eq!(a.created(), 10_000);
        assert_eq!(b.created(), 10_000, "created() counts from the base");
    }

    #[test]
    fn scramble_is_injective_on_a_sample() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..200_000u32 {
            assert!(seen.insert(scramble30(x)));
        }
    }
}
