//! The synthetic file catalog.
//!
//! The live eDonkey network carries hundreds of millions of files; the
//! measurement only ever observes (a) the files honeypots advertise and
//! (b) the shared-file lists of contacting peers.  The catalog models that
//! universe: every file has a stable [`edonkey_proto::FileId`], a name
//! generated from keyword pools, a size drawn from a type-dependent mixture
//! (calibrated so that the *average* size of observed distinct files is a
//! few hundred MB, as implied by Table I: 9 TB / 28,007 files ≈ 320 MB), and
//! a popularity weight (heavy-tailed, so the best advertised file attracts
//! thousands of peers and the worst a handful — Figs. 11–12).

use edonkey_proto::FileId;
use netsim::dist::log_normal;
use netsim::{Rng, Zipf};
use serde::{Deserialize, Serialize};

/// Broad content classes with distinct size and naming profiles.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FileClass {
    Video,
    Audio,
    Archive,
    Document,
}

impl FileClass {
    /// File-name extension for the class.
    pub fn extension(&self) -> &'static str {
        match self {
            FileClass::Video => "avi",
            FileClass::Audio => "mp3",
            FileClass::Archive => "iso",
            FileClass::Document => "pdf",
        }
    }
}

/// One catalog entry.
#[derive(Clone, Debug)]
pub struct CatalogFile {
    pub id: FileId,
    pub name: String,
    pub size: u64,
    pub class: FileClass,
    /// Relative popularity weight (not normalised).
    pub popularity: f64,
}

/// Catalog generation parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Number of files in the universe.
    pub n_files: usize,
    /// Zipf exponent of the rank-based component of popularity.
    pub zipf_exponent: f64,
    /// σ of the per-file log-normal popularity jitter.  The product of the
    /// Zipf rank term and this jitter yields the wide per-file spread of
    /// Figs. 11–12 (13,373 peers for the best file, 2 for the worst).
    pub popularity_sigma: f64,
    /// Class mix as (video, audio, archive, document) weights.
    pub class_weights: [f64; 4],
    /// Number of outlier "hit" files whose popularity is boosted — the
    /// extreme head of Fig. 12 (best file: 13,373 peers).
    pub hit_count: usize,
    /// Popularity multiplier applied to hits.
    pub hit_multiplier: f64,
    /// Fraction of near-dead files (shared by peers, wanted by almost
    /// nobody) — the extreme tail of Fig. 12 (worst file: 2 peers) and the
    /// reason Table I's distinct-file counts sit well below the universe
    /// size.
    pub dead_fraction: f64,
    /// Popularity multiplier applied to dead files.
    pub dead_multiplier: f64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            n_files: 50_000,
            zipf_exponent: 0.45,
            popularity_sigma: 1.1,
            class_weights: [0.40, 0.28, 0.10, 0.22],
            hit_count: 0,
            hit_multiplier: 1.0,
            dead_fraction: 0.0,
            dead_multiplier: 1.0,
        }
    }
}

/// The generated catalog.
pub struct Catalog {
    files: Vec<CatalogFile>,
    /// Cumulative popularity (for weighted sampling over the whole
    /// catalog).
    cumulative: Vec<f64>,
}

const ADJECTIVES: &[&str] = &[
    "final",
    "new",
    "complete",
    "ultimate",
    "best",
    "full",
    "original",
    "extended",
    "special",
    "classic",
    "live",
    "limited",
    "deluxe",
    "rare",
    "official",
    "uncut",
    "remastered",
    "bonus",
    "golden",
    "platinum",
];

const NOUNS: &[&str] = &[
    "concert",
    "album",
    "movie",
    "episode",
    "season",
    "mix",
    "collection",
    "soundtrack",
    "documentary",
    "show",
    "session",
    "track",
    "record",
    "film",
    "series",
    "compilation",
    "anthology",
    "release",
    "edition",
    "set",
];

const SOURCES: &[&str] =
    &["dvdrip", "webrip", "cdrip", "vinyl", "radio", "tv", "studio", "bootleg", "promo", "retail"];

impl Catalog {
    /// Generates the catalog deterministically from `rng`.
    pub fn generate(config: &CatalogConfig, rng: &mut Rng) -> Self {
        assert!(config.n_files > 0, "catalog cannot be empty");
        let zipf = Zipf::new(config.n_files, config.zipf_exponent);
        let class_cum: Vec<f64> = config
            .class_weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let class_total = *class_cum.last().expect("4 classes");

        let mut files = Vec::with_capacity(config.n_files);
        let mut cumulative = Vec::with_capacity(config.n_files);
        let mut acc = 0.0;
        for rank in 0..config.n_files {
            let x = rng.f64() * class_total;
            let class = match class_cum.iter().position(|&c| x < c).unwrap_or(3) {
                0 => FileClass::Video,
                1 => FileClass::Audio,
                2 => FileClass::Archive,
                _ => FileClass::Document,
            };
            let size = Self::sample_size(rng, class);
            let name = Self::sample_name(rng, class, rank);
            let id = FileId::from_seed(format!("catalog/{rank}/{name}").as_bytes());
            // Rank-based head plus log-normal jitter: a mid-rank file can
            // still be a sleeper hit, and tail files can be near-dead.
            let jitter = log_normal(rng, 0.0, config.popularity_sigma);
            let mut popularity = zipf.probability(rank) * jitter;
            if rng.chance(config.dead_fraction) {
                popularity *= config.dead_multiplier;
            }
            acc += popularity;
            cumulative.push(acc);
            files.push(CatalogFile { id, name, size, class, popularity });
        }
        // Promote a few randomly chosen files to outlier hits, then rebuild
        // the cumulative weights.
        if config.hit_count > 0 {
            for idx in rng.sample_indices(config.n_files, config.hit_count.min(config.n_files)) {
                files[idx].popularity *= config.hit_multiplier;
            }
            let mut acc = 0.0;
            for (f, c) in files.iter().zip(cumulative.iter_mut()) {
                acc += f.popularity;
                *c = acc;
            }
        }
        Catalog { files, cumulative }
    }

    fn sample_size(rng: &mut Rng, class: FileClass) -> u64 {
        // Log-normal sizes per class; parameters chosen so the catalog-wide
        // mean lands near the ~330 MB/file implied by Table I.
        // Sizes are capped below 4 GB: the classic eDonkey wire protocol
        // carries 32-bit file offsets, so larger files did not circulate.
        let (mu, sigma, min, max) = match class {
            // ~700 MB typical CD-image rip, up to a few GB.
            FileClass::Video => (20.3, 0.55, 50 << 20, 3_u64 << 30),
            // ~5 MB song.
            FileClass::Audio => (15.4, 0.6, 1 << 20, 200 << 20),
            // ~700 MB ISO.
            FileClass::Archive => (20.4, 0.7, 10 << 20, 3_u64 << 30),
            // ~2 MB document.
            FileClass::Document => (14.5, 1.0, 16 << 10, 100 << 20),
        };
        (log_normal(rng, mu, sigma) as u64).clamp(min, max)
    }

    fn sample_name(rng: &mut Rng, class: FileClass, rank: usize) -> String {
        let adj = rng.choose(ADJECTIVES);
        let noun = rng.choose(NOUNS);
        let src = rng.choose(SOURCES);
        // The rank suffix keeps names unique-ish, standing in for the
        // artist/title tokens of real shared files.
        format!("{adj}.{noun}.{rank:05}.{src}.{}", class.extension())
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Access a file by catalog index.
    pub fn file(&self, idx: u32) -> &CatalogFile {
        &self.files[idx as usize]
    }

    /// Draws one file index weighted by popularity.
    pub fn sample_by_popularity(&self, rng: &mut Rng) -> u32 {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.f64() * total;
        self.cumulative.partition_point(|&c| c <= x).min(self.files.len() - 1) as u32
    }

    /// Draws `k` distinct indices weighted by popularity (rejection over
    /// [`Catalog::sample_by_popularity`], falling back to sequential fill
    /// for large `k`).
    pub fn sample_distinct_by_popularity(&self, rng: &mut Rng, k: usize) -> Vec<u32> {
        let k = k.min(self.files.len());
        let mut seen = std::collections::HashSet::with_capacity(k * 2);
        let mut out = Vec::with_capacity(k);
        let mut tries = 0usize;
        while out.len() < k && tries < k * 40 {
            tries += 1;
            let idx = self.sample_by_popularity(rng);
            if seen.insert(idx) {
                out.push(idx);
            }
        }
        // Pathological case (tiny catalog, huge k): fill with unused
        // indices.
        if out.len() < k {
            for idx in 0..self.files.len() as u32 {
                if out.len() == k {
                    break;
                }
                if seen.insert(idx) {
                    out.push(idx);
                }
            }
        }
        out
    }

    /// Total popularity mass of a set of files (used by the arrival process
    /// to scale peer rates with the advertised set).
    pub fn popularity_sum(&self, idxs: impl Iterator<Item = u32>) -> f64 {
        idxs.map(|i| self.files[i as usize].popularity).sum()
    }

    /// Mean file size over the whole catalog (calibration diagnostics).
    pub fn mean_size(&self) -> f64 {
        self.files.iter().map(|f| f.size as f64).sum::<f64>() / self.files.len() as f64
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("Catalog").field("files", &self.files.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog(n: usize) -> Catalog {
        let mut rng = Rng::seed_from(1);
        Catalog::generate(&CatalogConfig { n_files: n, ..Default::default() }, &mut rng)
    }

    #[test]
    fn deterministic_generation() {
        let a = catalog(100);
        let b = catalog(100);
        for i in 0..100 {
            assert_eq!(a.file(i).id, b.file(i).id);
            assert_eq!(a.file(i).size, b.file(i).size);
        }
    }

    #[test]
    fn ids_are_distinct() {
        let c = catalog(1_000);
        let ids: std::collections::HashSet<_> = (0..1_000).map(|i| c.file(i).id).collect();
        assert_eq!(ids.len(), 1_000);
    }

    #[test]
    fn mean_size_in_table1_ballpark() {
        let c = catalog(20_000);
        let mean = c.mean_size();
        // Table I implies ≈320–340 MB per distinct file; accept a broad
        // band since observation re-weights towards popular files.
        assert!(
            (100e6..800e6).contains(&mean),
            "catalog mean size {mean:.0} B outside plausible band"
        );
    }

    #[test]
    fn popularity_sampling_prefers_popular_files() {
        let c = catalog(1_000);
        let mut rng = Rng::seed_from(2);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..50_000 {
            counts[c.sample_by_popularity(&mut rng) as usize] += 1;
        }
        // The most popular file must be sampled far more often than the
        // median file.
        let best = (0..1_000)
            .max_by(|&a, &b| {
                c.file(a as u32).popularity.partial_cmp(&c.file(b as u32).popularity).unwrap()
            })
            .unwrap();
        let mut sorted: Vec<u32> = counts.clone();
        sorted.sort_unstable();
        assert!(counts[best] > sorted[500] * 5, "head not heavy enough");
    }

    #[test]
    fn sample_distinct_yields_distinct() {
        let c = catalog(200);
        let mut rng = Rng::seed_from(3);
        let s = c.sample_distinct_by_popularity(&mut rng, 50);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn sample_distinct_handles_k_near_n() {
        let c = catalog(20);
        let mut rng = Rng::seed_from(4);
        let s = c.sample_distinct_by_popularity(&mut rng, 20);
        assert_eq!(s.len(), 20);
        let s = c.sample_distinct_by_popularity(&mut rng, 50);
        assert_eq!(s.len(), 20, "clamped to catalog size");
    }

    #[test]
    fn popularity_sum_adds_up() {
        let c = catalog(100);
        let total = c.popularity_sum(0..100u32);
        let head = c.popularity_sum(0..50u32);
        let tail = c.popularity_sum(50..100u32);
        assert!((head + tail - total).abs() < 1e-12);
        assert!(total > 0.0);
    }

    #[test]
    fn names_carry_class_extension() {
        let c = catalog(500);
        for i in 0..500 {
            let f = c.file(i);
            assert!(f.name.ends_with(f.class.extension()), "{}", f.name);
        }
    }

    #[test]
    fn hits_and_dead_tail_shape_the_distribution() {
        let mut rng = Rng::seed_from(9);
        let config = CatalogConfig {
            n_files: 5_000,
            hit_count: 3,
            hit_multiplier: 50.0,
            dead_fraction: 0.3,
            dead_multiplier: 0.001,
            ..Default::default()
        };
        let c = Catalog::generate(&config, &mut rng);
        let mut pops: Vec<f64> = (0..5_000).map(|i| c.file(i).popularity).collect();
        pops.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
        // The boosted head towers over the median; the dead tail is far
        // below it.
        assert!(pops[0] / pops[2_500] > 50.0, "head/median {}", pops[0] / pops[2_500]);
        assert!(pops[2_500] / pops[4_999] > 100.0, "median/tail {}", pops[2_500] / pops[4_999]);
        // Sampling must remain functional with the extreme weights.
        let s = c.sample_distinct_by_popularity(&mut rng, 100);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn sizes_respect_class_bounds() {
        let c = catalog(2_000);
        for i in 0..2_000 {
            let f = c.file(i);
            match f.class {
                FileClass::Audio => assert!(f.size <= 200 << 20),
                FileClass::Video => assert!(f.size >= 50 << 20),
                _ => {}
            }
        }
    }
}
