//! Genuine-peer state, struct-of-arrays.
//!
//! A simulated peer used to be a heap object with four private `Vec`s;
//! at million-peer scale the allocator traffic and pointer-chasing
//! dominated the hot loop.  [`PeerTable`] stores the population as
//! parallel columns instead — one `Vec` per field, indexed by the peer
//! number the events already carry — and flattens the per-peer lists
//! (wanted files, shared files, providers, contact order) into shared
//! append-only arenas addressed by offset ranges.  A peer costs ~100
//! bytes of column space plus its arena slices; nothing is allocated per
//! peer after [`PeerTable::push`].
//!
//! The heavy lifting (sampling decisions, message construction) happens
//! in [`crate::world`]; only peers that end up contacting at least one
//! honeypot are materialised — the rest of the eDonkey population is
//! invisible to the measurement and therefore never allocated.

use netsim::SimTime;

use crate::identity::PeerIdentity;

/// Maximum honeypots per scenario (peer-side blacklists and shared-list
/// bookkeeping are u64 bitmasks).
pub const MAX_HONEYPOTS: usize = 64;

/// Phase of a peer↔honeypot session (paper Fig. 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionState {
    /// About to send HELLO.
    Greet,
    /// Got HELLO-ANSWER; about to send START-UPLOAD.
    Upload,
    /// Upload accepted; requesting parts.
    Request,
}

/// One in-flight session with a honeypot.
#[derive(Clone, Copy, Debug)]
pub struct Session {
    /// Honeypot index.
    pub hp: u8,
    /// Catalog index of the file the peer asks for.
    pub file: u32,
    pub state: SessionState,
    /// Remaining REQUEST-PARTS budget (random-content pacing).
    pub budget: u8,
    /// Consecutive unanswered REQUEST-PARTS so far.
    pub timeouts: u8,
    /// The session stops after HELLO (alive probe).
    pub hello_only: bool,
    /// The session proceeds past START-UPLOAD into part requests.
    pub do_request: bool,
    /// Connection token (unique per session).
    pub conn: u64,
    /// Next block triple to request.
    pub block_cursor: u32,
    /// Whether any SENDING-PART arrived in this session.
    pub delivered: bool,
}

/// How a finished session ended, as seen by the peer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionOutcome {
    /// Stopped after HELLO by design.
    HelloOnly,
    /// Ended without a verdict (patience ran out).
    Inconclusive,
    /// The peer concluded the source is fake/dead and blacklists it.
    Detected,
    /// The honeypot never answered HELLO (offline source).
    NoAnswer,
}

/// Per-peer boolean traits, packed into one byte per peer.
mod flag {
    /// Probe-only client: greets sources but never requests uploads.
    pub const PROBE_ONLY: u8 = 1 << 0;
    /// Whether the client exposes its shared list when asked.
    pub const SHARES_LIST: u8 = 1 << 1;
    /// Automated client (Figs. 8–9 heavy tail).
    pub const ROBOT: u8 = 1 << 2;
}

/// Everything needed to materialise one peer; the list fields are
/// borrowed and copied into the table's arenas by [`PeerTable::push`].
pub struct NewPeer<'a> {
    pub identity: PeerIdentity,
    pub probe_only: bool,
    pub shares_list: bool,
    pub robot: bool,
    /// Catalog indices of the files this peer itself shares.
    pub shared_files: &'a [u32],
    /// Catalog indices of advertised files the peer wants.
    pub wanted: &'a [u32],
    /// Honeypot indices in the peer's provider subset.
    pub providers: &'a [u8],
    /// The peer stops retrying after this instant.
    pub interest_until: SimTime,
}

/// The peer population, one column per field.
///
/// Arena columns: `wanted`, `shared_files` and `providers` are immutable
/// after `push` and addressed by `bounds[i]..bounds[i + 1]`.  The contact
/// `order` of the current round is mutable but never longer than the
/// provider list, so it reuses the provider range's offsets with its own
/// per-peer length.
#[derive(Default)]
pub struct PeerTable {
    identities: Vec<PeerIdentity>,
    flags: Vec<u8>,
    interest_until: Vec<SimTime>,
    /// Personal blacklist bitmask over honeypot indices.
    blacklist: Vec<u64>,
    /// Honeypots that already received this peer's shared list (bitmask).
    shared_sent: Vec<u64>,
    /// Cumulative hard failures across sessions.
    failures: Vec<u8>,
    /// Retry rounds completed so far.
    rounds: Vec<u16>,
    /// Position within the current contact order.
    pos: Vec<u8>,
    /// In-flight session, if any.
    sessions: Vec<Option<Session>>,
    wanted_bounds: Vec<u32>,
    wanted_arena: Vec<u32>,
    shared_bounds: Vec<u32>,
    shared_arena: Vec<u32>,
    provider_bounds: Vec<u32>,
    provider_arena: Vec<u8>,
    /// Contact order for the current round; shares `provider_bounds`.
    order_arena: Vec<u8>,
    order_len: Vec<u8>,
}

impl PeerTable {
    pub fn new() -> Self {
        PeerTable {
            wanted_bounds: vec![0],
            shared_bounds: vec![0],
            provider_bounds: vec![0],
            ..PeerTable::default()
        }
    }

    /// Number of materialised peers.
    pub fn len(&self) -> usize {
        self.identities.len()
    }

    pub fn is_empty(&self) -> bool {
        self.identities.is_empty()
    }

    /// Appends a peer, copying its lists into the arenas; returns its
    /// index.
    pub fn push(&mut self, p: NewPeer<'_>) -> u32 {
        debug_assert!(p.providers.len() <= MAX_HONEYPOTS);
        let idx = self.identities.len() as u32;
        self.identities.push(p.identity);
        let mut flags = 0u8;
        if p.probe_only {
            flags |= flag::PROBE_ONLY;
        }
        if p.shares_list {
            flags |= flag::SHARES_LIST;
        }
        if p.robot {
            flags |= flag::ROBOT;
        }
        self.flags.push(flags);
        self.interest_until.push(p.interest_until);
        self.blacklist.push(0);
        self.shared_sent.push(0);
        self.failures.push(0);
        self.rounds.push(0);
        self.pos.push(0);
        self.sessions.push(None);
        self.wanted_arena.extend_from_slice(p.wanted);
        self.wanted_bounds.push(self.wanted_arena.len() as u32);
        self.shared_arena.extend_from_slice(p.shared_files);
        self.shared_bounds.push(self.shared_arena.len() as u32);
        self.provider_arena.extend_from_slice(p.providers);
        // The order slice shares the provider range: a round's contact
        // order is a subset of the providers, so the capacity always fits.
        self.order_arena.resize(self.provider_arena.len(), 0);
        self.provider_bounds.push(self.provider_arena.len() as u32);
        self.order_len.push(0);
        idx
    }

    fn range(bounds: &[u32], i: u32) -> std::ops::Range<usize> {
        bounds[i as usize] as usize..bounds[i as usize + 1] as usize
    }

    pub fn identity(&self, i: u32) -> &PeerIdentity {
        &self.identities[i as usize]
    }

    pub fn probe_only(&self, i: u32) -> bool {
        self.flags[i as usize] & flag::PROBE_ONLY != 0
    }

    pub fn shares_list(&self, i: u32) -> bool {
        self.flags[i as usize] & flag::SHARES_LIST != 0
    }

    pub fn robot(&self, i: u32) -> bool {
        self.flags[i as usize] & flag::ROBOT != 0
    }

    pub fn wanted(&self, i: u32) -> &[u32] {
        &self.wanted_arena[Self::range(&self.wanted_bounds, i)]
    }

    pub fn shared_files(&self, i: u32) -> &[u32] {
        &self.shared_arena[Self::range(&self.shared_bounds, i)]
    }

    pub fn providers(&self, i: u32) -> &[u8] {
        &self.provider_arena[Self::range(&self.provider_bounds, i)]
    }

    /// Whether the peer has personally blacklisted honeypot `hp`.
    pub fn is_blacklisted(&self, i: u32, hp: u8) -> bool {
        self.blacklist[i as usize] & (1u64 << hp) != 0
    }

    /// Adds `hp` to the peer's personal blacklist.
    pub fn blacklist_hp(&mut self, i: u32, hp: u8) {
        self.blacklist[i as usize] |= 1u64 << hp;
    }

    /// Whether the shared list was already sent to `hp`.
    pub fn shared_sent_to(&self, i: u32, hp: u8) -> bool {
        self.shared_sent[i as usize] & (1u64 << hp) != 0
    }

    pub fn mark_shared_sent(&mut self, i: u32, hp: u8) {
        self.shared_sent[i as usize] |= 1u64 << hp;
    }

    /// Whether every provider is personally blacklisted (the peer has
    /// nothing left to try).
    pub fn all_blacklisted(&self, i: u32) -> bool {
        let mask = self.blacklist[i as usize];
        self.providers(i).iter().all(|&hp| mask & (1u64 << hp) != 0)
    }

    /// Whether the peer abandons the measurement entirely: interest
    /// expired, too many failures (robots never abandon), or nothing left
    /// to contact.
    pub fn done(&self, i: u32, now: SimTime, abandon_failures: u32) -> bool {
        if self.robot(i) {
            return false;
        }
        now >= self.interest_until[i as usize]
            || u32::from(self.failures[i as usize]) >= abandon_failures
            || self.all_blacklisted(i)
    }

    pub fn bump_failures(&mut self, i: u32) {
        let f = &mut self.failures[i as usize];
        *f = f.saturating_add(1);
    }

    pub fn rounds(&self, i: u32) -> u16 {
        self.rounds[i as usize]
    }

    pub fn bump_rounds(&mut self, i: u32) {
        let r = &mut self.rounds[i as usize];
        *r = r.saturating_add(1);
    }

    pub fn pos(&self, i: u32) -> u8 {
        self.pos[i as usize]
    }

    pub fn bump_pos(&mut self, i: u32) {
        let p = &mut self.pos[i as usize];
        *p = p.saturating_add(1);
    }

    pub fn session(&self, i: u32) -> Option<Session> {
        self.sessions[i as usize]
    }

    pub fn session_mut(&mut self, i: u32) -> &mut Option<Session> {
        &mut self.sessions[i as usize]
    }

    pub fn take_session(&mut self, i: u32) -> Option<Session> {
        self.sessions[i as usize].take()
    }

    pub fn order(&self, i: u32) -> &[u8] {
        let r = Self::range(&self.provider_bounds, i);
        &self.order_arena[r.start..r.start + self.order_len[i as usize] as usize]
    }

    /// Installs a new contact order (must fit the provider range) and
    /// resets the round cursor and session.
    pub fn set_order(&mut self, i: u32, order: &[u8]) {
        let r = Self::range(&self.provider_bounds, i);
        assert!(order.len() <= r.len(), "order must be a subset of the providers");
        self.order_arena[r.start..r.start + order.len()].copy_from_slice(order);
        self.order_len[i as usize] = order.len() as u8;
        self.pos[i as usize] = 0;
        self.sessions[i as usize] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::IdentityFactory;
    use netsim::Rng;

    fn table() -> PeerTable {
        let mut f = IdentityFactory::new(Rng::seed_from(1));
        let mut t = PeerTable::new();
        t.push(NewPeer {
            identity: f.create(),
            probe_only: false,
            shares_list: true,
            robot: false,
            shared_files: &[1, 2],
            wanted: &[0],
            providers: &[0, 1, 2],
            interest_until: SimTime::from_days(1),
        });
        t
    }

    #[test]
    fn columns_round_trip() {
        let mut f = IdentityFactory::new(Rng::seed_from(2));
        let mut t = PeerTable::new();
        let a = t.push(NewPeer {
            identity: f.create(),
            probe_only: true,
            shares_list: false,
            robot: false,
            shared_files: &[],
            wanted: &[3, 4, 5],
            providers: &[1],
            interest_until: SimTime::from_hours(2),
        });
        let b = t.push(NewPeer {
            identity: f.create(),
            probe_only: false,
            shares_list: true,
            robot: true,
            shared_files: &[9],
            wanted: &[7],
            providers: &[0, 2],
            interest_until: SimTime(u64::MAX),
        });
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.wanted(a), &[3, 4, 5]);
        assert_eq!(t.wanted(b), &[7]);
        assert_eq!(t.shared_files(a), &[] as &[u32]);
        assert_eq!(t.shared_files(b), &[9]);
        assert_eq!(t.providers(a), &[1]);
        assert_eq!(t.providers(b), &[0, 2]);
        assert!(t.probe_only(a) && !t.probe_only(b));
        assert!(!t.shares_list(a) && t.shares_list(b));
        assert!(!t.robot(a) && t.robot(b));
        assert_ne!(t.identity(a).ip, t.identity(b).ip);
    }

    #[test]
    fn blacklist_bitmask() {
        let mut t = table();
        assert!(!t.is_blacklisted(0, 2));
        t.blacklist_hp(0, 2);
        assert!(t.is_blacklisted(0, 2));
        assert!(!t.is_blacklisted(0, 0));
        assert!(!t.all_blacklisted(0));
        t.blacklist_hp(0, 0);
        t.blacklist_hp(0, 1);
        assert!(t.all_blacklisted(0));
    }

    #[test]
    fn shared_sent_tracking() {
        let mut t = table();
        assert!(!t.shared_sent_to(0, 5));
        t.mark_shared_sent(0, 5);
        assert!(t.shared_sent_to(0, 5));
        assert!(!t.shared_sent_to(0, 4));
    }

    #[test]
    fn done_conditions() {
        let mut t = table();
        assert!(!t.done(0, SimTime::from_hours(1), 4));
        assert!(t.done(0, SimTime::from_days(2), 4), "interest expired");
        for _ in 0..4 {
            t.bump_failures(0);
        }
        assert!(t.done(0, SimTime::ZERO, 4), "too many failures");
        let mut t = table();
        for hp in [0, 1, 2] {
            t.blacklist_hp(0, hp);
        }
        assert!(t.done(0, SimTime::ZERO, 4), "everything blacklisted");
    }

    #[test]
    fn robots_never_give_up() {
        let mut f = IdentityFactory::new(Rng::seed_from(3));
        let mut t = PeerTable::new();
        t.push(NewPeer {
            identity: f.create(),
            probe_only: false,
            shares_list: false,
            robot: true,
            shared_files: &[],
            wanted: &[0],
            providers: &[0, 1, 2],
            interest_until: SimTime(u64::MAX),
        });
        for _ in 0..200 {
            t.bump_failures(0);
        }
        for hp in [0, 1, 2] {
            t.blacklist_hp(0, hp);
        }
        assert!(!t.done(0, SimTime::from_days(100), 4));
    }

    #[test]
    fn order_reuses_the_provider_range() {
        let mut t = table();
        assert_eq!(t.order(0), &[] as &[u8]);
        t.set_order(0, &[2, 0]);
        assert_eq!(t.order(0), &[2, 0]);
        assert_eq!(t.pos(0), 0);
        t.bump_pos(0);
        assert_eq!(t.pos(0), 1);
        // A later, shorter round overwrites in place.
        t.set_order(0, &[1]);
        assert_eq!(t.order(0), &[1]);
        assert_eq!(t.pos(0), 0);
    }

    #[test]
    #[should_panic(expected = "subset of the providers")]
    fn oversized_order_rejected() {
        let mut t = table();
        t.set_order(0, &[0, 1, 2, 3]);
    }

    #[test]
    fn sessions_are_per_peer() {
        let mut t = table();
        assert!(t.session(0).is_none());
        *t.session_mut(0) = Some(Session {
            hp: 1,
            file: 0,
            state: SessionState::Greet,
            budget: 3,
            timeouts: 0,
            hello_only: false,
            do_request: true,
            conn: 7,
            block_cursor: 0,
            delivered: false,
        });
        assert_eq!(t.session(0).unwrap().conn, 7);
        let taken = t.take_session(0).unwrap();
        assert_eq!(taken.hp, 1);
        assert!(t.session(0).is_none());
    }

    #[test]
    fn highest_honeypot_index_fits_the_masks() {
        let mut t = table();
        let top = (MAX_HONEYPOTS - 1) as u8;
        t.blacklist_hp(0, top);
        assert!(t.is_blacklisted(0, top));
        t.mark_shared_sent(0, top);
        assert!(t.shared_sent_to(0, top));
    }
}
