//! Genuine-peer state.
//!
//! A simulated peer is a compact record plus a small per-session state
//! machine; the heavy lifting (sampling decisions, message construction)
//! happens in [`crate::world`].  Only peers that end up contacting at least
//! one honeypot are materialised — the rest of the eDonkey population is
//! invisible to the measurement and therefore never allocated.

use netsim::SimTime;

use crate::identity::PeerIdentity;

/// Maximum honeypots per scenario (peer-side blacklists and shared-list
/// bookkeeping are u64 bitmasks).
pub const MAX_HONEYPOTS: usize = 64;

/// Phase of a peer↔honeypot session (paper Fig. 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionState {
    /// About to send HELLO.
    Greet,
    /// Got HELLO-ANSWER; about to send START-UPLOAD.
    Upload,
    /// Upload accepted; requesting parts.
    Request,
}

/// One in-flight session with a honeypot.
#[derive(Clone, Copy, Debug)]
pub struct Session {
    /// Honeypot index.
    pub hp: u8,
    /// Catalog index of the file the peer asks for.
    pub file: u32,
    pub state: SessionState,
    /// Remaining REQUEST-PARTS budget (random-content pacing).
    pub budget: u8,
    /// Consecutive unanswered REQUEST-PARTS so far.
    pub timeouts: u8,
    /// The session stops after HELLO (alive probe).
    pub hello_only: bool,
    /// The session proceeds past START-UPLOAD into part requests.
    pub do_request: bool,
    /// Connection token (unique per session).
    pub conn: u64,
    /// Next block triple to request.
    pub block_cursor: u32,
    /// Whether any SENDING-PART arrived in this session.
    pub delivered: bool,
}

/// How a finished session ended, as seen by the peer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionOutcome {
    /// Stopped after HELLO by design.
    HelloOnly,
    /// Ended without a verdict (patience ran out).
    Inconclusive,
    /// The peer concluded the source is fake/dead and blacklists it.
    Detected,
    /// The honeypot never answered HELLO (offline source).
    NoAnswer,
}

/// One simulated peer.
#[derive(Clone, Debug)]
pub struct SimPeer {
    pub identity: PeerIdentity,
    /// Probe-only client: greets sources but never requests uploads.
    pub probe_only: bool,
    /// Whether the client exposes its shared list when asked.
    pub shares_list: bool,
    /// Catalog indices of the files this peer itself shares.
    pub shared_files: Vec<u32>,
    /// Catalog indices of advertised files the peer wants.
    pub wanted: Vec<u32>,
    /// The peer stops retrying after this instant.
    pub interest_until: SimTime,
    /// Honeypot indices in the peer's provider subset.
    pub providers: Vec<u8>,
    /// Personal blacklist bitmask over honeypot indices.
    pub blacklist: u64,
    /// Honeypots that already received this peer's shared list.
    pub shared_sent: u64,
    /// Cumulative hard failures across sessions.
    pub failures: u8,
    /// Retry rounds completed so far.
    pub rounds: u16,
    /// Automated client (Figs. 8–9 heavy tail).
    pub robot: bool,
    /// Contact order for the current round (honeypot indices).
    pub order: Vec<u8>,
    /// Position within `order`.
    pub pos: u8,
    /// In-flight session, if any.
    pub session: Option<Session>,
}

impl SimPeer {
    /// Whether the peer has personally blacklisted honeypot `hp`.
    pub fn is_blacklisted(&self, hp: u8) -> bool {
        self.blacklist & (1u64 << hp) != 0
    }

    /// Adds `hp` to the personal blacklist.
    pub fn blacklist_hp(&mut self, hp: u8) {
        self.blacklist |= 1u64 << hp;
    }

    /// Whether the shared list was already sent to `hp`.
    pub fn shared_sent_to(&self, hp: u8) -> bool {
        self.shared_sent & (1u64 << hp) != 0
    }

    pub fn mark_shared_sent(&mut self, hp: u8) {
        self.shared_sent |= 1u64 << hp;
    }

    /// Whether every provider is personally blacklisted (the peer has
    /// nothing left to try).
    pub fn all_blacklisted(&self) -> bool {
        self.providers.iter().all(|&hp| self.is_blacklisted(hp))
    }

    /// Whether the peer abandons the measurement entirely: interest
    /// expired, too many failures (robots never abandon), or nothing left
    /// to contact.
    pub fn done(&self, now: SimTime, abandon_failures: u32) -> bool {
        if self.robot {
            return false;
        }
        now >= self.interest_until
            || u32::from(self.failures) >= abandon_failures
            || self.all_blacklisted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::IdentityFactory;
    use netsim::Rng;

    fn peer() -> SimPeer {
        let mut f = IdentityFactory::new(Rng::seed_from(1));
        SimPeer {
            identity: f.create(),
            probe_only: false,
            shares_list: true,
            shared_files: vec![1, 2],
            wanted: vec![0],
            interest_until: SimTime::from_days(1),
            providers: vec![0, 1, 2],
            blacklist: 0,
            shared_sent: 0,
            failures: 0,
            rounds: 0,
            robot: false,
            order: vec![],
            pos: 0,
            session: None,
        }
    }

    #[test]
    fn blacklist_bitmask() {
        let mut p = peer();
        assert!(!p.is_blacklisted(2));
        p.blacklist_hp(2);
        assert!(p.is_blacklisted(2));
        assert!(!p.is_blacklisted(0));
        assert!(!p.all_blacklisted());
        p.blacklist_hp(0);
        p.blacklist_hp(1);
        assert!(p.all_blacklisted());
    }

    #[test]
    fn shared_sent_tracking() {
        let mut p = peer();
        assert!(!p.shared_sent_to(5));
        p.mark_shared_sent(5);
        assert!(p.shared_sent_to(5));
        assert!(!p.shared_sent_to(4));
    }

    #[test]
    fn done_conditions() {
        let mut p = peer();
        assert!(!p.done(SimTime::from_hours(1), 4));
        assert!(p.done(SimTime::from_days(2), 4), "interest expired");
        p.failures = 4;
        assert!(p.done(SimTime::ZERO, 4), "too many failures");
        p.failures = 0;
        for hp in [0, 1, 2] {
            p.blacklist_hp(hp);
        }
        assert!(p.done(SimTime::ZERO, 4), "everything blacklisted");
    }

    #[test]
    fn robots_never_give_up() {
        let mut p = peer();
        p.robot = true;
        p.failures = 200;
        for hp in [0, 1, 2] {
            p.blacklist_hp(hp);
        }
        assert!(!p.done(SimTime::from_days(100), 4));
    }

    #[test]
    fn highest_honeypot_index_fits_the_masks() {
        let mut p = peer();
        let top = (MAX_HONEYPOTS - 1) as u8;
        p.blacklist_hp(top);
        assert!(p.is_blacklisted(top));
        p.mark_shared_sent(top);
        assert!(p.shared_sent_to(top));
    }
}
