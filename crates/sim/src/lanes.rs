//! Lane-sharded scenario execution.
//!
//! The paper's platform scales by running its 24 honeypots *in parallel*
//! against the live network; the honeypots only couple through the manager
//! (log collection) and, for the greedy strategy, through the shared
//! advertised-file list.  This module exploits that seam: a scenario whose
//! honeypots all advertise **fixed** file lists is partitioned into one
//! *lane per honeypot* — an independent [`EdonkeyWorld`] owning that
//! honeypot, its own arrival process, and a dedicated RNG stream split
//! from the scenario seed (`netsim::rng::stream_seed`) — and the lanes run
//! on a rayon pool.  Greedy honeypots adapt their advertised list to the
//! shared-list traffic they observe, a cross-honeypot feedback loop, so
//! any scenario containing one stays a single lane (the coupled engine):
//! strategy semantics are never sharded away.
//!
//! ## Determinism
//!
//! Each lane is a pure function of `(seed, lane_number)`: no lane observes
//! another lane's draws, so the per-lane outputs do not depend on thread
//! count or scheduling.  The merge stage (`honeypot::merge`) then orders
//! all lane events by the unique key `(SimTime, lane, seq)` and re-interns
//! peer ids in merged-stream order.  [`run_sharded`] (rayon) and
//! [`run_sharded_reference`] (plain sequential loop over the same lanes)
//! therefore produce **bit-identical** [`MeasurementLog`]s — pinned by
//! `tests/lanes_equivalence.rs` and the experiments crate's scenario
//! equivalence tests.
//!
//! A sharded run is *not* bit-identical to the coupled execution of the
//! same config: the lanes sample different (decorrelated) streams of the
//! same scenario distribution.  In particular, a coupled arrival contacts
//! a *subset* of honeypots as one peer, while lanes materialise their own
//! arrivals — per-honeypot load and traffic shape are preserved, but
//! cross-honeypot peer overlap is severed, so union statistics (distinct
//! peer totals, Fig. 10's union curve) read higher under sharding.
//! `ExecMode` is therefore an explicit opt-in knob, and calibrated figure
//! pipelines keep using the coupled engine.
//!
//! ## Arrival scaling
//!
//! In the coupled world a new peer contacts a *subset* of the honeypots
//! advertising its wanted files.  A lane only ever sees its own honeypot,
//! so the lane's arrival rate is the global rate thinned by the
//! probability that the subset includes this honeypot: with subset-all
//! probability `q`, mean subset size `k` over `n` providers and
//! attractiveness weights `w`, lane `h` keeps the share
//! `q + (1 − q) · min(k, n) · w_h / Σw` (clamped to 1).  This is a static
//! approximation — the coupled engine additionally reweights providers by
//! blacklist exposure and delivery quality at run time — but it preserves
//! per-honeypot load and the attractiveness spread that drives Fig. 10.

use honeypot::merge::LaneHarvest;
use honeypot::MeasurementLog;
use rayon::prelude::*;

use crate::config::{ExecMode, ScenarioConfig};
use crate::world::{run_lane, run_scenario, SimOutput, WorldStats};

/// One finished lane: the manager's pre-merge harvest plus the lane's
/// diagnostics.
pub struct LaneOutput {
    pub harvest: LaneHarvest,
    pub stats: WorldStats,
    pub relaunches: u64,
    pub shared_files_final: u32,
    pub events_handled: u64,
}

/// Whether a scenario can be partitioned into per-honeypot lanes: more
/// than one honeypot and no greedy strategy (greedy honeypots adapt to
/// shared-list traffic — a cross-honeypot feedback the lanes must not
/// sever).
pub fn shardable(config: &ScenarioConfig) -> bool {
    config.honeypots.len() > 1 && config.honeypots.iter().all(|h| h.fixed_files.is_some())
}

/// The share of global arrivals that would include honeypot `hp` in their
/// provider subset (see the module docs for the formula).
fn provider_share(config: &ScenarioConfig, hp: usize) -> f64 {
    let n = config.honeypots.len() as f64;
    let total: f64 = config.honeypots.iter().map(|h| h.attractiveness.max(0.0)).sum();
    if total <= 0.0 {
        return 1.0 / n;
    }
    let w = config.honeypots[hp].attractiveness.max(0.0);
    let q = config.behavior.subset_all_prob.clamp(0.0, 1.0);
    let k = config.behavior.subset_mean.max(1.0).min(n);
    (q + (1.0 - q) * k * (w / total)).min(1.0)
}

/// Builds the configuration of lane `hp` (0-based): the lane owns that one
/// honeypot, runs the coupled engine internally, is tagged with lane
/// number `hp + 1` (0 is reserved for "not a lane"), and keeps the
/// thinned share of the global arrival rate.
fn lane_config(config: &ScenarioConfig, hp: usize) -> ScenarioConfig {
    let mut lane = config.clone();
    lane.honeypots = vec![config.honeypots[hp].clone()];
    lane.exec = ExecMode::Coupled;
    lane.lane = hp as u32 + 1;
    lane.population.rate_per_popularity *= provider_share(config, hp);
    lane
}

/// Runs a sharded scenario on the ambient rayon pool.
pub fn run_sharded(config: ScenarioConfig) -> SimOutput {
    run_lanes(config, true)
}

/// The lane-ordered sequential reference: same lanes, same merge, plain
/// loop instead of the rayon pool.  Exists so tests can pin that
/// parallelism never changes the output.
pub fn run_sharded_reference(config: ScenarioConfig) -> SimOutput {
    run_lanes(config, false)
}

fn run_lanes(config: ScenarioConfig, parallel: bool) -> SimOutput {
    if !shardable(&config) {
        // Single honeypot or greedy strategy: one lane covering the whole
        // scenario *is* the coupled execution.
        let mut c = config;
        c.exec = ExecMode::Coupled;
        c.lane = 0;
        return run_scenario(c);
    }
    let duration = config.duration;
    let name_threshold = config.name_threshold;
    let lane_cfgs: Vec<ScenarioConfig> =
        (0..config.honeypots.len()).map(|i| lane_config(&config, i)).collect();
    // Lanes are independent; collect() preserves lane order regardless of
    // which thread finishes first, so the merge input — and therefore the
    // merged log — is schedule-independent.
    let outs: Vec<LaneOutput> = if parallel {
        lane_cfgs.into_par_iter().map(run_lane).collect()
    } else {
        lane_cfgs.into_iter().map(run_lane).collect()
    };

    let mut stats = WorldStats::default();
    let mut relaunches = 0u64;
    let mut shared_final = 0u32;
    let mut events_handled = 0u64;
    let mut harvests: Vec<LaneHarvest> = Vec::with_capacity(outs.len());
    for o in outs {
        stats.absorb(&o.stats);
        relaunches += o.relaunches;
        shared_final = shared_final.max(o.shared_files_final);
        events_handled += o.events_handled;
        harvests.push(o.harvest);
    }
    let log: MeasurementLog =
        honeypot::merge::merge_lanes(harvests, duration, shared_final, name_threshold);
    SimOutput { log, stats, relaunches, events_handled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HoneypotSetup, QueueKind};
    use honeypot::strategy::ContentStrategy;
    use netsim::SimTime;

    fn three_hp_config(seed: u64) -> ScenarioConfig {
        let mut c = ScenarioConfig::tiny(seed);
        c.duration = SimTime::from_days(1);
        c.honeypots = vec![
            HoneypotSetup::fixed(ContentStrategy::NoContent, vec![0], 1.0),
            HoneypotSetup::fixed(ContentStrategy::RandomContent, vec![0, 1], 1.4),
            HoneypotSetup::fixed(ContentStrategy::NoContent, vec![1], 0.6),
        ];
        c
    }

    #[test]
    fn shardable_rules() {
        assert!(!shardable(&ScenarioConfig::tiny(1)), "one honeypot: nothing to shard");
        assert!(shardable(&three_hp_config(1)));
        let mut greedy = three_hp_config(1);
        greedy.honeypots[1] = HoneypotSetup::greedy(vec![0], SimTime::from_days(1), 10);
        assert!(!shardable(&greedy), "greedy couples the honeypots");
    }

    #[test]
    fn provider_shares_sum_near_subset_mass() {
        let c = three_hp_config(1);
        let shares: Vec<f64> = (0..3).map(|i| provider_share(&c, i)).collect();
        assert!(shares.iter().all(|&s| (0.0..=1.0).contains(&s)));
        // More attractive honeypots get a larger share.
        assert!(shares[1] > shares[2]);
    }

    #[test]
    fn lane_configs_partition_the_scenario() {
        let c = three_hp_config(5);
        for i in 0..3 {
            let lane = lane_config(&c, i);
            assert_eq!(lane.honeypots.len(), 1);
            assert_eq!(lane.lane, i as u32 + 1);
            assert_eq!(lane.exec, ExecMode::Coupled);
            // A lane never sees more than the global arrival mass; a very
            // attractive honeypot's share can clamp at 1.0 (it appears in
            // every provider subset), so equality is allowed here.
            assert!(lane.population.rate_per_popularity <= c.population.rate_per_popularity);
        }
        // The least attractive honeypot is genuinely thinned.
        assert!(
            lane_config(&c, 2).population.rate_per_popularity < c.population.rate_per_popularity
        );
    }

    #[test]
    fn sharded_matches_sequential_reference_bit_for_bit() {
        let c = three_hp_config(11);
        let a = run_sharded(c.clone());
        let b = run_sharded_reference(c);
        assert_eq!(
            format!("{:?}", a.log),
            format!("{:?}", b.log),
            "rayon lanes vs sequential reference must be bit-identical"
        );
        assert_eq!(a.relaunches, b.relaunches);
        assert_eq!(a.stats.arrivals, b.stats.arrivals);
        assert!(a.log.validate().is_empty());
        assert!(!a.log.records.is_empty(), "lanes must produce traffic");
        assert_eq!(a.log.honeypots.len(), 3);
    }

    #[test]
    fn sharded_runs_are_independent_of_queue_kind() {
        let mut heap = three_hp_config(13);
        heap.queue = QueueKind::Heap;
        let mut cal = three_hp_config(13);
        cal.queue = QueueKind::Calendar;
        let mut wheel = three_hp_config(13);
        wheel.queue = QueueKind::Wheel;
        let a = run_sharded(heap);
        let b = run_sharded(cal);
        let c = run_sharded(wheel);
        assert_eq!(format!("{:?}", a.log), format!("{:?}", b.log));
        assert_eq!(format!("{:?}", a.log), format!("{:?}", c.log));
    }

    #[test]
    fn exec_mode_dispatch_reaches_sharding() {
        let mut c = three_hp_config(17);
        c.exec = ExecMode::Sharded;
        let via_dispatch = run_scenario(c.clone());
        let direct = run_sharded(c);
        assert_eq!(format!("{:?}", via_dispatch.log), format!("{:?}", direct.log));
    }

    #[test]
    fn single_lane_fallback_is_the_coupled_run() {
        let mut c = ScenarioConfig::tiny(23);
        c.exec = ExecMode::Sharded;
        let sharded = run_scenario(c.clone());
        c.exec = ExecMode::Coupled;
        let coupled = run_scenario(c);
        assert_eq!(
            format!("{:?}", sharded.log),
            format!("{:?}", coupled.log),
            "an unshardable scenario must fall back to the coupled engine unchanged"
        );
    }
}
