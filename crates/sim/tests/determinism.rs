//! The queue-choice determinism guarantee: a scenario is a pure function
//! of its configuration and seed, *independent of which pending-event
//! queue drives the engine*.  Heap, calendar, and timing-wheel runs must
//! produce identical measurement logs down to the last record — the
//! property that makes [`edonkey_sim::config::QueueKind`] a pure
//! performance knob.

use edonkey_sim::config::{QueueKind, ScenarioConfig};
use edonkey_sim::world::run_scenario;

fn scenario(seed: u64, queue: QueueKind) -> ScenarioConfig {
    let mut config = ScenarioConfig::tiny(seed).scaled(0.3);
    config.queue = queue;
    config
}

#[test]
fn all_queues_produce_identical_logs() {
    for seed in [1u64, 42, 0xED0_2009] {
        let heap = run_scenario(scenario(seed, QueueKind::Heap));
        for (name, other) in [
            ("calendar", run_scenario(scenario(seed, QueueKind::Calendar))),
            ("wheel", run_scenario(scenario(seed, QueueKind::Wheel))),
        ] {
            // Record-level equality first, for a readable failure…
            assert_eq!(
                heap.log.records, other.log.records,
                "records diverged between heap and {name} (seed {seed})"
            );
            assert_eq!(heap.log.shared_lists, other.log.shared_lists, "{name}, seed {seed}");
            assert_eq!(heap.log.distinct_peers, other.log.distinct_peers, "{name}, seed {seed}");
            assert_eq!(
                heap.log.shared_files_final, other.log.shared_files_final,
                "{name}, seed {seed}"
            );

            // …then whole-struct equality via the Debug rendering, which
            // covers every remaining field (honeypot metadata, name/file
            // tables) without requiring PartialEq on all of them.
            assert_eq!(
                format!("{:?}", heap.log),
                format!("{:?}", other.log),
                "logs diverged between heap and {name} (seed {seed})"
            );
            assert_eq!(heap.relaunches, other.relaunches, "{name}, seed {seed}");
        }
    }
}

#[test]
fn same_seed_same_queue_is_reproducible() {
    let a = run_scenario(scenario(7, QueueKind::Calendar));
    let b = run_scenario(scenario(7, QueueKind::Calendar));
    assert_eq!(format!("{:?}", a.log), format!("{:?}", b.log));
}
