//! Acceptance tests for the server-side capture (the "ten weeks in the
//! life of an eDonkey server" modality):
//!
//! * **observation only** — attaching a capture leaves the honeypot
//!   measurement bit-identical;
//! * **lossless round trip** — every record the server emits comes back
//!   from disk, in order;
//! * **queue independence** — all three pending queues produce
//!   byte-identical capture files, like they do for the honeypot log.

use std::fs;
use std::path::PathBuf;

use edonkey_sim::{
    run_scenario, run_scenario_with_capture, QueueKind, ScenarioConfig, ServerCaptureConfig,
};
use honeypot::serverlog::{ServerLogReader, ServerQueryKind, SERVER_PEER_SESSION_BASE};

fn capture_config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::tiny(seed).scaled(0.5);
    config.server_capture = Some(ServerCaptureConfig {
        // Small frames/segments so a two-day run still exercises frame
        // flushing and segment rotation.
        frame_records: 64,
        segment_records: 256,
        ..Default::default()
    });
    config
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edsl-world-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn capture_is_pure_observation() {
    let dir = tmp_dir("pure");
    let config = capture_config(42);
    let with = run_scenario_with_capture(config.clone(), &dir).unwrap();
    let without = run_scenario(config);
    assert!(with.capture.records > 0, "capture must see traffic");
    // The honeypot measurement is bit-identical with or without capture.
    assert_eq!(with.output.log.records, without.log.records);
    assert_eq!(with.output.log.distinct_peers, without.log.distinct_peers);
    assert_eq!(with.output.log.shared_lists.len(), without.log.shared_lists.len());
    assert_eq!(with.output.stats.request_parts_sent, without.stats.request_parts_sent);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn capture_round_trips_from_disk() {
    let dir = tmp_dir("roundtrip");
    let out = run_scenario_with_capture(capture_config(7), &dir).unwrap();
    assert!(out.capture.segments > 1, "small segments must rotate");
    assert!(
        out.capture.bytes_per_record() < 56.0,
        "compression must beat the raw record ({} B/record)",
        out.capture.bytes_per_record()
    );

    let mut reader = ServerLogReader::open(&dir).unwrap();
    let mut n = 0u64;
    let mut last_at = netsim::SimTime::ZERO;
    let mut peer_sessions = std::collections::HashSet::new();
    let mut kind_seen = [false; 6];
    while let Some(r) = reader.next() {
        assert!(r.at >= last_at, "records are in capture order");
        last_at = r.at;
        kind_seen[r.kind.tag() as usize] = true;
        if r.kind != ServerQueryKind::Status && r.session >= SERVER_PEER_SESSION_BASE {
            peer_sessions.insert(r.session);
        }
        n += 1;
    }
    assert!(!reader.truncated(), "clean capture must read to the end");
    assert_eq!(n, out.capture.records, "every record written comes back");
    assert!(kind_seen.iter().all(|&k| k), "all six query kinds occur: {kind_seen:?}");
    // Server-observed peers dominate honeypot-observed peers: every peer
    // talks to the server, only some reach a honeypot.
    assert!(
        peer_sessions.len() as u64 >= u64::from(out.output.log.distinct_peers),
        "server sees {} peers, honeypots {}",
        peer_sessions.len(),
        out.output.log.distinct_peers
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn capture_files_identical_across_queues() {
    let mut captures = Vec::new();
    for (tag, queue) in
        [("heap", QueueKind::Heap), ("cal", QueueKind::Calendar), ("wheel", QueueKind::Wheel)]
    {
        let dir = tmp_dir(tag);
        let mut config = capture_config(11);
        config.queue = queue;
        let out = run_scenario_with_capture(config, &dir).unwrap();
        let mut segments: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "edsl"))
            .collect();
        segments.sort();
        let bytes: Vec<Vec<u8>> = segments.iter().map(|p| fs::read(p).unwrap()).collect();
        captures.push((queue, out.capture.records, bytes));
        let _ = fs::remove_dir_all(&dir);
    }
    let (_, records0, bytes0) = &captures[0];
    for (queue, records, bytes) in &captures[1..] {
        assert_eq!(records, records0, "{queue:?} record count");
        assert_eq!(bytes, bytes0, "{queue:?} capture must be byte-identical to Heap");
    }
}
