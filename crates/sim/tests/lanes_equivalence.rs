//! Lane-sharding equivalence, pinned across explicit rayon pool sizes:
//! the merged log of a sharded run is a pure function of the scenario
//! config — same bytes whether the lanes run on 1, 2, or 8 workers, and
//! same bytes as the lane-ordered sequential reference.  Companion to the
//! inline unit tests in `src/lanes.rs` and the calibrated-scenario
//! equivalence tests in the experiments crate.

use edonkey_sim::config::{HoneypotSetup, ScenarioConfig};
use edonkey_sim::lanes::{run_sharded, run_sharded_reference};
use honeypot::strategy::ContentStrategy;
use netsim::SimTime;

/// Five fixed-list honeypots with uneven attractiveness and both content
/// strategies — enough lanes that a rayon pool actually interleaves them.
fn five_hp_config(seed: u64) -> ScenarioConfig {
    let mut c = ScenarioConfig::tiny(seed);
    c.duration = SimTime::from_days(2);
    c.honeypots = vec![
        HoneypotSetup::fixed(ContentStrategy::NoContent, vec![0], 1.0),
        HoneypotSetup::fixed(ContentStrategy::RandomContent, vec![0, 1], 1.5),
        HoneypotSetup::fixed(ContentStrategy::NoContent, vec![1, 2], 0.7),
        HoneypotSetup::fixed(ContentStrategy::RandomContent, vec![2], 1.2),
        HoneypotSetup::fixed(ContentStrategy::NoContent, vec![0, 2], 0.9),
    ];
    c
}

#[test]
fn sharded_log_is_identical_for_every_pool_size() {
    let config = five_hp_config(29);
    let reference = run_sharded_reference(config.clone());
    assert!(reference.log.validate().is_empty());
    assert!(!reference.log.records.is_empty());

    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
        let out = pool.install(|| run_sharded(config.clone()));
        assert_eq!(
            format!("{:?}", out.log),
            format!("{:?}", reference.log),
            "sharded log must not depend on the pool size ({threads} threads)"
        );
        assert_eq!(out.relaunches, reference.relaunches);
        assert_eq!(out.stats.arrivals, reference.stats.arrivals);
        assert_eq!(out.stats.sessions, reference.stats.sessions);
    }
}

#[test]
fn lanes_are_decorrelated_but_share_the_catalog() {
    let config = five_hp_config(31);
    let out = run_sharded_reference(config.clone());

    // Every honeypot survived the merge, in scenario order.
    assert_eq!(out.log.honeypots.len(), 5);
    for (i, hp) in out.log.honeypots.iter().enumerate() {
        assert_eq!(hp.id.0 as usize, i);
    }

    // Reseeding changes the traffic: lanes really do draw from the seed.
    let other = run_sharded_reference(five_hp_config(32));
    assert_ne!(
        format!("{:?}", out.log.records),
        format!("{:?}", other.log.records),
        "different seeds must give different sharded traffic"
    );
}
