//! Property-based tests of the simulated world's building blocks.

use proptest::prelude::*;

use edonkey_proto::{ClientServerMessage, FileId, Ipv4, PeerAddr, PublishedFile};
use edonkey_sim::catalog::{Catalog, CatalogConfig};
use edonkey_sim::identity::IdentityFactory;
use edonkey_sim::server::SimServer;
use edonkey_sim::ScenarioConfig;
use honeypot::ServerInfo;
use netsim::{Rng, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn catalog_invariants(n in 1usize..2_000, zipf in 0.0f64..1.5, sigma in 0.0f64..1.5, seed in any::<u64>()) {
        let config = CatalogConfig {
            n_files: n,
            zipf_exponent: zipf,
            popularity_sigma: sigma,
            ..Default::default()
        };
        let mut rng = Rng::seed_from(seed);
        let c = Catalog::generate(&config, &mut rng);
        prop_assert_eq!(c.len(), n);
        let mut ids = std::collections::HashSet::new();
        for i in 0..n as u32 {
            let f = c.file(i);
            prop_assert!(f.popularity > 0.0 && f.popularity.is_finite());
            prop_assert!(f.size > 0 && f.size < u64::from(u32::MAX), "u32 offsets");
            prop_assert!(ids.insert(f.id), "duplicate file id");
        }
        // Popularity-weighted sampling stays in range.
        let mut rng = Rng::seed_from(seed ^ 1);
        for _ in 0..20 {
            prop_assert!((c.sample_by_popularity(&mut rng) as usize) < n);
        }
    }

    #[test]
    fn identity_factory_unique_ips(seed in any::<u64>(), count in 1usize..2_000) {
        let mut f = IdentityFactory::new(Rng::seed_from(seed));
        let mut ips = std::collections::HashSet::new();
        for _ in 0..count {
            let p = f.create();
            prop_assert!(ips.insert(p.ip));
            if p.client_id.is_high() {
                prop_assert_eq!(p.client_id.ip(), Some(p.ip));
            }
        }
    }

    #[test]
    fn server_index_is_consistent_under_arbitrary_operations(
        ops in prop::collection::vec((0u64..8, any::<u8>(), any::<bool>()), 1..120),
    ) {
        // Model: sessions 0..8 randomly log in, offer one of 256 files, or
        // disconnect; the index must always agree with a naive model.
        let mut server = SimServer::new(ServerInfo::new("s", Ipv4::new(1, 1, 1, 1), 4661));
        let mut model: std::collections::HashMap<FileId, std::collections::HashSet<u64>> =
            std::collections::HashMap::new();
        let mut logged_in: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (session, file_byte, action) in ops {
            let fid = FileId::from_seed(&[file_byte]);
            if !logged_in.contains(&session) {
                server.login(SimTime::ZERO, session, PeerAddr::new(Ipv4::new(10, 0, 0, session as u8 + 1), 4662), true);
                logged_in.insert(session);
            }
            if action {
                server.offer_files(SimTime::ZERO, session, &ClientServerMessage::OfferFiles {
                    files: vec![PublishedFile::new(fid, "f", 1)],
                });
                model.entry(fid).or_default().insert(session);
            } else {
                server.disconnect(SimTime::ZERO, session);
                logged_in.remove(&session);
                for providers in model.values_mut() {
                    providers.remove(&session);
                }
                model.retain(|_, v| !v.is_empty());
            }
        }
        prop_assert_eq!(server.clients(), logged_in.len());
        prop_assert_eq!(server.indexed_files(), model.len());
        for (fid, providers) in &model {
            let got: std::collections::HashSet<u64> =
                server.provider_sessions(fid).iter().copied().collect();
            prop_assert_eq!(&got, providers);
        }
    }

    #[test]
    fn tiny_scenarios_always_produce_valid_logs(seed in any::<u64>()) {
        let out = edonkey_sim::run_scenario(ScenarioConfig::tiny(seed).scaled(0.1));
        prop_assert!(out.log.validate().is_empty(), "{:?}", out.log.validate());
        // Aggregate counters must dominate logged records.
        let hello = out.log.records_of(honeypot::QueryKind::Hello).count() as u64;
        prop_assert!(out.stats.hello_sent >= hello);
    }
}
