//! A blocking control-plane connection: framing + typed decode over a
//! `TcpStream`.
//!
//! Reads are non-destructive with respect to corruption: a frame whose CRC
//! fails surfaces as [`ConnEvent::Corrupt`] and the stream keeps going
//! (framing stays in sync), which is what lets the daemon re-request a
//! damaged chunk instead of dropping the whole agent.
//!
//! An optional [`ImpairPlan`] shim sits between the connection and the
//! socket (see [`crate::impair`]): outbound frames queue in an
//! [`ImpairedLink`] and reach the wire only when due; inbound socket
//! bytes queue the same way before the decoder sees them.  Neither
//! endpoint's protocol logic knows the shim exists — the byte stream is
//! intact and in order, only its timing is adversarial.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use edonkey_proto::control::{ControlDecoder, ControlEvent};
use edonkey_proto::ProtoError;

use crate::impair::{ImpairPlan, ImpairedLink};
use crate::messages::ControlMessage;
use crate::transport::would_block;

/// What a poll of the connection can yield.
// Events are yielded one at a time and consumed by move; boxing the
// message would add an allocation per frame for no resident savings.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum ConnEvent {
    /// A decoded, CRC-clean control message.
    Msg(ControlMessage),
    /// A frame with a valid envelope but a failed checksum; `opcode` is
    /// what the frame claimed to carry.
    Corrupt { opcode: u8 },
}

/// Connection-level errors (all fatal to the connection).
#[derive(Debug)]
pub enum ConnError {
    /// The peer closed the stream.
    Closed,
    Io(std::io::Error),
    /// Unrecoverable framing violation (bad magic/version, oversized
    /// frame, undecodable payload).
    Proto(ProtoError),
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Closed => write!(f, "connection closed"),
            ConnError::Io(e) => write!(f, "io error: {e}"),
            ConnError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ConnError {}

/// The impairment shim of one connection: a link per direction plus the
/// epoch its virtual clock counts from.
struct ImpairShim {
    started: Instant,
    inbound: ImpairedLink,
    outbound: ImpairedLink,
}

impl ImpairShim {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// A framed control connection.
pub struct ControlConn {
    stream: TcpStream,
    decoder: ControlDecoder,
    shim: Option<ImpairShim>,
}

impl ControlConn {
    /// Connects to a control endpoint.
    pub fn connect(addr: SocketAddr) -> std::io::Result<ControlConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(ControlConn { stream, decoder: ControlDecoder::new(), shim: None })
    }

    /// Wraps an accepted stream.
    pub fn from_stream(stream: TcpStream) -> ControlConn {
        stream.set_nodelay(true).ok();
        ControlConn { stream, decoder: ControlDecoder::new(), shim: None }
    }

    /// Installs a link-impairment shim on both directions.  `stream_id`
    /// names this connection within the plan's seed space (the two
    /// directions derive sub-streams from it), so distinct connections
    /// jitter independently yet reproducibly.
    pub fn impair(&mut self, plan: &ImpairPlan, stream_id: u64) {
        if plan.is_transparent() {
            return;
        }
        self.shim = Some(ImpairShim {
            started: Instant::now(),
            inbound: ImpairedLink::new(plan, stream_id * 2),
            outbound: ImpairedLink::new(plan, stream_id * 2 + 1),
        });
    }

    /// Clones the underlying stream (for a writer held elsewhere).
    pub fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.stream.try_clone()
    }

    /// Sets the per-read timeout used by [`ControlConn::poll`].
    pub fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }

    /// Sends one message as a complete frame.
    pub fn send(&mut self, msg: &ControlMessage) -> std::io::Result<()> {
        self.send_raw(&msg.encode_frame())
    }

    /// Sends raw pre-encoded bytes (fault injection writes doctored
    /// frames).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match &mut self.shim {
            None => self.stream.write_all(bytes),
            Some(shim) => {
                let now = shim.now_ms();
                shim.outbound.admit(now, bytes);
                self.pump_out()
            }
        }
    }

    /// Writes every outbound byte whose impaired delivery time has come.
    fn pump_out(&mut self) -> std::io::Result<()> {
        if let Some(shim) = &mut self.shim {
            let now = shim.now_ms();
            let mut due = Vec::new();
            shim.outbound.due(now, &mut due);
            if !due.is_empty() {
                self.stream.write_all(&due)?;
            }
        }
        Ok(())
    }

    /// Blocks until the outbound shim has drained (bounded by `limit`).
    /// Used before teardown so an impaired link behaves like a kernel
    /// send buffer: delayed bytes still reach the wire on close.
    fn drain_outbound(&mut self, limit: Duration) {
        let deadline = Instant::now() + limit;
        loop {
            let Some(shim) = &self.shim else { return };
            if shim.outbound.pending_bytes() == 0 {
                return;
            }
            if Instant::now() >= deadline {
                return;
            }
            let now = shim.now_ms();
            let wait = shim.outbound.next_due().unwrap_or(now).saturating_sub(now).min(20);
            std::thread::sleep(Duration::from_millis(wait.max(1)));
            if self.pump_out().is_err() {
                return;
            }
        }
    }

    /// Closes like a crashing process whose last write must still reach
    /// the peer: half-closes the write side (the FIN queues behind the
    /// data) and drains already-received input until the peer hangs up.
    /// Dropping a stream with unread bytes in its receive queue makes the
    /// kernel close with RST instead of FIN, and an RST discards data the
    /// peer has not read yet — on a single core the daemon's reactor
    /// rarely wins that race, so a plain drop loses the final frame.
    pub fn crash_close(&mut self) {
        self.drain_outbound(Duration::from_secs(2));
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        self.stream.set_read_timeout(Some(Duration::from_millis(50))).ok();
        let deadline = std::time::Instant::now() + Duration::from_secs(1);
        let mut buf = [0u8; 4096];
        while std::time::Instant::now() < deadline {
            match self.stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    /// Moves inbound bytes that have become deliverable into the decoder.
    /// With `flush` (peer hung up: everything it sent is already "on the
    /// wire"), pending bytes are released regardless of due time.
    fn pump_in(&mut self, flush: bool) {
        if let Some(shim) = &mut self.shim {
            let now = if flush { u64::MAX } else { shim.now_ms() };
            let mut due = Vec::new();
            shim.inbound.due(now, &mut due);
            if !due.is_empty() {
                self.decoder.feed(&due);
            }
        }
    }

    /// Performs at most one socket read (bounded by the read timeout) and
    /// returns every control event that completed.  An empty vector means
    /// the timeout passed without a full frame — not an error.
    pub fn poll(&mut self) -> Result<Vec<ConnEvent>, ConnError> {
        self.pump_out().map_err(ConnError::Io)?;
        let mut buf = [0u8; 16 * 1024];
        match self.stream.read(&mut buf) {
            Ok(0) => {
                self.pump_in(true);
                let events = self.drain()?;
                if events.is_empty() {
                    return Err(ConnError::Closed);
                }
                Ok(events)
            }
            Ok(n) => {
                match &mut self.shim {
                    None => self.decoder.feed(&buf[..n]),
                    Some(shim) => {
                        let now = shim.now_ms();
                        shim.inbound.admit(now, &buf[..n]);
                    }
                }
                self.pump_in(false);
                self.drain()
            }
            Err(e) if would_block(&e) => {
                self.pump_in(false);
                self.drain()
            }
            Err(e) => Err(ConnError::Io(e)),
        }
    }

    /// Polls until `deadline`, returning the first batch of events (or an
    /// empty vector at the deadline).
    pub fn poll_until(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<Vec<ConnEvent>, ConnError> {
        loop {
            let events = self.poll()?;
            if !events.is_empty() {
                return Ok(events);
            }
            if std::time::Instant::now() >= deadline {
                return Ok(Vec::new());
            }
        }
    }

    fn drain(&mut self) -> Result<Vec<ConnEvent>, ConnError> {
        let mut events = Vec::new();
        loop {
            match self.decoder.next_event() {
                Ok(Some(ControlEvent::Frame(frame))) => {
                    let msg = ControlMessage::decode(frame.opcode, &frame.payload)
                        .map_err(ConnError::Proto)?;
                    events.push(ConnEvent::Msg(msg));
                }
                Ok(Some(ControlEvent::Corrupt { opcode })) => {
                    events.push(ConnEvent::Corrupt { opcode });
                }
                Ok(None) => return Ok(events),
                Err(e) => return Err(ConnError::Proto(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impair::Partition;
    use std::net::TcpListener;

    #[test]
    fn frames_roundtrip_over_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = ControlConn::from_stream(stream);
            conn.set_read_timeout(Duration::from_millis(20)).unwrap();
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            let events = conn.poll_until(deadline).unwrap();
            let ConnEvent::Msg(msg) = &events[0] else { panic!("corrupt?") };
            assert_eq!(*msg, ControlMessage::Register { agent: 7, incarnation: 0, resume: false });
            conn.send(&ControlMessage::RegisterAck { agent: 7, next_seq: 0, window: 32 }).unwrap();
        });
        let mut conn = ControlConn::connect(addr).unwrap();
        conn.set_read_timeout(Duration::from_millis(20)).unwrap();
        conn.send(&ControlMessage::Register { agent: 7, incarnation: 0, resume: false }).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let events = conn.poll_until(deadline).unwrap();
        assert!(matches!(
            &events[0],
            ConnEvent::Msg(ControlMessage::RegisterAck { agent: 7, next_seq: 0, window: 32 })
        ));
        t.join().unwrap();
    }

    #[test]
    fn corrupt_frame_surfaces_and_stream_continues() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = ControlConn::from_stream(stream);
            conn.set_read_timeout(Duration::from_millis(20)).unwrap();
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            let mut got = Vec::new();
            while got.len() < 2 && std::time::Instant::now() < deadline {
                got.extend(conn.poll_until(deadline).unwrap());
            }
            assert!(matches!(got[0], ConnEvent::Corrupt { .. }));
            assert!(matches!(
                got[1],
                ConnEvent::Msg(ControlMessage::ChunkAck { next_seq: 5, window: 8 })
            ));
        });
        let mut conn = ControlConn::connect(addr).unwrap();
        let mut bad = ControlMessage::ChunkAck { next_seq: 5, window: 8 }.encode_frame();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        conn.send_raw(&bad).unwrap();
        conn.send(&ControlMessage::ChunkAck { next_seq: 5, window: 8 }).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn impaired_link_delays_but_never_damages_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let plan = ImpairPlan {
            drop_permille: 120,
            dup_permille: 60,
            reorder_permille: 100,
            delay_ms: 15,
            jitter_ms: 10,
            rate_bytes_per_sec: 256 * 1024,
            partitions: vec![Partition { start_ms: 40, end_ms: 90 }],
            ..ImpairPlan::clean(0x1337)
        };
        let t = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = ControlConn::from_stream(stream);
            conn.set_read_timeout(Duration::from_millis(10)).unwrap();
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            let mut got = Vec::new();
            while got.len() < 40 && std::time::Instant::now() < deadline {
                got.extend(conn.poll_until(deadline).unwrap());
            }
            for (i, ev) in got.iter().enumerate() {
                let ConnEvent::Msg(ControlMessage::ChunkAck { next_seq, window: 3 }) = ev else {
                    panic!("event {i} damaged by impairment: {ev:?}");
                };
                assert_eq!(*next_seq, i as u64, "impairment reordered frames");
            }
            assert_eq!(got.len(), 40);
        });
        let mut conn = ControlConn::connect(addr).unwrap();
        conn.set_read_timeout(Duration::from_millis(5)).unwrap();
        conn.impair(&plan, 9);
        let sent_at = std::time::Instant::now();
        for seq in 0..40u64 {
            conn.send(&ControlMessage::ChunkAck { next_seq: seq, window: 3 }).unwrap();
        }
        // Keep pumping the shim until everything reached the wire.
        conn.drain_outbound(Duration::from_secs(10));
        assert!(
            sent_at.elapsed() >= Duration::from_millis(15),
            "a 15 ms-delay plan cannot deliver instantly"
        );
        t.join().unwrap();
    }
}
