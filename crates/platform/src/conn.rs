//! A blocking control-plane connection: framing + typed decode over a
//! `TcpStream`.
//!
//! Reads are non-destructive with respect to corruption: a frame whose CRC
//! fails surfaces as [`ConnEvent::Corrupt`] and the stream keeps going
//! (framing stays in sync), which is what lets the daemon re-request a
//! damaged chunk instead of dropping the whole agent.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use edonkey_proto::control::{ControlDecoder, ControlEvent};
use edonkey_proto::ProtoError;

use crate::messages::ControlMessage;

/// What a poll of the connection can yield.
#[derive(Clone, Debug)]
pub enum ConnEvent {
    /// A decoded, CRC-clean control message.
    Msg(ControlMessage),
    /// A frame with a valid envelope but a failed checksum; `opcode` is
    /// what the frame claimed to carry.
    Corrupt { opcode: u8 },
}

/// Connection-level errors (all fatal to the connection).
#[derive(Debug)]
pub enum ConnError {
    /// The peer closed the stream.
    Closed,
    Io(std::io::Error),
    /// Unrecoverable framing violation (bad magic/version, oversized
    /// frame, undecodable payload).
    Proto(ProtoError),
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Closed => write!(f, "connection closed"),
            ConnError::Io(e) => write!(f, "io error: {e}"),
            ConnError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ConnError {}

/// A framed control connection.
pub struct ControlConn {
    stream: TcpStream,
    decoder: ControlDecoder,
}

impl ControlConn {
    /// Connects to a control endpoint.
    pub fn connect(addr: SocketAddr) -> std::io::Result<ControlConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(ControlConn { stream, decoder: ControlDecoder::new() })
    }

    /// Wraps an accepted stream.
    pub fn from_stream(stream: TcpStream) -> ControlConn {
        stream.set_nodelay(true).ok();
        ControlConn { stream, decoder: ControlDecoder::new() }
    }

    /// Clones the underlying stream (for a writer held elsewhere).
    pub fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.stream.try_clone()
    }

    /// Sets the per-read timeout used by [`ControlConn::poll`].
    pub fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }

    /// Sends one message as a complete frame.
    pub fn send(&mut self, msg: &ControlMessage) -> std::io::Result<()> {
        self.stream.write_all(&msg.encode_frame())
    }

    /// Sends raw pre-encoded bytes (fault injection writes doctored
    /// frames).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Closes like a crashing process whose last write must still reach
    /// the peer: half-closes the write side (the FIN queues behind the
    /// data) and drains already-received input until the peer hangs up.
    /// Dropping a stream with unread bytes in its receive queue makes the
    /// kernel close with RST instead of FIN, and an RST discards data the
    /// peer has not read yet — on a single core the daemon's reactor
    /// rarely wins that race, so a plain drop loses the final frame.
    pub fn crash_close(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        self.stream.set_read_timeout(Some(Duration::from_millis(50))).ok();
        let deadline = std::time::Instant::now() + Duration::from_secs(1);
        let mut buf = [0u8; 4096];
        while std::time::Instant::now() < deadline {
            match self.stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    /// Performs at most one socket read (bounded by the read timeout) and
    /// returns every control event that completed.  An empty vector means
    /// the timeout passed without a full frame — not an error.
    pub fn poll(&mut self) -> Result<Vec<ConnEvent>, ConnError> {
        let mut buf = [0u8; 16 * 1024];
        match self.stream.read(&mut buf) {
            Ok(0) => {
                let events = self.drain()?;
                if events.is_empty() {
                    return Err(ConnError::Closed);
                }
                Ok(events)
            }
            Ok(n) => {
                self.decoder.feed(&buf[..n]);
                self.drain()
            }
            Err(e) if is_timeout(&e) => self.drain(),
            Err(e) => Err(ConnError::Io(e)),
        }
    }

    /// Polls until `deadline`, returning the first batch of events (or an
    /// empty vector at the deadline).
    pub fn poll_until(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<Vec<ConnEvent>, ConnError> {
        loop {
            let events = self.poll()?;
            if !events.is_empty() {
                return Ok(events);
            }
            if std::time::Instant::now() >= deadline {
                return Ok(Vec::new());
            }
        }
    }

    fn drain(&mut self) -> Result<Vec<ConnEvent>, ConnError> {
        let mut events = Vec::new();
        loop {
            match self.decoder.next_event() {
                Ok(Some(ControlEvent::Frame(frame))) => {
                    let msg = ControlMessage::decode(frame.opcode, &frame.payload)
                        .map_err(ConnError::Proto)?;
                    events.push(ConnEvent::Msg(msg));
                }
                Ok(Some(ControlEvent::Corrupt { opcode })) => {
                    events.push(ConnEvent::Corrupt { opcode });
                }
                Ok(None) => return Ok(events),
                Err(e) => return Err(ConnError::Proto(e)),
            }
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn frames_roundtrip_over_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = ControlConn::from_stream(stream);
            conn.set_read_timeout(Duration::from_millis(20)).unwrap();
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            let events = conn.poll_until(deadline).unwrap();
            let ConnEvent::Msg(msg) = &events[0] else { panic!("corrupt?") };
            assert_eq!(*msg, ControlMessage::Register { agent: 7, incarnation: 0, resume: false });
            conn.send(&ControlMessage::RegisterAck { agent: 7, next_seq: 0, window: 32 }).unwrap();
        });
        let mut conn = ControlConn::connect(addr).unwrap();
        conn.set_read_timeout(Duration::from_millis(20)).unwrap();
        conn.send(&ControlMessage::Register { agent: 7, incarnation: 0, resume: false }).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let events = conn.poll_until(deadline).unwrap();
        assert!(matches!(
            &events[0],
            ConnEvent::Msg(ControlMessage::RegisterAck { agent: 7, next_seq: 0, window: 32 })
        ));
        t.join().unwrap();
    }

    #[test]
    fn corrupt_frame_surfaces_and_stream_continues() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = ControlConn::from_stream(stream);
            conn.set_read_timeout(Duration::from_millis(20)).unwrap();
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            let mut got = Vec::new();
            while got.len() < 2 && std::time::Instant::now() < deadline {
                got.extend(conn.poll_until(deadline).unwrap());
            }
            assert!(matches!(got[0], ConnEvent::Corrupt { .. }));
            assert!(matches!(got[1], ConnEvent::Msg(ControlMessage::ChunkAck { next_seq: 5 })));
        });
        let mut conn = ControlConn::connect(addr).unwrap();
        let mut bad = ControlMessage::ChunkAck { next_seq: 5 }.encode_frame();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        conn.send_raw(&bad).unwrap();
        conn.send(&ControlMessage::ChunkAck { next_seq: 5 }).unwrap();
        t.join().unwrap();
    }
}
