//! Shared socket-error classification for the control plane.
//!
//! PR 6 left two identical `would_block`/`is_timeout` helpers in `conn.rs`
//! and `reactor.rs`, and the daemon's accept loop treated *every* accept
//! error as a reason to back off.  This module is the single place that
//! interprets `io::Error` for the transport layer:
//!
//! * [`would_block`] — "no data right now" on a non-blocking or
//!   read-timeout socket (`WouldBlock` / `TimedOut`).
//! * [`classify_accept`] — accept-loop triage: per-connection failures
//!   that name a socket which is already gone are *transient* (keep
//!   accepting at full speed), while resource exhaustion (out of file
//!   descriptors, out of memory) is *resource* pressure that the loop
//!   should back off from instead of spinning on.

use std::io;

/// Would a retry of the same read/write make progress later?  True for the
/// two kinds a non-blocking (or read-timeout) socket reports when there is
/// simply nothing to do yet.
pub fn would_block(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Accept-loop error classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptError {
    /// The pending connection died before we picked it up (ECONNABORTED,
    /// ECONNRESET, EINTR…).  Nothing is wrong with the listener — accept
    /// again immediately.
    Transient,
    /// The process or host is out of a resource (EMFILE/ENFILE → file
    /// descriptors, ENOMEM…).  Accepting again immediately would spin;
    /// back off and let the reaper free capacity.
    Resource,
}

/// Classifies an `accept(2)` failure.  Unknown kinds are treated as
/// resource pressure — backing off on a surprise is the safe default.
pub fn classify_accept(e: &io::Error) -> AcceptError {
    match e.kind() {
        io::ErrorKind::ConnectionAborted
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::Interrupted
        | io::ErrorKind::WouldBlock
        | io::ErrorKind::TimedOut => AcceptError::Transient,
        _ => AcceptError::Resource,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn would_block_matches_only_retry_kinds() {
        assert!(would_block(&io::Error::from(io::ErrorKind::WouldBlock)));
        assert!(would_block(&io::Error::from(io::ErrorKind::TimedOut)));
        assert!(!would_block(&io::Error::from(io::ErrorKind::ConnectionReset)));
        assert!(!would_block(&io::Error::other("boom")));
    }

    #[test]
    fn accept_triage_separates_dead_peers_from_fd_exhaustion() {
        let dead = io::Error::from(io::ErrorKind::ConnectionAborted);
        assert_eq!(classify_accept(&dead), AcceptError::Transient);
        let eintr = io::Error::from(io::ErrorKind::Interrupted);
        assert_eq!(classify_accept(&eintr), AcceptError::Transient);
        let emfile = io::Error::other("Too many open files");
        assert_eq!(classify_accept(&emfile), AcceptError::Resource);
    }
}
