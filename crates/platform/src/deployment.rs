//! A complete loopback deployment: one manager daemon, one in-process
//! eDonkey server, N supervised agents — all over real TCP on 127.0.0.1.
//!
//! This is the live analogue of the in-process pipeline: the same
//! honeypot state machines, the same merge/anonymise path, but every log
//! record crosses two sockets (peer → honeypot, honeypot → manager)
//! before it lands in the [`MeasurementLog`].  Used by the acceptance
//! tests, the `--live-loopback` experiment demo and the CI smoke job.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use edonkey_net::{NetServer, ScriptedPeer};
use edonkey_proto::{FileId, Ipv4};
use honeypot::{
    ContentStrategy, FileStrategy, HoneypotId, HoneypotSpec, MeasurementLog, ServerInfo,
};
use netsim::rng::stream_seed;
use netsim::SimTime;
use parking_lot::Mutex;

use crate::agent::{run_agent_with, AgentExit, AgentOptions};
use crate::daemon::{Daemon, DaemonConfig};
use crate::diskfault::DiskFaults;
use crate::fault::FaultPlan;
use crate::impair::ImpairPlan;
use crate::journal::{measurement_diff, ChunkJournal};
use crate::messages::AgentConfig;
use crate::metrics::PlatformMetrics;

/// Per-agent description of a loopback deployment.
#[derive(Clone, Debug)]
pub struct LoopbackSpec {
    pub content: ContentStrategy,
    pub files: FileStrategy,
    /// Scripted misbehaviour for this agent (default: none).
    pub fault: FaultPlan,
    /// Deterministic link impairment on this agent's control connection
    /// (default: none — a transparent link).
    pub impair: Option<ImpairPlan>,
    /// Injectable spool write faults for this agent (default: none).
    pub spool_faults: Option<DiskFaults>,
}

impl LoopbackSpec {
    /// A well-behaved agent with a fixed advertise list.
    pub fn fixed(content: ContentStrategy, files: FileStrategy) -> Self {
        LoopbackSpec {
            content,
            files,
            fault: FaultPlan::default(),
            impair: None,
            spool_faults: None,
        }
    }
}

/// Tuning knobs for the deployment.
#[derive(Clone, Debug)]
pub struct LoopbackOptions {
    pub daemon: DaemonConfig,
    /// Master seed; per-agent RNG streams and the IP salt derive from it.
    pub seed: u64,
    pub heartbeat_ms: u64,
    pub collect_ms: u64,
    /// Give every agent a durable spool under `<dir>/agent-<id>` so a
    /// killed incarnation's unacknowledged chunks survive the restart.
    pub spool_dir: Option<PathBuf>,
}

impl Default for LoopbackOptions {
    fn default() -> Self {
        LoopbackOptions {
            daemon: DaemonConfig::default(),
            seed: 0xED0_2009,
            heartbeat_ms: 50,
            collect_ms: 60,
            spool_dir: None,
        }
    }
}

/// A running loopback deployment.
pub struct LoopbackDeployment {
    server: Option<NetServer>,
    daemon: Option<Daemon>,
    journal: ChunkJournal,
    handles: Arc<Mutex<Vec<JoinHandle<AgentExit>>>>,
    hp_specs: Vec<HoneypotSpec>,
    /// Retained for daemon recovery after a simulated crash.
    configs: Vec<AgentConfig>,
    /// Per-agent robustness knobs (fault plan, impairment, disk faults);
    /// `spool_dir` is filled in per launch from [`LoopbackOptions`].
    knobs: Vec<AgentOptions>,
    opts: LoopbackOptions,
}

impl LoopbackDeployment {
    /// Starts the server, the daemon and one supervised agent thread per
    /// spec.  Agents are launched by the daemon's supervision loop, so
    /// they may not be up yet when this returns — use
    /// [`LoopbackDeployment::wait_ready`].
    pub fn start(specs: Vec<LoopbackSpec>, opts: LoopbackOptions) -> std::io::Result<Self> {
        let server = NetServer::start()?;
        let server_info =
            ServerInfo::new("live-loopback", Ipv4::new(127, 0, 0, 1), server.addr().port());
        let ip_salt = stream_seed(opts.seed, 0xA);

        let configs: Vec<AgentConfig> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| AgentConfig {
                id: HoneypotId(i as u32),
                content: s.content,
                files: s.files.clone(),
                server: server_info.clone(),
                ip_salt,
                rng_seed: stream_seed(opts.seed, 0x100 + i as u64),
                heartbeat_ms: opts.heartbeat_ms,
                collect_ms: opts.collect_ms,
                client_name: format!("honeypot-{i}"),
            })
            .collect();
        let hp_specs: Vec<HoneypotSpec> = configs
            .iter()
            .map(|c| HoneypotSpec { id: c.id, content: c.content, server: c.server.clone() })
            .collect();

        let journal = ChunkJournal::new();
        let knobs: Vec<AgentOptions> = specs
            .iter()
            .map(|s| AgentOptions {
                fault: s.fault.clone(),
                spool_dir: None,
                impair: s.impair.clone(),
                spool_faults: s.spool_faults.clone(),
            })
            .collect();
        let handles: Arc<Mutex<Vec<JoinHandle<AgentExit>>>> = Arc::new(Mutex::new(Vec::new()));

        let launcher =
            make_launcher(journal.clone(), handles.clone(), knobs.clone(), opts.spool_dir.clone());
        let daemon = Daemon::start(opts.daemon.clone(), configs.clone(), launcher)?;
        Ok(LoopbackDeployment {
            server: Some(server),
            daemon: Some(daemon),
            journal,
            handles,
            hp_specs,
            configs,
            knobs,
            opts,
        })
    }

    pub fn daemon(&self) -> &Daemon {
        self.daemon.as_ref().expect("deployment finished or crashed")
    }

    /// Simulates a manager crash: the daemon abandons its in-memory merge
    /// state, metrics and connections without draining or finalizing.
    /// Agents keep running, fail their uploads, and retry; whether the
    /// measurement survives depends entirely on the checkpoint/WAL.  Call
    /// [`LoopbackDeployment::recover_daemon`] to continue the run.
    pub fn crash_daemon(&mut self) {
        if let Some(daemon) = self.daemon.take() {
            daemon.crash();
        }
    }

    /// Starts a fresh daemon after [`LoopbackDeployment::crash_daemon`],
    /// on the same configs and checkpoint directory.  The new daemon
    /// binds a new port; still-alive agent threads give up on the dead
    /// address and exit, and the recovered supervision state relaunches
    /// them against the new one (same spool dirs, so nothing is lost).
    pub fn recover_daemon(&mut self) -> std::io::Result<()> {
        assert!(self.daemon.is_none(), "crash_daemon first");
        let launcher = make_launcher(
            self.journal.clone(),
            self.handles.clone(),
            self.knobs.clone(),
            self.opts.spool_dir.clone(),
        );
        self.daemon =
            Some(Daemon::start(self.opts.daemon.clone(), self.configs.clone(), launcher)?);
        Ok(())
    }

    /// The eDonkey server address peers log into.
    pub fn server_addr(&self) -> SocketAddr {
        self.server.as_ref().expect("deployment finished").addr()
    }

    /// The shared pre-transport chunk journal.
    pub fn journal(&self) -> &ChunkJournal {
        &self.journal
    }

    /// Waits for every agent to register and report a ready honeypot.
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        self.daemon().wait_agents_ready(timeout)
    }

    /// Logs a scripted peer into the server and runs one download attempt
    /// against an agent's honeypot, sharing `shared_files` if asked.
    /// Returns whether the honeypot answered the hello.
    pub fn drive_download(
        &self,
        peer_name: &str,
        agent: u32,
        file: FileId,
        requests: u32,
        shared_files: &[(FileId, &str, u64)],
    ) -> bool {
        let Some(addr) = self.daemon().agent_peer_addr(agent) else { return false };
        let Ok(mut peer) = ScriptedPeer::login(self.server_addr(), peer_name) else {
            return false;
        };
        match peer.attempt_download(addr, file, requests, Duration::from_millis(300), shared_files)
        {
            Ok(attempt) => attempt.hello_answered,
            Err(_) => false,
        }
    }

    /// Blocks until the daemon has merged at least `chunks` chunks in
    /// total (or the timeout passes).
    pub fn wait_chunks(&self, chunks: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.daemon().chunks_collected() < chunks {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// Shuts the platform down and finalizes the measurement.
    pub fn finish(
        mut self,
        duration: SimTime,
        shared_files_final: u32,
        name_threshold: u32,
        drain: Duration,
    ) -> LoopbackOutcome {
        let daemon = self.daemon.take().expect("finish called once");
        let (log, metrics, chunk_order) =
            daemon.finish(duration, shared_files_final, name_threshold, drain);
        if let Some(server) = self.server.take() {
            server.stop();
        }
        let mut exits = Vec::new();
        let handles = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            if let Ok(exit) = handle.join() {
                exits.push(exit);
            }
        }
        LoopbackOutcome {
            log,
            metrics,
            chunk_order,
            journal: self.journal.clone(),
            hp_specs: self.hp_specs.clone(),
            duration,
            shared_files_final,
            name_threshold,
            exits,
        }
    }
}

/// Builds the supervised-launch closure shared by a fresh start and a
/// post-crash recovery: every (re)launch runs one agent thread wired to
/// the shared journal, its robustness knobs (fault plan, link impairment,
/// spool faults) and (optionally) its spool dir.
fn make_launcher(
    journal: ChunkJournal,
    handles: Arc<Mutex<Vec<JoinHandle<AgentExit>>>>,
    knobs: Vec<AgentOptions>,
    spool_dir: Option<PathBuf>,
) -> crate::daemon::Launcher {
    Box::new(move |agent: u32, incarnation: u32, addr: SocketAddr| {
        let mut opts = knobs[agent as usize].clone();
        opts.spool_dir = spool_dir.as_ref().map(|d| d.join(format!("agent-{agent}")));
        let journal = journal.clone();
        let handle =
            std::thread::spawn(move || run_agent_with(addr, agent, incarnation, journal, opts));
        handles.lock().push(handle);
    })
}

/// Everything a finished loopback deployment produced.
pub struct LoopbackOutcome {
    /// The merged, anonymised measurement — same type, same pipeline as
    /// the in-process path.
    pub log: MeasurementLog,
    pub metrics: PlatformMetrics,
    /// `(agent, seq)` in daemon merge order.
    pub chunk_order: Vec<(u32, u64)>,
    pub journal: ChunkJournal,
    pub hp_specs: Vec<HoneypotSpec>,
    pub duration: SimTime,
    pub shared_files_final: u32,
    pub name_threshold: u32,
    /// Exit statuses of every agent thread launched (incarnations
    /// included).
    pub exits: Vec<AgentExit>,
}

impl LoopbackOutcome {
    /// Replays the pre-transport journal through a fresh in-process
    /// manager in daemon merge order and compares the result with the
    /// live log.  `None` means the control plane moved every record
    /// exactly once, unmodified, in order.
    pub fn replay_divergence(&self) -> Option<String> {
        let replayed = self.journal.replay(
            &self.chunk_order,
            self.hp_specs.clone(),
            self.duration,
            self.shared_files_final,
            self.name_threshold,
        );
        measurement_diff(&self.log, &replayed)
    }
}
