//! Typed control-plane messages and their binary payload codec.
//!
//! Frames on the wire are [`edonkey_proto::control`] envelopes (magic,
//! version, opcode, length, CRC); this module defines what goes *inside*
//! the payload for each opcode.  The encoding is a hand-rolled
//! little-endian format in the style of the measurement-log storage
//! (`honeypot::storage`): length-prefixed strings and vectors, fixed-width
//! integers, explicit enum tags.  Nothing here depends on a serialisation
//! framework, so the codec behaves identically under every build of the
//! workspace.

use edonkey_proto::control::opcodes;
use edonkey_proto::{ClientId, FileId, Ipv4, ProtoError};
use honeypot::anonymize::IpHash;
use honeypot::log::{LogChunk, PackedQueryRecord, SharedLists, PACKED_RECORD_BYTES};
use honeypot::{
    AdvertisedFile, ContentStrategy, FileStrategy, HoneypotId, HoneypotLog, HoneypotStatus,
    ServerInfo, StatusReport,
};
use netsim::SimTime;

/// Everything an agent needs to run its honeypot: the paper's manager
/// "launches the honeypots" and "specifies the list of files" (§III-A), so
/// the whole behaviour ships in one config push.
#[derive(Clone, Debug, PartialEq)]
pub struct AgentConfig {
    pub id: HoneypotId,
    pub content: ContentStrategy,
    pub files: FileStrategy,
    /// eDonkey server the honeypot must log into (loopback: the manager's
    /// `NetServer`).
    pub server: ServerInfo,
    /// Seed of the step-1 IP hasher.  All agents of one measurement share
    /// it, so the same peer hashes identically across honeypots.
    pub ip_salt: u64,
    /// Seed of the honeypot's private RNG stream.
    pub rng_seed: u64,
    /// Heartbeat period.
    pub heartbeat_ms: u64,
    /// Log-collection (upload) period.
    pub collect_ms: u64,
    /// Client name shown to eDonkey peers.
    pub client_name: String,
}

/// Bit meanings of the [`ControlMessage::Heartbeat`] `flags` byte.
pub mod heartbeat_flags {
    /// The agent's durable spool is failing writes; uploads continue from
    /// memory only (a crash now loses the in-memory window).
    pub const SPOOL_DEGRADED: u8 = 1 << 0;
}

/// A typed control-plane message (one per control opcode).
#[derive(Clone, Debug, PartialEq)]
pub enum ControlMessage {
    /// Agent → manager: first frame on a fresh connection.
    Register {
        agent: u32,
        /// 0 for the first launch; bumped by every relaunch.
        incarnation: u32,
        /// True when the agent reconnects with upload state to resume.
        resume: bool,
    },
    /// Manager → agent: registration accepted; uploads must continue at
    /// `next_seq` (exactly-once resume after reconnects and crashes) and
    /// the agent may keep up to `window` chunks in flight.
    RegisterAck { agent: u32, next_seq: u64, window: u32 },
    /// Manager → agent: full honeypot configuration.
    ConfigPush(AgentConfig),
    /// Agent → manager: liveness beacon.  `rtt_micros` piggybacks the RTT
    /// measured from the previous ack (0 = no sample yet); `flags` carries
    /// degraded-mode bits ([`heartbeat_flags`]) so agent-side disk trouble
    /// is visible in the platform metrics, not just in the agent's stderr.
    Heartbeat { agent: u32, seq: u64, sent_micros: u64, rtt_micros: u64, flags: u8 },
    /// Manager → agent: echoes the heartbeat's send timestamp.
    HeartbeatAck { seq: u64, echo_micros: u64 },
    /// Agent → manager: honeypot status change.
    Status(StatusReport),
    /// Agent → manager: the honeypot is serving peers on this port.
    Ready { agent: u32, peer_port: u16 },
    /// Agent → manager: one sequenced log chunk.
    LogUpload { agent: u32, seq: u64, chunk: LogChunk },
    /// Manager → agent: cumulative acknowledgement — every chunk with
    /// sequence `< next_seq` is merged and durable; the agent trims its
    /// window and spool up to that frontier.  `window` is the manager's
    /// *current* in-flight grant: under merge-queue pressure the daemon
    /// shrinks it below the registration grant (overload shedding through
    /// the existing ack path, no new message), and the agent must adopt
    /// it before filling the window again.
    ChunkAck { next_seq: u64, window: u32 },
    /// Manager → agent: re-send everything starting at `seq` (corrupt
    /// frame or a hole in the pipelined window; go-back-N).
    ChunkRetry { seq: u64 },
    /// Manager → agent: tear the honeypot down and start over.
    Relaunch,
    /// Manager → agent: flush logs and exit cleanly.
    Shutdown,
    /// Agent → manager: clean exit; `final_seq` is the next sequence the
    /// agent would have used.
    Goodbye { agent: u32, final_seq: u64 },
}

impl ControlMessage {
    /// The control opcode this message travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            ControlMessage::Register { .. } => opcodes::REGISTER,
            ControlMessage::RegisterAck { .. } => opcodes::REGISTER_ACK,
            ControlMessage::ConfigPush(_) => opcodes::CONFIG_PUSH,
            ControlMessage::Heartbeat { .. } => opcodes::HEARTBEAT,
            ControlMessage::HeartbeatAck { .. } => opcodes::HEARTBEAT_ACK,
            ControlMessage::Status(_) => opcodes::STATUS_REPORT,
            ControlMessage::Ready { .. } => opcodes::READY,
            ControlMessage::LogUpload { .. } => opcodes::LOG_CHUNK,
            ControlMessage::ChunkAck { .. } => opcodes::CHUNK_ACK,
            ControlMessage::ChunkRetry { .. } => opcodes::CHUNK_RETRY,
            ControlMessage::Relaunch => opcodes::RELAUNCH,
            ControlMessage::Shutdown => opcodes::SHUTDOWN,
            ControlMessage::Goodbye { .. } => opcodes::GOODBYE,
        }
    }

    /// Encodes the payload (without the frame envelope).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            ControlMessage::Register { agent, incarnation, resume } => {
                w.u32(*agent);
                w.u32(*incarnation);
                w.u8(*resume as u8);
            }
            ControlMessage::RegisterAck { agent, next_seq, window } => {
                w.u32(*agent);
                w.u64(*next_seq);
                w.u32(*window);
            }
            ControlMessage::ConfigPush(cfg) => put_config(&mut w, cfg),
            ControlMessage::Heartbeat { agent, seq, sent_micros, rtt_micros, flags } => {
                w.u32(*agent);
                w.u64(*seq);
                w.u64(*sent_micros);
                w.u64(*rtt_micros);
                w.u8(*flags);
            }
            ControlMessage::HeartbeatAck { seq, echo_micros } => {
                w.u64(*seq);
                w.u64(*echo_micros);
            }
            ControlMessage::Status(report) => put_status_report(&mut w, report),
            ControlMessage::Ready { agent, peer_port } => {
                w.u32(*agent);
                w.u16(*peer_port);
            }
            ControlMessage::LogUpload { agent, seq, chunk } => {
                w.u32(*agent);
                w.u64(*seq);
                put_chunk(&mut w, chunk);
            }
            ControlMessage::ChunkAck { next_seq, window } => {
                w.u64(*next_seq);
                w.u32(*window);
            }
            ControlMessage::ChunkRetry { seq } => w.u64(*seq),
            ControlMessage::Relaunch | ControlMessage::Shutdown => {}
            ControlMessage::Goodbye { agent, final_seq } => {
                w.u32(*agent);
                w.u64(*final_seq);
            }
        }
        w.out
    }

    /// Encodes the message as one complete control frame.
    pub fn encode_frame(&self) -> Vec<u8> {
        edonkey_proto::control::encode_control_frame(self.opcode(), &self.encode_payload())
    }

    /// Decodes a payload received under `opcode`.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<ControlMessage, ProtoError> {
        let mut r = Reader::new(payload);
        let msg = match opcode {
            opcodes::REGISTER => ControlMessage::Register {
                agent: r.u32()?,
                incarnation: r.u32()?,
                resume: r.u8()? != 0,
            },
            opcodes::REGISTER_ACK => ControlMessage::RegisterAck {
                agent: r.u32()?,
                next_seq: r.u64()?,
                window: r.u32()?,
            },
            opcodes::CONFIG_PUSH => ControlMessage::ConfigPush(get_config(&mut r)?),
            opcodes::HEARTBEAT => ControlMessage::Heartbeat {
                agent: r.u32()?,
                seq: r.u64()?,
                sent_micros: r.u64()?,
                rtt_micros: r.u64()?,
                flags: r.u8()?,
            },
            opcodes::HEARTBEAT_ACK => {
                ControlMessage::HeartbeatAck { seq: r.u64()?, echo_micros: r.u64()? }
            }
            opcodes::STATUS_REPORT => ControlMessage::Status(get_status_report(&mut r)?),
            opcodes::READY => ControlMessage::Ready { agent: r.u32()?, peer_port: r.u16()? },
            opcodes::LOG_CHUNK => {
                let agent = r.u32()?;
                let seq = r.u64()?;
                let chunk = get_chunk(&mut r)?;
                ControlMessage::LogUpload { agent, seq, chunk }
            }
            opcodes::CHUNK_ACK => ControlMessage::ChunkAck { next_seq: r.u64()?, window: r.u32()? },
            opcodes::CHUNK_RETRY => ControlMessage::ChunkRetry { seq: r.u64()? },
            opcodes::RELAUNCH => ControlMessage::Relaunch,
            opcodes::SHUTDOWN => ControlMessage::Shutdown,
            opcodes::GOODBYE => ControlMessage::Goodbye { agent: r.u32()?, final_seq: r.u64()? },
            _ => return Err(ProtoError::UnknownOpcode { opcode, context: "control message" }),
        };
        r.finish()?;
        Ok(msg)
    }
}

// ---------------------------------------------------------------------------
// Composite encoders/decoders.

fn put_config(w: &mut Writer, cfg: &AgentConfig) {
    w.u32(cfg.id.0);
    w.u8(content_tag(cfg.content));
    put_file_strategy(w, &cfg.files);
    put_server(w, &cfg.server);
    w.u64(cfg.ip_salt);
    w.u64(cfg.rng_seed);
    w.u64(cfg.heartbeat_ms);
    w.u64(cfg.collect_ms);
    w.string(&cfg.client_name);
}

fn get_config(r: &mut Reader) -> Result<AgentConfig, ProtoError> {
    Ok(AgentConfig {
        id: HoneypotId(r.u32()?),
        content: content_from(r.u8()?)?,
        files: get_file_strategy(r)?,
        server: get_server(r)?,
        ip_salt: r.u64()?,
        rng_seed: r.u64()?,
        heartbeat_ms: r.u64()?,
        collect_ms: r.u64()?,
        client_name: r.string()?,
    })
}

fn content_tag(c: ContentStrategy) -> u8 {
    match c {
        ContentStrategy::NoContent => 0,
        ContentStrategy::RandomContent => 1,
    }
}

fn content_from(tag: u8) -> Result<ContentStrategy, ProtoError> {
    match tag {
        0 => Ok(ContentStrategy::NoContent),
        1 => Ok(ContentStrategy::RandomContent),
        _ => Err(ProtoError::Invalid("content strategy tag")),
    }
}

fn put_file_strategy(w: &mut Writer, s: &FileStrategy) {
    match s {
        FileStrategy::Fixed(files) => {
            w.u8(0);
            w.u32(files.len() as u32);
            for f in files {
                put_advertised(w, f);
            }
        }
        FileStrategy::Greedy { seeds, adopt_until, max_files } => {
            w.u8(1);
            w.u32(seeds.len() as u32);
            for f in seeds {
                put_advertised(w, f);
            }
            w.u64(adopt_until.as_millis());
            w.u64(*max_files as u64);
        }
    }
}

fn get_file_strategy(r: &mut Reader) -> Result<FileStrategy, ProtoError> {
    match r.u8()? {
        0 => {
            let n = r.u32()? as usize;
            let mut files = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                files.push(get_advertised(r)?);
            }
            Ok(FileStrategy::Fixed(files))
        }
        1 => {
            let n = r.u32()? as usize;
            let mut seeds = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                seeds.push(get_advertised(r)?);
            }
            let adopt_until = SimTime::from_millis(r.u64()?);
            let max_files = r.u64()? as usize;
            Ok(FileStrategy::Greedy { seeds, adopt_until, max_files })
        }
        _ => Err(ProtoError::Invalid("file strategy tag")),
    }
}

fn put_advertised(w: &mut Writer, f: &AdvertisedFile) {
    w.bytes16(&f.id.0);
    w.string(&f.name);
    w.u64(f.size);
}

fn get_advertised(r: &mut Reader) -> Result<AdvertisedFile, ProtoError> {
    Ok(AdvertisedFile { id: FileId(r.bytes16()?), name: r.string()?, size: r.u64()? })
}

fn put_server(w: &mut Writer, s: &ServerInfo) {
    w.string(&s.name);
    w.u32(s.ip.0);
    w.u16(s.port);
}

fn get_server(r: &mut Reader) -> Result<ServerInfo, ProtoError> {
    let name = r.string()?;
    let ip = Ipv4(r.u32()?);
    let port = r.u16()?;
    Ok(ServerInfo { name, ip, port })
}

fn put_status_report(w: &mut Writer, report: &StatusReport) {
    w.u32(report.honeypot.0);
    w.u64(report.at.as_millis());
    match report.status {
        HoneypotStatus::Pending => w.u8(0),
        HoneypotStatus::Connected { client_id } => {
            w.u8(1);
            w.u32(client_id.0);
        }
        HoneypotStatus::Disconnected => w.u8(2),
        HoneypotStatus::Dead => w.u8(3),
    }
}

fn get_status_report(r: &mut Reader) -> Result<StatusReport, ProtoError> {
    let honeypot = HoneypotId(r.u32()?);
    let at = SimTime::from_millis(r.u64()?);
    let status = match r.u8()? {
        0 => HoneypotStatus::Pending,
        1 => HoneypotStatus::Connected { client_id: ClientId(r.u32()?) },
        2 => HoneypotStatus::Disconnected,
        3 => HoneypotStatus::Dead,
        _ => return Err(ProtoError::Invalid("honeypot status tag")),
    };
    Ok(StatusReport { honeypot, at, status })
}

fn put_chunk(w: &mut Writer, chunk: &LogChunk) {
    w.u32(chunk.honeypot.0);
    put_server(w, &chunk.server);
    w.u32(chunk.records.len() as u32);
    for rec in &chunk.records {
        // The packed storage form's wire serialisation is byte-identical
        // to the historical field-by-field encoding (pinned by the
        // `record_encoding_matches_packed_wire_layout` test below).
        w.raw(&PackedQueryRecord::pack(rec).to_wire_bytes());
    }
    w.u32(chunk.shared_lists.len() as u32);
    for l in chunk.shared_lists.iter() {
        w.u64(l.at.as_millis());
        w.bytes16(&l.peer.0);
        w.u32(l.files.len() as u32);
        for &f in l.files {
            w.u32(f);
        }
    }
    w.u32(chunk.peer_names.len() as u32);
    for n in &chunk.peer_names {
        w.string(n);
    }
    w.u32(chunk.files.len() as u32);
    for i in 0..chunk.files.len() as u32 {
        w.bytes16(&chunk.files.id(i).0);
        w.string(chunk.files.name(i));
        w.u64(chunk.files.size(i));
    }
}

fn get_chunk(r: &mut Reader) -> Result<LogChunk, ProtoError> {
    let honeypot = HoneypotId(r.u32()?);
    let server = get_server(r)?;
    let n_records = r.u32()? as usize;
    let mut records = Vec::with_capacity(n_records.min(1 << 20));
    for _ in 0..n_records {
        let bytes: [u8; PACKED_RECORD_BYTES] =
            r.take(PACKED_RECORD_BYTES)?.try_into().expect("fixed take");
        let packed = PackedQueryRecord::from_wire_bytes(&bytes);
        records.push(packed.unpack().ok_or(ProtoError::Invalid("record enum tag"))?);
    }
    let n_lists = r.u32()? as usize;
    let mut shared_lists = SharedLists::new();
    for _ in 0..n_lists {
        let at = SimTime::from_millis(r.u64()?);
        let peer = IpHash(r.bytes16()?);
        let n_files = r.u32()? as usize;
        shared_lists.begin(at, peer);
        for _ in 0..n_files {
            shared_lists.append_file(r.u32()?);
        }
    }
    let n_names = r.u32()? as usize;
    let mut peer_names = Vec::with_capacity(n_names.min(1 << 20));
    for _ in 0..n_names {
        peer_names.push(r.string()?);
    }
    // Rebuild the file table through a throw-away log, preserving intern
    // order (ids in a table are unique, so re-interning is order-exact).
    let mut scratch = HoneypotLog::new(honeypot, server.clone());
    let n_files = r.u32()? as usize;
    for _ in 0..n_files {
        let id = FileId(r.bytes16()?);
        let name = r.string()?;
        let size = r.u64()?;
        scratch.files.intern(id, &name, size);
    }
    Ok(LogChunk { honeypot, server, records, shared_lists, peer_names, files: scratch.files })
}

// ---------------------------------------------------------------------------
// Little-endian primitives.

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { out: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes16(&mut self, v: &[u8; 16]) {
        self.out.extend_from_slice(v);
    }
    fn raw(&mut self, v: &[u8]) {
        self.out.extend_from_slice(v);
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.out.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.data.len() - self.pos < n {
            return Err(ProtoError::Truncated("control payload"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes16(&mut self) -> Result<[u8; 16], ProtoError> {
        Ok(self.take(16)?.try_into().unwrap())
    }
    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::Invalid("non-UTF-8 string"))
    }
    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(self.data.len() - self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::UserId;
    use honeypot::log::{QueryRecord, FILE_NONE};
    use honeypot::{IdStatus, QueryKind};

    fn sample_chunk() -> LogChunk {
        let server = ServerInfo::new("srv", Ipv4::new(127, 0, 0, 1), 4661);
        let mut log = HoneypotLog::new(HoneypotId(2), server);
        let name = log.intern_name("eMule v0.49");
        let file = log.files.intern(FileId::from_seed(b"f1"), "vacation video.avi", 700 << 20);
        log.push(QueryRecord {
            at: SimTime::from_millis(1234),
            kind: QueryKind::Hello,
            peer: IpHash([7; 16]),
            port: 4662,
            id_status: IdStatus::High,
            user_id: UserId::from_seed(b"peer"),
            name,
            version: 0x49,
            file: FILE_NONE,
        });
        log.push(QueryRecord {
            at: SimTime::from_millis(2345),
            kind: QueryKind::RequestPart,
            peer: IpHash([8; 16]),
            port: 4662,
            id_status: IdStatus::Low,
            user_id: UserId::from_seed(b"peer2"),
            name,
            version: 0x50,
            file,
        });
        log.shared_lists.push(SimTime::from_millis(999), IpHash([7; 16]), [file]);
        log.take_chunk()
    }

    fn roundtrip(msg: &ControlMessage) -> ControlMessage {
        let payload = msg.encode_payload();
        ControlMessage::decode(msg.opcode(), &payload).expect("decode")
    }

    /// The format-stability proof for the packed record: the bytes the
    /// codec emits are exactly the historical field-by-field encoding,
    /// reproduced here by hand.  Spooled chunks from older builds decode
    /// unchanged.
    #[test]
    fn record_encoding_matches_packed_wire_layout() {
        let rec = QueryRecord {
            at: SimTime::from_millis(0xDEAD_BEEF),
            kind: QueryKind::RequestPart,
            peer: IpHash([3; 16]),
            port: 4662,
            id_status: IdStatus::Low,
            user_id: UserId::from_seed(b"pin"),
            name: 5,
            version: 0x49,
            file: 12,
        };
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&rec.at.as_millis().to_le_bytes());
        legacy.push(2); // REQUEST-PART tag
        legacy.extend_from_slice(&rec.peer.0);
        legacy.extend_from_slice(&rec.port.to_le_bytes());
        legacy.push(1); // low-ID tag
        legacy.extend_from_slice(&rec.user_id.0);
        legacy.extend_from_slice(&rec.name.to_le_bytes());
        legacy.extend_from_slice(&rec.version.to_le_bytes());
        legacy.extend_from_slice(&rec.file.to_le_bytes());
        assert_eq!(legacy.len(), PACKED_RECORD_BYTES);
        assert_eq!(PackedQueryRecord::pack(&rec).to_wire_bytes().as_slice(), &legacy[..]);
    }

    #[test]
    fn simple_messages_roundtrip() {
        for msg in [
            ControlMessage::Register { agent: 3, incarnation: 2, resume: true },
            ControlMessage::RegisterAck { agent: 3, next_seq: 17, window: 32 },
            ControlMessage::Heartbeat {
                agent: 1,
                seq: 9,
                sent_micros: 55,
                rtt_micros: 120,
                flags: heartbeat_flags::SPOOL_DEGRADED,
            },
            ControlMessage::HeartbeatAck { seq: 9, echo_micros: 55 },
            ControlMessage::Ready { agent: 0, peer_port: 40123 },
            ControlMessage::ChunkAck { next_seq: 4, window: 9 },
            ControlMessage::ChunkRetry { seq: 4 },
            ControlMessage::Relaunch,
            ControlMessage::Shutdown,
            ControlMessage::Goodbye { agent: 2, final_seq: 8 },
            ControlMessage::Status(StatusReport {
                honeypot: HoneypotId(1),
                at: SimTime::from_millis(77),
                status: HoneypotStatus::Connected { client_id: ClientId(0x0A00_0001) },
            }),
            ControlMessage::Status(StatusReport {
                honeypot: HoneypotId(1),
                at: SimTime::from_millis(78),
                status: HoneypotStatus::Dead,
            }),
        ] {
            assert_eq!(roundtrip(&msg), msg);
        }
    }

    #[test]
    fn config_roundtrips_both_strategies() {
        let seeds = vec![
            AdvertisedFile::new(FileId::from_seed(b"a"), "a.avi", 100),
            AdvertisedFile::new(FileId::from_seed(b"b"), "b.mp3", 5_000_000),
        ];
        for files in [
            FileStrategy::Fixed(seeds.clone()),
            FileStrategy::Greedy {
                seeds: seeds.clone(),
                adopt_until: SimTime::from_hours(24),
                max_files: 200,
            },
        ] {
            let cfg = AgentConfig {
                id: HoneypotId(4),
                content: ContentStrategy::RandomContent,
                files,
                server: ServerInfo::new("live", Ipv4::new(127, 0, 0, 1), 5661),
                ip_salt: 0xDEAD,
                rng_seed: 0xBEEF,
                heartbeat_ms: 100,
                collect_ms: 250,
                client_name: "agent".into(),
            };
            let msg = ControlMessage::ConfigPush(cfg);
            assert_eq!(roundtrip(&msg), msg);
        }
    }

    #[test]
    fn log_upload_roundtrips_chunk_exactly() {
        let chunk = sample_chunk();
        let msg = ControlMessage::LogUpload { agent: 2, seq: 5, chunk: chunk.clone() };
        let back = roundtrip(&msg);
        let ControlMessage::LogUpload { agent, seq, chunk: got } = back else {
            panic!("wrong variant");
        };
        assert_eq!((agent, seq), (2, 5));
        assert_eq!(got.honeypot, chunk.honeypot);
        assert_eq!(got.server, chunk.server);
        assert_eq!(got.records, chunk.records);
        assert_eq!(got.shared_lists, chunk.shared_lists);
        assert_eq!(got.peer_names, chunk.peer_names);
        assert_eq!(got.files.len(), chunk.files.len());
        for i in 0..chunk.files.len() as u32 {
            assert_eq!(got.files.id(i), chunk.files.id(i));
            assert_eq!(got.files.name(i), chunk.files.name(i));
            assert_eq!(got.files.size(i), chunk.files.size(i));
        }
        // The rebuilt table's lookup index must be live, not stale.
        assert_eq!(got.files.lookup(&chunk.files.id(0)), Some(0));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = ControlMessage::ChunkAck { next_seq: 1, window: 4 }.encode_payload();
        payload.push(0);
        assert!(matches!(
            ControlMessage::decode(opcodes::CHUNK_ACK, &payload),
            Err(ProtoError::TrailingBytes(1))
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let payload =
            ControlMessage::RegisterAck { agent: 1, next_seq: 2, window: 8 }.encode_payload();
        assert!(matches!(
            ControlMessage::decode(opcodes::REGISTER_ACK, &payload[..payload.len() - 1]),
            Err(ProtoError::Truncated(_))
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(matches!(
            ControlMessage::decode(0x7F, &[]),
            Err(ProtoError::UnknownOpcode { opcode: 0x7F, .. })
        ));
    }
}
