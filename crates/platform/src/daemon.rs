//! The manager daemon (paper §III-A, as a live network service).
//!
//! One TCP listener; agents connect and register.  Three concerns run in
//! the daemon:
//!
//! * **collection** — per-connection reader threads decode control frames,
//!   answer heartbeats, and stream sequenced [`LogChunk`]s into the
//!   in-process [`honeypot::Manager`] merge/anonymise pipeline via
//!   `collect_sequenced` (exactly-once; duplicates re-acked, corrupt
//!   frames re-requested with `ChunkRetry`, never merged);
//! * **supervision** — a tick thread watches heartbeat deadlines, marks
//!   silent agents dead in the core manager, and issues (re)launches
//!   through a caller-provided launcher, gated by exponential backoff
//!   with jitter and accounted through the core's pure
//!   `needing_relaunch` + `mark_relaunched` pair;
//! * **metrics** — heartbeat RTTs, relaunch/death counts, chunk bytes and
//!   retries, per-agent uptime ([`crate::metrics::PlatformMetrics`]).
//!
//! With [`DaemonConfig::checkpoint`] set, the daemon is additionally
//! **crash-safe**: every merged chunk is appended to a write-ahead spool
//! *before* its ack is sent (acked ⇒ durable), and the supervision state
//! is snapshotted atomically on a timer.  A fresh daemon started with the
//! same checkpoint directory replays the WAL through a new core manager —
//! reproducing the merged log bit for bit, in the original merge order —
//! and resumes supervising from the snapshot.  Chunks an agent re-sends
//! across the crash boundary are deduplicated by the WAL-derived resume
//! sequences and counted in `duplicate_chunks`, never merged twice.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use edonkey_proto::control::opcodes;
use honeypot::{HoneypotId, HoneypotSpec, HoneypotStatus, Manager, MeasurementLog, StatusReport};
use netsim::SimTime;
use parking_lot::Mutex;

use crate::checkpoint::{
    load_checkpoint, save_checkpoint, CheckpointOptions, ManagerCheckpoint, SlotCheckpoint,
};
use crate::conn::{ConnEvent, ControlConn};
use crate::messages::{AgentConfig, ControlMessage};
use crate::metrics::PlatformMetrics;
use crate::retry::{Backoff, RetryPolicy};
use crate::spool::{Spool, SpoolRecord};

/// Supervision and transport tuning.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// An agent silent for longer than this is declared dead.
    pub heartbeat_timeout_ms: u64,
    /// Supervision loop period.
    pub supervision_tick_ms: u64,
    /// First relaunch backoff; doubles per consecutive attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Seed of the backoff jitter stream.
    pub backoff_seed: u64,
    /// Stop relaunching an agent after this many consecutive failed
    /// launch attempts (a registration that reaches `Connected` resets
    /// the count).
    pub max_launch_attempts: u32,
    /// Durability: checkpoint directory and snapshot cadence.  `None`
    /// keeps the PR 3 in-memory behaviour (a daemon crash loses the run).
    pub checkpoint: Option<CheckpointOptions>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            heartbeat_timeout_ms: 400,
            supervision_tick_ms: 25,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            backoff_seed: 0x1eaf_5eed,
            max_launch_attempts: 10,
            checkpoint: None,
        }
    }
}

impl DaemonConfig {
    /// The relaunch-supervision schedule implied by this config.
    fn relaunch_policy(&self) -> RetryPolicy {
        RetryPolicy::relaunch(self.backoff_base_ms, self.backoff_cap_ms, self.max_launch_attempts)
    }
}

/// Spawns (or re-spawns) an agent: `(agent_id, incarnation, daemon_addr)`.
pub type Launcher = Box<dyn Fn(u32, u32, SocketAddr) + Send + Sync + 'static>;

struct Slot {
    config: AgentConfig,
    /// Next upload sequence number this agent must send.
    expected_seq: u64,
    /// Incarnation the next launch will carry.
    next_incarnation: u32,
    /// A connection for this agent is currently registered.
    registered: bool,
    /// The agent said a clean goodbye; never relaunch it.
    goodbye: bool,
    last_activity: Option<Instant>,
    registered_at: Option<Instant>,
    /// Backoff gate: no launch before this instant.
    next_launch_at: Option<Instant>,
    /// Launch-attempt schedule: counts consecutive attempts without a
    /// `Connected` status and paces relaunch gates (unified policy).
    backoff: Backoff,
    /// Port of the honeypot's peer listener (from `Ready`).
    peer_port: Option<u16>,
    /// Write half of the agent's control connection (frame writes are
    /// serialised through the lock).
    writer: Option<Arc<Mutex<TcpStream>>>,
}

impl Slot {
    fn new(config: AgentConfig, policy: RetryPolicy, seed: u64, stream: u64) -> Self {
        Slot {
            config,
            expected_seq: 0,
            next_incarnation: 0,
            registered: false,
            goodbye: false,
            last_activity: None,
            registered_at: None,
            next_launch_at: None,
            backoff: Backoff::new(policy, seed, stream),
            peer_port: None,
            writer: None,
        }
    }
}

/// The chunk write-ahead log: one global append stream in merge order.
struct Wal {
    spool: Spool,
    next_seq: u64,
}

/// Durable-mode state (present iff `DaemonConfig::checkpoint` is set).
struct Durable {
    opts: CheckpointOptions,
    wal: Mutex<Wal>,
    last_snapshot: Mutex<Instant>,
}

struct Inner {
    cfg: DaemonConfig,
    addr: SocketAddr,
    started: Instant,
    /// `None` once `finish` has consumed it.
    core: Mutex<Option<Manager>>,
    slots: Mutex<Vec<Slot>>,
    metrics: Mutex<PlatformMetrics>,
    /// `(agent, seq)` in the exact order chunks were merged.
    chunk_order: Mutex<Vec<(u32, u64)>>,
    launcher: Launcher,
    durable: Option<Durable>,
    shutdown: AtomicBool,
    /// Simulated crash: every loop abandons its work immediately, nothing
    /// is flushed or finalized.  Only what [`Durable`] already wrote
    /// survives, exactly like a killed process.
    crashed: AtomicBool,
}

impl Inner {
    fn now_sim(&self) -> SimTime {
        SimTime::from_millis(self.started.elapsed().as_millis() as u64)
    }
}

/// The manager daemon.  Create with [`Daemon::start`]; always call
/// [`Daemon::finish`] to obtain the merged measurement.
pub struct Daemon {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    supervise: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds a loopback control endpoint and starts the accept and
    /// supervision loops.  `configs[i].id` must equal `i` (the core
    /// manager indexes honeypots densely).  The supervision loop performs
    /// the *initial* launches too, through the same backoff-gated path as
    /// relaunches.
    ///
    /// With `cfg.checkpoint` set and a non-empty checkpoint directory,
    /// this *recovers*: the WAL is replayed through the fresh core (same
    /// merge order, same intern order), per-agent resume sequences are
    /// derived from it, and the supervision snapshot — if present and
    /// intact — restores incarnation counters, attempt budgets, goodbye
    /// flags and metrics continuity.
    pub fn start(
        cfg: DaemonConfig,
        configs: Vec<AgentConfig>,
        launcher: Launcher,
    ) -> std::io::Result<Daemon> {
        let specs: Vec<HoneypotSpec> = configs
            .iter()
            .map(|c| HoneypotSpec { id: c.id, content: c.content, server: c.server.clone() })
            .collect();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let n = configs.len();

        let policy = cfg.relaunch_policy();
        let seed = cfg.backoff_seed;
        let mut slots: Vec<Slot> = configs
            .into_iter()
            .enumerate()
            .map(|(i, c)| Slot::new(c, policy, seed, i as u64))
            .collect();
        let mut core = Manager::new(specs);
        let mut metrics = PlatformMetrics::new(n);
        let mut chunk_order: Vec<(u32, u64)> = Vec::new();

        let durable = match &cfg.checkpoint {
            Some(opts) => {
                let spool = Spool::open(opts.wal_dir())?;
                let next_seq = spool.last_seq().map_or(0, |s| s + 1);
                Some(Durable {
                    opts: opts.clone(),
                    wal: Mutex::new(Wal { spool, next_seq }),
                    last_snapshot: Mutex::new(Instant::now()),
                })
            }
            None => None,
        };
        let snapshot = cfg.checkpoint.as_ref().and_then(|o| load_checkpoint(&o.dir));
        let mut restored = false;
        if let Some(d) = &durable {
            let records: Vec<SpoolRecord> = d.wal.lock().spool.unacked().to_vec();
            restored = !records.is_empty();
            for rec in &records {
                let Ok(ControlMessage::LogUpload { agent, seq, chunk }) =
                    ControlMessage::decode(opcodes::LOG_CHUNK, &rec.payload)
                else {
                    continue;
                };
                let i = agent as usize;
                if i >= slots.len() {
                    continue;
                }
                let bytes = rec.payload.len() as u64;
                if core.collect_sequenced(seq, chunk) {
                    chunk_order.push((agent, seq));
                    metrics.agents[i].note_merged(seq);
                    metrics.agents[i].chunks_merged += 1;
                    metrics.agents[i].chunk_bytes += bytes;
                }
                if seq >= slots[i].expected_seq {
                    slots[i].expected_seq = seq + 1;
                }
            }
        }
        if let Some(snap) = &snapshot {
            restored = true;
            for (i, s) in snap.slots.iter().enumerate().take(slots.len()) {
                let slot = &mut slots[i];
                // The WAL-derived resume point is authoritative (acks
                // follow WAL appends, so the snapshot can only lag).
                slot.expected_seq = slot.expected_seq.max(s.expected_seq);
                slot.next_incarnation = slot.next_incarnation.max(s.next_incarnation);
                slot.goodbye = s.goodbye;
                slot.backoff.restore(s.attempts);
                let m = &mut metrics.agents[i];
                m.relaunches = s.relaunches;
                m.deaths = s.deaths;
                m.resumes = s.resumes;
                m.registrations = s.registrations;
                m.uptime_ms = s.uptime_ms;
            }
        }
        if restored {
            metrics.manager_restores += 1;
        }

        let inner = Arc::new(Inner {
            cfg,
            addr,
            started: Instant::now(),
            core: Mutex::new(Some(core)),
            slots: Mutex::new(slots),
            metrics: Mutex::new(metrics),
            chunk_order: Mutex::new(chunk_order),
            launcher,
            durable,
            shutdown: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
        });

        let accept_inner = inner.clone();
        let accept = std::thread::spawn(move || {
            // Transient accept errors (EMFILE, ECONNABORTED) are retried
            // with the unified backoff; the listener is never torn down.
            let accept_policy = RetryPolicy { base_ms: 5, cap_ms: 250, max_attempts: None };
            let mut accept_backoff =
                Backoff::new(accept_policy, accept_inner.cfg.backoff_seed, 0xACCE);
            for stream in listener.incoming() {
                if accept_inner.shutdown.load(Ordering::SeqCst)
                    || accept_inner.crashed.load(Ordering::SeqCst)
                {
                    break;
                }
                let stream = match stream {
                    Ok(s) => {
                        accept_backoff.reset();
                        s
                    }
                    Err(_) => {
                        if let Some(pause) = accept_backoff.next_delay() {
                            std::thread::sleep(pause);
                        }
                        continue;
                    }
                };
                let conn_inner = accept_inner.clone();
                std::thread::spawn(move || serve_agent(conn_inner, stream));
            }
        });

        let sup_inner = inner.clone();
        let supervise = std::thread::spawn(move || {
            while !sup_inner.shutdown.load(Ordering::SeqCst)
                && !sup_inner.crashed.load(Ordering::SeqCst)
            {
                supervision_tick(&sup_inner);
                maybe_checkpoint(&sup_inner);
                std::thread::sleep(Duration::from_millis(sup_inner.cfg.supervision_tick_ms));
            }
        });

        Ok(Daemon { inner, accept: Some(accept), supervise: Some(supervise) })
    }

    /// The control endpoint agents connect to.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Relaunches issued by the core accounting (initial launches not
    /// counted).
    pub fn relaunch_count(&self) -> u64 {
        self.inner.core.lock().as_ref().map_or(0, |m| m.relaunch_count())
    }

    /// Chunks merged so far.
    pub fn chunks_collected(&self) -> u64 {
        self.inner.core.lock().as_ref().map_or(0, |m| m.chunks_collected())
    }

    /// Highest merged upload sequence for an agent.
    pub fn collected_seq_high(&self, agent: u32) -> Option<u64> {
        self.inner.core.lock().as_ref().and_then(|m| m.collected_seq_high(HoneypotId(agent)))
    }

    /// The honeypot peer-listener address of a registered, ready agent.
    pub fn agent_peer_addr(&self, agent: u32) -> Option<SocketAddr> {
        let slots = self.inner.slots.lock();
        let slot = slots.get(agent as usize)?;
        if !slot.registered {
            return None;
        }
        slot.peer_port.map(|p| SocketAddr::from(([127, 0, 0, 1], p)))
    }

    /// Waits until every agent is registered and ready (or the timeout
    /// passes); returns whether they all made it.
    pub fn wait_agents_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let slots = self.inner.slots.lock();
                if slots.iter().all(|s| s.registered && s.peer_port.is_some()) {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Snapshot of the platform metrics.
    pub fn metrics(&self) -> PlatformMetrics {
        self.inner.metrics.lock().clone()
    }

    /// The exact order in which `(agent, seq)` chunks were merged.
    pub fn chunk_order(&self) -> Vec<(u32, u64)> {
        self.inner.chunk_order.lock().clone()
    }

    /// Asks a live agent to tear down and restart its honeypot in place.
    pub fn relaunch_agent(&self, agent: u32) -> bool {
        let writer = {
            let slots = self.inner.slots.lock();
            slots.get(agent as usize).and_then(|s| s.writer.clone())
        };
        match writer {
            Some(w) => send_to(&w, &ControlMessage::Relaunch).is_ok(),
            None => false,
        }
    }

    /// Simulates a manager crash: every loop abandons its work without
    /// flushing, draining or finalizing.  The in-memory merge state and
    /// metrics die here; only the checkpoint directory survives.  Start a
    /// fresh daemon with the same [`DaemonConfig::checkpoint`] to recover.
    pub fn crash(self) {
        self.inner.crashed.store(true, Ordering::SeqCst);
        // Drop joins the loops; serve threads notice `crashed` and bail.
    }

    /// Ends the measurement: stops supervision, asks every live agent to
    /// flush and exit, waits up to `drain` for goodbyes, then finalizes
    /// the merge pipeline.  Returns the merged log, the platform metrics
    /// and the chunk merge order.
    pub fn finish(
        mut self,
        duration: SimTime,
        shared_files_final: u32,
        name_threshold: u32,
        drain: Duration,
    ) -> (MeasurementLog, PlatformMetrics, Vec<(u32, u64)>) {
        // Supervision first: a draining agent must not be "relaunched".
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.supervise.take() {
            let _ = t.join();
        }

        let writers: Vec<Arc<Mutex<TcpStream>>> = {
            let slots = self.inner.slots.lock();
            slots.iter().filter_map(|s| s.writer.clone()).collect()
        };
        for w in &writers {
            let _ = send_to(w, &ControlMessage::Shutdown);
        }

        let deadline = Instant::now() + drain;
        loop {
            {
                let slots = self.inner.slots.lock();
                if slots.iter().all(|s| !s.registered || s.goodbye) {
                    break;
                }
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        // Unblock the accept loop and join it.
        let _ = TcpStream::connect(self.inner.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }

        // Credit uptime of anything still registered (e.g. drain timeout).
        {
            let now = Instant::now();
            let mut slots = self.inner.slots.lock();
            for i in 0..slots.len() {
                if slots[i].registered {
                    let slot = &mut slots[i];
                    slot.registered = false;
                    slot.writer = None;
                    if let Some(since) = slot.registered_at.take() {
                        let ms = now.duration_since(since).as_millis() as u64;
                        self.inner.metrics.lock().agents[i].uptime_ms += ms;
                    }
                }
            }
        }

        // A last snapshot so a *supervisor* restart after a clean finish
        // still sees the final accounting.
        if let Some(d) = &self.inner.durable {
            let _ = save_checkpoint(&d.opts.dir, &build_checkpoint(&self.inner));
        }

        let mgr = self.inner.core.lock().take().expect("finish called once");
        let log = mgr.finalize(duration, shared_files_final, name_threshold);
        let metrics = self.inner.metrics.lock().clone();
        let order = self.inner.chunk_order.lock().clone();
        (log, metrics, order)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.inner.addr);
        if let Some(t) = self.supervise.take() {
            let _ = t.join();
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

/// Serialised frame write to an agent's connection.
fn send_to(writer: &Arc<Mutex<TcpStream>>, msg: &ControlMessage) -> std::io::Result<()> {
    use std::io::Write;
    let bytes = msg.encode_frame();
    writer.lock().write_all(&bytes)
}

/// One connection's reader loop.
fn serve_agent(inner: Arc<Inner>, stream: TcpStream) {
    let mut conn = ControlConn::from_stream(stream);
    conn.set_read_timeout(Duration::from_millis(5)).ok();

    // First frame must be a Register.
    let deadline = Instant::now() + Duration::from_secs(3);
    let (agent, resume) = loop {
        if Instant::now() >= deadline || inner.crashed.load(Ordering::SeqCst) {
            return;
        }
        let events = match conn.poll() {
            Ok(ev) => ev,
            Err(_) => return,
        };
        let mut found = None;
        for ev in events {
            if let ConnEvent::Msg(ControlMessage::Register { agent, incarnation: _, resume }) = ev {
                found = Some((agent, resume));
                break;
            }
        }
        if let Some(f) = found {
            break f;
        }
    };

    let Ok(raw_writer) = conn.try_clone_stream() else { return };
    let writer = Arc::new(Mutex::new(raw_writer));
    let agent_idx = agent as usize;

    let (next_seq, config) = {
        let mut slots = inner.slots.lock();
        let Some(slot) = slots.get_mut(agent_idx) else { return };
        let now = Instant::now();
        // Latest connection wins; credit the previous registration.
        if slot.registered {
            if let Some(since) = slot.registered_at.take() {
                let ms = now.duration_since(since).as_millis() as u64;
                drop(slots);
                inner.metrics.lock().agents[agent_idx].uptime_ms += ms;
                slots = inner.slots.lock();
            }
        }
        let slot = &mut slots[agent_idx];
        slot.registered = true;
        slot.last_activity = Some(now);
        slot.registered_at = Some(now);
        slot.writer = Some(writer.clone());
        (slot.expected_seq, slot.config.clone())
    };
    {
        let mut metrics = inner.metrics.lock();
        metrics.agents[agent_idx].registrations += 1;
        if resume {
            metrics.agents[agent_idx].resumes += 1;
        }
    }
    if send_to(&writer, &ControlMessage::RegisterAck { agent, next_seq }).is_err() {
        return;
    }
    if send_to(&writer, &ControlMessage::ConfigPush(config)).is_err() {
        return;
    }

    let mut clean_goodbye = false;
    'conn: loop {
        if inner.crashed.load(Ordering::SeqCst) {
            // A crashed manager does no bookkeeping on the way out.
            return;
        }
        let events = match conn.poll() {
            Ok(ev) => ev,
            Err(_) => break 'conn,
        };
        for ev in events {
            touch(&inner, agent_idx);
            match ev {
                ConnEvent::Corrupt { opcode } => {
                    inner.metrics.lock().corrupt_frames += 1;
                    if opcode == opcodes::LOG_CHUNK {
                        // A damaged upload is re-requested, never merged.
                        let want = inner.slots.lock()[agent_idx].expected_seq;
                        inner.metrics.lock().agents[agent_idx].chunk_retries += 1;
                        let _ = send_to(&writer, &ControlMessage::ChunkRetry { seq: want });
                    }
                }
                ConnEvent::Msg(ControlMessage::Heartbeat {
                    seq, sent_micros, rtt_micros, ..
                }) => {
                    {
                        let mut metrics = inner.metrics.lock();
                        metrics.agents[agent_idx].heartbeats += 1;
                        if rtt_micros > 0 {
                            metrics.agents[agent_idx].rtt.record(rtt_micros);
                        }
                    }
                    let _ = send_to(
                        &writer,
                        &ControlMessage::HeartbeatAck { seq, echo_micros: sent_micros },
                    );
                }
                ConnEvent::Msg(ControlMessage::Status(report)) => {
                    if matches!(report.status, HoneypotStatus::Connected { .. }) {
                        inner.slots.lock()[agent_idx].backoff.reset();
                    }
                    if let Some(core) = inner.core.lock().as_mut() {
                        core.on_status(report);
                    }
                }
                ConnEvent::Msg(ControlMessage::Ready { peer_port, .. }) => {
                    inner.slots.lock()[agent_idx].peer_port = Some(peer_port);
                }
                ConnEvent::Msg(ControlMessage::LogUpload { agent: a, seq, chunk }) => {
                    if a == agent {
                        handle_upload(&inner, agent_idx, seq, chunk, &writer);
                    }
                }
                ConnEvent::Msg(ControlMessage::Goodbye { .. }) => {
                    clean_goodbye = true;
                    break 'conn;
                }
                _ => {}
            }
        }
    }

    // Connection over: close out this registration if it is still ours.
    let now = Instant::now();
    let mut credit_ms = None;
    {
        let mut slots = inner.slots.lock();
        let slot = &mut slots[agent_idx];
        let ours = slot.writer.as_ref().is_some_and(|w| Arc::ptr_eq(w, &writer));
        if ours {
            if clean_goodbye {
                slot.goodbye = true;
            }
            slot.registered = false;
            slot.writer = None;
            if let Some(since) = slot.registered_at.take() {
                credit_ms = Some(now.duration_since(since).as_millis() as u64);
            }
        }
    }
    if let Some(ms) = credit_ms {
        inner.metrics.lock().agents[agent_idx].uptime_ms += ms;
    }
}

fn touch(inner: &Inner, agent_idx: usize) {
    inner.slots.lock()[agent_idx].last_activity = Some(Instant::now());
}

fn handle_upload(
    inner: &Inner,
    agent_idx: usize,
    seq: u64,
    chunk: honeypot::LogChunk,
    writer: &Arc<Mutex<TcpStream>>,
) {
    let expected = inner.slots.lock()[agent_idx].expected_seq;
    if seq < expected {
        // Duplicate after a lost ack or across a manager crash: already
        // merged (and, in durable mode, already in the WAL) — just re-ack.
        inner.metrics.lock().agents[agent_idx].duplicate_chunks += 1;
        let _ = send_to(writer, &ControlMessage::ChunkAck { seq });
        return;
    }
    if seq > expected {
        // A hole would mean lost data; ask for the resume point.
        let _ = send_to(writer, &ControlMessage::ChunkRetry { seq: expected });
        return;
    }
    let payload = ControlMessage::LogUpload { agent: agent_idx as u32, seq, chunk: chunk.clone() }
        .encode_payload();
    let bytes = payload.len() as u64;
    // Durability contract: the chunk is in the WAL *before* the ack goes
    // out, in merge order, so an acked chunk is always recoverable and a
    // replayed WAL reproduces the merge exactly.
    if let Some(d) = &inner.durable {
        let mut wal = d.wal.lock();
        let wseq = wal.next_seq;
        match wal.spool.append(wseq, &payload) {
            Ok(()) => wal.next_seq += 1,
            Err(e) => eprintln!("[daemon] WAL append failed for agent {agent_idx} seq {seq}: {e}"),
        }
    }
    let merged = match inner.core.lock().as_mut() {
        Some(core) => core.collect_sequenced(seq, chunk),
        None => false,
    };
    if merged {
        inner.chunk_order.lock().push((agent_idx as u32, seq));
        let mut metrics = inner.metrics.lock();
        // `note_merged` is the exactly-once ledger; `chunks_merged` must
        // track it one-for-one or `double_merge_violation` fires.
        metrics.agents[agent_idx].note_merged(seq);
        metrics.agents[agent_idx].chunks_merged += 1;
        metrics.agents[agent_idx].chunk_bytes += bytes;
    }
    inner.slots.lock()[agent_idx].expected_seq = seq + 1;
    let _ = send_to(writer, &ControlMessage::ChunkAck { seq });
}

/// Builds the supervision snapshot from the live slot and metric state.
fn build_checkpoint(inner: &Inner) -> ManagerCheckpoint {
    let slot_view: Vec<(u64, u32, u32, bool)> = {
        let slots = inner.slots.lock();
        slots
            .iter()
            .map(|s| (s.expected_seq, s.next_incarnation, s.backoff.attempts(), s.goodbye))
            .collect()
    };
    let metrics = inner.metrics.lock();
    ManagerCheckpoint {
        slots: slot_view
            .into_iter()
            .zip(metrics.agents.iter())
            .map(|((expected_seq, next_incarnation, attempts, goodbye), m)| SlotCheckpoint {
                expected_seq,
                next_incarnation,
                attempts,
                goodbye,
                relaunches: m.relaunches,
                deaths: m.deaths,
                resumes: m.resumes,
                registrations: m.registrations,
                uptime_ms: m.uptime_ms,
            })
            .collect(),
    }
}

/// Writes a snapshot if the checkpoint interval has elapsed.
fn maybe_checkpoint(inner: &Inner) {
    let Some(d) = &inner.durable else { return };
    let now = Instant::now();
    {
        let mut last = d.last_snapshot.lock();
        if now.duration_since(*last) < Duration::from_millis(d.opts.interval_ms) {
            return;
        }
        *last = now;
    }
    if let Err(e) = save_checkpoint(&d.opts.dir, &build_checkpoint(inner)) {
        eprintln!("[daemon] checkpoint write failed: {e}");
    }
}

/// One pass of the supervision loop: deadline-check registered agents,
/// then issue backoff-gated (re)launches for everything the core manager
/// reports as needing one.
fn supervision_tick(inner: &Arc<Inner>) {
    let now = Instant::now();
    let timeout = Duration::from_millis(inner.cfg.heartbeat_timeout_ms);

    // Heartbeat deadlines → deaths.  This covers both a registered agent
    // that went silent and a crashed one whose connection already closed:
    // `last_activity` keeps ticking from the agent's last sign of life,
    // and taking it (`None`) latches the death so it is reported once.
    let mut died: Vec<usize> = Vec::new();
    {
        let mut slots = inner.slots.lock();
        for (i, slot) in slots.iter_mut().enumerate() {
            if !slot.goodbye
                && slot.last_activity.map_or(false, |t| now.duration_since(t) > timeout)
            {
                slot.registered = false;
                slot.writer = None;
                slot.last_activity = None;
                died.push(i);
            }
        }
    }
    for &i in &died {
        // Credit uptime and record the death.
        let mut credit = None;
        {
            let mut slots = inner.slots.lock();
            if let Some(since) = slots[i].registered_at.take() {
                credit = Some(now.duration_since(since).as_millis() as u64);
            }
        }
        {
            let mut metrics = inner.metrics.lock();
            metrics.agents[i].deaths += 1;
            if let Some(ms) = credit {
                metrics.agents[i].uptime_ms += ms;
            }
        }
        let report = StatusReport {
            honeypot: HoneypotId(i as u32),
            at: inner.now_sim(),
            status: HoneypotStatus::Dead,
        };
        if let Some(core) = inner.core.lock().as_mut() {
            core.on_status(report);
        }
    }

    // Launches: the core's pure query says who, the slot's backoff gate
    // says when, `mark_relaunched` does the counting exactly once.
    let needing: Vec<HoneypotId> = match inner.core.lock().as_ref() {
        Some(core) => core.needing_relaunch(),
        None => return,
    };
    for id in needing {
        let i = id.0 as usize;
        let launch = {
            let mut slots = inner.slots.lock();
            let slot = &mut slots[i];
            if slot.goodbye || slot.registered {
                None
            } else if slot.next_launch_at.is_some_and(|t| now < t) {
                None
            } else {
                // The unified policy paces the schedule and spends the
                // attempt budget; `None` means this agent has exhausted
                // its launches.  The gate is floored at the heartbeat
                // timeout so a launch in flight is never doubled.
                match slot.backoff.next_deadline(now, inner.cfg.heartbeat_timeout_ms) {
                    Some(gate) => {
                        let incarnation = slot.next_incarnation;
                        slot.next_incarnation += 1;
                        slot.next_launch_at = Some(gate);
                        Some(incarnation)
                    }
                    None => None,
                }
            }
        };
        let Some(incarnation) = launch else { continue };
        // The core counts exactly once per incident (launches from
        // `Pending` are free); mirror its decision in the metrics.
        let counted = match inner.core.lock().as_mut() {
            Some(core) => {
                let was_pending = matches!(core.status_of(id), HoneypotStatus::Pending);
                core.mark_relaunched(id);
                !was_pending
            }
            None => false,
        };
        if counted {
            inner.metrics.lock().agents[i].relaunches += 1;
        }
        (inner.launcher)(id.0, incarnation, inner.addr);
    }
}
