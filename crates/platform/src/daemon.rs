//! The manager daemon (paper §III-A, as a live network service).
//!
//! One TCP listener; agents connect and register.  Four concerns run in
//! the daemon:
//!
//! * **transport** — a pool of reactor shards ([`crate::reactor`]) drives
//!   every connection non-blockingly from a handful of threads: the accept
//!   loop (bounded by [`DaemonConfig::max_connections`], resilient to FD
//!   exhaustion) deals fresh sockets round-robin to the shards, and each
//!   shard reads, decodes and flushes its connections in one event loop —
//!   registration, heartbeats and chunk ingest multiplexed across
//!   thousands of agents;
//! * **collection** — decoded [`LogChunk`](honeypot::LogChunk) uploads are
//!   queued to a single merge thread that feeds the in-process
//!   [`honeypot::Manager`] merge/anonymise pipeline via `collect_sequenced`
//!   (exactly-once; duplicates re-acked, corrupt frames re-requested with
//!   `ChunkRetry`, never merged).  Uploads are windowed and pipelined:
//!   agents keep up to [`DaemonConfig::upload_window`] chunks in flight
//!   and the merge thread answers with *cumulative* acks — one
//!   `ChunkAck { next_seq }` per burst carries the whole merge frontier,
//!   and the agent trims its spool up to it;
//! * **supervision** — a tick thread watches heartbeat deadlines, marks
//!   silent agents dead in the core manager, and issues (re)launches
//!   through a caller-provided launcher, gated by exponential backoff
//!   with jitter and accounted through the core's pure
//!   `needing_relaunch` + `mark_relaunched` pair;
//! * **metrics** — heartbeat RTTs, relaunch/death counts, chunk bytes and
//!   retries, window occupancy, reactor loop latency and merge-queue
//!   depth ([`crate::metrics::PlatformMetrics`]).
//!
//! With [`DaemonConfig::checkpoint`] set, the daemon is additionally
//! **crash-safe**: every merged chunk is appended to a write-ahead spool
//! *before* the cumulative ack covering it is sent (acked ⇒ durable), and
//! the supervision state is snapshotted atomically on a timer.  A fresh
//! daemon started with the same checkpoint directory replays the WAL
//! through a new core manager — reproducing the merged log bit for bit,
//! in the original merge order — and resumes supervising from the
//! snapshot.  Chunks an agent re-sends across the crash boundary are
//! deduplicated by the WAL-derived resume sequences and counted in
//! `duplicate_chunks`, never merged twice.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use edonkey_proto::control::{opcodes, ControlEvent};
use honeypot::{HoneypotId, HoneypotSpec, HoneypotStatus, Manager, MeasurementLog, StatusReport};
use netsim::SimTime;
use parking_lot::Mutex;

use edonkey_proto::control::MAX_CONTROL_PAYLOAD;

use crate::checkpoint::{
    load_checkpoint, quarantine_checkpoint, save_checkpoint_with, CheckpointOptions,
    ManagerCheckpoint, SlotCheckpoint,
};
use crate::diskfault::DiskFaults;
use crate::impair::ImpairPlan;
use crate::messages::{heartbeat_flags, AgentConfig, ControlMessage};
use crate::metrics::{PlatformMetrics, RttStats};
use crate::obs::{self, Histogram, HistogramHandle, Registry};
use crate::reactor::{CloseReason, Outbox, ReactorConn};
use crate::retry::{Backoff, RetryPolicy};
use crate::spool::{Spool, SpoolRecord};
use crate::transport::{classify_accept, AcceptError};
use netsim::obs_event;
/// Shard sleep when a whole pass moved no bytes.
const IDLE_SLEEP: Duration = Duration::from_micros(500);
/// Reactor latency samples are batched locally and folded into the shared
/// metrics every this many active iterations (keeps the lock cold).
const LATENCY_FLUSH_EVERY: u64 = 128;

/// Ceiling on how long a non-empty latency batch may wait before it is
/// folded into the shared metrics and the live registry: low-traffic
/// deployments would otherwise never reach the pass-count threshold and
/// the scraper would report a permanently cold reactor histogram.
const LATENCY_FLUSH_INTERVAL: Duration = Duration::from_millis(250);
/// Merge bursts are capped so ack latency stays bounded under firehose.
const MERGE_BURST: usize = 1024;

/// Supervision and transport tuning.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// An agent silent for longer than this is declared dead.
    pub heartbeat_timeout_ms: u64,
    /// Supervision loop period.
    pub supervision_tick_ms: u64,
    /// First relaunch backoff; doubles per consecutive attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Seed of the backoff jitter stream.
    pub backoff_seed: u64,
    /// Stop relaunching an agent after this many consecutive failed
    /// launch attempts (a registration that reaches `Connected` resets
    /// the count).
    pub max_launch_attempts: u32,
    /// Durability: checkpoint directory and snapshot cadence.  `None`
    /// keeps the PR 3 in-memory behaviour (a daemon crash loses the run).
    pub checkpoint: Option<CheckpointOptions>,
    /// Upload window granted to every agent at registration: how many
    /// chunks it may keep in flight beyond the cumulative-ack frontier.
    pub upload_window: u32,
    /// Hard cap on concurrent control connections; everything past it is
    /// dropped at accept (counted in `connections_rejected`) so FD
    /// exhaustion degrades into rejections instead of a hot error loop.
    pub max_connections: usize,
    /// Reactor shard threads.  0 = derive from the machine (capped small;
    /// the shards are I/O loops, not compute).
    pub reactor_shards: usize,
    /// Registration must complete this long after the TCP accept, or the
    /// connection is dropped (a resource an unauthenticated peer may not
    /// hold open).
    pub handshake_timeout_ms: u64,
    /// A *registered* connection with no inbound bytes for this long is
    /// reaped.  Heartbeats keep a live agent far inside the limit; a
    /// half-open socket or a connect-and-stall peer does not get to pin a
    /// slot's outbox forever.  0 disables.
    pub idle_timeout_ms: u64,
    /// A connection holding a partial frame (bytes buffered, no complete
    /// frame) for this long is a slow-loris and is reaped.  0 disables.
    pub slow_loris_timeout_ms: u64,
    /// Hard cap on a single control frame's declared payload, enforced at
    /// the decoder before any buffering (never looser than the protocol
    /// limit).  A hostile peer cannot make the daemon allocate more than
    /// this per connection.
    pub max_frame_bytes: u32,
    /// Merge-queue overload protection.  As the queue approaches this
    /// depth the window granted in every `ChunkAck` shrinks linearly (to 1
    /// at the limit) and chunks arriving *at* the limit are shed unacked —
    /// backpressure rides the existing ack path and the agents' resend
    /// timers, no new message.  0 disables.
    pub merge_queue_limit: usize,
    /// Deterministic impairment applied to every accepted control
    /// connection (the daemon-side twin of the agent knob).
    pub impair: Option<ImpairPlan>,
    /// Injectable write faults for the chunk WAL.
    pub wal_faults: Option<DiskFaults>,
    /// Injectable write faults for the supervision snapshot.
    pub checkpoint_faults: Option<DiskFaults>,
    /// Injectable merge stall, milliseconds per chunk: slows the merge
    /// thread so overload tests can fill the queue deterministically
    /// instead of racing the scheduler.  0 (the default) is a no-op.
    pub merge_stall_ms: u64,
    /// Observability scraper: when set, the daemon runs a
    /// [`crate::obs::Scraper`] over the global registry for its lifetime
    /// (JSONL time series + loopback snapshot endpoint, see
    /// [`Daemon::obs_addr`]).  `None` (the default) runs nothing.
    pub obs: Option<obs::ObsConfig>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            heartbeat_timeout_ms: 400,
            supervision_tick_ms: 25,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            backoff_seed: 0x1eaf_5eed,
            max_launch_attempts: 10,
            checkpoint: None,
            upload_window: 32,
            max_connections: 4096,
            reactor_shards: 0,
            handshake_timeout_ms: 3_000,
            idle_timeout_ms: 30_000,
            slow_loris_timeout_ms: 5_000,
            max_frame_bytes: MAX_CONTROL_PAYLOAD,
            merge_queue_limit: 4_096,
            impair: None,
            wal_faults: None,
            checkpoint_faults: None,
            merge_stall_ms: 0,
            obs: None,
        }
    }
}

impl DaemonConfig {
    /// The relaunch-supervision schedule implied by this config.
    fn relaunch_policy(&self) -> RetryPolicy {
        RetryPolicy::relaunch(self.backoff_base_ms, self.backoff_cap_ms, self.max_launch_attempts)
    }

    fn resolved_shards(&self) -> usize {
        if self.reactor_shards > 0 {
            return self.reactor_shards;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get()).clamp(1, 4)
    }
}

/// Spawns (or re-spawns) an agent: `(agent_id, incarnation, daemon_addr)`.
pub type Launcher = Box<dyn Fn(u32, u32, SocketAddr) + Send + Sync + 'static>;

struct Slot {
    config: AgentConfig,
    /// Next upload sequence number this agent must send — the cumulative
    /// ack frontier (everything below it is merged).
    expected_seq: u64,
    /// Highest upload sequence handed to the merge queue (window gauge).
    highest_enqueued: Option<u64>,
    /// Incarnation the next launch will carry.
    next_incarnation: u32,
    /// A connection for this agent is currently registered.
    registered: bool,
    /// The agent said a clean goodbye; never relaunch it.
    goodbye: bool,
    last_activity: Option<Instant>,
    registered_at: Option<Instant>,
    /// Backoff gate: no launch before this instant.
    next_launch_at: Option<Instant>,
    /// Launch-attempt schedule: counts consecutive attempts without a
    /// `Connected` status and paces relaunch gates (unified policy).
    backoff: Backoff,
    /// Port of the honeypot's peer listener (from `Ready`).
    peer_port: Option<u16>,
    /// Outbound queue of the agent's registered connection; the owning
    /// reactor shard flushes it.
    outbox: Option<Arc<Outbox>>,
}

impl Slot {
    fn new(config: AgentConfig, policy: RetryPolicy, seed: u64, stream: u64) -> Self {
        Slot {
            config,
            expected_seq: 0,
            highest_enqueued: None,
            next_incarnation: 0,
            registered: false,
            goodbye: false,
            last_activity: None,
            registered_at: None,
            next_launch_at: None,
            backoff: Backoff::new(policy, seed, stream),
            peer_port: None,
            outbox: None,
        }
    }
}

/// The chunk write-ahead log: one global append stream in merge order.
struct Wal {
    spool: Spool,
    next_seq: u64,
}

/// Durable-mode state (present iff `DaemonConfig::checkpoint` is set).
struct Durable {
    opts: CheckpointOptions,
    wal: Mutex<Wal>,
    last_snapshot: Mutex<Instant>,
}

/// One upload-path work item, queued from a reactor shard to the merge
/// thread.  The queue preserves per-connection arrival order, which is
/// what makes hole detection and the corrupt-frame resume point exact.
// Chunks dominate the queue by design; boxing them would add an
// allocation per upload to shrink the rare corrupt-frame variant.
#[allow(clippy::large_enum_variant)]
enum MergeMsg {
    Chunk {
        agent: usize,
        seq: u64,
        chunk: honeypot::LogChunk,
        /// The received payload bytes, written to the WAL verbatim.
        payload: Vec<u8>,
        outbox: Arc<Outbox>,
        /// When the reactor enqueued it — merge-queue dwell is measured
        /// from here to the merge thread picking the chunk up.
        queued_at: Instant,
    },
    /// A LOG_CHUNK frame that failed its CRC; the retry must carry the
    /// merge frontier *after* everything queued ahead of it.
    CorruptChunk { agent: usize, outbox: Arc<Outbox> },
}

struct Inner {
    cfg: DaemonConfig,
    addr: SocketAddr,
    started: Instant,
    /// `None` once `finish` has consumed it.
    core: Mutex<Option<Manager>>,
    slots: Mutex<Vec<Slot>>,
    metrics: Mutex<PlatformMetrics>,
    /// `(agent, seq)` in the exact order chunks were merged.
    chunk_order: Mutex<Vec<(u32, u64)>>,
    launcher: Launcher,
    durable: Option<Durable>,
    /// Live control connections (accept-side admission gauge).
    active_conns: AtomicUsize,
    /// Monotonic id per adopted connection: the impairment stream, so a
    /// reconnect draws a fresh deterministic link.
    conn_counter: AtomicUsize,
    /// Chunks queued to the merge thread and not yet processed.
    merge_depth: AtomicUsize,
    shutdown: AtomicBool,
    /// Set by `finish` once the drain is over; shards flush and exit.
    stop_reactors: AtomicBool,
    /// Simulated crash: every loop abandons its work immediately, nothing
    /// is flushed or finalized.  Only what [`Durable`] already wrote
    /// survives, exactly like a killed process.
    crashed: AtomicBool,
}

impl Inner {
    fn now_sim(&self) -> SimTime {
        SimTime::from_millis(self.started.elapsed().as_millis() as u64)
    }
}

/// The manager daemon.  Create with [`Daemon::start`]; always call
/// [`Daemon::finish`] to obtain the merged measurement.
pub struct Daemon {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    supervise: Option<JoinHandle<()>>,
    reactors: Vec<JoinHandle<()>>,
    merge: Option<JoinHandle<()>>,
    scraper: Option<obs::Scraper>,
}

impl Daemon {
    /// Binds a loopback control endpoint and starts the accept loop, the
    /// reactor shards, the merge thread and the supervision loop.
    /// `configs[i].id` must equal `i` (the core manager indexes honeypots
    /// densely).  The supervision loop performs the *initial* launches
    /// too, through the same backoff-gated path as relaunches.
    ///
    /// With `cfg.checkpoint` set and a non-empty checkpoint directory,
    /// this *recovers*: the WAL is replayed through the fresh core (same
    /// merge order, same intern order), per-agent resume sequences are
    /// derived from it, and the supervision snapshot — if present and
    /// intact — restores incarnation counters, attempt budgets, goodbye
    /// flags and metrics continuity.
    pub fn start(
        cfg: DaemonConfig,
        configs: Vec<AgentConfig>,
        launcher: Launcher,
    ) -> std::io::Result<Daemon> {
        let specs: Vec<HoneypotSpec> = configs
            .iter()
            .map(|c| HoneypotSpec { id: c.id, content: c.content, server: c.server.clone() })
            .collect();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let n = configs.len();

        let policy = cfg.relaunch_policy();
        let seed = cfg.backoff_seed;
        let mut slots: Vec<Slot> = configs
            .into_iter()
            .enumerate()
            .map(|(i, c)| Slot::new(c, policy, seed, i as u64))
            .collect();
        let mut core = Manager::new(specs);
        let mut metrics = PlatformMetrics::new(n);
        let mut chunk_order: Vec<(u32, u64)> = Vec::new();

        let durable = match &cfg.checkpoint {
            Some(opts) => {
                let mut spool = Spool::open(opts.wal_dir())?;
                if let Some(faults) = &cfg.wal_faults {
                    spool.set_faults(faults.clone());
                }
                let next_seq = spool.last_seq().map_or(0, |s| s + 1);
                Some(Durable {
                    opts: opts.clone(),
                    wal: Mutex::new(Wal { spool, next_seq }),
                    last_snapshot: Mutex::new(Instant::now()),
                })
            }
            None => None,
        };
        let snapshot = cfg.checkpoint.as_ref().and_then(|o| load_checkpoint(&o.dir));
        let mut restored = false;
        if let Some(d) = &durable {
            let records: Vec<SpoolRecord> = d.wal.lock().spool.unacked().to_vec();
            restored = !records.is_empty();
            for rec in &records {
                let Ok(ControlMessage::LogUpload { agent, seq, chunk }) =
                    ControlMessage::decode(opcodes::LOG_CHUNK, &rec.payload)
                else {
                    continue;
                };
                let i = agent as usize;
                if i >= slots.len() {
                    continue;
                }
                let bytes = rec.payload.len() as u64;
                if core.collect_sequenced(seq, chunk) {
                    chunk_order.push((agent, seq));
                    metrics.agents[i].note_merged(seq);
                    metrics.agents[i].chunks_merged += 1;
                    metrics.agents[i].chunk_bytes += bytes;
                }
                if seq >= slots[i].expected_seq {
                    slots[i].expected_seq = seq + 1;
                }
            }
        }
        if let Some(snap) = &snapshot {
            restored = true;
            for (i, s) in snap.slots.iter().enumerate().take(slots.len()) {
                let slot = &mut slots[i];
                // The WAL-derived resume point is authoritative (acks
                // follow WAL appends, so the snapshot can only lag).
                slot.expected_seq = slot.expected_seq.max(s.expected_seq);
                slot.next_incarnation = slot.next_incarnation.max(s.next_incarnation);
                slot.goodbye = s.goodbye;
                slot.backoff.restore(s.attempts);
                let m = &mut metrics.agents[i];
                m.relaunches = s.relaunches;
                m.deaths = s.deaths;
                m.resumes = s.resumes;
                m.registrations = s.registrations;
                m.uptime_ms = s.uptime_ms;
            }
        }
        if restored {
            metrics.manager_restores += 1;
        }

        let inner = Arc::new(Inner {
            addr,
            started: Instant::now(),
            core: Mutex::new(Some(core)),
            slots: Mutex::new(slots),
            metrics: Mutex::new(metrics),
            chunk_order: Mutex::new(chunk_order),
            launcher,
            durable,
            active_conns: AtomicUsize::new(0),
            conn_counter: AtomicUsize::new(0),
            merge_depth: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            stop_reactors: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            cfg,
        });

        let (merge_tx, merge_rx) = channel::<MergeMsg>();
        let merge_inner = inner.clone();
        let merge = std::thread::spawn(move || merge_loop(merge_inner, merge_rx));

        let shard_count = inner.cfg.resolved_shards();
        let injectors: Vec<Arc<Mutex<Vec<TcpStream>>>> =
            (0..shard_count).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
        let mut reactors = Vec::with_capacity(shard_count);
        for injector in &injectors {
            let shard_inner = inner.clone();
            let shard_injector = injector.clone();
            let shard_tx = merge_tx.clone();
            reactors.push(std::thread::spawn(move || {
                reactor_loop(shard_inner, shard_injector, shard_tx)
            }));
        }
        // The merge channel must disconnect when the shards exit, so no
        // sender may outlive them.
        drop(merge_tx);

        let accept_inner = inner.clone();
        let accept = std::thread::spawn(move || {
            // Transient accept errors (EMFILE, ECONNABORTED) are retried
            // with the unified backoff; the listener is never torn down.
            let accept_policy = RetryPolicy { base_ms: 5, cap_ms: 250, max_attempts: None };
            let mut accept_backoff =
                Backoff::new(accept_policy, accept_inner.cfg.backoff_seed, 0xACCE);
            let mut next_shard = 0usize;
            for stream in listener.incoming() {
                if accept_inner.shutdown.load(Ordering::SeqCst)
                    || accept_inner.crashed.load(Ordering::SeqCst)
                {
                    break;
                }
                let stream = match stream {
                    Ok(s) => {
                        accept_backoff.reset();
                        s
                    }
                    Err(e) => {
                        // A per-connection hiccup (reset before accept)
                        // costs nothing; a resource failure (EMFILE) is
                        // counted and backed off so the loop never runs
                        // hot against an exhausted process.
                        match classify_accept(&e) {
                            AcceptError::Transient => {}
                            AcceptError::Resource => {
                                accept_inner.metrics.lock().accept_resource_errors += 1;
                                if let Some(pause) = accept_backoff.next_delay() {
                                    std::thread::sleep(pause);
                                }
                            }
                        }
                        continue;
                    }
                };
                // Bounded admission: at the cap the socket is dropped and
                // counted, a rejection the agent's reconnect backoff
                // absorbs — never a hot error loop.
                let active = accept_inner.active_conns.load(Ordering::SeqCst);
                if active >= accept_inner.cfg.max_connections {
                    let mut metrics = accept_inner.metrics.lock();
                    metrics.connections_rejected += 1;
                    drop(metrics);
                    drop(stream);
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                let now_active = accept_inner.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
                {
                    let mut metrics = accept_inner.metrics.lock();
                    metrics.connections_peak = metrics.connections_peak.max(now_active as u64);
                }
                injectors[next_shard].lock().push(stream);
                next_shard = (next_shard + 1) % injectors.len();
            }
        });

        let sup_inner = inner.clone();
        let supervise = std::thread::spawn(move || {
            while !sup_inner.shutdown.load(Ordering::SeqCst)
                && !sup_inner.crashed.load(Ordering::SeqCst)
            {
                supervision_tick(&sup_inner);
                maybe_checkpoint(&sup_inner);
                std::thread::sleep(Duration::from_millis(sup_inner.cfg.supervision_tick_ms));
            }
        });

        // The scraper only *reads* the global registry; a failure to
        // start it degrades visibility, never the measurement.
        let scraper = inner
            .cfg
            .obs
            .clone()
            .and_then(|obs_cfg| obs::Scraper::start(Registry::global(), obs_cfg).ok());

        Ok(Daemon {
            inner,
            accept: Some(accept),
            supervise: Some(supervise),
            reactors,
            merge: Some(merge),
            scraper,
        })
    }

    /// The control endpoint agents connect to.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The loopback snapshot endpoint of the observability scraper, when
    /// [`DaemonConfig::obs`] enabled one: connect, read one JSON line,
    /// done.
    pub fn obs_addr(&self) -> Option<SocketAddr> {
        self.scraper.as_ref().and_then(|s| s.addr())
    }

    /// Relaunches issued by the core accounting (initial launches not
    /// counted).
    pub fn relaunch_count(&self) -> u64 {
        self.inner.core.lock().as_ref().map_or(0, |m| m.relaunch_count())
    }

    /// Chunks merged so far.
    pub fn chunks_collected(&self) -> u64 {
        self.inner.core.lock().as_ref().map_or(0, |m| m.chunks_collected())
    }

    /// Highest merged upload sequence for an agent.
    pub fn collected_seq_high(&self, agent: u32) -> Option<u64> {
        self.inner.core.lock().as_ref().and_then(|m| m.collected_seq_high(HoneypotId(agent)))
    }

    /// The honeypot peer-listener address of a registered, ready agent.
    pub fn agent_peer_addr(&self, agent: u32) -> Option<SocketAddr> {
        let slots = self.inner.slots.lock();
        let slot = slots.get(agent as usize)?;
        if !slot.registered {
            return None;
        }
        slot.peer_port.map(|p| SocketAddr::from(([127, 0, 0, 1], p)))
    }

    /// Waits until every agent is registered and ready (or the timeout
    /// passes); returns whether they all made it.
    pub fn wait_agents_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let slots = self.inner.slots.lock();
                if slots.iter().all(|s| s.registered && s.peer_port.is_some()) {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Snapshot of the platform metrics.
    pub fn metrics(&self) -> PlatformMetrics {
        self.inner.metrics.lock().clone()
    }

    /// The exact order in which `(agent, seq)` chunks were merged.
    pub fn chunk_order(&self) -> Vec<(u32, u64)> {
        self.inner.chunk_order.lock().clone()
    }

    /// Asks a live agent to tear down and restart its honeypot in place.
    pub fn relaunch_agent(&self, agent: u32) -> bool {
        let outbox = {
            let slots = self.inner.slots.lock();
            slots.get(agent as usize).and_then(|s| s.outbox.clone())
        };
        match outbox {
            Some(o) => {
                o.push_msg(&ControlMessage::Relaunch);
                true
            }
            None => false,
        }
    }

    /// Simulates a manager crash: every loop abandons its work without
    /// flushing, draining or finalizing.  The in-memory merge state and
    /// metrics die here; only the checkpoint directory survives.  Start a
    /// fresh daemon with the same [`DaemonConfig::checkpoint`] to recover.
    pub fn crash(self) {
        self.inner.crashed.store(true, Ordering::SeqCst);
        // Drop joins the loops; shards and the merge thread notice
        // `crashed` and bail without bookkeeping.
    }

    /// Ends the measurement: stops supervision, asks every live agent to
    /// flush and exit, waits up to `drain` for goodbyes, then finalizes
    /// the merge pipeline.  Returns the merged log, the platform metrics
    /// and the chunk merge order.
    pub fn finish(
        mut self,
        duration: SimTime,
        shared_files_final: u32,
        name_threshold: u32,
        drain: Duration,
    ) -> (MeasurementLog, PlatformMetrics, Vec<(u32, u64)>) {
        // Supervision first: a draining agent must not be "relaunched".
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.supervise.take() {
            let _ = t.join();
        }

        let outboxes: Vec<Arc<Outbox>> = {
            let slots = self.inner.slots.lock();
            slots.iter().filter_map(|s| s.outbox.clone()).collect()
        };
        for o in &outboxes {
            o.push_msg(&ControlMessage::Shutdown);
        }

        let deadline = Instant::now() + drain;
        loop {
            {
                let slots = self.inner.slots.lock();
                if slots.iter().all(|s| !s.registered || s.goodbye) {
                    break;
                }
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        // Unblock the accept loop and join it, then stop the shards; the
        // merge channel disconnects when the last shard drops its sender,
        // and the merge thread drains what is queued before exiting — so
        // after these joins every received chunk has been merged.
        let _ = TcpStream::connect(self.inner.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.inner.stop_reactors.store(true, Ordering::SeqCst);
        for t in self.reactors.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.merge.take() {
            let _ = t.join();
        }
        // Stop the scraper after the merge join so its final time-series
        // sample covers the fully drained run.
        if let Some(s) = self.scraper.take() {
            s.stop();
        }

        // Credit uptime of anything still registered (e.g. drain timeout).
        {
            let now = Instant::now();
            let mut slots = self.inner.slots.lock();
            for i in 0..slots.len() {
                if slots[i].registered {
                    let slot = &mut slots[i];
                    slot.registered = false;
                    slot.outbox = None;
                    if let Some(since) = slot.registered_at.take() {
                        let ms = now.duration_since(since).as_millis() as u64;
                        self.inner.metrics.lock().agents[i].uptime_ms += ms;
                    }
                }
            }
        }

        // A last snapshot so a *supervisor* restart after a clean finish
        // still sees the final accounting.
        if let Some(d) = &self.inner.durable {
            let faults = self.inner.cfg.checkpoint_faults.clone().unwrap_or_default();
            let _ = save_checkpoint_with(&d.opts.dir, &build_checkpoint(&self.inner), &faults);
        }

        let mgr = self.inner.core.lock().take().expect("finish called once");
        let log = mgr.finalize(duration, shared_files_final, name_threshold);
        let metrics = self.inner.metrics.lock().clone();
        let order = self.inner.chunk_order.lock().clone();
        (log, metrics, order)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.stop_reactors.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.inner.addr);
        if let Some(t) = self.supervise.take() {
            let _ = t.join();
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.reactors.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.merge.take() {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Reactor shards.

/// One shard's event loop: adopt freshly accepted sockets, read and
/// decode every connection, handle control traffic inline (registration,
/// heartbeats, status) or queue it to the merge thread (uploads), flush
/// outboxes, reap dead connections.
fn reactor_loop(
    inner: Arc<Inner>,
    injector: Arc<Mutex<Vec<TcpStream>>>,
    merge_tx: Sender<MergeMsg>,
) {
    let mut conns: Vec<ReactorConn> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut events: Vec<ControlEvent> = Vec::new();
    let mut latency = RttStats::default();
    let mut latency_hist = Histogram::new();
    let live_hist = Registry::global().histogram("reactor_loop_micros");
    let mut last_flush = Instant::now();
    loop {
        if inner.crashed.load(Ordering::SeqCst) {
            // A crashed manager does no bookkeeping on the way out.
            return;
        }
        if inner.stop_reactors.load(Ordering::SeqCst) {
            // Last chance for queued shutdowns and acks to leave — bounded,
            // because an impaired link may hold bytes that are not due yet
            // and a closed peer never drains.
            let drain_deadline = Instant::now() + Duration::from_millis(200);
            loop {
                let mut pending = 0;
                for conn in &mut conns {
                    conn.flush();
                    pending += conn.pending_out();
                }
                if pending == 0 || Instant::now() >= drain_deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            for conn in conns.drain(..) {
                close_conn(&inner, conn);
            }
            flush_latency(&inner, &mut latency, &mut latency_hist, &live_hist);
            return;
        }
        let t0 = Instant::now();
        let mut activity = false;

        for stream in injector.lock().drain(..) {
            match ReactorConn::adopt(stream) {
                Ok(mut conn) => {
                    conn.decoder.set_max_payload(inner.cfg.max_frame_bytes);
                    if let Some(plan) = &inner.cfg.impair {
                        let id = inner.conn_counter.fetch_add(1, Ordering::SeqCst);
                        conn.set_impair(plan, id as u64);
                    }
                    conns.push(conn);
                    activity = true;
                }
                Err(_) => {
                    inner.active_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }

        for conn in conns.iter_mut() {
            if conn.close.is_some() {
                continue;
            }
            if conn.read_events(&mut scratch, &mut events) {
                activity = true;
            }
            if !events.is_empty() {
                process_events(&inner, conn, &mut events, &merge_tx);
            }
            reap_hostile(&inner, conn);
            conn.flush();
        }

        let mut i = 0;
        while i < conns.len() {
            if conns[i].close.is_some() {
                let conn = conns.swap_remove(i);
                close_conn(&inner, conn);
                activity = true;
            } else {
                i += 1;
            }
        }

        if activity {
            let micros = (t0.elapsed().as_micros() as u64).max(1);
            latency.record(micros);
            latency_hist.record(micros);
        } else {
            std::thread::sleep(IDLE_SLEEP);
        }
        // Flush by count under load, by time when quiet, so the live
        // registry the scraper samples never sits on a stale batch for
        // more than one flush interval.
        if latency.count >= LATENCY_FLUSH_EVERY
            || (latency.count > 0 && last_flush.elapsed() >= LATENCY_FLUSH_INTERVAL)
        {
            flush_latency(&inner, &mut latency, &mut latency_hist, &live_hist);
            last_flush = Instant::now();
        }
    }
}

/// Hostile-peer deadlines, checked every shard pass:
///
/// * unregistered past the handshake deadline — a peer may not hold a
///   socket it never authenticates;
/// * registered but silent past the idle limit — half-open or stalled;
/// * a partial frame older than the slow-loris budget — a peer trickling
///   one byte at a time never completes a frame, only pins memory.
fn reap_hostile(inner: &Inner, conn: &mut ReactorConn) {
    if conn.close.is_some() {
        return;
    }
    let cfg = &inner.cfg;
    if conn.agent.is_none()
        && conn.opened.elapsed() > Duration::from_millis(cfg.handshake_timeout_ms)
    {
        conn.close = Some(CloseReason::HandshakeTimeout);
        return;
    }
    if cfg.idle_timeout_ms > 0
        && conn.agent.is_some()
        && conn.last_read.elapsed() > Duration::from_millis(cfg.idle_timeout_ms)
    {
        conn.close = Some(CloseReason::IdleTimeout);
        return;
    }
    if cfg.slow_loris_timeout_ms > 0
        && conn
            .partial_since
            .is_some_and(|t| t.elapsed() > Duration::from_millis(cfg.slow_loris_timeout_ms))
    {
        conn.close = Some(CloseReason::SlowLoris);
    }
}

/// Folds a shard's local latency batch into the shared metrics (both the
/// legacy [`RttStats`] and the percentile histogram) and the live
/// registry the scraper samples — one lock round per
/// [`LATENCY_FLUSH_EVERY`] active passes.
fn flush_latency(
    inner: &Inner,
    latency: &mut RttStats,
    hist: &mut Histogram,
    live: &HistogramHandle,
) {
    if latency.count == 0 {
        return;
    }
    {
        let mut metrics = inner.metrics.lock();
        metrics.reactor_loop_micros.merge(latency);
        metrics.reactor_loop_hist.merge(hist);
    }
    live.merge(hist);
    *latency = RttStats::default();
    *hist = Histogram::new();
}

/// Handles one connection's decoded events.  Uploads (and corrupt upload
/// frames) go to the merge queue in arrival order; everything else is
/// answered inline through the outbox.
fn process_events(
    inner: &Inner,
    conn: &mut ReactorConn,
    events: &mut Vec<ControlEvent>,
    merge_tx: &Sender<MergeMsg>,
) {
    // A close recorded by this pass's read (EOF behind the final bytes,
    // or a decoder desync) must not discard frames decoded before it:
    // TCP orders the hangup after the data, and on a single core an
    // agent's last upload and its EOF routinely land in the same read
    // pass.  Only a close taken *while* processing stops the rest.
    let read_close = conn.close.take();
    for ev in events.drain(..) {
        if conn.close.is_some() {
            continue;
        }
        if let Some(i) = conn.agent {
            touch(inner, i);
        }
        match ev {
            ControlEvent::Corrupt { opcode } => {
                if opcode == opcodes::LOG_CHUNK {
                    if let Some(i) = conn.agent {
                        inner.merge_depth.fetch_add(1, Ordering::SeqCst);
                        let _ = merge_tx
                            .send(MergeMsg::CorruptChunk { agent: i, outbox: conn.outbox.clone() });
                        continue;
                    }
                }
                inner.metrics.lock().corrupt_frames += 1;
            }
            ControlEvent::Frame(frame) => {
                if frame.opcode == opcodes::LOG_CHUNK {
                    handle_chunk_frame(inner, conn, frame.payload, merge_tx);
                    continue;
                }
                match ControlMessage::decode(frame.opcode, &frame.payload) {
                    Ok(msg) => handle_msg(inner, conn, msg),
                    Err(_) => conn.close = Some(CloseReason::Protocol),
                }
            }
        }
    }
    if conn.close.is_none() {
        conn.close = read_close;
    }
}

/// Decodes an upload frame once and queues it (with its raw payload, for
/// the WAL) to the merge thread.
fn handle_chunk_frame(
    inner: &Inner,
    conn: &mut ReactorConn,
    payload: Vec<u8>,
    merge_tx: &Sender<MergeMsg>,
) {
    let Ok(ControlMessage::LogUpload { agent, seq, chunk }) =
        ControlMessage::decode(opcodes::LOG_CHUNK, &payload)
    else {
        conn.close = Some(CloseReason::Protocol);
        return;
    };
    let i = agent as usize;
    if conn.agent != Some(i) {
        return;
    }
    // Overload shed: at the merge-queue limit the chunk is dropped
    // *unqueued* and unacked — the agent's resend timer re-delivers it
    // once the shrunken window grants (riding every ack) have drained the
    // queue.  Nothing is lost; latency is traded for survival.
    let limit = inner.cfg.merge_queue_limit;
    if limit > 0 && inner.merge_depth.load(Ordering::SeqCst) >= limit {
        inner.metrics.lock().chunks_shed += 1;
        return;
    }
    // Occupancy gauges, read against the merge frontier at arrival.
    let in_flight = {
        let mut slots = inner.slots.lock();
        let slot = &mut slots[i];
        slot.highest_enqueued = Some(slot.highest_enqueued.map_or(seq, |h| h.max(seq)));
        (seq >= slot.expected_seq).then(|| seq + 1 - slot.expected_seq)
    };
    if let Some(in_flight) = in_flight {
        let mut metrics = inner.metrics.lock();
        let m = &mut metrics.agents[i];
        m.window_peak = m.window_peak.max(in_flight);
    }
    let depth = inner.merge_depth.fetch_add(1, Ordering::SeqCst) + 1;
    {
        let mut metrics = inner.metrics.lock();
        metrics.merge_queue_peak = metrics.merge_queue_peak.max(depth as u64);
    }
    let _ = merge_tx.send(MergeMsg::Chunk {
        agent: i,
        seq,
        chunk,
        payload,
        outbox: conn.outbox.clone(),
        queued_at: Instant::now(),
    });
}

/// Inline handling of everything that is not an upload.
fn handle_msg(inner: &Inner, conn: &mut ReactorConn, msg: ControlMessage) {
    match msg {
        ControlMessage::Register { agent, incarnation: _, resume } => {
            register_conn(inner, conn, agent, resume);
        }
        ControlMessage::Heartbeat { seq, sent_micros, rtt_micros, flags, .. } => {
            let Some(i) = conn.agent else { return };
            {
                let mut metrics = inner.metrics.lock();
                metrics.agents[i].heartbeats += 1;
                if rtt_micros > 0 {
                    metrics.agents[i].rtt.record(rtt_micros);
                    metrics.heartbeat_rtt_hist.record(rtt_micros);
                }
                if flags & heartbeat_flags::SPOOL_DEGRADED != 0 {
                    // The agent is uploading from memory only; its disk
                    // stopped taking writes.  Surfaced here so an operator
                    // sees degradation while the measurement continues.
                    metrics.agents[i].degraded_heartbeats += 1;
                }
            }
            if rtt_micros > 0 {
                Registry::global().histogram("heartbeat_rtt_micros").record(rtt_micros);
            }
            if flags & heartbeat_flags::SPOOL_DEGRADED != 0 {
                obs_event!(
                    obs::Level::Warn,
                    "daemon",
                    "spool_degraded_heartbeat",
                    agent = i,
                    seq = seq
                );
            }
            conn.outbox.push_msg(&ControlMessage::HeartbeatAck { seq, echo_micros: sent_micros });
        }
        ControlMessage::Status(report) => {
            let Some(i) = conn.agent else { return };
            if matches!(report.status, HoneypotStatus::Connected { .. }) {
                inner.slots.lock()[i].backoff.reset();
            }
            if let Some(core) = inner.core.lock().as_mut() {
                core.on_status(report);
            }
        }
        ControlMessage::Ready { peer_port, .. } => {
            let Some(i) = conn.agent else { return };
            inner.slots.lock()[i].peer_port = Some(peer_port);
        }
        ControlMessage::Goodbye { .. } if conn.agent.is_some() => {
            conn.close = Some(CloseReason::Goodbye);
        }
        _ => {}
    }
}

/// Registration: adopt the connection for its agent (latest connection
/// wins), answer with the resume point and the granted upload window,
/// then push the full configuration.
fn register_conn(inner: &Inner, conn: &mut ReactorConn, agent: u32, resume: bool) {
    let i = agent as usize;
    let now = Instant::now();
    let mut credit_ms = None;
    let (next_seq, config) = {
        let mut slots = inner.slots.lock();
        let Some(slot) = slots.get_mut(i) else {
            conn.close = Some(CloseReason::Gone);
            return;
        };
        // Latest connection wins; credit the previous registration.
        if slot.registered {
            if let Some(since) = slot.registered_at.take() {
                credit_ms = Some(now.duration_since(since).as_millis() as u64);
            }
        }
        slot.registered = true;
        slot.last_activity = Some(now);
        slot.registered_at = Some(now);
        slot.outbox = Some(conn.outbox.clone());
        (slot.expected_seq, slot.config.clone())
    };
    {
        let mut metrics = inner.metrics.lock();
        if let Some(ms) = credit_ms {
            metrics.agents[i].uptime_ms += ms;
        }
        metrics.agents[i].registrations += 1;
        if resume {
            metrics.agents[i].resumes += 1;
        }
    }
    conn.agent = Some(i);
    obs_event!(
        obs::Level::Info,
        "daemon",
        "agent_registered",
        agent = agent,
        resume = resume,
        next_seq = next_seq
    );
    conn.outbox.push_msg(&ControlMessage::RegisterAck {
        agent,
        next_seq,
        window: effective_window(inner),
    });
    conn.outbox.push_msg(&ControlMessage::ConfigPush(config));
}

/// The upload window to grant right now: the configured window, shrunk
/// linearly as the merge queue fills (down to 1 at the limit).  Granted at
/// registration and re-stated in every `ChunkAck`, so overload feedback
/// reaches agents at ack cadence without any new protocol surface.
fn effective_window(inner: &Inner) -> u32 {
    let full = inner.cfg.upload_window.max(1);
    let limit = inner.cfg.merge_queue_limit;
    if limit == 0 {
        return full;
    }
    let depth = inner.merge_depth.load(Ordering::SeqCst).min(limit);
    let scaled = ((u64::from(full) * (limit - depth) as u64) / limit as u64).max(1) as u32;
    if scaled < full {
        inner.metrics.lock().window_shrinks += 1;
    }
    scaled
}

/// Connection teardown bookkeeping: close out the registration if the
/// connection still owns it, credit uptime, latch a clean goodbye.
fn close_conn(inner: &Inner, conn: ReactorConn) {
    inner.active_conns.fetch_sub(1, Ordering::SeqCst);
    match conn.close {
        Some(CloseReason::HandshakeTimeout) => inner.metrics.lock().handshake_timeouts += 1,
        Some(CloseReason::IdleTimeout) => inner.metrics.lock().idle_reaped += 1,
        Some(CloseReason::SlowLoris) => inner.metrics.lock().slow_loris_reaped += 1,
        Some(CloseReason::Protocol) => inner.metrics.lock().protocol_violations += 1,
        _ => {}
    }
    let Some(i) = conn.agent else { return };
    let clean_goodbye = conn.close == Some(CloseReason::Goodbye);
    let now = Instant::now();
    let mut credit_ms = None;
    {
        let mut slots = inner.slots.lock();
        let slot = &mut slots[i];
        let ours = slot.outbox.as_ref().is_some_and(|o| Arc::ptr_eq(o, &conn.outbox));
        if ours {
            if clean_goodbye {
                slot.goodbye = true;
            }
            slot.registered = false;
            slot.outbox = None;
            if let Some(since) = slot.registered_at.take() {
                credit_ms = Some(now.duration_since(since).as_millis() as u64);
            }
        }
    }
    if let Some(ms) = credit_ms {
        inner.metrics.lock().agents[i].uptime_ms += ms;
    }
}

fn touch(inner: &Inner, agent_idx: usize) {
    inner.slots.lock()[agent_idx].last_activity = Some(Instant::now());
}

// ---------------------------------------------------------------------------
// Merge thread.

/// The single merge loop: drains upload work in bursts, preserves the
/// WAL-append-before-ack contract per chunk, and answers each connection
/// with one *cumulative* `ChunkAck` per burst (the merge frontier), plus
/// at most one `ChunkRetry` when the stream is damaged or has a hole.
fn merge_loop(inner: Arc<Inner>, rx: Receiver<MergeMsg>) {
    let mut batch: Vec<MergeMsg> = Vec::new();
    // Live-registry twins of the end-of-run metrics histograms, resolved
    // once so the per-chunk cost is a handle lock, not a map lookup.
    let live = MergeObs {
        dwell: Registry::global().histogram("merge_dwell_micros"),
        frontier_lag: Registry::global().histogram("frontier_lag_chunks"),
    };
    loop {
        if inner.crashed.load(Ordering::SeqCst) {
            return;
        }
        match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(msg) => batch.push(msg),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
        while batch.len() < MERGE_BURST {
            match rx.try_recv() {
                Ok(msg) => batch.push(msg),
                Err(_) => break,
            }
        }
        merge_burst(&inner, &mut batch, &live);
    }
}

/// Live-registry histogram handles the merge thread records into.
struct MergeObs {
    dwell: HistogramHandle,
    frontier_lag: HistogramHandle,
}

/// Per-burst ack/retry coalescing state, keyed by outbox identity.
struct BurstReplies {
    /// Connections owed a cumulative ack, with their agent index.
    acks: Vec<(Arc<Outbox>, usize)>,
    /// Connections owed a go-back-N retry, with the smallest resume point.
    retries: Vec<(Arc<Outbox>, u64)>,
}

impl BurstReplies {
    fn note_ack(&mut self, outbox: &Arc<Outbox>, agent: usize) {
        if !self.acks.iter().any(|(o, _)| Arc::ptr_eq(o, outbox)) {
            self.acks.push((outbox.clone(), agent));
        }
    }

    fn note_retry(&mut self, outbox: &Arc<Outbox>, want: u64) {
        for (o, w) in &mut self.retries {
            if Arc::ptr_eq(o, outbox) {
                *w = (*w).min(want);
                return;
            }
        }
        self.retries.push((outbox.clone(), want));
    }
}

fn merge_burst(inner: &Inner, batch: &mut Vec<MergeMsg>, live: &MergeObs) {
    let mut replies = BurstReplies { acks: Vec::new(), retries: Vec::new() };
    // Dwell samples are batched locally and folded in once per burst so
    // the firehose path pays one metrics-lock round, not one per chunk.
    let mut dwell_batch = Histogram::new();
    for msg in batch.drain(..) {
        if inner.crashed.load(Ordering::SeqCst) {
            return;
        }
        match msg {
            MergeMsg::Chunk { agent, seq, chunk, payload, outbox, queued_at } => {
                if inner.cfg.merge_stall_ms > 0 {
                    std::thread::sleep(Duration::from_millis(inner.cfg.merge_stall_ms));
                }
                dwell_batch.record(queued_at.elapsed().as_micros() as u64);
                inner.merge_depth.fetch_sub(1, Ordering::SeqCst);
                let expected = inner.slots.lock()[agent].expected_seq;
                if seq < expected {
                    // Duplicate after a lost ack, a go-back-N resend or a
                    // manager crash: already merged (and, in durable mode,
                    // already in the WAL) — the cumulative ack re-covers it.
                    inner.metrics.lock().agents[agent].duplicate_chunks += 1;
                    replies.note_ack(&outbox, agent);
                    continue;
                }
                if seq > expected {
                    // A hole would mean lost data; ask for the resume point.
                    replies.note_retry(&outbox, expected);
                    continue;
                }
                let bytes = payload.len() as u64;
                // Durability contract: the chunk is in the WAL *before* the
                // cumulative ack covering it goes out, in merge order, so an
                // acked chunk is always recoverable and a replayed WAL
                // reproduces the merge exactly.
                if let Some(d) = &inner.durable {
                    let mut wal = d.wal.lock();
                    let wseq = wal.next_seq;
                    match wal.spool.append(wseq, &payload) {
                        Ok(()) => wal.next_seq += 1,
                        Err(e) => {
                            // Degraded disk: the chunk is neither merged
                            // nor acked — the frontier stays put and the
                            // agent re-sends, so `acked ⇒ durable` holds
                            // even while the WAL is refusing writes.
                            drop(wal);
                            inner.metrics.lock().wal_append_failures += 1;
                            obs_event!(
                                obs::Level::Error,
                                "daemon",
                                "wal_append_failed",
                                agent = agent,
                                seq = seq,
                                error = obs::InlineStr::new(&e.to_string())
                            );
                            continue;
                        }
                    }
                }
                let merged = match inner.core.lock().as_mut() {
                    Some(core) => core.collect_sequenced(seq, chunk),
                    None => false,
                };
                if merged {
                    inner.chunk_order.lock().push((agent as u32, seq));
                    let mut metrics = inner.metrics.lock();
                    // `note_merged` is the exactly-once ledger; `chunks_merged`
                    // must track it one-for-one or `double_merge_violation`
                    // fires.
                    metrics.agents[agent].note_merged(seq);
                    metrics.agents[agent].chunks_merged += 1;
                    metrics.agents[agent].chunk_bytes += bytes;
                }
                inner.slots.lock()[agent].expected_seq = seq + 1;
                replies.note_ack(&outbox, agent);
            }
            MergeMsg::CorruptChunk { agent, outbox } => {
                inner.merge_depth.fetch_sub(1, Ordering::SeqCst);
                // A damaged upload is re-requested, never merged.  The
                // resume point is exact because this entry was queued
                // behind every chunk received ahead of the bad frame.
                let want = inner.slots.lock()[agent].expected_seq;
                {
                    let mut metrics = inner.metrics.lock();
                    metrics.corrupt_frames += 1;
                    metrics.agents[agent].chunk_retries += 1;
                }
                replies.note_retry(&outbox, want);
            }
        }
    }
    if dwell_batch.count() > 0 {
        inner.metrics.lock().merge_dwell_micros.merge(&dwell_batch);
        live.dwell.merge(&dwell_batch);
    }
    // One cumulative ack per connection per burst: the frontier at the
    // end of the burst covers every chunk merged (or deduplicated) in it.
    for (outbox, agent) in replies.acks {
        let (frontier, lag) = {
            let slots = inner.slots.lock();
            let slot = &slots[agent];
            let lag =
                slot.highest_enqueued.map_or(0, |h| (h + 1).saturating_sub(slot.expected_seq));
            (slot.expected_seq, lag)
        };
        {
            let mut metrics = inner.metrics.lock();
            let m = &mut metrics.agents[agent];
            m.frontier_lag_peak = m.frontier_lag_peak.max(lag);
            metrics.frontier_lag_chunks.record(lag);
        }
        live.frontier_lag.record(lag);
        outbox.push_msg(&ControlMessage::ChunkAck {
            next_seq: frontier,
            window: effective_window(inner),
        });
    }
    for (outbox, want) in replies.retries {
        outbox.push_msg(&ControlMessage::ChunkRetry { seq: want });
    }
}

// ---------------------------------------------------------------------------
// Supervision and checkpointing.

/// Builds the supervision snapshot from the live slot and metric state.
fn build_checkpoint(inner: &Inner) -> ManagerCheckpoint {
    let slot_view: Vec<(u64, u32, u32, bool)> = {
        let slots = inner.slots.lock();
        slots
            .iter()
            .map(|s| (s.expected_seq, s.next_incarnation, s.backoff.attempts(), s.goodbye))
            .collect()
    };
    let metrics = inner.metrics.lock();
    ManagerCheckpoint {
        slots: slot_view
            .into_iter()
            .zip(metrics.agents.iter())
            .map(|((expected_seq, next_incarnation, attempts, goodbye), m)| SlotCheckpoint {
                expected_seq,
                next_incarnation,
                attempts,
                goodbye,
                relaunches: m.relaunches,
                deaths: m.deaths,
                resumes: m.resumes,
                registrations: m.registrations,
                uptime_ms: m.uptime_ms,
            })
            .collect(),
    }
}

/// Writes a snapshot if the checkpoint interval has elapsed.
fn maybe_checkpoint(inner: &Inner) {
    let Some(d) = &inner.durable else { return };
    let now = Instant::now();
    {
        let mut last = d.last_snapshot.lock();
        if now.duration_since(*last) < Duration::from_millis(d.opts.interval_ms) {
            return;
        }
        *last = now;
    }
    let faults = inner.cfg.checkpoint_faults.clone().unwrap_or_default();
    if let Err(e) = save_checkpoint_with(&d.opts.dir, &build_checkpoint(inner), &faults) {
        // The snapshot on disk is now stale relative to what this daemon
        // knows.  Quarantine it: recovery then derives everything from the
        // WAL (which is authoritative for the measurement) instead of
        // resurrecting supervision state the daemon failed to keep fresh.
        inner.metrics.lock().checkpoint_failures += 1;
        let _ = quarantine_checkpoint(&d.opts.dir);
        obs_event!(
            obs::Level::Error,
            "daemon",
            "checkpoint_write_failed",
            quarantined = true,
            error = obs::InlineStr::new(&e.to_string())
        );
    }
}

/// One pass of the supervision loop: deadline-check registered agents,
/// then issue backoff-gated (re)launches for everything the core manager
/// reports as needing one.
fn supervision_tick(inner: &Arc<Inner>) {
    let now = Instant::now();
    let timeout = Duration::from_millis(inner.cfg.heartbeat_timeout_ms);

    // Heartbeat deadlines → deaths.  This covers both a registered agent
    // that went silent and a crashed one whose connection already closed:
    // `last_activity` keeps ticking from the agent's last sign of life,
    // and taking it (`None`) latches the death so it is reported once.
    let mut died: Vec<usize> = Vec::new();
    {
        let mut slots = inner.slots.lock();
        for (i, slot) in slots.iter_mut().enumerate() {
            if !slot.goodbye && slot.last_activity.is_some_and(|t| now.duration_since(t) > timeout)
            {
                slot.registered = false;
                slot.outbox = None;
                slot.last_activity = None;
                died.push(i);
            }
        }
    }
    for &i in &died {
        // Credit uptime and record the death.
        let mut credit = None;
        {
            let mut slots = inner.slots.lock();
            if let Some(since) = slots[i].registered_at.take() {
                credit = Some(now.duration_since(since).as_millis() as u64);
            }
        }
        {
            let mut metrics = inner.metrics.lock();
            metrics.agents[i].deaths += 1;
            if let Some(ms) = credit {
                metrics.agents[i].uptime_ms += ms;
            }
        }
        obs_event!(obs::Level::Warn, "daemon", "agent_dead", agent = i);
        let report = StatusReport {
            honeypot: HoneypotId(i as u32),
            at: inner.now_sim(),
            status: HoneypotStatus::Dead,
        };
        if let Some(core) = inner.core.lock().as_mut() {
            core.on_status(report);
        }
    }

    // Launches: the core's pure query says who, the slot's backoff gate
    // says when, `mark_relaunched` does the counting exactly once.
    let needing: Vec<HoneypotId> = match inner.core.lock().as_ref() {
        Some(core) => core.needing_relaunch(),
        None => return,
    };
    for id in needing {
        let i = id.0 as usize;
        let launch = {
            let mut slots = inner.slots.lock();
            let slot = &mut slots[i];
            if slot.goodbye || slot.registered || slot.next_launch_at.is_some_and(|t| now < t) {
                None
            } else {
                // The unified policy paces the schedule and spends the
                // attempt budget; `None` means this agent has exhausted
                // its launches.  The gate is floored at the heartbeat
                // timeout so a launch in flight is never doubled.
                match slot.backoff.next_deadline(now, inner.cfg.heartbeat_timeout_ms) {
                    Some(gate) => {
                        let incarnation = slot.next_incarnation;
                        slot.next_incarnation += 1;
                        slot.next_launch_at = Some(gate);
                        Some(incarnation)
                    }
                    None => None,
                }
            }
        };
        let Some(incarnation) = launch else { continue };
        // The core counts exactly once per incident (launches from
        // `Pending` are free); mirror its decision in the metrics.
        let counted = match inner.core.lock().as_mut() {
            Some(core) => {
                let was_pending = matches!(core.status_of(id), HoneypotStatus::Pending);
                core.mark_relaunched(id);
                !was_pending
            }
            None => false,
        };
        if counted {
            inner.metrics.lock().agents[i].relaunches += 1;
        }
        obs_event!(
            obs::Level::Info,
            "daemon",
            "agent_launch",
            agent = id.0,
            incarnation = incarnation,
            counted = counted
        );
        (inner.launcher)(id.0, incarnation, inner.addr);
    }
}
