//! Pre-transport chunk journal and replay.
//!
//! Agents record every log chunk here, keyed `(agent, seq)`, *before*
//! encoding it for the wire.  The daemon independently records the order
//! in which it merged `(agent, seq)` pairs.  Replaying the journal copies
//! in the daemon's order through a fresh in-process [`Manager`] must then
//! reproduce the daemon's [`MeasurementLog`] bit for bit — the proof that
//! the control plane moved every record exactly once, unmodified, in
//! order, through corruption, crashes and reconnects.

use std::collections::HashMap;
use std::sync::Arc;

use honeypot::{HoneypotSpec, LogChunk, Manager, MeasurementLog};
use netsim::SimTime;
use parking_lot::Mutex;

/// A shared, append-only record of every chunk agents handed to the wire.
#[derive(Clone, Default)]
pub struct ChunkJournal {
    inner: Arc<Mutex<HashMap<(u32, u64), LogChunk>>>,
}

impl ChunkJournal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the pre-transport copy of an upload.  Re-recording the same
    /// key (a retry of an unacked chunk) keeps the first copy.
    pub fn record(&self, agent: u32, seq: u64, chunk: LogChunk) {
        self.inner.lock().entry((agent, seq)).or_insert(chunk);
    }

    /// The recorded copy for `(agent, seq)`.
    pub fn get(&self, agent: u32, seq: u64) -> Option<LogChunk> {
        self.inner.lock().get(&(agent, seq)).cloned()
    }

    /// Number of distinct chunks recorded.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Replays the journal in the given merge order through a fresh
    /// in-process manager and finalizes it with the same parameters the
    /// daemon used.
    ///
    /// # Panics
    /// If `order` references a chunk the journal never saw (that would
    /// mean the daemon merged bytes no agent sent).
    pub fn replay(
        &self,
        order: &[(u32, u64)],
        specs: Vec<HoneypotSpec>,
        duration: SimTime,
        shared_files_final: u32,
        name_threshold: u32,
    ) -> MeasurementLog {
        let mut mgr = Manager::new(specs);
        for &(agent, seq) in order {
            let chunk = self
                .get(agent, seq)
                .unwrap_or_else(|| panic!("daemon merged unjournaled chunk ({agent}, {seq})"));
            assert!(mgr.collect_sequenced(seq, chunk), "daemon merge order contained a duplicate");
        }
        mgr.finalize(duration, shared_files_final, name_threshold)
    }
}

/// Structural equality of two measurement logs (`MeasurementLog` itself
/// does not implement `PartialEq`; the file table needs element-wise
/// comparison).  Returns the first difference found, `None` when equal.
pub fn measurement_diff(a: &MeasurementLog, b: &MeasurementLog) -> Option<String> {
    if a.records.len() != b.records.len() {
        return Some(format!("record count {} != {}", a.records.len(), b.records.len()));
    }
    if let Some(i) = (0..a.records.len()).find(|&i| a.records[i] != b.records[i]) {
        return Some(format!("record {i} differs: {:?} != {:?}", a.records[i], b.records[i]));
    }
    if a.shared_lists != b.shared_lists {
        return Some("shared lists differ".into());
    }
    if a.peer_names != b.peer_names {
        return Some("peer name tables differ".into());
    }
    if a.distinct_peers != b.distinct_peers {
        return Some(format!("distinct peers {} != {}", a.distinct_peers, b.distinct_peers));
    }
    if a.files.len() != b.files.len() {
        return Some(format!("file table size {} != {}", a.files.len(), b.files.len()));
    }
    for i in 0..a.files.len() as u32 {
        if a.files.id(i) != b.files.id(i)
            || a.files.name(i) != b.files.name(i)
            || a.files.size(i) != b.files.size(i)
        {
            return Some(format!("file table entry {i} differs"));
        }
    }
    if a.honeypots.len() != b.honeypots.len() {
        return Some("honeypot metadata differs".into());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::{Ipv4, UserId};
    use honeypot::log::{QueryRecord, FILE_NONE};
    use honeypot::{
        ContentStrategy, HoneypotId, HoneypotLog, IdStatus, IpHasher, QueryKind, ServerInfo,
    };

    fn specs() -> Vec<HoneypotSpec> {
        vec![HoneypotSpec {
            id: HoneypotId(0),
            content: ContentStrategy::NoContent,
            server: ServerInfo::new("s", Ipv4::new(127, 0, 0, 1), 4661),
        }]
    }

    fn chunk(n: usize) -> LogChunk {
        let hasher = IpHasher::from_seed(1);
        let mut log =
            HoneypotLog::new(HoneypotId(0), ServerInfo::new("s", Ipv4::new(127, 0, 0, 1), 4661));
        let name = log.intern_name("eMule");
        for i in 0..n {
            log.push(QueryRecord {
                at: SimTime::from_millis(i as u64),
                kind: QueryKind::Hello,
                peer: hasher.hash(Ipv4::new(10, 0, (i / 256) as u8, (i % 256) as u8)),
                port: 4662,
                id_status: IdStatus::High,
                user_id: UserId::from_seed(b"u"),
                name,
                version: 1,
                file: FILE_NONE,
            });
        }
        log.take_chunk()
    }

    #[test]
    fn replay_reproduces_direct_merge() {
        let journal = ChunkJournal::new();
        journal.record(0, 0, chunk(3));
        journal.record(0, 1, chunk(2));
        let order = vec![(0, 0), (0, 1)];

        let mut direct = Manager::new(specs());
        direct.collect_sequenced(0, journal.get(0, 0).unwrap());
        direct.collect_sequenced(1, journal.get(0, 1).unwrap());
        let direct_log = direct.finalize(SimTime::from_secs(60), 4, 1);

        let replayed = journal.replay(&order, specs(), SimTime::from_secs(60), 4, 1);
        assert_eq!(measurement_diff(&direct_log, &replayed), None);
    }

    #[test]
    fn diff_detects_missing_records() {
        let journal = ChunkJournal::new();
        journal.record(0, 0, chunk(3));
        let full = journal.replay(&[(0, 0)], specs(), SimTime::from_secs(60), 4, 1);
        let empty = journal.replay(&[], specs(), SimTime::from_secs(60), 4, 1);
        assert!(measurement_diff(&full, &empty).is_some());
    }

    #[test]
    fn retry_rerecording_keeps_first_copy() {
        let journal = ChunkJournal::new();
        journal.record(0, 0, chunk(3));
        journal.record(0, 0, chunk(5));
        assert_eq!(journal.len(), 1);
        assert_eq!(journal.get(0, 0).unwrap().records.len(), 3);
    }
}
