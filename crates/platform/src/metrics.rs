//! Platform health metrics.
//!
//! The paper's platform ran for months; what made that survivable was
//! knowing *how* the collection layer was doing — which honeypots died,
//! how often, how much data moved.  The daemon aggregates those numbers
//! here and serialises them to JSON for the experiment runner.  The JSON
//! is written by hand (like the bench reports) so the output is identical
//! under every build of the workspace.
//!
//! PR 10 pairs the headline [`RttStats`] (kept verbatim — BENCH parsers
//! read `count`/`min`/`mean`/`max`) with log-linear
//! [`crate::obs::Histogram`]s so the same JSON objects also carry
//! `p50`/`p90`/`p99`, and adds distribution objects for merge-queue
//! dwell and ack-frontier lag.

use crate::obs::Histogram;

/// Streaming min/mean/max over heartbeat round-trip times, in microseconds.
#[derive(Clone, Debug, Default)]
pub struct RttStats {
    pub count: u64,
    pub sum_micros: u64,
    pub min_micros: u64,
    pub max_micros: u64,
}

impl RttStats {
    /// Records one RTT sample.
    pub fn record(&mut self, micros: u64) {
        if self.count == 0 || micros < self.min_micros {
            self.min_micros = micros;
        }
        if micros > self.max_micros {
            self.max_micros = micros;
        }
        self.count += 1;
        self.sum_micros += micros;
    }

    /// Mean RTT in microseconds (0 with no samples).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros.checked_div(self.count).unwrap_or(0)
    }

    /// Folds another sample set into this one (used to pool per-shard
    /// reactor latency batches without holding the metrics lock hot).
    pub fn merge(&mut self, other: &RttStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min_micros < self.min_micros {
            self.min_micros = other.min_micros;
        }
        if other.max_micros > self.max_micros {
            self.max_micros = other.max_micros;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
    }
}

/// Per-agent control-plane counters.
#[derive(Clone, Debug, Default)]
pub struct AgentMetrics {
    /// Heartbeats received by the daemon.
    pub heartbeats: u64,
    /// RTTs the agent measured and piggybacked on later heartbeats.
    pub rtt: RttStats,
    /// Relaunches issued (initial launch not counted).
    pub relaunches: u64,
    /// Times the supervision loop declared the agent dead.
    pub deaths: u64,
    /// Log chunks merged into the measurement.
    pub chunks_merged: u64,
    /// Encoded payload bytes of merged chunks.
    pub chunk_bytes: u64,
    /// Corrupt uploads re-requested via `ChunkRetry`.
    pub chunk_retries: u64,
    /// Uploads re-acked without merging (sequence already collected — a
    /// lost ack, a replayed spool record, or a resend across a manager
    /// restart).
    pub duplicate_chunks: u64,
    /// Registrations with `resume = true` (reconnects and relaunches that
    /// continued an upload stream).
    pub resumes: u64,
    /// Total registrations (incarnations × reconnects).
    pub registrations: u64,
    /// Milliseconds spent registered, accumulated across incarnations.
    pub uptime_ms: u64,
    /// Peak upload-window occupancy: most chunks observed in flight past
    /// the cumulative-ack frontier at once.
    pub window_peak: u64,
    /// Peak cumulative-ack frontier lag: highest enqueued sequence + 1
    /// minus the merge frontier, sampled when acks are issued.
    pub frontier_lag_peak: u64,
    /// Heartbeats that arrived with the spool-degraded flag set (the
    /// agent is uploading from memory because its disk is failing).
    pub degraded_heartbeats: u64,
    /// Inclusive, disjoint, sorted ranges of merged upload sequences.
    /// This is the exactly-once ledger: [`AgentMetrics::note_merged`]
    /// refuses a sequence already covered, so `chunks_merged` equal to
    /// [`AgentMetrics::merged_seq_count`] proves no chunk was merged
    /// twice — including across a manager checkpoint/restore boundary.
    pub merged_ranges: Vec<(u64, u64)>,
}

impl AgentMetrics {
    /// Records `seq` as merged.  Returns `false` (and changes nothing) if
    /// the sequence was already covered — a double merge.
    pub fn note_merged(&mut self, seq: u64) -> bool {
        let pos = self.merged_ranges.partition_point(|&(lo, _)| lo <= seq);
        if pos > 0 {
            if seq <= self.merged_ranges[pos - 1].1 {
                return false;
            }
            if seq == self.merged_ranges[pos - 1].1 + 1 {
                self.merged_ranges[pos - 1].1 = seq;
                if pos < self.merged_ranges.len() && self.merged_ranges[pos].0 == seq + 1 {
                    let (_, hi) = self.merged_ranges.remove(pos);
                    self.merged_ranges[pos - 1].1 = hi;
                }
                return true;
            }
        }
        if pos < self.merged_ranges.len() && self.merged_ranges[pos].0 == seq + 1 {
            self.merged_ranges[pos].0 = seq;
            return true;
        }
        self.merged_ranges.insert(pos, (seq, seq));
        true
    }

    /// Distinct sequences covered by [`AgentMetrics::merged_ranges`].
    pub fn merged_seq_count(&self) -> u64 {
        self.merged_ranges.iter().map(|&(lo, hi)| hi - lo + 1).sum()
    }
}

/// Whole-platform metrics: one [`AgentMetrics`] per agent plus global
/// counters.
#[derive(Clone, Debug, Default)]
pub struct PlatformMetrics {
    pub agents: Vec<AgentMetrics>,
    /// Control frames that failed their CRC, over all connections.
    pub corrupt_frames: u64,
    /// Times a daemon recovered state from a checkpoint directory.
    pub manager_restores: u64,
    /// Reactor-shard loop iteration latency (active passes only).
    pub reactor_loop_micros: RttStats,
    /// Same samples as `reactor_loop_micros`, bucketed for percentiles;
    /// per-shard batches fold in via [`Histogram::merge`].
    pub reactor_loop_hist: Histogram,
    /// Heartbeat RTT distribution pooled over all agents (the per-agent
    /// [`RttStats`] keep the headline min/mean/max).
    pub heartbeat_rtt_hist: Histogram,
    /// Merge-queue dwell: microseconds a chunk waited between the
    /// reactor enqueueing it and the merge thread picking it up.
    pub merge_dwell_micros: Histogram,
    /// Cumulative-ack frontier lag in chunks, sampled at each ack (the
    /// scalar `frontier_lag_peak` per agent keeps the worst case).
    pub frontier_lag_chunks: Histogram,
    /// Peak pending-merge queue depth (chunks queued, not yet merged).
    pub merge_queue_peak: u64,
    /// Connections dropped at accept because the cap was reached.
    pub connections_rejected: u64,
    /// Peak concurrent control connections.
    pub connections_peak: u64,
    /// Connections reaped because no `Register` arrived in time.
    pub handshake_timeouts: u64,
    /// Registered connections reaped for silence past the idle limit.
    pub idle_reaped: u64,
    /// Connections reaped for dangling a partial frame past the
    /// slow-loris read budget.
    pub slow_loris_reaped: u64,
    /// Connections dropped for fatal framing violations (bad magic or
    /// version, oversized frame).
    pub protocol_violations: u64,
    /// Accept-loop failures classified as resource exhaustion (the loop
    /// backed off instead of spinning).
    pub accept_resource_errors: u64,
    /// Chunks dropped unqueued because the merge queue was at its limit
    /// (the agent re-sends them under backoff).
    pub chunks_shed: u64,
    /// Acks issued with a window smaller than the registration grant
    /// (merge-queue backpressure in action).
    pub window_shrinks: u64,
    /// WAL appends that failed: the chunk was neither merged nor acked
    /// (the acked ⇒ durable contract held by refusing the ack).
    pub wal_append_failures: u64,
    /// Checkpoint snapshot writes that failed; the stale on-disk snapshot
    /// is quarantined and the daemon keeps serving from the chunk WAL.
    pub checkpoint_failures: u64,
}

impl PlatformMetrics {
    pub fn new(agents: usize) -> Self {
        PlatformMetrics { agents: vec![AgentMetrics::default(); agents], ..Default::default() }
    }

    pub fn total_relaunches(&self) -> u64 {
        self.agents.iter().map(|a| a.relaunches).sum()
    }

    pub fn total_chunk_retries(&self) -> u64 {
        self.agents.iter().map(|a| a.chunk_retries).sum()
    }

    pub fn total_chunks_merged(&self) -> u64 {
        self.agents.iter().map(|a| a.chunks_merged).sum()
    }

    pub fn total_chunk_bytes(&self) -> u64 {
        self.agents.iter().map(|a| a.chunk_bytes).sum()
    }

    pub fn total_heartbeats(&self) -> u64 {
        self.agents.iter().map(|a| a.heartbeats).sum()
    }

    pub fn total_resumes(&self) -> u64 {
        self.agents.iter().map(|a| a.resumes).sum()
    }

    pub fn total_duplicate_chunks(&self) -> u64 {
        self.agents.iter().map(|a| a.duplicate_chunks).sum()
    }

    pub fn total_degraded_heartbeats(&self) -> u64 {
        self.agents.iter().map(|a| a.degraded_heartbeats).sum()
    }

    /// Largest upload window any agent filled.
    pub fn max_window_peak(&self) -> u64 {
        self.agents.iter().map(|a| a.window_peak).max().unwrap_or(0)
    }

    /// Largest cumulative-ack frontier lag observed on any agent.
    pub fn max_frontier_lag(&self) -> u64 {
        self.agents.iter().map(|a| a.frontier_lag_peak).max().unwrap_or(0)
    }

    /// Exactly-once check over every agent: each merged-sequence ledger
    /// must cover exactly `chunks_merged` distinct sequences.  Returns the
    /// first violation found (an agent whose counts disagree), `None` when
    /// the whole platform merged every chunk at most once.
    pub fn double_merge_violation(&self) -> Option<String> {
        for (i, a) in self.agents.iter().enumerate() {
            if a.merged_seq_count() != a.chunks_merged {
                return Some(format!(
                    "agent {i}: {} chunks merged but {} distinct sequences covered ({:?})",
                    a.chunks_merged,
                    a.merged_seq_count(),
                    a.merged_ranges
                ));
            }
        }
        None
    }

    /// RTT statistics pooled over all agents.
    pub fn pooled_rtt(&self) -> RttStats {
        let mut pooled = RttStats::default();
        for a in &self.agents {
            if a.rtt.count == 0 {
                continue;
            }
            if pooled.count == 0 || a.rtt.min_micros < pooled.min_micros {
                pooled.min_micros = a.rtt.min_micros;
            }
            if a.rtt.max_micros > pooled.max_micros {
                pooled.max_micros = a.rtt.max_micros;
            }
            pooled.count += a.rtt.count;
            pooled.sum_micros += a.rtt.sum_micros;
        }
        pooled
    }

    /// Serialises the report to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"agents\": {},\n", self.agents.len()));
        out.push_str(&format!("  \"relaunches\": {},\n", self.total_relaunches()));
        out.push_str(&format!("  \"chunk_retries\": {},\n", self.total_chunk_retries()));
        out.push_str(&format!("  \"chunks_merged\": {},\n", self.total_chunks_merged()));
        out.push_str(&format!("  \"chunk_bytes\": {},\n", self.total_chunk_bytes()));
        out.push_str(&format!("  \"heartbeats\": {},\n", self.total_heartbeats()));
        out.push_str(&format!("  \"resumes\": {},\n", self.total_resumes()));
        out.push_str(&format!("  \"duplicate_chunks\": {},\n", self.total_duplicate_chunks()));
        out.push_str(&format!("  \"corrupt_frames\": {},\n", self.corrupt_frames));
        out.push_str(&format!("  \"manager_restores\": {},\n", self.manager_restores));
        out.push_str(&format!("  \"window_peak\": {},\n", self.max_window_peak()));
        out.push_str(&format!("  \"frontier_lag_peak\": {},\n", self.max_frontier_lag()));
        out.push_str(&format!("  \"merge_queue_peak\": {},\n", self.merge_queue_peak));
        out.push_str(&format!("  \"connections_rejected\": {},\n", self.connections_rejected));
        out.push_str(&format!("  \"connections_peak\": {},\n", self.connections_peak));
        out.push_str(&format!("  \"handshake_timeouts\": {},\n", self.handshake_timeouts));
        out.push_str(&format!("  \"idle_reaped\": {},\n", self.idle_reaped));
        out.push_str(&format!("  \"slow_loris_reaped\": {},\n", self.slow_loris_reaped));
        out.push_str(&format!("  \"protocol_violations\": {},\n", self.protocol_violations));
        out.push_str(&format!("  \"accept_resource_errors\": {},\n", self.accept_resource_errors));
        out.push_str(&format!("  \"chunks_shed\": {},\n", self.chunks_shed));
        out.push_str(&format!("  \"window_shrinks\": {},\n", self.window_shrinks));
        out.push_str(&format!("  \"wal_append_failures\": {},\n", self.wal_append_failures));
        out.push_str(&format!("  \"checkpoint_failures\": {},\n", self.checkpoint_failures));
        out.push_str(&format!(
            "  \"degraded_heartbeats\": {},\n",
            self.total_degraded_heartbeats()
        ));
        // The existing count/min/mean/max keys are load-bearing (BENCH
        // parsers); the histogram only *adds* percentile keys.
        out.push_str(&format!(
            "  \"reactor_loop_micros\": {{\"count\": {}, \"min\": {}, \"mean\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}}},\n",
            self.reactor_loop_micros.count,
            self.reactor_loop_micros.min_micros,
            self.reactor_loop_micros.mean_micros(),
            self.reactor_loop_micros.max_micros,
            self.reactor_loop_hist.p50(),
            self.reactor_loop_hist.p90(),
            self.reactor_loop_hist.p99()
        ));
        let rtt = self.pooled_rtt();
        out.push_str(&format!(
            "  \"heartbeat_rtt_micros\": {{\"count\": {}, \"min\": {}, \"mean\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}}},\n",
            rtt.count,
            rtt.min_micros,
            rtt.mean_micros(),
            rtt.max_micros,
            self.heartbeat_rtt_hist.p50(),
            self.heartbeat_rtt_hist.p90(),
            self.heartbeat_rtt_hist.p99()
        ));
        out.push_str(&format!(
            "  \"merge_dwell_micros\": {},\n",
            self.merge_dwell_micros.to_json()
        ));
        out.push_str(&format!(
            "  \"frontier_lag_chunks\": {},\n",
            self.frontier_lag_chunks.to_json()
        ));
        out.push_str("  \"per_agent\": [\n");
        for (i, a) in self.agents.iter().enumerate() {
            let ranges: Vec<String> =
                a.merged_ranges.iter().map(|&(lo, hi)| format!("[{lo}, {hi}]")).collect();
            out.push_str(&format!(
                "    {{\"agent\": {}, \"heartbeats\": {}, \"relaunches\": {}, \"deaths\": {}, \
                 \"chunks_merged\": {}, \"chunk_bytes\": {}, \"chunk_retries\": {}, \
                 \"duplicate_chunks\": {}, \"resumes\": {}, \"registrations\": {}, \
                 \"uptime_ms\": {}, \"rtt_mean_micros\": {}, \"window_peak\": {}, \
                 \"frontier_lag_peak\": {}, \"merged_ranges\": [{}]}}{}\n",
                i,
                a.heartbeats,
                a.relaunches,
                a.deaths,
                a.chunks_merged,
                a.chunk_bytes,
                a.chunk_retries,
                a.duplicate_chunks,
                a.resumes,
                a.registrations,
                a.uptime_ms,
                a.rtt.mean_micros(),
                a.window_peak,
                a.frontier_lag_peak,
                ranges.join(", "),
                if i + 1 < self.agents.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_stats_track_extremes() {
        let mut s = RttStats::default();
        assert_eq!(s.mean_micros(), 0);
        s.record(100);
        s.record(300);
        s.record(200);
        assert_eq!(s.count, 3);
        assert_eq!(s.min_micros, 100);
        assert_eq!(s.max_micros, 300);
        assert_eq!(s.mean_micros(), 200);
    }

    #[test]
    fn totals_sum_over_agents() {
        let mut m = PlatformMetrics::new(2);
        m.agents[0].relaunches = 1;
        m.agents[0].chunk_retries = 1;
        m.agents[1].chunks_merged = 4;
        m.agents[0].rtt.record(50);
        m.agents[1].rtt.record(150);
        assert_eq!(m.total_relaunches(), 1);
        assert_eq!(m.total_chunk_retries(), 1);
        assert_eq!(m.total_chunks_merged(), 4);
        let pooled = m.pooled_rtt();
        assert_eq!(pooled.count, 2);
        assert_eq!(pooled.min_micros, 50);
        assert_eq!(pooled.max_micros, 150);
    }

    #[test]
    fn merged_ranges_form_an_exactly_once_ledger() {
        let mut a = AgentMetrics::default();
        for seq in [0u64, 1, 2, 5, 6, 4] {
            assert!(a.note_merged(seq), "seq {seq} is new");
        }
        assert_eq!(a.merged_ranges, vec![(0, 2), (4, 6)]);
        assert_eq!(a.merged_seq_count(), 6);
        // Every covered sequence is refused the second time.
        for seq in [0u64, 2, 4, 6] {
            assert!(!a.note_merged(seq), "seq {seq} is a double merge");
        }
        assert_eq!(a.merged_seq_count(), 6);
        // Bridging the gap coalesces the ranges.
        assert!(a.note_merged(3));
        assert_eq!(a.merged_ranges, vec![(0, 6)]);
        assert_eq!(a.merged_seq_count(), 7);
    }

    #[test]
    fn double_merge_violation_reports_disagreement() {
        let mut m = PlatformMetrics::new(2);
        m.agents[1].note_merged(0);
        m.agents[1].chunks_merged = 1;
        assert_eq!(m.double_merge_violation(), None);
        m.agents[1].chunks_merged = 2; // merged twice, ledger saw one seq
        assert!(m.double_merge_violation().unwrap().contains("agent 1"));
    }

    #[test]
    fn json_report_surfaces_percentiles_beside_legacy_keys() {
        let mut m = PlatformMetrics::new(1);
        for v in 1..=100u64 {
            m.reactor_loop_micros.record(v);
            m.reactor_loop_hist.record(v);
            m.heartbeat_rtt_hist.record(v * 10);
            m.merge_dwell_micros.record(v);
            m.frontier_lag_chunks.record(v % 8);
        }
        let json = m.to_json();
        // Legacy keys intact, in the same object as the new percentiles.
        assert!(json.contains(
            "\"reactor_loop_micros\": {\"count\": 100, \"min\": 1, \"mean\": 50, \"max\": 100, \"p50\":"
        ));
        assert!(json.contains("\"heartbeat_rtt_micros\": {\"count\": 0,"));
        assert!(json.contains("\"merge_dwell_micros\": {\"count\":100,"));
        assert!(json.contains("\"frontier_lag_chunks\": {\"count\":100,"));
        assert!(json.matches("\"p99\":").count() >= 4);
    }

    #[test]
    fn json_report_carries_headline_counters() {
        let mut m = PlatformMetrics::new(1);
        m.agents[0].relaunches = 1;
        m.agents[0].chunk_retries = 2;
        m.agents[0].heartbeats = 7;
        let json = m.to_json();
        assert!(json.contains("\"relaunches\": 1"));
        assert!(json.contains("\"chunk_retries\": 2"));
        assert!(json.contains("\"heartbeats\": 7"));
        assert!(json.contains("\"per_agent\""));
    }
}
