//! Platform health metrics.
//!
//! The paper's platform ran for months; what made that survivable was
//! knowing *how* the collection layer was doing — which honeypots died,
//! how often, how much data moved.  The daemon aggregates those numbers
//! here and serialises them to JSON for the experiment runner.  The JSON
//! is written by hand (like the bench reports) so the output is identical
//! under every build of the workspace.

/// Streaming min/mean/max over heartbeat round-trip times, in microseconds.
#[derive(Clone, Debug, Default)]
pub struct RttStats {
    pub count: u64,
    pub sum_micros: u64,
    pub min_micros: u64,
    pub max_micros: u64,
}

impl RttStats {
    /// Records one RTT sample.
    pub fn record(&mut self, micros: u64) {
        if self.count == 0 || micros < self.min_micros {
            self.min_micros = micros;
        }
        if micros > self.max_micros {
            self.max_micros = micros;
        }
        self.count += 1;
        self.sum_micros += micros;
    }

    /// Mean RTT in microseconds (0 with no samples).
    pub fn mean_micros(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum_micros / self.count
        }
    }
}

/// Per-agent control-plane counters.
#[derive(Clone, Debug, Default)]
pub struct AgentMetrics {
    /// Heartbeats received by the daemon.
    pub heartbeats: u64,
    /// RTTs the agent measured and piggybacked on later heartbeats.
    pub rtt: RttStats,
    /// Relaunches issued (initial launch not counted).
    pub relaunches: u64,
    /// Times the supervision loop declared the agent dead.
    pub deaths: u64,
    /// Log chunks merged into the measurement.
    pub chunks_merged: u64,
    /// Encoded payload bytes of merged chunks.
    pub chunk_bytes: u64,
    /// Corrupt uploads re-requested via `ChunkRetry`.
    pub chunk_retries: u64,
    /// Registrations with `resume = true` (reconnects and relaunches that
    /// continued an upload stream).
    pub resumes: u64,
    /// Total registrations (incarnations × reconnects).
    pub registrations: u64,
    /// Milliseconds spent registered, accumulated across incarnations.
    pub uptime_ms: u64,
}

/// Whole-platform metrics: one [`AgentMetrics`] per agent plus global
/// counters.
#[derive(Clone, Debug, Default)]
pub struct PlatformMetrics {
    pub agents: Vec<AgentMetrics>,
    /// Control frames that failed their CRC, over all connections.
    pub corrupt_frames: u64,
}

impl PlatformMetrics {
    pub fn new(agents: usize) -> Self {
        PlatformMetrics { agents: vec![AgentMetrics::default(); agents], corrupt_frames: 0 }
    }

    pub fn total_relaunches(&self) -> u64 {
        self.agents.iter().map(|a| a.relaunches).sum()
    }

    pub fn total_chunk_retries(&self) -> u64 {
        self.agents.iter().map(|a| a.chunk_retries).sum()
    }

    pub fn total_chunks_merged(&self) -> u64 {
        self.agents.iter().map(|a| a.chunks_merged).sum()
    }

    pub fn total_chunk_bytes(&self) -> u64 {
        self.agents.iter().map(|a| a.chunk_bytes).sum()
    }

    pub fn total_heartbeats(&self) -> u64 {
        self.agents.iter().map(|a| a.heartbeats).sum()
    }

    pub fn total_resumes(&self) -> u64 {
        self.agents.iter().map(|a| a.resumes).sum()
    }

    /// RTT statistics pooled over all agents.
    pub fn pooled_rtt(&self) -> RttStats {
        let mut pooled = RttStats::default();
        for a in &self.agents {
            if a.rtt.count == 0 {
                continue;
            }
            if pooled.count == 0 || a.rtt.min_micros < pooled.min_micros {
                pooled.min_micros = a.rtt.min_micros;
            }
            if a.rtt.max_micros > pooled.max_micros {
                pooled.max_micros = a.rtt.max_micros;
            }
            pooled.count += a.rtt.count;
            pooled.sum_micros += a.rtt.sum_micros;
        }
        pooled
    }

    /// Serialises the report to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"agents\": {},\n", self.agents.len()));
        out.push_str(&format!("  \"relaunches\": {},\n", self.total_relaunches()));
        out.push_str(&format!("  \"chunk_retries\": {},\n", self.total_chunk_retries()));
        out.push_str(&format!("  \"chunks_merged\": {},\n", self.total_chunks_merged()));
        out.push_str(&format!("  \"chunk_bytes\": {},\n", self.total_chunk_bytes()));
        out.push_str(&format!("  \"heartbeats\": {},\n", self.total_heartbeats()));
        out.push_str(&format!("  \"resumes\": {},\n", self.total_resumes()));
        out.push_str(&format!("  \"corrupt_frames\": {},\n", self.corrupt_frames));
        let rtt = self.pooled_rtt();
        out.push_str(&format!(
            "  \"heartbeat_rtt_micros\": {{\"count\": {}, \"min\": {}, \"mean\": {}, \"max\": {}}},\n",
            rtt.count,
            rtt.min_micros,
            rtt.mean_micros(),
            rtt.max_micros
        ));
        out.push_str("  \"per_agent\": [\n");
        for (i, a) in self.agents.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"agent\": {}, \"heartbeats\": {}, \"relaunches\": {}, \"deaths\": {}, \
                 \"chunks_merged\": {}, \"chunk_bytes\": {}, \"chunk_retries\": {}, \
                 \"resumes\": {}, \"registrations\": {}, \"uptime_ms\": {}, \
                 \"rtt_mean_micros\": {}}}{}\n",
                i,
                a.heartbeats,
                a.relaunches,
                a.deaths,
                a.chunks_merged,
                a.chunk_bytes,
                a.chunk_retries,
                a.resumes,
                a.registrations,
                a.uptime_ms,
                a.rtt.mean_micros(),
                if i + 1 < self.agents.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_stats_track_extremes() {
        let mut s = RttStats::default();
        assert_eq!(s.mean_micros(), 0);
        s.record(100);
        s.record(300);
        s.record(200);
        assert_eq!(s.count, 3);
        assert_eq!(s.min_micros, 100);
        assert_eq!(s.max_micros, 300);
        assert_eq!(s.mean_micros(), 200);
    }

    #[test]
    fn totals_sum_over_agents() {
        let mut m = PlatformMetrics::new(2);
        m.agents[0].relaunches = 1;
        m.agents[0].chunk_retries = 1;
        m.agents[1].chunks_merged = 4;
        m.agents[0].rtt.record(50);
        m.agents[1].rtt.record(150);
        assert_eq!(m.total_relaunches(), 1);
        assert_eq!(m.total_chunk_retries(), 1);
        assert_eq!(m.total_chunks_merged(), 4);
        let pooled = m.pooled_rtt();
        assert_eq!(pooled.count, 2);
        assert_eq!(pooled.min_micros, 50);
        assert_eq!(pooled.max_micros, 150);
    }

    #[test]
    fn json_report_carries_headline_counters() {
        let mut m = PlatformMetrics::new(1);
        m.agents[0].relaunches = 1;
        m.agents[0].chunk_retries = 2;
        m.agents[0].heartbeats = 7;
        let json = m.to_json();
        assert!(json.contains("\"relaunches\": 1"));
        assert!(json.contains("\"chunk_retries\": 2"));
        assert!(json.contains("\"heartbeats\": 7"));
        assert!(json.contains("\"per_agent\""));
    }
}
