//! Unified retry policy: seeded, jittered exponential backoff with deadlines.
//!
//! PR 3 grew three independent backoff implementations — the daemon's relaunch
//! gate, the agent's reconnect loop, and the ack-resend timer — each with its
//! own constants and its own (or no) jitter.  This module replaces them with
//! one policy object so every retry path in the control plane backs off the
//! same way and every delay is a deterministic function of a seed.
//!
//! A [`RetryPolicy`] describes the shape (base delay, cap, multiplier-by-shift,
//! attempt limit); [`Backoff`] is a per-site instance carrying the attempt
//! counter and a dedicated RNG stream for jitter.  Callers ask
//! [`Backoff::next_delay`] for the next wait, or [`Backoff::next_deadline`] to
//! convert it into an absolute `Instant` gate (the daemon's supervision loop
//! works in deadlines, the agent's reconnect loop in sleeps).

use std::time::{Duration, Instant};

use netsim::rng::stream_seed;
use netsim::Rng;

/// Shape of an exponential-backoff schedule.  All delays are milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First delay, and the upper bound of the additive jitter.
    pub base_ms: u64,
    /// Ceiling applied after the exponential shift, before jitter.
    pub cap_ms: u64,
    /// Give up after this many attempts (`None` = retry forever).
    pub max_attempts: Option<u32>,
}

impl RetryPolicy {
    /// The daemon's relaunch-supervision schedule (PR 3 constants).
    pub fn relaunch(base_ms: u64, cap_ms: u64, max_attempts: u32) -> Self {
        RetryPolicy { base_ms, cap_ms, max_attempts: Some(max_attempts) }
    }

    /// Agent reconnect schedule: fast first retry, capped well under the
    /// heartbeat timeout so a live daemon is rediscovered promptly.
    pub fn reconnect(max_attempts: u32) -> Self {
        RetryPolicy { base_ms: 25, cap_ms: 200, max_attempts: Some(max_attempts) }
    }

    /// Chunk re-request / ack-resend schedule: a gentle doubling from the
    /// PR 3 `ACK_RESEND_AFTER` constant, never waiting longer than a second.
    pub fn resend() -> Self {
        RetryPolicy { base_ms: 400, cap_ms: 1000, max_attempts: None }
    }

    /// Disk-retry schedule for a spool whose writes started failing: a few
    /// quick attempts (transient ENOSPC clears fast when logs rotate), then
    /// give up and degrade to in-memory buffering rather than block upload.
    pub fn disk() -> Self {
        RetryPolicy { base_ms: 50, cap_ms: 400, max_attempts: Some(4) }
    }

    /// Raw backoff for attempt `n` (1-based), before jitter: `base << (n-1)`,
    /// shift saturated at 16, capped at `cap_ms`.  Mirrors the PR 3 daemon
    /// formula exactly so relaunch pacing is unchanged.
    pub fn raw_delay_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        self.base_ms.checked_shl(shift).unwrap_or(u64::MAX).min(self.cap_ms)
    }
}

/// One retry site's live state: attempt counter + jitter stream.
#[derive(Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    attempts: u32,
    rng: Rng,
}

impl Backoff {
    /// Create a backoff instance.  `seed` is the policy-level master seed and
    /// `stream` distinguishes sites (e.g. one stream per supervised agent) so
    /// two sites sharing a seed still jitter independently.
    pub fn new(policy: RetryPolicy, seed: u64, stream: u64) -> Self {
        Backoff { policy, attempts: 0, rng: Rng::seed_from(stream_seed(seed, stream)) }
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// True once the attempt budget is spent.
    pub fn exhausted(&self) -> bool {
        match self.policy.max_attempts {
            Some(max) => self.attempts >= max,
            None => false,
        }
    }

    /// Consume one attempt and return the jittered delay to wait before it,
    /// or `None` if the budget is exhausted.  Jitter is additive in
    /// `[0, base_ms]`, drawn from this site's private stream.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.exhausted() {
            return None;
        }
        self.attempts += 1;
        let raw = self.policy.raw_delay_ms(self.attempts);
        let jitter = self.rng.below(self.policy.base_ms.max(1) + 1);
        Some(Duration::from_millis(raw.saturating_add(jitter)))
    }

    /// Like [`next_delay`](Self::next_delay) but returns an absolute gate:
    /// `now + delay`, with the delay floored at `min_ms` (the daemon floors
    /// relaunch gates at the heartbeat timeout so a relaunched agent is not
    /// declared dead before it can register).
    pub fn next_deadline(&mut self, now: Instant, min_ms: u64) -> Option<Instant> {
        let delay = self.next_delay()?;
        let floored = delay.max(Duration::from_millis(min_ms));
        Some(now + floored)
    }

    /// Reset after a success so the next failure starts the schedule over.
    pub fn reset(&mut self) {
        self.attempts = 0;
    }

    /// Restore the attempt counter from a checkpoint (manager recovery):
    /// a relaunched daemon must not grant a flapping agent a fresh budget.
    pub fn restore(&mut self, attempts: u32) {
        self.attempts = attempts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_delay_doubles_then_caps() {
        let p = RetryPolicy { base_ms: 50, cap_ms: 2000, max_attempts: None };
        assert_eq!(p.raw_delay_ms(1), 50);
        assert_eq!(p.raw_delay_ms(2), 100);
        assert_eq!(p.raw_delay_ms(3), 200);
        assert_eq!(p.raw_delay_ms(6), 1600);
        assert_eq!(p.raw_delay_ms(7), 2000); // capped
        assert_eq!(p.raw_delay_ms(60), 2000); // shift saturates, still capped
    }

    #[test]
    fn deterministic_for_seed_and_stream() {
        let p = RetryPolicy::relaunch(50, 2000, 10);
        let mut a = Backoff::new(p, 0xFEED, 3);
        let mut b = Backoff::new(p, 0xFEED, 3);
        for _ in 0..10 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
        // A different stream must diverge somewhere in the first few draws.
        let mut c = Backoff::new(p, 0xFEED, 4);
        let mut d = Backoff::new(p, 0xFEED, 3);
        let diverged = (0..8).any(|_| c.next_delay() != d.next_delay());
        assert!(diverged, "distinct streams produced identical jitter");
    }

    #[test]
    fn jitter_bounded_by_base() {
        let p = RetryPolicy { base_ms: 50, cap_ms: 2000, max_attempts: None };
        let mut b = Backoff::new(p, 1, 1);
        for attempt in 1..20u32 {
            let d = b.next_delay().unwrap().as_millis() as u64;
            let raw = p.raw_delay_ms(attempt);
            assert!(d >= raw && d <= raw + p.base_ms, "attempt {attempt}: {d} vs raw {raw}");
        }
    }

    #[test]
    fn budget_exhausts() {
        let p = RetryPolicy::relaunch(10, 100, 3);
        let mut b = Backoff::new(p, 7, 0);
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert!(b.exhausted());
        assert_eq!(b.next_delay(), None);
        b.reset();
        assert!(!b.exhausted());
        assert!(b.next_delay().is_some());
    }

    #[test]
    fn deadline_floors_at_min() {
        let p = RetryPolicy { base_ms: 1, cap_ms: 4, max_attempts: None };
        let mut b = Backoff::new(p, 9, 9);
        let now = Instant::now();
        let gate = b.next_deadline(now, 400).unwrap();
        assert!(gate.duration_since(now) >= Duration::from_millis(400));
    }
}
