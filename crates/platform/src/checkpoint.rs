//! Manager checkpoint: atomic snapshots of supervision state plus a
//! chunk write-ahead log, so a crashed daemon can be restarted without
//! losing the measurement.
//!
//! Two durable artefacts live under the checkpoint directory:
//!
//! * **`wal/`** — a [`crate::spool::Spool`] to which the daemon appends
//!   every chunk payload *before* acknowledging it, in exact merge order.
//!   Replaying the WAL through a fresh [`honeypot::Manager`] reproduces
//!   the merged state bit for bit (same intern order, same sequences), and
//!   the per-agent resume points are derived from it — so even a daemon
//!   that never managed to write a state snapshot recovers losslessly.
//! * **`manager.ckpt`** — a small CRC-trailed snapshot of the supervision
//!   state the WAL cannot carry: per-agent incarnation counters, launch
//!   attempt counts, clean-goodbye flags and uptime/relaunch accounting.
//!   It is replaced atomically (write to a temp file, then `rename`), so a
//!   crash mid-checkpoint leaves the previous snapshot intact; a torn or
//!   corrupt file is detected by its CRC and ignored.
//!
//! The split gives the durability contract its shape: *acked ⇒ in the
//! WAL ⇒ recovered*.  The snapshot only improves supervision continuity;
//! correctness of the measurement never depends on its freshness.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use edonkey_proto::control::crc32;

use crate::diskfault::{DiskFaultKind, DiskFaults};

/// Checkpointing knobs for the daemon.
#[derive(Clone, Debug)]
pub struct CheckpointOptions {
    /// Directory holding `manager.ckpt` and the `wal/` spool.
    pub dir: PathBuf,
    /// How often the supervision loop writes a state snapshot.
    pub interval_ms: u64,
}

impl CheckpointOptions {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointOptions { dir: dir.into(), interval_ms: 100 }
    }

    /// The state snapshot path.
    pub fn state_path(&self) -> PathBuf {
        self.dir.join(STATE_FILE)
    }

    /// The chunk WAL directory.
    pub fn wal_dir(&self) -> PathBuf {
        self.dir.join("wal")
    }
}

/// Snapshot file name inside the checkpoint directory.
pub const STATE_FILE: &str = "manager.ckpt";

const MAGIC: [u8; 4] = *b"EDCK";
const VERSION: u8 = 1;
/// Encoded size of one slot: u64 + u32 + u32 + u8 + five u64 counters.
const SLOT_BYTES: usize = 8 + 4 + 4 + 1 + 5 * 8;

/// Per-agent supervision state carried across a manager restart.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlotCheckpoint {
    /// Next upload sequence expected from this agent.
    pub expected_seq: u64,
    /// Incarnation the next (re)launch will carry.
    pub next_incarnation: u32,
    /// Consecutive launch attempts without a `Connected` status.
    pub attempts: u32,
    /// The agent said a clean goodbye; never relaunch it.
    pub goodbye: bool,
    /// Relaunches issued so far (metrics continuity).
    pub relaunches: u64,
    /// Deaths declared so far (metrics continuity).
    pub deaths: u64,
    /// Resumed registrations so far (metrics continuity).
    pub resumes: u64,
    /// Total registrations so far (metrics continuity).
    pub registrations: u64,
    /// Registered milliseconds accumulated so far (metrics continuity).
    pub uptime_ms: u64,
}

/// The whole snapshot: one [`SlotCheckpoint`] per agent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ManagerCheckpoint {
    pub slots: Vec<SlotCheckpoint>,
}

impl ManagerCheckpoint {
    /// Serialises the snapshot (little-endian fields, CRC-32 trailer).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + self.slots.len() * SLOT_BYTES);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(self.slots.len() as u32).to_le_bytes());
        for s in &self.slots {
            out.extend_from_slice(&s.expected_seq.to_le_bytes());
            out.extend_from_slice(&s.next_incarnation.to_le_bytes());
            out.extend_from_slice(&s.attempts.to_le_bytes());
            out.push(s.goodbye as u8);
            out.extend_from_slice(&s.relaunches.to_le_bytes());
            out.extend_from_slice(&s.deaths.to_le_bytes());
            out.extend_from_slice(&s.resumes.to_le_bytes());
            out.extend_from_slice(&s.registrations.to_le_bytes());
            out.extend_from_slice(&s.uptime_ms.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a snapshot; `None` for anything torn, corrupt or from an
    /// unknown version — recovery then proceeds from the WAL alone.
    pub fn decode(data: &[u8]) -> Option<ManagerCheckpoint> {
        if data.len() < 13 || data[..4] != MAGIC || data[4] != VERSION {
            return None;
        }
        let body_len = data.len() - 4;
        let stored = u32::from_le_bytes(data[body_len..].try_into().ok()?);
        if crc32(&data[..body_len]) != stored {
            return None;
        }
        let n = u32::from_le_bytes(data[5..9].try_into().ok()?) as usize;
        let mut pos = 9usize;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            if pos + SLOT_BYTES > body_len {
                return None;
            }
            let u64_at = |p: usize| u64::from_le_bytes(data[p..p + 8].try_into().unwrap());
            let u32_at = |p: usize| u32::from_le_bytes(data[p..p + 4].try_into().unwrap());
            slots.push(SlotCheckpoint {
                expected_seq: u64_at(pos),
                next_incarnation: u32_at(pos + 8),
                attempts: u32_at(pos + 12),
                goodbye: data[pos + 16] != 0,
                relaunches: u64_at(pos + 17),
                deaths: u64_at(pos + 25),
                resumes: u64_at(pos + 33),
                registrations: u64_at(pos + 41),
                uptime_ms: u64_at(pos + 49),
            });
            pos += SLOT_BYTES;
        }
        if pos != body_len {
            return None;
        }
        Some(ManagerCheckpoint { slots })
    }
}

/// Writes the snapshot atomically: temp file in the same directory, then
/// `rename` over [`STATE_FILE`].  A crash at any point leaves either the
/// old snapshot or the new one, never a mix.
pub fn save_checkpoint(dir: &Path, ckpt: &ManagerCheckpoint) -> io::Result<()> {
    save_checkpoint_with(dir, ckpt, &DiskFaults::none())
}

/// [`save_checkpoint`] with an injectable fault layer.  A short write
/// leaves a torn *temp* file and never renames it, mirroring how a real
/// mid-write crash presents: the previous snapshot stays intact and the
/// CRC rejects the fragment if anything ever reads it.
pub fn save_checkpoint_with(
    dir: &Path,
    ckpt: &ManagerCheckpoint,
    faults: &DiskFaults,
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let bytes = ckpt.encode();
    let tmp = dir.join(format!("{STATE_FILE}.tmp-{}", std::process::id()));
    if let Some(kind) = faults.check() {
        if kind == DiskFaultKind::ShortWrite {
            let _ = fs::write(&tmp, &bytes[..bytes.len() / 2]);
        }
        return Err(kind.to_error());
    }
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, dir.join(STATE_FILE))
}

/// Moves a (suspected-stale) snapshot aside as `manager.ckpt.quarantined`
/// so a later recovery cannot resurrect supervision state the daemon knows
/// it failed to keep fresh.  Missing snapshot is fine; returns whether a
/// file was actually moved.
pub fn quarantine_checkpoint(dir: &Path) -> io::Result<bool> {
    let path = dir.join(STATE_FILE);
    if !path.exists() {
        return Ok(false);
    }
    fs::rename(&path, dir.join(format!("{STATE_FILE}.quarantined")))?;
    Ok(true)
}

/// Loads the snapshot if present and intact; `None` otherwise (including
/// a torn write that somehow reached the final name — the CRC catches it).
pub fn load_checkpoint(dir: &Path) -> Option<ManagerCheckpoint> {
    let data = fs::read(dir.join(STATE_FILE)).ok()?;
    ManagerCheckpoint::decode(&data)
}

/// Test hook: simulate a crash *mid-checkpoint* by leaving a torn temp
/// file (the first `keep` bytes) next to the real snapshot.  Recovery must
/// ignore it.  Returns the temp path.
pub fn write_torn_tmp(dir: &Path, ckpt: &ManagerCheckpoint, keep: usize) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let bytes = ckpt.encode();
    let cut = keep.min(bytes.len());
    let tmp = dir.join(format!("{STATE_FILE}.tmp-torn"));
    fs::write(&tmp, &bytes[..cut])?;
    Ok(tmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ManagerCheckpoint {
        ManagerCheckpoint {
            slots: vec![
                SlotCheckpoint {
                    expected_seq: 7,
                    next_incarnation: 2,
                    attempts: 1,
                    goodbye: false,
                    relaunches: 1,
                    deaths: 1,
                    resumes: 3,
                    registrations: 4,
                    uptime_ms: 1234,
                },
                SlotCheckpoint {
                    expected_seq: 0,
                    next_incarnation: 1,
                    attempts: 0,
                    goodbye: true,
                    ..SlotCheckpoint::default()
                },
            ],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "edhp-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn encode_decode_round_trip() {
        let ckpt = sample();
        assert_eq!(ManagerCheckpoint::decode(&ckpt.encode()), Some(ckpt));
        assert_eq!(
            ManagerCheckpoint::decode(&ManagerCheckpoint::default().encode()),
            Some(ManagerCheckpoint::default())
        );
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert_eq!(ManagerCheckpoint::decode(&bytes[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut doctored = bytes.clone();
            doctored[i] ^= 0x01;
            assert_eq!(ManagerCheckpoint::decode(&doctored), None, "flip at byte {i}");
        }
    }

    #[test]
    fn save_load_and_atomic_replace() {
        let dir = tmpdir("saveload");
        assert_eq!(load_checkpoint(&dir), None);
        let first = sample();
        save_checkpoint(&dir, &first).unwrap();
        assert_eq!(load_checkpoint(&dir), Some(first));
        let mut second = sample();
        second.slots[0].expected_seq = 99;
        save_checkpoint(&dir, &second).unwrap();
        assert_eq!(load_checkpoint(&dir), Some(second));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_never_damage_the_snapshot() {
        let dir = tmpdir("faults");
        let ckpt = sample();
        save_checkpoint(&dir, &ckpt).unwrap();
        let faults = DiskFaults::none();
        let mut newer = sample();
        newer.slots[0].expected_seq = 77;
        faults.inject(DiskFaultKind::Eio, Some(1));
        assert!(save_checkpoint_with(&dir, &newer, &faults).is_err());
        assert_eq!(load_checkpoint(&dir), Some(ckpt.clone()), "EIO left old snapshot");
        faults.inject(DiskFaultKind::ShortWrite, Some(1));
        assert!(save_checkpoint_with(&dir, &newer, &faults).is_err());
        assert_eq!(load_checkpoint(&dir), Some(ckpt), "torn temp never renamed");
        // Once the fault clears the same save goes through.
        save_checkpoint_with(&dir, &newer, &faults).unwrap();
        assert_eq!(load_checkpoint(&dir), Some(newer));
        assert_eq!(faults.injected(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_moves_the_snapshot_aside() {
        let dir = tmpdir("quarantine");
        assert!(!quarantine_checkpoint(&dir).unwrap(), "nothing to quarantine yet");
        let ckpt = sample();
        save_checkpoint(&dir, &ckpt).unwrap();
        assert!(quarantine_checkpoint(&dir).unwrap());
        assert_eq!(load_checkpoint(&dir), None, "quarantined snapshot is invisible");
        assert!(dir.join(format!("{STATE_FILE}.quarantined")).exists());
        assert!(!quarantine_checkpoint(&dir).unwrap(), "second call is a no-op");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tmp_never_shadows_the_snapshot() {
        let dir = tmpdir("torn");
        let ckpt = sample();
        save_checkpoint(&dir, &ckpt).unwrap();
        let mut newer = sample();
        newer.slots[0].expected_seq = 1000;
        let tmp = write_torn_tmp(&dir, &newer, 20).unwrap();
        assert!(tmp.exists());
        // The interrupted checkpoint is invisible; the old one survives.
        assert_eq!(load_checkpoint(&dir), Some(ckpt));
        let _ = fs::remove_dir_all(&dir);
    }
}
