//! Fault injection for control-plane testing.
//!
//! A month-scale measurement platform is only trustworthy if its collection
//! layer survives the failures the paper's operational report implies
//! (dead honeypots, lost connections, partial uploads).  A [`FaultPlan`]
//! makes an agent misbehave in precisely scripted ways so tests can assert
//! the daemon's recovery: corrupt chunks must be re-requested (never
//! merged), killed agents must be relaunched, and interrupted uploads must
//! resume without loss or duplication.

/// Scripted misbehaviour for one agent.  `default()` is a well-behaved
/// agent.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Silently skip sending the first N heartbeats (exercises the
    /// manager's heartbeat deadline without killing the agent).
    pub drop_first_heartbeats: u64,
    /// Extra delay added before every heartbeat send (jitters RTT and can
    /// push the agent over the deadline when large).
    pub delay_heartbeat_ms: u64,
    /// Corrupt the CRC trailer of the upload frame carrying this sequence
    /// number, once.  The clean frame is kept and re-sent on `ChunkRetry`.
    pub corrupt_chunk_seq: Option<u64>,
    /// Write only half of the upload frame carrying this sequence number,
    /// then drop the control connection, once.  The agent reconnects with
    /// `resume = true` and re-sends from the daemon's acked position.
    pub truncate_chunk_seq: Option<u64>,
    /// Die abruptly (no `Goodbye`, honeypot torn down) right after
    /// *sending* the upload frame carrying this sequence number — the ack
    /// is never read, so the daemon has merged a chunk the agent never
    /// learned about.  The relaunched incarnation must resume past it.
    pub kill_after_chunk: Option<u64>,
    /// Die abruptly right *before* sending the upload frame carrying this
    /// sequence number, after it was journaled and spooled.  The daemon
    /// never saw the chunk; with a durable spool the relaunched
    /// incarnation must replay and deliver it, losing nothing.
    pub kill_before_chunk: Option<u64>,
}

/// One-shot fault state carried across an agent's reconnects and
/// incarnations (each scripted fault fires at most once per agent, not
/// once per connection).
#[derive(Debug, Default)]
pub struct FaultState {
    pub corrupted: bool,
    pub truncated: bool,
    pub heartbeats_dropped: u64,
}

impl FaultPlan {
    /// Whether the upload of `seq` should be sent with a corrupted CRC.
    pub fn should_corrupt(&self, seq: u64, state: &mut FaultState) -> bool {
        if self.corrupt_chunk_seq == Some(seq) && !state.corrupted {
            state.corrupted = true;
            return true;
        }
        false
    }

    /// Whether the upload of `seq` should be truncated mid-frame.
    pub fn should_truncate(&self, seq: u64, state: &mut FaultState) -> bool {
        if self.truncate_chunk_seq == Some(seq) && !state.truncated {
            state.truncated = true;
            return true;
        }
        false
    }

    /// Whether this heartbeat should be silently dropped.
    pub fn should_drop_heartbeat(&self, state: &mut FaultState) -> bool {
        if state.heartbeats_dropped < self.drop_first_heartbeats {
            state.heartbeats_dropped += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once() {
        let plan = FaultPlan {
            corrupt_chunk_seq: Some(3),
            truncate_chunk_seq: Some(5),
            drop_first_heartbeats: 2,
            ..FaultPlan::default()
        };
        let mut state = FaultState::default();
        assert!(!plan.should_corrupt(2, &mut state));
        assert!(plan.should_corrupt(3, &mut state));
        assert!(!plan.should_corrupt(3, &mut state), "one-shot");
        assert!(plan.should_truncate(5, &mut state));
        assert!(!plan.should_truncate(5, &mut state), "one-shot");
        assert!(plan.should_drop_heartbeat(&mut state));
        assert!(plan.should_drop_heartbeat(&mut state));
        assert!(!plan.should_drop_heartbeat(&mut state), "only the first N");
    }

    #[test]
    fn default_plan_is_faultless() {
        let plan = FaultPlan::default();
        let mut state = FaultState::default();
        for seq in 0..10 {
            assert!(!plan.should_corrupt(seq, &mut state));
            assert!(!plan.should_truncate(seq, &mut state));
        }
        assert!(!plan.should_drop_heartbeat(&mut state));
    }
}
