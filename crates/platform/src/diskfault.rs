//! Injectable disk write faults for degraded-mode testing.
//!
//! The durable layers (`spool`, `checkpoint`, and — through its own
//! self-contained hook — `core::serverlog`) consult a shared
//! [`DiskFaults`] handle before touching the filesystem.  A test (or the
//! chaos harness) arms the handle with ENOSPC / EIO / short-write
//! behaviour at runtime; production code holds an unarmed handle and pays
//! one atomic load per write.
//!
//! The handle is `Clone` + `Send`: the chaos-matrix test keeps a clone
//! while the agent/daemon own theirs, so faults can be injected and
//! cleared mid-run, and the number of writes actually failed is visible
//! afterwards via [`DiskFaults::injected`] (the test asserts every
//! injected fault surfaced in the platform metrics — no silent modes).

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// The flavour of write failure to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// Device full: the write fails before any byte lands.
    Enospc,
    /// Generic I/O error: the write fails before any byte lands.
    Eio,
    /// Torn write: a *prefix* of the record reaches the disk, then the
    /// write fails — exercises the torn-tail recovery paths.
    ShortWrite,
}

impl DiskFaultKind {
    /// The `io::Error` this fault surfaces as.
    pub fn to_error(self) -> io::Error {
        match self {
            DiskFaultKind::Enospc => io::Error::other("injected fault: no space left on device"),
            DiskFaultKind::Eio => io::Error::other("injected fault: input/output error"),
            DiskFaultKind::ShortWrite => io::Error::other("injected fault: short write"),
        }
    }
}

#[derive(Debug)]
struct Armed {
    kind: DiskFaultKind,
    /// Fail this many more writes; `None` = until cleared.
    remaining: Option<u64>,
}

#[derive(Debug, Default)]
struct Inner {
    armed: Mutex<Option<Armed>>,
    injected: AtomicU64,
}

/// Shared, runtime-armable write-fault injector.  `Default`/[`Self::none`]
/// is permanently quiet.
#[derive(Debug, Clone, Default)]
pub struct DiskFaults {
    inner: Arc<Inner>,
}

impl DiskFaults {
    /// A handle that never faults (the production value).
    pub fn none() -> Self {
        Self::default()
    }

    /// Arms the injector: the next `count` writes fail with `kind`
    /// (`None` = every write until [`Self::clear`]).
    pub fn inject(&self, kind: DiskFaultKind, count: Option<u64>) {
        *self.inner.armed.lock() = Some(Armed { kind, remaining: count });
    }

    /// Disarms the injector.
    pub fn clear(&self) {
        *self.inner.armed.lock() = None;
    }

    /// Number of writes actually failed so far.
    pub fn injected(&self) -> u64 {
        self.inner.injected.load(Ordering::Relaxed)
    }

    /// Called by a durable layer on the write path: consumes one armed
    /// fault, or `None` when the handle is quiet.
    pub fn check(&self) -> Option<DiskFaultKind> {
        let mut armed = self.inner.armed.lock();
        let hit = match armed.as_mut() {
            None => return None,
            Some(a) => {
                let kind = a.kind;
                match &mut a.remaining {
                    None => Some(kind),
                    Some(0) => None,
                    Some(n) => {
                        *n -= 1;
                        Some(kind)
                    }
                }
            }
        };
        if let Some(a) = armed.as_ref() {
            if a.remaining == Some(0) {
                *armed = None;
            }
        }
        if hit.is_some() {
            self.inner.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_by_default() {
        let f = DiskFaults::none();
        assert_eq!(f.check(), None);
        assert_eq!(f.injected(), 0);
    }

    #[test]
    fn counted_faults_exhaust() {
        let f = DiskFaults::none();
        f.inject(DiskFaultKind::Enospc, Some(2));
        assert_eq!(f.check(), Some(DiskFaultKind::Enospc));
        assert_eq!(f.check(), Some(DiskFaultKind::Enospc));
        assert_eq!(f.check(), None, "budget spent");
        assert_eq!(f.injected(), 2);
    }

    #[test]
    fn persistent_until_cleared_and_shared() {
        let f = DiskFaults::none();
        let clone = f.clone();
        f.inject(DiskFaultKind::Eio, None);
        assert_eq!(clone.check(), Some(DiskFaultKind::Eio));
        assert_eq!(clone.check(), Some(DiskFaultKind::Eio));
        f.clear();
        assert_eq!(clone.check(), None);
        assert_eq!(f.injected(), 2, "injections visible through either handle");
    }
}
