//! Log-linear latency histogram: fixed bucket layout, mergeable across
//! reactor shards, constant-time record, percentile read-out.
//!
//! Layout: values are bucketed by power-of-two decade (the position of
//! the highest set bit) subdivided into [`SUBS`] linear sub-buckets —
//! the classic HDR-style log-linear scheme.  With `SUBS = 16` the
//! relative quantile error is bounded by 1/16 ≈ 6%, plenty for p50/p99
//! operational latencies, while the whole histogram is a fixed
//! `64 × 16` array of `u64` — no allocation after construction, and
//! `merge` is element-wise addition exactly like `RttStats::merge`.

/// Linear sub-buckets per power-of-two decade.
const SUBS: usize = 16;
/// Decades: one per possible highest-bit position of a `u64`.
const DECADES: usize = 64;
const NBUCKETS: usize = DECADES * SUBS;

/// A mergeable log-linear histogram of non-negative integer samples
/// (typically microseconds).
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; NBUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { counts: Box::new([0u64; NBUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Bucket index for `value` — constant time, branch-free but for
    /// the small-value special case.
    #[inline]
    fn bucket(value: u64) -> usize {
        if value < SUBS as u64 {
            // Decade 0..4 collapse: values below SUBS are exact.
            return value as usize;
        }
        let decade = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (decade - 4)) & (SUBS as u64 - 1)) as usize;
        decade * SUBS + sub
    }

    /// Representative (lower-bound) value of bucket `idx`.
    fn bucket_floor(idx: usize) -> u64 {
        if idx < SUBS {
            return idx as u64;
        }
        let decade = idx / SUBS;
        let sub = idx % SUBS;
        (1u64 << decade) + ((sub as u64) << (decade - 4))
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`; used to combine per-shard histograms
    /// exactly like `RttStats::merge`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` — the lower bound of the
    /// bucket holding the q-th sample (≤ ~6% relative error).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(idx).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// JSON object fragment with the summary statistics every consumer
    /// wants: `{"count":..,"min":..,"mean":..,"max":..,"p50":..,"p90":..,"p99":..}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"min\":{},\"mean\":{:.1},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            self.count,
            self.min(),
            self.mean(),
            self.max,
            self.p50(),
            self.p90(),
            self.p99()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..SUBS as u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.p50(), 7);
    }

    #[test]
    fn quantiles_within_log_linear_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.p50() as f64;
        let p99 = h.p99() as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.08, "p50={p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.08, "p99={p99}");
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        let mut x = 1u64;
        for i in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = x % 1_000_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.p50(), whole.p50());
        assert_eq!(a.p99(), whole.p99());
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.p99() > 0);
    }

    #[test]
    fn json_fragment_shape() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(200);
        let j = h.to_json();
        for key in ["count", "min", "mean", "max", "p50", "p90", "p99"] {
            assert!(j.contains(&format!("\"{key}\":")), "{key} in {j}");
        }
    }
}
