//! `platform::obs` — the unified observability layer for the control
//! plane (DESIGN.md §3i).
//!
//! Four pieces:
//!
//! * the **event facade + flight recorder** — re-exported from
//!   [`netsim::obs`] (it lives in the workspace's bottom crate so the
//!   sim engine and analysis can instrument through the same facade);
//!   emit with [`netsim::obs_event!`];
//! * [`hist`] — mergeable log-linear [`Histogram`]s (p50/p90/p99/max)
//!   replacing min/mean/max `RttStats` where percentiles matter;
//! * [`registry`] — the named instrument [`Registry`] with a shared
//!   [`Registry::global`];
//! * [`scrape`] — the periodic [`Scraper`]: JSONL time series plus a
//!   one-shot loopback snapshot endpoint.
//!
//! **Purity contract** (pinned by `tests/obs_purity.rs`): observation
//! never changes what the platform *does*.  Measurement logs and
//! control-protocol byte streams are bit-identical with observability
//! off, on, or at any verbosity.  Structurally this holds because the
//! facade only copies `Copy` data into pre-allocated rings, instruments
//! only accumulate integers on the side, and the scraper only reads.

pub mod hist;
pub mod registry;
pub mod scrape;

pub use hist::Histogram;
pub use netsim::obs::{
    dump_all, enabled, level, record, set_level, snapshot_all, snapshot_thread, EventRecord,
    InlineStr, Level, Value, RING_CAPACITY,
};
pub use registry::{Counter, Gauge, HistogramHandle, Registry, RegistrySnapshot};
pub use scrape::{ObsConfig, Scraper};

use std::path::PathBuf;

/// Directory chaos/e2e failure dumps land in: `target/obs/`.
pub fn dump_dir() -> PathBuf {
    // Relative to the test's working directory (the workspace root for
    // `cargo test`), matching where CI collects artifacts from.
    PathBuf::from("target").join("obs")
}

/// Dumps every thread's flight-recorder ring to
/// `target/obs/<name>.events.jsonl`; returns the path on success.
/// Never panics — a failing dump must not mask the original failure.
pub fn dump_flight_recorder(name: &str) -> Option<PathBuf> {
    let path = dump_dir().join(format!("{name}.events.jsonl"));
    match dump_all(&path) {
        Ok(n) => {
            eprintln!("[obs] flight recorder: {n} events -> {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("[obs] flight recorder dump failed: {e}");
            None
        }
    }
}

/// Panic-path guard for chaos tests: construct one at the top of a test
/// cell and the flight recorder is dumped to
/// `target/obs/<cell>.events.jsonl` *only* if the cell panics (assert
/// failure, unwrap, …).  A passing cell writes nothing.
pub struct FlightDumpOnPanic {
    cell: &'static str,
}

impl FlightDumpOnPanic {
    /// Arms the guard for `cell`.
    pub fn arm(cell: &'static str) -> FlightDumpOnPanic {
        FlightDumpOnPanic { cell }
    }
}

impl Drop for FlightDumpOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = dump_flight_recorder(self.cell);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_dump_writes_named_file() {
        set_level(Level::Trace);
        netsim::obs_event!(Level::Info, "obs-mod-test", "dump_named", k = 1u64);
        let path = dump_flight_recorder("obs-mod-selftest").expect("dump");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.lines().any(|l| l.contains("dump_named")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panic_guard_is_silent_on_success() {
        let marker = dump_dir().join("obs-guard-pass.events.jsonl");
        let _ = std::fs::remove_file(&marker);
        {
            let _guard = FlightDumpOnPanic::arm("obs-guard-pass");
        }
        assert!(!marker.exists(), "guard must not dump on clean exit");
    }

    #[test]
    fn panic_guard_dumps_on_unwind() {
        set_level(Level::Trace);
        let marker = dump_dir().join("obs-guard-fail.events.jsonl");
        let _ = std::fs::remove_file(&marker);
        let result = std::panic::catch_unwind(|| {
            let _guard = FlightDumpOnPanic::arm("obs-guard-fail");
            netsim::obs_event!(Level::Error, "obs-mod-test", "about_to_fail", code = 7u64);
            panic!("simulated cell failure");
        });
        assert!(result.is_err());
        let text = std::fs::read_to_string(&marker).expect("dump on panic");
        assert!(text.lines().any(|l| l.contains("about_to_fail")));
        let _ = std::fs::remove_file(&marker);
    }
}
