//! Periodic snapshot scraper: samples a [`Registry`] on an interval,
//! appends each sample to a JSONL time-series file, and serves the
//! latest snapshot over a one-shot loopback TCP endpoint.
//!
//! The endpoint deliberately mimics the simplest possible scrape
//! protocol: connect, optionally send a request line (it is read and
//! discarded), receive one JSON document terminated by a newline, and
//! the server closes.  `nc 127.0.0.1 <port>` or a four-line script can
//! inspect a live 256-agent swarm mid-run; there is no framing, no
//! keep-alive, no state.
//!
//! The scraper runs on its own thread with a non-blocking listener (the
//! same `transport::classify_accept` triage the daemon's accept loop
//! uses) so sampling cadence and scrape service never block each other,
//! and — per the purity contract — it only ever *reads* instrument
//! state; it cannot perturb the data path.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::transport::{classify_accept, AcceptError};

use super::registry::Registry;

/// Configuration for a [`Scraper`].
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Sampling period for the JSONL time series.
    pub interval: Duration,
    /// Append-only JSONL time-series path; `None` disables the file.
    pub series_path: Option<PathBuf>,
    /// Bind a loopback snapshot endpoint (`127.0.0.1:0` → ephemeral).
    pub serve: bool,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig { interval: Duration::from_millis(250), series_path: None, serve: true }
    }
}

/// Handle on a running scraper thread; dropping without [`Scraper::stop`]
/// also shuts it down.
pub struct Scraper {
    stop: Arc<AtomicBool>,
    addr: Option<SocketAddr>,
    join: Option<std::thread::JoinHandle<u64>>,
}

impl Scraper {
    /// Starts the scraper over `registry` (typically
    /// [`Registry::global`]).  Returns after the endpoint (if enabled)
    /// is bound, so [`Scraper::addr`] is immediately valid.
    pub fn start(registry: &'static Registry, cfg: ObsConfig) -> std::io::Result<Scraper> {
        let listener = if cfg.serve {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            l.set_nonblocking(true)?;
            Some(l)
        } else {
            None
        };
        let addr = listener.as_ref().and_then(|l| l.local_addr().ok());
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("obs-scraper".into())
            .spawn(move || scraper_loop(registry, cfg, listener, stop2))?;
        Ok(Scraper { stop, addr, join: Some(join) })
    }

    /// Address of the snapshot endpoint, when serving.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Stops the thread and returns how many samples it appended.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.join.take().map(|j| j.join().unwrap_or(0)).unwrap_or(0)
    }
}

impl Drop for Scraper {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// One JSONL sample line: timestamped registry snapshot.
fn sample_line(registry: &Registry, seq: u64) -> String {
    let unix_ms =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
    let extra = format!("\"schema\":\"obs-v1\",\"sample\":{seq},\"unix_ms\":{unix_ms}");
    registry.snapshot().to_json(&extra)
}

fn scraper_loop(
    registry: &'static Registry,
    cfg: ObsConfig,
    listener: Option<TcpListener>,
    stop: Arc<AtomicBool>,
) -> u64 {
    let mut series = cfg.series_path.as_ref().and_then(|p| {
        if let Some(parent) = p.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::OpenOptions::new().create(true).append(true).open(p).ok()
    });
    let mut samples = 0u64;
    // First sample immediately so even a very short run leaves a series.
    let mut latest = sample_line(registry, samples);
    if let Some(f) = series.as_mut() {
        let _ = writeln!(f, "{latest}");
    }
    samples += 1;
    let mut next_sample = Instant::now() + cfg.interval;
    let poll = Duration::from_millis(10).min(cfg.interval);
    while !stop.load(Ordering::Relaxed) {
        if let Some(l) = listener.as_ref() {
            match l.accept() {
                Ok((conn, _)) => {
                    // Serve the most recent sample; never re-snapshot on
                    // the accept path so a scrape storm costs nothing.
                    serve_one(conn, &latest);
                }
                Err(e) => match classify_accept(&e) {
                    AcceptError::Transient => {}
                    AcceptError::Resource => std::thread::sleep(poll),
                },
            }
        }
        if Instant::now() >= next_sample {
            latest = sample_line(registry, samples);
            if let Some(f) = series.as_mut() {
                let _ = writeln!(f, "{latest}");
            }
            samples += 1;
            next_sample = Instant::now() + cfg.interval;
        }
        std::thread::sleep(poll);
    }
    // Final sample on shutdown so the series always covers run end.
    let last = sample_line(registry, samples);
    if let Some(f) = series.as_mut() {
        let _ = writeln!(f, "{last}");
        let _ = f.flush();
    }
    samples + 1
}

/// Answers one scrape: discard any request bytes already in flight,
/// write the snapshot + newline, close.
fn serve_one(mut conn: TcpStream, latest: &str) {
    let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = conn.set_nodelay(true);
    let mut scratch = [0u8; 256];
    let _ = conn.read(&mut scratch); // "GET /" line or nothing; ignored
    let _ = conn.write_all(latest.as_bytes());
    let _ = conn.write_all(b"\n");
    let _ = conn.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("obs-scrape-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn scraper_appends_series_and_serves_snapshot() {
        let dir = scratch("basic");
        let series = dir.join("series.jsonl");
        let reg = Registry::global();
        reg.counter("scrape_test_counter").add(11);
        reg.histogram("scrape_test_hist").record(1234);
        let scraper = Scraper::start(
            reg,
            ObsConfig {
                interval: Duration::from_millis(20),
                series_path: Some(series.clone()),
                serve: true,
            },
        )
        .expect("scraper start");
        let addr = scraper.addr().expect("endpoint bound");

        // Live scrape mid-run.
        let mut conn = TcpStream::connect(addr).expect("connect scrape");
        conn.write_all(b"GET / HTTP/1.0\r\n\r\n").expect("request");
        let mut body = String::new();
        conn.read_to_string(&mut body).expect("read snapshot");
        assert!(body.trim_end().starts_with('{') && body.trim_end().ends_with('}'), "{body}");
        assert!(body.contains("\"schema\":\"obs-v1\""));
        assert!(body.contains("\"histograms\""));

        std::thread::sleep(Duration::from_millis(80));
        let n = scraper.stop();
        assert!(n >= 2, "expected several samples, got {n}");

        // Series file: every line parses as a flat JSON object with the
        // schema marker and monotonically increasing sample numbers.
        let file = std::fs::File::open(&series).expect("series exists");
        let mut last_sample = None::<u64>;
        for line in std::io::BufReader::new(file).lines() {
            let line = line.expect("line");
            assert!(line.starts_with("{\"schema\":\"obs-v1\""), "{line}");
            let sample: u64 = line
                .split("\"sample\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.parse().ok())
                .expect("sample field");
            if let Some(prev) = last_sample {
                assert!(sample > prev);
            }
            last_sample = Some(sample);
        }
        assert!(last_sample.is_some(), "series not empty");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scraper_without_endpoint_still_samples() {
        let dir = scratch("nofile");
        let series = dir.join("s.jsonl");
        let scraper = Scraper::start(
            Registry::global(),
            ObsConfig {
                interval: Duration::from_millis(10),
                series_path: Some(series.clone()),
                serve: false,
            },
        )
        .expect("start");
        assert!(scraper.addr().is_none());
        std::thread::sleep(Duration::from_millis(40));
        scraper.stop();
        let text = std::fs::read_to_string(&series).expect("series");
        assert!(text.lines().count() >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
