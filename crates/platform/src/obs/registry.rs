//! Named metrics registry: counters, gauges and [`Histogram`]s that the
//! snapshot scraper samples periodically.
//!
//! Handles are cheap `Arc` clones; recording a histogram sample takes a
//! `parking_lot` mutex private to that instrument (uncontended in
//! steady state — each instrument has one dominant writer thread).
//! Snapshots iterate a `BTreeMap`, so output ordering is deterministic
//! regardless of registration order races.
//!
//! The daemon, in-process agents and the spool all record through
//! [`Registry::global`] so a single scraper sees the whole process;
//! unit tests construct private registries.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use super::hist::Histogram;

/// Monotone counter handle.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value gauge handle.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared histogram handle.
#[derive(Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl Default for HistogramHandle {
    fn default() -> HistogramHandle {
        HistogramHandle(Arc::new(Mutex::new(Histogram::new())))
    }
}

impl HistogramHandle {
    /// Records one sample (typically microseconds).
    pub fn record(&self, value: u64) {
        self.0.lock().record(value);
    }

    /// A copy of the current distribution.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().clone()
    }

    /// Folds another histogram in (shard merge).
    pub fn merge(&self, other: &Histogram) {
        self.0.lock().merge(other);
    }
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, HistogramHandle>,
}

/// A namespace of named instruments.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Instruments>,
}

/// Point-in-time copy of every instrument, ready to serialise.
pub struct RegistrySnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Histogram name → distribution copy.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// A fresh, private registry (tests; embedded use).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry the scraper samples.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner.lock().counters.entry(name).or_default().clone()
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.inner.lock().gauges.entry(name).or_default().clone()
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &'static str) -> HistogramHandle {
        self.inner.lock().histograms.entry(name).or_default().clone()
    }

    /// Copies every instrument's current state.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock();
        RegistrySnapshot {
            counters: inner.counters.iter().map(|(k, v)| (*k, v.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (*k, v.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (*k, v.snapshot())).collect(),
        }
    }
}

impl RegistrySnapshot {
    /// One JSON object with `counters` / `gauges` / `histograms`
    /// sub-objects; key order is deterministic (BTreeMap).  `extra` is
    /// spliced in verbatim as leading members (e.g. a timestamp) — pass
    /// `""` for none.
    pub fn to_json(&self, extra: &str) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        if !extra.is_empty() {
            s.push_str(extra);
            s.push(',');
        }
        s.push_str("\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v}"));
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v}"));
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{}", h.to_json()));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let reg = Registry::new();
        let c1 = reg.counter("requests");
        let c2 = reg.counter("requests");
        c1.add(3);
        c2.inc();
        assert_eq!(reg.counter("requests").get(), 4);

        let g = reg.gauge("depth");
        g.set(-7);
        assert_eq!(reg.gauge("depth").get(), -7);

        let h = reg.histogram("latency");
        h.record(100);
        reg.histogram("latency").record(300);
        assert_eq!(reg.histogram("latency").snapshot().count(), 2);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_ordered() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").add(2);
        reg.gauge("mid").set(5);
        reg.histogram("lat").record(42);
        let j1 = reg.snapshot().to_json("\"t\":1");
        let j2 = reg.snapshot().to_json("\"t\":1");
        assert_eq!(j1, j2);
        // BTreeMap ordering: alpha before zeta.
        assert!(j1.find("\"alpha\":2").unwrap() < j1.find("\"zeta\":1").unwrap());
        assert!(j1.starts_with("{\"t\":1,"));
        assert!(j1.contains("\"lat\":{\"count\":1"));
    }

    #[test]
    fn global_registry_is_shared() {
        let a = Registry::global().counter("obs_registry_test_counter");
        a.add(5);
        assert!(Registry::global().counter("obs_registry_test_counter").get() >= 5);
    }
}
