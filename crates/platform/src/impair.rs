//! Deterministic link impairment: a seeded netem-style shim for the
//! control-plane socket path.
//!
//! The platform's earlier fault layer (`FaultPlan`) is *cooperative* — a
//! well-behaved agent misbehaves on script.  This module injects the
//! faults the endpoints never agreed to: loss, duplication, reordering,
//! delay/jitter, bandwidth caps, and timed partitions, applied to the raw
//! byte stream between `ControlConn`/`ReactorConn` and the socket with no
//! cooperation from either side.
//!
//! ## Model
//!
//! The shim sits *above* TCP, so it must preserve the byte stream exactly
//! — losing or reordering actual bytes would desynchronise the CRC
//! framing forever, which is not what packet-level impairment does to a
//! TCP connection.  Real netem loss/reordering under TCP manifests to the
//! application as *timing*: retransmission stalls, head-of-line blocking,
//! bursty in-order delivery.  [`ImpairedLink`] therefore chops the stream
//! into MTU-sized packets and schedules each packet's *delivery time*:
//!
//! * **delay/jitter** — every packet waits `delay + U[0, jitter]` ms;
//! * **drop** — a dropped packet is "retransmitted": it (and everything
//!   behind it, by in-order delivery) is held for an RTO-shaped penalty;
//! * **duplicate** — the spurious copy consumes bandwidth: transmission
//!   time doubles under the rate cap;
//! * **reorder** — the packet is held an extra jitter-scaled interval;
//!   head-of-line blocking turns that into a stall-then-burst;
//! * **bandwidth cap** — packets serialise over the link at
//!   `rate_bytes_per_sec`, back-to-back transmissions queueing behind a
//!   `busy_until` horizon;
//! * **partition** — delivery scheduled inside a `[start, end)` window is
//!   pushed to the window's end (a timed blackout).
//!
//! Delivery is clamped monotonic (`max(prev_due, computed)`), so the byte
//! stream arrives intact and in order — only *when* is adversarial.
//!
//! ## Determinism
//!
//! All randomness comes from one `xoshiro256**` stream seeded with
//! `stream_seed(plan.seed, stream)`.  The schedule of due-times is a pure
//! function of `(plan, stream, admit sequence)`: the same seed replayed
//! against the same admitted bytes at the same virtual clock yields the
//! same byte timeline (pinned by `same_seed_same_timeline` below).  The
//! engine never reads a wall clock — callers pass `now_ms`, so tests
//! drive a synthetic clock while the transport passes elapsed real time.

use std::collections::VecDeque;

use netsim::rng::stream_seed;
use netsim::Rng;

/// Path-MTU-ish packetisation quantum for the byte stream.
pub const IMPAIR_MTU: usize = 1448;

/// Ceiling on consecutive simulated retransmissions of one packet.
const MAX_RETRANSMITS: u32 = 4;

/// A timed blackout window, in milliseconds of link lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// First millisecond of the blackout.
    pub start_ms: u64,
    /// First millisecond *after* the blackout.
    pub end_ms: u64,
}

impl Partition {
    fn contains(&self, t: u64) -> bool {
        t >= self.start_ms && t < self.end_ms
    }
}

/// A replayable impairment schedule for one class of links.
///
/// The zero plan (loss/dup/reorder 0‰, no delay, no cap, no partitions)
/// is a transparent wire; [`ImpairPlan::is_transparent`] lets transports
/// skip the shim entirely in that case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImpairPlan {
    /// Master seed; each link derives its stream via `stream_seed`.
    pub seed: u64,
    /// Per-packet loss probability, in permille (1000 = drop everything).
    pub drop_permille: u32,
    /// Per-packet duplication probability, in permille.
    pub dup_permille: u32,
    /// Per-packet reorder probability, in permille.
    pub reorder_permille: u32,
    /// Base one-way delay, milliseconds.
    pub delay_ms: u64,
    /// Additive uniform jitter bound, milliseconds.
    pub jitter_ms: u64,
    /// Link bandwidth cap in bytes/second (`0` = unlimited).
    pub rate_bytes_per_sec: u64,
    /// Timed blackouts (link-lifetime milliseconds).
    pub partitions: Vec<Partition>,
}

impl ImpairPlan {
    /// A transparent plan (useful as a base for struct-update syntax).
    pub fn clean(seed: u64) -> Self {
        ImpairPlan {
            seed,
            drop_permille: 0,
            dup_permille: 0,
            reorder_permille: 0,
            delay_ms: 0,
            jitter_ms: 0,
            rate_bytes_per_sec: 0,
            partitions: Vec::new(),
        }
    }

    /// True when the plan cannot affect the byte timeline at all.
    pub fn is_transparent(&self) -> bool {
        self.drop_permille == 0
            && self.dup_permille == 0
            && self.reorder_permille == 0
            && self.delay_ms == 0
            && self.jitter_ms == 0
            && self.rate_bytes_per_sec == 0
            && self.partitions.is_empty()
    }
}

/// Counters describing what a link actually did (surfaced in
/// `PlatformMetrics` / BENCH output so injected impairment is never
/// silent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImpairStats {
    /// Packets scheduled.
    pub packets: u64,
    /// Simulated drop-then-retransmit events.
    pub dropped: u64,
    /// Packets whose spurious duplicate consumed bandwidth.
    pub duplicated: u64,
    /// Packets held by a reorder penalty.
    pub reordered: u64,
    /// Packets pushed out of a partition window.
    pub partition_hits: u64,
}

struct Packet {
    due_ms: u64,
    bytes: Vec<u8>,
}

/// One direction of one impaired connection.
///
/// `admit(now, bytes)` schedules bytes; `due(now, out)` releases every
/// byte whose delivery time has passed, in order.  `next_due()` tells the
/// caller when to poll again.
pub struct ImpairedLink {
    rng: Rng,
    plan: ImpairPlan,
    /// The link is busy transmitting until this instant (rate cap).
    busy_until_ms: u64,
    /// In-order clamp: no packet is delivered before its predecessor.
    last_due_ms: u64,
    queue: VecDeque<Packet>,
    pending_bytes: usize,
    stats: ImpairStats,
}

impl ImpairedLink {
    /// Builds the link for stream `stream` of `plan` (callers pick
    /// streams so the two directions of one connection, and different
    /// connections, draw independent jitter).
    pub fn new(plan: &ImpairPlan, stream: u64) -> Self {
        let mut plan = plan.clone();
        plan.partitions.sort_by_key(|p| p.start_ms);
        ImpairedLink {
            rng: Rng::seed_from(stream_seed(plan.seed, stream)),
            plan,
            busy_until_ms: 0,
            last_due_ms: 0,
            queue: VecDeque::new(),
            pending_bytes: 0,
            stats: ImpairStats::default(),
        }
    }

    /// Milliseconds to transmit `len` bytes under the rate cap.
    fn tx_ms(&self, len: usize) -> u64 {
        if self.plan.rate_bytes_per_sec == 0 {
            return 0;
        }
        ((len as u64) * 1000).div_ceil(self.plan.rate_bytes_per_sec)
    }

    fn chance(&mut self, permille: u32) -> bool {
        // Always draw, so the stream position is a pure function of the
        // packet count — keeps sibling plans comparable under one seed.
        let roll = self.rng.below(1000);
        permille > 0 && roll < u64::from(permille)
    }

    /// Schedules `bytes` (sent at virtual time `now_ms`) for delivery.
    pub fn admit(&mut self, now_ms: u64, bytes: &[u8]) {
        for chunk in bytes.chunks(IMPAIR_MTU) {
            self.stats.packets += 1;
            // Serialise onto the link behind whatever is still transmitting.
            let start = now_ms.max(self.busy_until_ms);
            let mut tx = self.tx_ms(chunk.len());
            if self.chance(self.plan.dup_permille) {
                self.stats.duplicated += 1;
                tx *= 2; // the spurious copy occupies the wire too
            }
            self.busy_until_ms = start + tx;
            let jitter =
                if self.plan.jitter_ms > 0 { self.rng.below(self.plan.jitter_ms + 1) } else { 0 };
            let mut arrival = self.busy_until_ms + self.plan.delay_ms + jitter;
            // Loss under TCP = retransmission stalls, geometric with a cap.
            let mut retransmits = 0;
            while retransmits < MAX_RETRANSMITS && self.chance(self.plan.drop_permille) {
                retransmits += 1;
                self.stats.dropped += 1;
                arrival += (self.plan.delay_ms * 2 + 200).max(200);
            }
            if self.chance(self.plan.reorder_permille) {
                self.stats.reordered += 1;
                arrival += 1 + self.rng.below(2 * self.plan.jitter_ms + 10);
            }
            // A delivery scheduled inside a blackout waits the blackout out.
            for p in &self.plan.partitions {
                if p.contains(arrival) {
                    arrival = p.end_ms;
                    self.stats.partition_hits += 1;
                }
            }
            let due = arrival.max(self.last_due_ms);
            self.last_due_ms = due;
            self.pending_bytes += chunk.len();
            self.queue.push_back(Packet { due_ms: due, bytes: chunk.to_vec() });
        }
    }

    /// Appends every byte due at or before `now_ms` to `out`; returns the
    /// number of bytes released.
    pub fn due(&mut self, now_ms: u64, out: &mut Vec<u8>) -> usize {
        let mut released = 0;
        while let Some(front) = self.queue.front() {
            if front.due_ms > now_ms {
                break;
            }
            let pkt = self.queue.pop_front().expect("front just checked");
            released += pkt.bytes.len();
            out.extend_from_slice(&pkt.bytes);
        }
        self.pending_bytes -= released;
        released
    }

    /// Delivery time of the oldest undelivered packet.
    pub fn next_due(&self) -> Option<u64> {
        self.queue.front().map(|p| p.due_ms)
    }

    /// Bytes admitted but not yet released.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// What the link has done so far.
    pub fn stats(&self) -> ImpairStats {
        self.stats
    }
}

impl std::fmt::Debug for ImpairedLink {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("ImpairedLink")
            .field("pending_bytes", &self.pending_bytes)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_plan() -> ImpairPlan {
        ImpairPlan {
            drop_permille: 100,
            dup_permille: 50,
            reorder_permille: 80,
            delay_ms: 20,
            jitter_ms: 10,
            rate_bytes_per_sec: 512 * 1024,
            partitions: vec![Partition { start_ms: 400, end_ms: 600 }],
            ..ImpairPlan::clean(0xEDED)
        }
    }

    /// Replays a fixed admit schedule and returns the (due, len) timeline.
    fn timeline(plan: &ImpairPlan, stream: u64) -> Vec<(u64, usize)> {
        let mut link = ImpairedLink::new(plan, stream);
        for step in 0..40u64 {
            let payload = vec![step as u8; 700 + (step as usize * 97) % 2000];
            link.admit(step * 17, &payload);
        }
        let mut out = Vec::new();
        let mut points = Vec::new();
        while link.pending_bytes() > 0 {
            let t = link.next_due().expect("pending implies a due time");
            let before = out.len();
            link.due(t, &mut out);
            points.push((t, out.len() - before));
        }
        points
    }

    #[test]
    fn same_seed_same_timeline() {
        let plan = lossy_plan();
        assert_eq!(timeline(&plan, 7), timeline(&plan, 7), "replay must be bit-identical");
    }

    #[test]
    fn different_seed_diverges() {
        let a = lossy_plan();
        let mut b = lossy_plan();
        b.seed ^= 1;
        assert_ne!(timeline(&a, 7), timeline(&b, 7), "independent seeds, identical timelines");
        assert_ne!(timeline(&a, 7), timeline(&a, 8), "independent streams, identical timelines");
    }

    #[test]
    fn stream_is_preserved_in_order() {
        let plan = lossy_plan();
        let mut link = ImpairedLink::new(&plan, 1);
        let mut sent = Vec::new();
        for step in 0..50u64 {
            let payload: Vec<u8> =
                (0..1500).map(|i| (step as u8).wrapping_mul(31).wrapping_add(i as u8)).collect();
            sent.extend_from_slice(&payload);
            link.admit(step * 5, &payload);
        }
        let mut got = Vec::new();
        link.due(u64::MAX, &mut got);
        assert_eq!(got, sent, "impairment must never lose, duplicate, or reorder bytes");
        assert_eq!(link.pending_bytes(), 0);
        let s = link.stats();
        assert!(s.dropped > 0 && s.duplicated > 0 && s.reordered > 0, "plan too quiet: {s:?}");
    }

    #[test]
    fn due_times_are_monotonic() {
        let points = timeline(&lossy_plan(), 3);
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0, "delivery went back in time: {points:?}");
        }
    }

    #[test]
    fn partition_blacks_out_the_window() {
        let plan = ImpairPlan {
            partitions: vec![Partition { start_ms: 100, end_ms: 500 }],
            ..ImpairPlan::clean(9)
        };
        let mut link = ImpairedLink::new(&plan, 0);
        link.admit(150, b"hello");
        assert_eq!(link.next_due(), Some(500), "delivery inside the blackout waits it out");
        let mut out = Vec::new();
        assert_eq!(link.due(499, &mut out), 0);
        assert_eq!(link.due(500, &mut out), 5);
        assert_eq!(link.stats().partition_hits, 1);
    }

    #[test]
    fn rate_cap_spaces_delivery() {
        let plan = ImpairPlan { rate_bytes_per_sec: 100_000, ..ImpairPlan::clean(4) };
        let mut link = ImpairedLink::new(&plan, 0);
        link.admit(0, &vec![0u8; 100_000]); // one second of wire time
        let mut out = Vec::new();
        link.due(500, &mut out);
        assert!(
            out.len() < 60_000,
            "a 100 KB burst through a 100 KB/s link must not half-arrive early ({} B at 500 ms)",
            out.len()
        );
        link.due(1_100, &mut out);
        assert_eq!(out.len(), 100_000, "everything lands once the wire has drained");
    }

    #[test]
    fn delay_shifts_everything() {
        let plan = ImpairPlan { delay_ms: 80, ..ImpairPlan::clean(11) };
        let mut link = ImpairedLink::new(&plan, 0);
        link.admit(10, b"x");
        assert_eq!(link.next_due(), Some(90));
    }

    #[test]
    fn transparent_plan_is_detected() {
        assert!(ImpairPlan::clean(1).is_transparent());
        assert!(!lossy_plan().is_transparent());
        let mut link = ImpairedLink::new(&ImpairPlan::clean(1), 0);
        link.admit(5, b"abc");
        assert_eq!(link.next_due(), Some(5), "clean plan delivers immediately");
    }
}
