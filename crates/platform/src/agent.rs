//! The supervised honeypot agent.
//!
//! An agent is what the paper calls "a honeypot": a process launched by the
//! manager that logs into an eDonkey server, advertises files, logs every
//! query, and periodically ships its log home (§III-A).  Here the process
//! is a thread wrapping [`edonkey_net::HoneypotHost`]; the control side
//! speaks the framed protocol of [`crate::messages`] to the manager
//! daemon:
//!
//! * register (with incarnation and resume flag), receive the next upload
//!   sequence number and the full honeypot configuration;
//! * heartbeat on a fixed period, measuring RTT from the acks;
//! * collect the honeypot log on a fixed period and upload it as a
//!   sequenced chunk, stop-and-wait: at most one chunk is in flight, and
//!   it is retained and re-sent until the daemon acknowledges it —
//!   across corrupt-frame retries, connection loss and reconnects;
//! * obey `Relaunch` (restart the honeypot in place) and `Shutdown`
//!   (flush, say goodbye, exit).
//!
//! Every chunk is recorded in the shared [`ChunkJournal`] *before* it
//! touches the wire, so tests can replay exactly what was sent through the
//! in-process merge pipeline and prove the transport added or lost
//! nothing.
//!
//! With a spool directory the agent is additionally **crash-safe**: every
//! chunk is appended to a durable [`Spool`] before its first send and
//! trimmed only on ack, so a killed incarnation's unacknowledged uploads
//! are replayed by the next one — ahead of any fresh collection, in
//! sequence order — instead of being lost with the process.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use edonkey_net::HoneypotHost;
use edonkey_proto::control::{encode_control_frame, opcodes};
use honeypot::{Honeypot, HoneypotConfig, IpHasher};
use netsim::rng::stream_seed;
use netsim::Rng;

use crate::conn::{ConnError, ConnEvent, ControlConn};
use crate::fault::{FaultPlan, FaultState};
use crate::journal::ChunkJournal;
use crate::messages::{AgentConfig, ControlMessage};
use crate::retry::{Backoff, RetryPolicy};
use crate::spool::{Spool, SpoolRecord};

/// How an agent's life ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AgentExit {
    /// Orderly: the daemon sent `Shutdown`, the final chunk was flushed
    /// and a `Goodbye` sent.
    Shutdown,
    /// A scripted `kill_after_chunk` fault fired: the agent died without a
    /// goodbye, mid-conversation.
    Killed,
    /// The daemon became unreachable and the agent stopped retrying.
    GaveUp,
}

const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(3);
const RECONNECT_PAUSE: Duration = Duration::from_millis(25);
/// Failed connect attempts before the agent gives up (the schedule between
/// them comes from [`RetryPolicy::reconnect`]).
const MAX_CONNECT_ATTEMPTS: u32 = 20;
/// Master seed of the agent-side retry jitter streams.
const RETRY_SEED: u64 = 0xA6E2_7E72;

/// Everything that must survive reconnects and in-place relaunches.
struct AgentState {
    agent: u32,
    incarnation: u32,
    fault: FaultPlan,
    fstate: FaultState,
    journal: ChunkJournal,
    host: Option<HoneypotHost>,
    /// The in-flight upload: kept until acked, re-sent on retry/reconnect.
    pending: Option<Pending>,
    /// Durable write-ahead spool (None = PR 3 in-memory behaviour).
    spool: Option<Spool>,
    /// Spooled records awaiting re-delivery, rebuilt from the spool at
    /// every session start; drained stop-and-wait before fresh collects.
    backlog: VecDeque<SpoolRecord>,
    hb_seq: u64,
    last_rtt_micros: u64,
    started: Instant,
    /// Host status reports already forwarded to the daemon.
    forwarded_status: usize,
}

struct Pending {
    seq: u64,
    /// The clean encoded frame (faults doctor a copy, never this).
    frame: Vec<u8>,
    /// Re-send the frame at this instant if still unacked.
    resend_at: Instant,
    /// Backoff schedule driving `resend_at`.
    backoff: Backoff,
}

impl Pending {
    fn new(agent: u32, seq: u64, frame: Vec<u8>, now: Instant) -> Self {
        let mut backoff = Backoff::new(RetryPolicy::resend(), RETRY_SEED ^ u64::from(agent), seq);
        let delay = backoff.next_delay().expect("resend schedule is unbounded");
        Pending { seq, frame, resend_at: now + delay, backoff }
    }

    /// Re-arms the resend timer after a (re)send.
    fn rearm(&mut self, now: Instant) {
        let delay = self.backoff.next_delay().expect("resend schedule is unbounded");
        self.resend_at = now + delay;
    }
}

enum SessionEnd {
    Shutdown,
    Killed,
    Relaunch,
    ConnLost,
}

impl AgentState {
    fn micros_now(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn teardown_host(&mut self) {
        if let Some(host) = self.host.take() {
            // The final collect is discarded: a killed or relaunched
            // honeypot loses whatever it had not yet shipped, exactly like
            // a crashed process.
            let _ = host.stop();
        }
        self.forwarded_status = 0;
    }
}

/// Runs one agent to completion (blocking).  `first_incarnation` is 0 for
/// an initial launch; the daemon's supervisor passes higher numbers when
/// respawning a dead agent.  With `spool_dir`, unacknowledged chunks are
/// spooled durably and a restarted incarnation replays them; the directory
/// must be stable across this agent's incarnations and unique to it.
pub fn run_agent(
    daemon_addr: SocketAddr,
    agent: u32,
    first_incarnation: u32,
    fault: FaultPlan,
    journal: ChunkJournal,
    spool_dir: Option<PathBuf>,
) -> AgentExit {
    let spool = spool_dir.and_then(|dir| match Spool::open(dir) {
        Ok(s) => Some(s),
        Err(e) => {
            // Degraded but alive: without the spool the agent still offers
            // PR 3 semantics (resume from the daemon's acked sequence).
            eprintln!("[agent {agent}] spool unavailable, running in-memory: {e}");
            None
        }
    });
    let mut st = AgentState {
        agent,
        incarnation: first_incarnation,
        fault,
        fstate: FaultState::default(),
        journal,
        host: None,
        pending: None,
        spool,
        backlog: VecDeque::new(),
        hb_seq: 0,
        last_rtt_micros: 0,
        started: Instant::now(),
        forwarded_status: 0,
    };
    let mut reconnect = Backoff::new(
        RetryPolicy::reconnect(MAX_CONNECT_ATTEMPTS),
        RETRY_SEED ^ u64::from(agent),
        u64::from(first_incarnation),
    );
    loop {
        let conn = match ControlConn::connect(daemon_addr) {
            Ok(c) => c,
            Err(_) => match reconnect.next_delay() {
                Some(delay) => {
                    std::thread::sleep(delay);
                    continue;
                }
                None => {
                    st.teardown_host();
                    return AgentExit::GaveUp;
                }
            },
        };
        reconnect.reset();
        match session(conn, &mut st) {
            Ok(SessionEnd::Shutdown) => {
                st.teardown_host();
                return AgentExit::Shutdown;
            }
            Ok(SessionEnd::Killed) => {
                st.teardown_host();
                return AgentExit::Killed;
            }
            Ok(SessionEnd::Relaunch) => {
                // Restart the honeypot in place: new incarnation, fresh
                // state machine, but the same control identity.
                st.teardown_host();
                st.pending = None;
                st.incarnation += 1;
                continue;
            }
            Ok(SessionEnd::ConnLost) | Err(_) => {
                // Keep host and pending chunk; reconnect and resume.
                std::thread::sleep(RECONNECT_PAUSE);
                continue;
            }
        }
    }
}

fn session(mut conn: ControlConn, st: &mut AgentState) -> Result<SessionEnd, ConnError> {
    conn.set_read_timeout(Duration::from_millis(5)).ok();
    let resume = st.host.is_some() || st.pending.is_some() || st.incarnation > 0;
    conn.send(&ControlMessage::Register { agent: st.agent, incarnation: st.incarnation, resume })
        .map_err(ConnError::Io)?;

    // Handshake: RegisterAck (our resume point) then ConfigPush.
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    let mut next_seq: Option<u64> = None;
    let mut config: Option<AgentConfig> = None;
    while next_seq.is_none() || config.is_none() {
        if Instant::now() >= deadline {
            return Ok(SessionEnd::ConnLost);
        }
        for ev in conn.poll()? {
            match ev {
                ConnEvent::Msg(ControlMessage::RegisterAck { agent, next_seq: ns })
                    if agent == st.agent =>
                {
                    next_seq = Some(ns)
                }
                ConnEvent::Msg(ControlMessage::ConfigPush(cfg)) => config = Some(cfg),
                ConnEvent::Msg(ControlMessage::Shutdown) => {
                    let _ = conn.send(&ControlMessage::Goodbye {
                        agent: st.agent,
                        final_seq: next_seq.unwrap_or(0),
                    });
                    return Ok(SessionEnd::Shutdown);
                }
                _ => {}
            }
        }
    }
    let (mut seq, cfg) = (next_seq.unwrap(), config.unwrap());

    if st.host.is_none() {
        match start_host(&cfg, st.incarnation) {
            Some(host) => st.host = Some(host),
            None => {
                // Server unreachable; back off and let the daemon's
                // heartbeat deadline decide our fate.
                std::thread::sleep(Duration::from_millis(50));
                return Ok(SessionEnd::ConnLost);
            }
        }
        st.forwarded_status = 0;
    }
    let peer_port = st.host.as_ref().unwrap().peer_addr().port();
    conn.send(&ControlMessage::Ready { agent: st.agent, peer_port }).map_err(ConnError::Io)?;

    // Reconcile the in-flight state with the daemon's resume point.
    if let Some(spool) = &mut st.spool {
        // Durable path: the spool is the source of truth.  Everything the
        // daemon acknowledged is trimmed; everything else becomes the
        // backlog, re-sent in order ahead of fresh collections.  The
        // journal gets the replayed copies too, so a true process restart
        // still satisfies the replay proof.
        if seq > 0 {
            let _ = spool.trim_acked(seq - 1);
        }
        st.pending = None;
        st.backlog = spool.unacked().iter().filter(|r| r.seq >= seq).cloned().collect();
        for rec in &st.backlog {
            if let Ok(ControlMessage::LogUpload { agent, seq, chunk }) =
                ControlMessage::decode(opcodes::LOG_CHUNK, &rec.payload)
            {
                st.journal.record(agent, seq, chunk);
            }
        }
    } else if let Some(p) = &st.pending {
        if p.seq < seq {
            // Merged before the connection died; the ack was lost.
            st.pending = None;
        }
    }
    if let Some(p) = &mut st.pending {
        conn.send_raw(&p.frame).map_err(ConnError::Io)?;
        p.rearm(Instant::now());
    }
    send_next_backlog(&mut conn, st)?;

    let mut hb_due = Instant::now();
    let mut collect_due = Instant::now() + Duration::from_millis(cfg.collect_ms);
    let mut shutting_down = false;

    loop {
        let events = match conn.poll() {
            Ok(ev) => ev,
            Err(ConnError::Closed) | Err(ConnError::Io(_)) => return Ok(SessionEnd::ConnLost),
            Err(e) => return Err(e),
        };
        for ev in events {
            match ev {
                ConnEvent::Msg(ControlMessage::HeartbeatAck { echo_micros, .. }) => {
                    st.last_rtt_micros = st.micros_now().saturating_sub(echo_micros).max(1);
                }
                ConnEvent::Msg(ControlMessage::ChunkAck { seq: acked }) => {
                    if st.pending.as_ref().map(|p| p.seq) == Some(acked) {
                        st.pending = None;
                    }
                    if acked >= seq {
                        seq = acked + 1;
                    }
                    if let Some(spool) = &mut st.spool {
                        // Acked means durable on the manager side; only
                        // now may the local copy go.
                        let _ = spool.trim_acked(acked);
                    }
                }
                ConnEvent::Msg(ControlMessage::ChunkRetry { seq: want }) => {
                    if let Some(p) = &mut st.pending {
                        if p.seq == want {
                            conn.send_raw(&p.frame).map_err(ConnError::Io)?;
                            p.rearm(Instant::now());
                        }
                    }
                }
                ConnEvent::Msg(ControlMessage::Relaunch) => return Ok(SessionEnd::Relaunch),
                ConnEvent::Msg(ControlMessage::Shutdown) => shutting_down = true,
                _ => {}
            }
        }

        forward_status(st, &mut conn)?;

        let now = Instant::now();

        if let Some(p) = &mut st.pending {
            if now >= p.resend_at {
                conn.send_raw(&p.frame).map_err(ConnError::Io)?;
                p.rearm(now);
            }
        }

        // Replayed spool records go out before anything fresh is cut.
        send_next_backlog(&mut conn, st)?;

        if st.pending.is_none() && st.backlog.is_empty() && (shutting_down || now >= collect_due) {
            collect_due = now + Duration::from_millis(cfg.collect_ms.max(1));
            let chunk = st.host.as_ref().unwrap().collect_log();
            if !chunk.records.is_empty() || !chunk.shared_lists.is_empty() {
                match upload_chunk(&mut conn, st, seq, chunk, now)? {
                    Some(end) => return Ok(end),
                    None => {}
                }
            } else if shutting_down {
                conn.send(&ControlMessage::Goodbye { agent: st.agent, final_seq: seq })
                    .map_err(ConnError::Io)?;
                return Ok(SessionEnd::Shutdown);
            }
        }

        if !shutting_down && now >= hb_due {
            hb_due = now + Duration::from_millis(cfg.heartbeat_ms.max(1));
            if !st.fault.should_drop_heartbeat(&mut st.fstate) {
                if st.fault.delay_heartbeat_ms > 0 {
                    std::thread::sleep(Duration::from_millis(st.fault.delay_heartbeat_ms));
                }
                st.hb_seq += 1;
                conn.send(&ControlMessage::Heartbeat {
                    agent: st.agent,
                    seq: st.hb_seq,
                    sent_micros: st.micros_now(),
                    rtt_micros: st.last_rtt_micros,
                })
                .map_err(ConnError::Io)?;
            }
        }
    }
}

/// Journals and sends one chunk, applying scripted upload faults.  Returns
/// a session end when a fault terminates the session.
fn upload_chunk(
    conn: &mut ControlConn,
    st: &mut AgentState,
    seq: u64,
    chunk: honeypot::LogChunk,
    now: Instant,
) -> Result<Option<SessionEnd>, ConnError> {
    // The journal copy is taken before any fault can touch the bytes: it
    // is the ground truth of what this agent tried to report.
    st.journal.record(st.agent, seq, chunk.clone());
    let msg = ControlMessage::LogUpload { agent: st.agent, seq, chunk };
    if let Some(spool) = &mut st.spool {
        // Durable before the first send: ack-or-replay from here on.
        if let Err(e) = spool.append(seq, msg.encode_payload()) {
            eprintln!("[agent {}] spool append failed for seq {seq}: {e}", st.agent);
        }
    }
    if st.fault.kill_before_chunk == Some(seq) {
        // Crash after journal+spool, before the send: the daemon never saw
        // this chunk.  Only the spool can save it now.
        return Ok(Some(SessionEnd::Killed));
    }
    let frame = msg.encode_frame();
    let kill_now = st.fault.kill_after_chunk == Some(seq);

    if st.fault.should_truncate(seq, &mut st.fstate) {
        // Half a frame, then the connection dies: the daemon's decoder
        // never completes the frame and the next session must resume.
        let _ = conn.send_raw(&frame[..frame.len() / 2]);
        st.pending = Some(Pending::new(st.agent, seq, frame, now));
        return Ok(Some(SessionEnd::ConnLost));
    }
    if st.fault.should_corrupt(seq, &mut st.fstate) {
        let mut doctored = frame.clone();
        let last = doctored.len() - 1;
        doctored[last] ^= 0xA5; // break the CRC trailer
        conn.send_raw(&doctored).map_err(ConnError::Io)?;
        st.pending = Some(Pending::new(st.agent, seq, frame, now));
        return Ok(None); // wait for the daemon's ChunkRetry
    }

    conn.send_raw(&frame).map_err(ConnError::Io)?;
    st.pending = Some(Pending::new(st.agent, seq, frame, now));
    if kill_now {
        // Crash right after the send: the daemon merges the chunk, but the
        // ack is never read.  The next incarnation must resume past it.
        return Ok(Some(SessionEnd::Killed));
    }
    Ok(None)
}

/// Promotes the next spooled backlog record to the in-flight slot, if the
/// slot is free.  Backlog chunks were journaled and spooled by an earlier
/// incarnation; they go back out verbatim, stop-and-wait, in seq order.
fn send_next_backlog(conn: &mut ControlConn, st: &mut AgentState) -> Result<(), ConnError> {
    if st.pending.is_some() {
        return Ok(());
    }
    let Some(rec) = st.backlog.pop_front() else { return Ok(()) };
    let frame = encode_control_frame(opcodes::LOG_CHUNK, &rec.payload);
    conn.send_raw(&frame).map_err(ConnError::Io)?;
    st.pending = Some(Pending::new(st.agent, rec.seq, frame, Instant::now()));
    Ok(())
}

fn forward_status(st: &mut AgentState, conn: &mut ControlConn) -> Result<(), ConnError> {
    let Some(host) = &st.host else { return Ok(()) };
    let reports = host.status_reports();
    while st.forwarded_status < reports.len() {
        let report = reports[st.forwarded_status];
        conn.send(&ControlMessage::Status(report)).map_err(ConnError::Io)?;
        st.forwarded_status += 1;
    }
    Ok(())
}

fn start_host(cfg: &AgentConfig, incarnation: u32) -> Option<HoneypotHost> {
    let server_addr = SocketAddr::from((cfg.server.ip.octets(), cfg.server.port));
    let hp_config = HoneypotConfig {
        id: cfg.id,
        content: cfg.content,
        files: cfg.files.clone(),
        ask_shared_files: true,
        materialize_content: true,
        port: 4662,
        client_name: cfg.client_name.clone(),
    };
    // Each incarnation draws a distinct RNG stream: a relaunched honeypot
    // is a new process, not a replay of the old one.
    let rng = Rng::seed_from(stream_seed(cfg.rng_seed, incarnation as u64));
    let honeypot =
        Honeypot::new(hp_config, cfg.server.clone(), IpHasher::from_seed(cfg.ip_salt), rng);
    HoneypotHost::start(honeypot, server_addr).ok()
}
