//! The supervised honeypot agent.
//!
//! An agent is what the paper calls "a honeypot": a process launched by the
//! manager that logs into an eDonkey server, advertises files, logs every
//! query, and periodically ships its log home (§III-A).  Here the process
//! is a thread wrapping [`edonkey_net::HoneypotHost`]; the control side
//! speaks the framed protocol of [`crate::messages`] to the manager
//! daemon:
//!
//! * register (with incarnation and resume flag), receive the resume
//!   sequence, the granted upload window and the full honeypot
//!   configuration;
//! * heartbeat on a fixed period, measuring RTT from the acks;
//! * collect the honeypot log on a fixed period and upload it as
//!   sequenced chunks, **windowed and pipelined**: up to the granted
//!   window of chunks is kept in flight past the cumulative-ack frontier,
//!   every in-flight frame is retained and re-sent (go-back-N on
//!   `ChunkRetry`, whole-window on the resend timer) until a cumulative
//!   `ChunkAck { next_seq }` covers it — across corrupt-frame retries,
//!   connection loss and reconnects;
//! * obey `Relaunch` (restart the honeypot in place) and `Shutdown`
//!   (flush, say goodbye, exit).
//!
//! Every chunk is recorded in the shared [`ChunkJournal`] *before* it
//! touches the wire, so tests can replay exactly what was sent through the
//! in-process merge pipeline and prove the transport added or lost
//! nothing.
//!
//! With a spool directory the agent is additionally **crash-safe**: every
//! chunk is appended to a durable [`Spool`] before its first send and
//! trimmed only up to the cumulative ack frontier, so a killed
//! incarnation's unacknowledged uploads are replayed by the next one —
//! ahead of any fresh collection, in sequence order — instead of being
//! lost with the process.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use edonkey_net::HoneypotHost;
use edonkey_proto::control::{encode_control_frame, opcodes};
use honeypot::{Honeypot, HoneypotConfig, IpHasher};
use netsim::rng::stream_seed;
use netsim::Rng;

use crate::conn::{ConnError, ConnEvent, ControlConn};
use crate::diskfault::DiskFaults;
use crate::fault::{FaultPlan, FaultState};
use crate::impair::ImpairPlan;
use crate::journal::ChunkJournal;
use crate::messages::{heartbeat_flags, AgentConfig, ControlMessage};
use crate::obs::{self, HistogramHandle, Registry};
use crate::retry::{Backoff, RetryPolicy};
use crate::spool::{Spool, SpoolRecord};
use netsim::obs_event;

/// How an agent's life ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AgentExit {
    /// Orderly: the daemon sent `Shutdown`, the final chunk was flushed
    /// and a `Goodbye` sent.
    Shutdown,
    /// A scripted `kill_after_chunk` fault fired: the agent died without a
    /// goodbye, mid-conversation.
    Killed,
    /// The daemon became unreachable and the agent stopped retrying.
    GaveUp,
}

const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(3);
const RECONNECT_PAUSE: Duration = Duration::from_millis(25);
/// Half-open detection: with the daemon acking every heartbeat, a live
/// link carries inbound traffic at heartbeat cadence; this many heartbeat
/// periods of silence (floored at one second) means the connection is
/// dead even if the kernel never says so, and the agent reconnects.
const DEAD_AFTER_HEARTBEATS: u64 = 8;
/// Failed connect attempts before the agent gives up (the schedule between
/// them comes from [`RetryPolicy::reconnect`]).
const MAX_CONNECT_ATTEMPTS: u32 = 20;
/// Master seed of the agent-side retry jitter streams.
const RETRY_SEED: u64 = 0xA6E2_7E72;
/// A `ChunkRetry` naming the same resume point within this span is a
/// duplicate of one already answered (the daemon coalesces per merge
/// burst, but bursts repeat while resent frames are in flight).
const GOBACK_SUPPRESS: Duration = Duration::from_millis(100);

/// Everything that must survive reconnects and in-place relaunches.
struct AgentState {
    agent: u32,
    incarnation: u32,
    fault: FaultPlan,
    fstate: FaultState,
    journal: ChunkJournal,
    host: Option<HoneypotHost>,
    /// In-flight uploads past the cumulative-ack frontier, in sequence
    /// order; every frame is kept until a cumulative ack covers it.
    window: VecDeque<InFlight>,
    /// Durable write-ahead spool (None = PR 3 in-memory behaviour).
    spool: Option<Spool>,
    /// Spooled records awaiting re-delivery, rebuilt from the spool at
    /// every session start; drained into the window before fresh collects.
    backlog: VecDeque<SpoolRecord>,
    hb_seq: u64,
    last_rtt_micros: u64,
    started: Instant,
    /// Host status reports already forwarded to the daemon.
    forwarded_status: usize,
    /// The spool stopped accepting writes (full/failing disk); uploads
    /// continue in memory and heartbeats carry the degraded flag until an
    /// append succeeds again.
    spool_degraded: bool,
    /// Chunk round-trip distribution (first send → retiring cumulative
    /// ack, retransmissions included) in the live registry.
    chunk_rtt: HistogramHandle,
}

/// One unacknowledged upload.
struct InFlight {
    seq: u64,
    /// The clean encoded frame (faults doctor a copy, never this).
    frame: Vec<u8>,
    /// First time this sequence went to the wire; the chunk-RTT clock.
    sent_at: Instant,
}

enum SessionEnd {
    Shutdown,
    Killed,
    Relaunch,
    ConnLost,
}

impl AgentState {
    fn micros_now(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// The sequence the next fresh collection will carry: one past the
    /// window tail, or the frontier when nothing is in flight.
    fn next_send(&self, frontier: u64) -> u64 {
        self.window.back().map_or(frontier, |f| f.seq + 1).max(frontier)
    }

    fn teardown_host(&mut self) {
        if let Some(host) = self.host.take() {
            // The final collect is discarded: a killed or relaunched
            // honeypot loses whatever it had not yet shipped, exactly like
            // a crashed process.
            let _ = host.stop();
        }
        self.forwarded_status = 0;
    }
}

/// Robustness knobs for [`run_agent_with`]; `Default` reproduces the
/// plain [`run_agent`] behaviour exactly.
#[derive(Clone, Debug, Default)]
pub struct AgentOptions {
    /// Scripted crash/corruption plan (PR 3 fault model).
    pub fault: FaultPlan,
    /// Durable spool directory; must be stable across incarnations.
    pub spool_dir: Option<PathBuf>,
    /// Deterministic link impairment applied to this agent's control
    /// connections (loss, dup, reorder, delay, rate cap, partitions).
    pub impair: Option<ImpairPlan>,
    /// Injectable spool write faults (ENOSPC/EIO/short write).
    pub spool_faults: Option<DiskFaults>,
}

/// Runs one agent to completion (blocking).  `first_incarnation` is 0 for
/// an initial launch; the daemon's supervisor passes higher numbers when
/// respawning a dead agent.  With `spool_dir`, unacknowledged chunks are
/// spooled durably and a restarted incarnation replays them; the directory
/// must be stable across this agent's incarnations and unique to it.
pub fn run_agent(
    daemon_addr: SocketAddr,
    agent: u32,
    first_incarnation: u32,
    fault: FaultPlan,
    journal: ChunkJournal,
    spool_dir: Option<PathBuf>,
) -> AgentExit {
    run_agent_with(
        daemon_addr,
        agent,
        first_incarnation,
        journal,
        AgentOptions { fault, spool_dir, ..AgentOptions::default() },
    )
}

/// [`run_agent`] plus the adversarial-robustness knobs of
/// [`AgentOptions`]: impaired links and failing disks.
pub fn run_agent_with(
    daemon_addr: SocketAddr,
    agent: u32,
    first_incarnation: u32,
    journal: ChunkJournal,
    opts: AgentOptions,
) -> AgentExit {
    let AgentOptions { fault, spool_dir, impair, spool_faults } = opts;
    let spool = spool_dir.and_then(|dir| match Spool::open(dir) {
        Ok(mut s) => {
            if let Some(faults) = &spool_faults {
                s.set_faults(faults.clone());
            }
            Some(s)
        }
        Err(e) => {
            // Degraded but alive: without the spool the agent still offers
            // PR 3 semantics (resume from the daemon's acked sequence).
            obs_event!(
                obs::Level::Warn,
                "agent",
                "spool_unavailable",
                agent = agent,
                error = obs::InlineStr::new(&e.to_string())
            );
            None
        }
    });
    let mut st = AgentState {
        agent,
        incarnation: first_incarnation,
        fault,
        fstate: FaultState::default(),
        journal,
        host: None,
        window: VecDeque::new(),
        spool,
        backlog: VecDeque::new(),
        hb_seq: 0,
        last_rtt_micros: 0,
        started: Instant::now(),
        forwarded_status: 0,
        spool_degraded: false,
        chunk_rtt: Registry::global().histogram("chunk_rtt_micros"),
    };
    let mut reconnect = Backoff::new(
        RetryPolicy::reconnect(MAX_CONNECT_ATTEMPTS),
        RETRY_SEED ^ u64::from(agent),
        u64::from(first_incarnation),
    );
    loop {
        let mut conn = match ControlConn::connect(daemon_addr) {
            Ok(c) => c,
            Err(_) => match reconnect.next_delay() {
                Some(delay) => {
                    std::thread::sleep(delay);
                    continue;
                }
                None => {
                    st.teardown_host();
                    return AgentExit::GaveUp;
                }
            },
        };
        if let Some(plan) = &impair {
            conn.impair(plan, u64::from(agent));
        }
        // The backoff resets only once a handshake *completes* (inside
        // `session`): a daemon that accepts the socket but never answers
        // still exhausts the reconnect budget instead of looping forever.
        match session(conn, &mut st, &mut reconnect) {
            Ok(SessionEnd::Shutdown) => {
                st.teardown_host();
                return AgentExit::Shutdown;
            }
            Ok(SessionEnd::Killed) => {
                st.teardown_host();
                return AgentExit::Killed;
            }
            Ok(SessionEnd::Relaunch) => {
                // Restart the honeypot in place: new incarnation, fresh
                // state machine, but the same control identity.
                st.teardown_host();
                st.window.clear();
                st.incarnation += 1;
                continue;
            }
            Ok(SessionEnd::ConnLost) | Err(_) => {
                // Keep host and in-flight window; reconnect and resume.
                // The pause comes from the same budgeted backoff as a
                // refused connect, so a session that dies before its
                // handshake cannot retry forever.
                match reconnect.next_delay() {
                    Some(delay) => std::thread::sleep(delay.max(RECONNECT_PAUSE)),
                    None => {
                        st.teardown_host();
                        return AgentExit::GaveUp;
                    }
                }
                continue;
            }
        }
    }
}

fn session(
    mut conn: ControlConn,
    st: &mut AgentState,
    reconnect: &mut Backoff,
) -> Result<SessionEnd, ConnError> {
    conn.set_read_timeout(Duration::from_millis(5)).ok();
    let resume = st.host.is_some() || !st.window.is_empty() || st.incarnation > 0;
    conn.send(&ControlMessage::Register { agent: st.agent, incarnation: st.incarnation, resume })
        .map_err(ConnError::Io)?;

    // Handshake: RegisterAck (resume point + granted window), ConfigPush.
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    let mut ack: Option<(u64, u32)> = None;
    let mut config: Option<AgentConfig> = None;
    while ack.is_none() || config.is_none() {
        if Instant::now() >= deadline {
            return Ok(SessionEnd::ConnLost);
        }
        for ev in conn.poll()? {
            match ev {
                ConnEvent::Msg(ControlMessage::RegisterAck { agent, next_seq, window })
                    if agent == st.agent =>
                {
                    ack = Some((next_seq, window))
                }
                ConnEvent::Msg(ControlMessage::ConfigPush(cfg)) => config = Some(cfg),
                ConnEvent::Msg(ControlMessage::Shutdown) => {
                    let _ = conn.send(&ControlMessage::Goodbye {
                        agent: st.agent,
                        final_seq: ack.map_or(0, |(s, _)| s),
                    });
                    return Ok(SessionEnd::Shutdown);
                }
                _ => {}
            }
        }
    }
    let ((mut frontier, granted), cfg) = (ack.unwrap(), config.unwrap());
    // The handshake completed: the daemon is demonstrably alive, so the
    // reconnect budget starts over.
    reconnect.reset();
    // The granted window is a *live* grant: every `ChunkAck` re-states it,
    // and an overloaded daemon shrinks it to shed load (backpressure
    // through the existing ack path, no extra message).
    let mut granted = granted.max(1) as usize;

    if st.host.is_none() {
        match start_host(&cfg, st.incarnation) {
            Some(host) => st.host = Some(host),
            None => {
                // Server unreachable; back off and let the daemon's
                // heartbeat deadline decide our fate.
                std::thread::sleep(Duration::from_millis(50));
                return Ok(SessionEnd::ConnLost);
            }
        }
        st.forwarded_status = 0;
    }
    let peer_port = st.host.as_ref().unwrap().peer_addr().port();
    conn.send(&ControlMessage::Ready { agent: st.agent, peer_port }).map_err(ConnError::Io)?;

    // Reconcile the in-flight state with the daemon's resume point.
    if let Some(spool) = &mut st.spool {
        // Durable path: the spool is the source of truth.  Everything the
        // daemon acknowledged is trimmed; everything else becomes the
        // backlog, re-sent in order ahead of fresh collections.  The
        // journal gets the replayed copies too, so a true process restart
        // still satisfies the replay proof.
        if frontier > 0 {
            let _ = spool.trim_acked(frontier - 1);
        }
        st.window.clear();
        st.backlog = spool.unacked().iter().filter(|r| r.seq >= frontier).cloned().collect();
        for rec in &st.backlog {
            if let Ok(ControlMessage::LogUpload { agent, seq, chunk }) =
                ControlMessage::decode(opcodes::LOG_CHUNK, &rec.payload)
            {
                st.journal.record(agent, seq, chunk);
            }
        }
    } else {
        // In-memory path: drop what the frontier covers, keep the rest.
        while st.window.front().is_some_and(|f| f.seq < frontier) {
            st.window.pop_front();
        }
        // Survivors may never have arrived; re-send them in order.
        for f in &st.window {
            conn.send_raw(&f.frame).map_err(ConnError::Io)?;
        }
    }
    fill_window_from_backlog(&mut conn, st, granted)?;

    // One resend schedule guards the whole window: cumulative progress
    // resets it, silence escalates it (and re-sends everything in flight).
    let mut resend = Backoff::new(
        RetryPolicy::resend(),
        RETRY_SEED ^ u64::from(st.agent),
        u64::from(st.incarnation),
    );
    let mut resend_at: Option<Instant> = None;
    let mut last_goback: Option<(u64, Instant)> = None;

    let mut hb_due = Instant::now();
    let mut collect_due = Instant::now() + Duration::from_millis(cfg.collect_ms);
    let mut shutting_down = false;

    // Half-open detection: the daemon acks every heartbeat, so a live link
    // has inbound traffic at heartbeat cadence.  Sustained silence means
    // the connection is dead (mid-path partition, silently dropped peer)
    // even though the local socket looks healthy.
    let dead_after =
        Duration::from_millis((cfg.heartbeat_ms.saturating_mul(DEAD_AFTER_HEARTBEATS)).max(1000));
    let mut last_heard = Instant::now();

    loop {
        let events = match conn.poll() {
            Ok(ev) => ev,
            Err(ConnError::Closed) | Err(ConnError::Io(_)) => return Ok(SessionEnd::ConnLost),
            Err(e) => return Err(e),
        };
        if !events.is_empty() {
            last_heard = Instant::now();
        }
        for ev in events {
            match ev {
                ConnEvent::Msg(ControlMessage::HeartbeatAck { echo_micros, .. }) => {
                    st.last_rtt_micros = st.micros_now().saturating_sub(echo_micros).max(1);
                }
                ConnEvent::Msg(ControlMessage::ChunkAck { next_seq: acked, window }) => {
                    granted = window.max(1) as usize;
                    // Cumulative: everything below `acked` is merged and
                    // durable on the manager side; only now may the local
                    // copies go.
                    let mut progressed = false;
                    while st.window.front().is_some_and(|f| f.seq < acked) {
                        let retired = st.window.pop_front().expect("front checked");
                        st.chunk_rtt.record((retired.sent_at.elapsed().as_micros() as u64).max(1));
                        progressed = true;
                    }
                    if acked > frontier {
                        frontier = acked;
                        progressed = true;
                    }
                    if progressed {
                        if let Some(spool) = &mut st.spool {
                            if acked > 0 {
                                let _ = spool.trim_acked(acked - 1);
                            }
                        }
                        resend.reset();
                        resend_at = None;
                    }
                }
                ConnEvent::Msg(ControlMessage::ChunkRetry { seq: want }) => {
                    // Go-back-N: re-send every in-flight frame from the
                    // daemon's resume point.  Bursts can repeat the same
                    // request while the resend is in flight; answer it once.
                    let now = Instant::now();
                    let dup = last_goback.is_some_and(|(w, at)| {
                        w == want && now.duration_since(at) < GOBACK_SUPPRESS
                    });
                    if !dup {
                        last_goback = Some((want, now));
                        for f in st.window.iter().filter(|f| f.seq >= want) {
                            conn.send_raw(&f.frame).map_err(ConnError::Io)?;
                        }
                        resend_at = None;
                    }
                }
                ConnEvent::Msg(ControlMessage::Relaunch) => return Ok(SessionEnd::Relaunch),
                ConnEvent::Msg(ControlMessage::Shutdown) => shutting_down = true,
                _ => {}
            }
        }

        forward_status(st, &mut conn)?;

        let now = Instant::now();

        if !shutting_down && now.duration_since(last_heard) > dead_after {
            // Half-open: nothing heard for several heartbeat periods while
            // our own sends kept "succeeding" into the void.  Tear down and
            // reconnect through the shared budgeted backoff.
            return Ok(SessionEnd::ConnLost);
        }

        // Resend timer: arm while anything is in flight, fire by
        // re-sending the whole window (the cumulative ack makes spurious
        // re-sends harmless duplicates).
        if st.window.is_empty() {
            resend_at = None;
        } else if resend_at.is_none() {
            let delay = resend.next_delay().expect("resend schedule is unbounded");
            resend_at = Some(now + delay);
        }
        if resend_at.is_some_and(|t| now >= t) {
            for f in &st.window {
                conn.send_raw(&f.frame).map_err(ConnError::Io)?;
            }
            let delay = resend.next_delay().expect("resend schedule is unbounded");
            resend_at = Some(now + delay);
        }

        // Replayed spool records go out before anything fresh is cut.
        fill_window_from_backlog(&mut conn, st, granted)?;

        if st.backlog.is_empty()
            && st.window.len() < granted
            && (shutting_down || now >= collect_due)
        {
            collect_due = now + Duration::from_millis(cfg.collect_ms.max(1));
            let chunk = st.host.as_ref().unwrap().collect_log();
            if !chunk.records.is_empty() || !chunk.shared_lists.is_empty() {
                let seq = st.next_send(frontier);
                if let Some(end) = upload_chunk(&mut conn, st, seq, chunk)? {
                    if matches!(end, SessionEnd::Killed) {
                        // The scripted crash still owes the daemon the
                        // frame written just above; see `crash_close`.
                        conn.crash_close();
                    }
                    return Ok(end);
                }
            } else if shutting_down && st.window.is_empty() {
                conn.send(&ControlMessage::Goodbye { agent: st.agent, final_seq: frontier })
                    .map_err(ConnError::Io)?;
                return Ok(SessionEnd::Shutdown);
            }
        }

        if !shutting_down && now >= hb_due {
            hb_due = now + Duration::from_millis(cfg.heartbeat_ms.max(1));
            if !st.fault.should_drop_heartbeat(&mut st.fstate) {
                if st.fault.delay_heartbeat_ms > 0 {
                    std::thread::sleep(Duration::from_millis(st.fault.delay_heartbeat_ms));
                }
                st.hb_seq += 1;
                let flags = if st.spool_degraded { heartbeat_flags::SPOOL_DEGRADED } else { 0 };
                conn.send(&ControlMessage::Heartbeat {
                    agent: st.agent,
                    seq: st.hb_seq,
                    sent_micros: st.micros_now(),
                    rtt_micros: st.last_rtt_micros,
                    flags,
                })
                .map_err(ConnError::Io)?;
            }
        }
    }
}

/// Journals and sends one fresh chunk into the window, applying scripted
/// upload faults.  Returns a session end when a fault terminates the
/// session.
fn upload_chunk(
    conn: &mut ControlConn,
    st: &mut AgentState,
    seq: u64,
    chunk: honeypot::LogChunk,
) -> Result<Option<SessionEnd>, ConnError> {
    // The journal copy is taken before any fault can touch the bytes: it
    // is the ground truth of what this agent tried to report.
    st.journal.record(st.agent, seq, chunk.clone());
    let msg = ControlMessage::LogUpload { agent: st.agent, seq, chunk };
    if let Some(spool) = &mut st.spool {
        // Durable before the first send: ack-or-replay from here on.  A
        // failing disk gets a short budgeted retry (transient ENOSPC
        // clears when logs rotate), then the agent *degrades* instead of
        // crashing: the chunk stays in the in-memory window, heartbeats
        // carry the degraded flag, and the next successful append clears
        // it.  Degraded-mode chunks lose crash durability, nothing else.
        let payload = msg.encode_payload();
        let mut disk_retry =
            Backoff::new(RetryPolicy::disk(), RETRY_SEED ^ u64::from(st.agent) ^ 0xD15C, seq);
        loop {
            match spool.append(seq, &payload) {
                Ok(()) => {
                    st.spool_degraded = false;
                    break;
                }
                Err(e) => match disk_retry.next_delay() {
                    Some(delay) => std::thread::sleep(delay),
                    None => {
                        if !st.spool_degraded {
                            obs_event!(
                                obs::Level::Warn,
                                "agent",
                                "spool_degraded",
                                agent = st.agent,
                                seq = seq,
                                error = obs::InlineStr::new(&e.to_string())
                            );
                        }
                        st.spool_degraded = true;
                        break;
                    }
                },
            }
        }
    }
    if st.fault.kill_before_chunk == Some(seq) {
        // Crash after journal+spool, before the send: the daemon never saw
        // this chunk.  Only the spool can save it now.
        return Ok(Some(SessionEnd::Killed));
    }
    let frame = msg.encode_frame();
    let kill_now = st.fault.kill_after_chunk == Some(seq);

    if st.fault.should_truncate(seq, &mut st.fstate) {
        // Half a frame, then the connection dies: the daemon's decoder
        // never completes the frame and the next session must resume.
        let _ = conn.send_raw(&frame[..frame.len() / 2]);
        st.window.push_back(InFlight { seq, frame, sent_at: Instant::now() });
        return Ok(Some(SessionEnd::ConnLost));
    }
    if st.fault.should_corrupt(seq, &mut st.fstate) {
        let mut doctored = frame.clone();
        let last = doctored.len() - 1;
        doctored[last] ^= 0xA5; // break the CRC trailer
        conn.send_raw(&doctored).map_err(ConnError::Io)?;
        st.window.push_back(InFlight { seq, frame, sent_at: Instant::now() });
        return Ok(None); // wait for the daemon's ChunkRetry
    }

    conn.send_raw(&frame).map_err(ConnError::Io)?;
    st.window.push_back(InFlight { seq, frame, sent_at: Instant::now() });
    if kill_now {
        // Crash right after the send: the daemon merges the chunk, but the
        // ack is never read.  The next incarnation must resume past it.
        return Ok(Some(SessionEnd::Killed));
    }
    Ok(None)
}

/// Promotes spooled backlog records into the window until it is full.
/// Backlog chunks were journaled and spooled by an earlier incarnation;
/// they go back out verbatim, pipelined, in seq order.
fn fill_window_from_backlog(
    conn: &mut ControlConn,
    st: &mut AgentState,
    granted: usize,
) -> Result<(), ConnError> {
    while st.window.len() < granted {
        let Some(rec) = st.backlog.pop_front() else { return Ok(()) };
        let frame = encode_control_frame(opcodes::LOG_CHUNK, &rec.payload);
        conn.send_raw(&frame).map_err(ConnError::Io)?;
        st.window.push_back(InFlight { seq: rec.seq, frame, sent_at: Instant::now() });
    }
    Ok(())
}

fn forward_status(st: &mut AgentState, conn: &mut ControlConn) -> Result<(), ConnError> {
    let Some(host) = &st.host else { return Ok(()) };
    let reports = host.status_reports();
    while st.forwarded_status < reports.len() {
        let report = reports[st.forwarded_status];
        conn.send(&ControlMessage::Status(report)).map_err(ConnError::Io)?;
        st.forwarded_status += 1;
    }
    Ok(())
}

fn start_host(cfg: &AgentConfig, incarnation: u32) -> Option<HoneypotHost> {
    let server_addr = SocketAddr::from((cfg.server.ip.octets(), cfg.server.port));
    let hp_config = HoneypotConfig {
        id: cfg.id,
        content: cfg.content,
        files: cfg.files.clone(),
        ask_shared_files: true,
        materialize_content: true,
        port: 4662,
        client_name: cfg.client_name.clone(),
    };
    // Each incarnation draws a distinct RNG stream: a relaunched honeypot
    // is a new process, not a replay of the old one.
    let rng = Rng::seed_from(stream_seed(cfg.rng_seed, incarnation as u64));
    let honeypot =
        Honeypot::new(hp_config, cfg.server.clone(), IpHasher::from_seed(cfg.ip_salt), rng);
    HoneypotHost::start(honeypot, server_addr).ok()
}
