//! Non-blocking connection plumbing for the daemon's sharded reactor.
//!
//! PR 3/4 served every agent with a dedicated blocking thread; at a
//! thousand agents that is a thousand stacks and a thousand schedulable
//! readers for a workload that is almost entirely idle.  The daemon now
//! runs a small pool of reactor shards instead: each shard owns a set of
//! non-blocking connections and drives them from one loop — read what is
//! readable, decode complete frames, flush what is writable — so one
//! thread multiplexes registration, heartbeats and chunk ingest across
//! hundreds of sockets.
//!
//! Two pieces live here:
//!
//! * [`Outbox`] — a per-connection outbound byte queue.  Everything the
//!   daemon says to an agent (acks, config pushes, relaunch/shutdown
//!   orders) is *enqueued*; only the owning shard writes to the socket,
//!   non-blockingly, so a slow agent can never stall the supervision or
//!   merge paths behind a blocking `write_all`.
//! * [`ReactorConn`] — one non-blocking connection: the stream, its
//!   incremental frame decoder and its outbox, plus the registration
//!   state the shard needs (which agent the connection authenticated as,
//!   when it must have registered by, when it last spoke, and how long a
//!   partial frame has been dangling — the hostile-peer reaping inputs).
//!
//! A connection may carry a link-impairment shim ([`crate::impair`]): the
//! socket's bytes pass through an inbound [`ImpairedLink`] before the
//! decoder, and outbox bytes through an outbound one before the socket.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use edonkey_proto::control::{ControlDecoder, ControlEvent};
use parking_lot::Mutex;

use crate::impair::{ImpairPlan, ImpairedLink};
use crate::messages::ControlMessage;
use crate::transport::would_block;

/// Upper bound on bytes read per connection per loop pass, so one
/// firehosing agent cannot monopolise its shard.
const READ_BUDGET: usize = 256 * 1024;

/// Outbound byte queue of one connection.  Producers (merge thread,
/// supervision, `finish`) enqueue frames from any thread; the owning
/// reactor shard drains it to the socket without blocking.
#[derive(Default)]
pub(crate) struct Outbox {
    buf: Mutex<Vec<u8>>,
}

impl Outbox {
    pub(crate) fn new() -> Arc<Outbox> {
        Arc::new(Outbox::default())
    }

    /// Enqueues one typed message as a complete frame.
    pub(crate) fn push_msg(&self, msg: &ControlMessage) {
        self.buf.lock().extend_from_slice(&msg.encode_frame());
    }

    /// Bytes waiting to be written.
    pub(crate) fn pending(&self) -> usize {
        self.buf.lock().len()
    }

    /// Takes the whole queue (the impaired write path moves it into the
    /// link's schedule).
    pub(crate) fn take(&self) -> Vec<u8> {
        std::mem::take(&mut *self.buf.lock())
    }

    /// Writes as much of the queue as the socket will take right now.
    /// `Ok(true)` means the queue is empty; `Ok(false)` means the socket
    /// would block with bytes still queued.  `Err` is fatal to the
    /// connection.
    pub(crate) fn flush(&self, stream: &mut TcpStream) -> std::io::Result<bool> {
        let mut buf = self.buf.lock();
        let mut written = 0usize;
        while written < buf.len() {
            match stream.write(&buf[written..]) {
                Ok(0) => {
                    buf.drain(..written);
                    return Err(std::io::ErrorKind::WriteZero.into());
                }
                Ok(n) => written += n,
                Err(e) if would_block(&e) => {
                    buf.drain(..written);
                    return Ok(false);
                }
                Err(e) => {
                    buf.drain(..written);
                    return Err(e);
                }
            }
        }
        buf.clear();
        Ok(true)
    }
}

/// Why a connection left its shard.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum CloseReason {
    /// The peer closed or the socket died.
    Gone,
    /// The agent completed a clean `Goodbye`.
    Goodbye,
    /// No `Register` arrived within the handshake deadline.
    HandshakeTimeout,
    /// A registered connection went silent past the idle limit.
    IdleTimeout,
    /// A partial frame dangled past the slow-loris read budget.
    SlowLoris,
    /// Fatal framing violation: bad magic/version or an oversized frame.
    Protocol,
}

/// One non-blocking connection owned by a reactor shard.
pub(crate) struct ReactorConn {
    pub(crate) stream: TcpStream,
    pub(crate) decoder: ControlDecoder,
    pub(crate) outbox: Arc<Outbox>,
    /// Set once the connection registers; index into the daemon's slots.
    pub(crate) agent: Option<usize>,
    /// Registration deadline for connections that have not authenticated.
    pub(crate) opened: Instant,
    /// Last instant the socket yielded bytes (idle reaping input).
    pub(crate) last_read: Instant,
    /// Since when the decoder has held an incomplete frame (slow-loris
    /// reaping input); `None` while the stream sits at a frame boundary.
    pub(crate) partial_since: Option<Instant>,
    /// Close decision taken during event processing; the shard reaps the
    /// connection (with bookkeeping) at the end of the pass.
    pub(crate) close: Option<CloseReason>,
    in_link: Option<ImpairedLink>,
    out_link: Option<ImpairedLink>,
    /// Due-but-unwritten impaired bytes (socket would block).
    out_staged: Vec<u8>,
}

impl ReactorConn {
    /// Adopts an accepted stream: non-blocking, Nagle off.
    pub(crate) fn adopt(stream: TcpStream) -> std::io::Result<ReactorConn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(ReactorConn {
            stream,
            decoder: ControlDecoder::new(),
            outbox: Outbox::new(),
            agent: None,
            opened: Instant::now(),
            last_read: Instant::now(),
            partial_since: None,
            close: None,
            in_link: None,
            out_link: None,
            out_staged: Vec::new(),
        })
    }

    /// Installs the daemon-side impairment shim (stream id is typically a
    /// per-daemon connection counter).
    pub(crate) fn set_impair(&mut self, plan: &ImpairPlan, stream_id: u64) {
        if plan.is_transparent() {
            return;
        }
        self.in_link = Some(ImpairedLink::new(plan, stream_id * 2));
        self.out_link = Some(ImpairedLink::new(plan, stream_id * 2 + 1));
    }

    fn now_ms(&self) -> u64 {
        self.opened.elapsed().as_millis() as u64
    }

    /// Reads whatever the socket has (up to the per-pass budget), feeds
    /// the decoder, and appends every completed [`ControlEvent`] to
    /// `events`.  Returns whether any bytes arrived.  Framing violations
    /// and dead sockets mark the connection for close.
    pub(crate) fn read_events(
        &mut self,
        scratch: &mut [u8],
        events: &mut Vec<ControlEvent>,
    ) -> bool {
        let mut total = 0usize;
        let mut activity = false;
        let mut peer_closed = false;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    peer_closed = true;
                    break;
                }
                Ok(n) => {
                    match &mut self.in_link {
                        None => self.decoder.feed(&scratch[..n]),
                        Some(link) => {
                            let now = self.opened.elapsed().as_millis() as u64;
                            link.admit(now, &scratch[..n]);
                        }
                    }
                    activity = true;
                    self.last_read = Instant::now();
                    total += n;
                    if total >= READ_BUDGET {
                        break;
                    }
                }
                Err(e) if would_block(&e) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    peer_closed = true;
                    break;
                }
            }
        }
        // Release inbound bytes whose impaired delivery time has come (all
        // of them once the peer hung up: they were already on the wire).
        if let Some(link) = &mut self.in_link {
            let now = if peer_closed { u64::MAX } else { self.opened.elapsed().as_millis() as u64 };
            let mut due = Vec::new();
            link.due(now, &mut due);
            if !due.is_empty() {
                self.decoder.feed(&due);
            }
        }
        if peer_closed {
            self.close = Some(CloseReason::Gone);
        }
        loop {
            match self.decoder.next_event() {
                Ok(Some(ev)) => events.push(ev),
                Ok(None) => break,
                Err(_) => {
                    // Bad magic/version or an oversized frame: the stream
                    // can never resynchronise — drop the connection.
                    self.close = Some(CloseReason::Protocol);
                    break;
                }
            }
        }
        // Slow-loris bookkeeping: an incomplete frame parked in the
        // decoder starts (or continues) the partial-frame clock.
        if self.decoder.buffered() > 0 {
            if self.partial_since.is_none() {
                self.partial_since = Some(Instant::now());
            }
        } else {
            self.partial_since = None;
        }
        activity
    }

    /// Flushes the outbox; a dead socket marks the connection for close.
    pub(crate) fn flush(&mut self) {
        if self.close.is_some() {
            return;
        }
        if self.out_link.is_none() {
            if self.outbox.pending() == 0 {
                return;
            }
            if self.outbox.flush(&mut self.stream).is_err() {
                self.close = Some(CloseReason::Gone);
            }
            return;
        }
        // Impaired path: outbox → link schedule → staging → socket.
        let now = self.now_ms();
        let link = self.out_link.as_mut().expect("checked above");
        let queued = self.outbox.take();
        if !queued.is_empty() {
            link.admit(now, &queued);
        }
        link.due(now, &mut self.out_staged);
        let mut written = 0usize;
        while written < self.out_staged.len() {
            match self.stream.write(&self.out_staged[written..]) {
                Ok(0) => {
                    self.close = Some(CloseReason::Gone);
                    break;
                }
                Ok(n) => written += n,
                Err(e) if would_block(&e) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close = Some(CloseReason::Gone);
                    break;
                }
            }
        }
        self.out_staged.drain(..written);
    }

    /// Outbound bytes not yet on the wire: queued, scheduled, or staged.
    pub(crate) fn pending_out(&self) -> usize {
        self.outbox.pending()
            + self.out_staged.len()
            + self.out_link.as_ref().map_or(0, |l| l.pending_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    #[test]
    fn outbox_flushes_incrementally_under_backpressure() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        tx.set_nonblocking(true).unwrap();

        // Enqueue far more than the socket buffers hold.
        let outbox = Outbox::new();
        let frame = ControlMessage::ChunkAck { next_seq: 7, window: 32 }.encode_frame();
        let rounds = (8 << 20) / frame.len();
        for _ in 0..rounds {
            outbox.push_msg(&ControlMessage::ChunkAck { next_seq: 7, window: 32 });
        }
        let total = outbox.pending();

        // The first flush must stop at WouldBlock without losing bytes.
        let done = outbox.flush(&mut tx).unwrap();
        assert!(!done, "8 MiB cannot fit in the socket buffer");
        assert!(outbox.pending() < total);

        // Drain the receive side while re-flushing until empty.
        let mut rx = rx;
        rx.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
        let mut received = 0usize;
        let mut buf = vec![0u8; 64 * 1024];
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match rx.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => received += n,
                Err(_) => {}
            }
            if outbox.flush(&mut tx).unwrap() && outbox.pending() == 0 && received >= total {
                break;
            }
            assert!(Instant::now() < deadline, "flush never completed");
        }
        assert_eq!(received, total);
    }

    #[test]
    fn reactor_conn_reads_frames_nonblockingly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        let mut conn = ReactorConn::adopt(rx).unwrap();

        let mut events = Vec::new();
        let mut scratch = vec![0u8; 4096];
        // Nothing sent yet: no events, no close, no blocking.
        assert!(!conn.read_events(&mut scratch, &mut events));
        assert!(events.is_empty());
        assert!(conn.close.is_none());

        tx.write_all(&ControlMessage::Relaunch.encode_frame()).unwrap();
        tx.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while events.is_empty() && Instant::now() < deadline {
            conn.read_events(&mut scratch, &mut events);
        }
        assert_eq!(events.len(), 1);
        assert!(
            matches!(&events[0], ControlEvent::Frame(f) if f.opcode == edonkey_proto::control::opcodes::RELAUNCH)
        );

        drop(tx);
        let deadline = Instant::now() + Duration::from_secs(5);
        while conn.close.is_none() && Instant::now() < deadline {
            conn.read_events(&mut scratch, &mut events);
        }
        assert_eq!(conn.close, Some(CloseReason::Gone));
    }

    #[test]
    fn partial_frame_starts_the_slow_loris_clock() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        let mut conn = ReactorConn::adopt(rx).unwrap();

        let frame = ControlMessage::Relaunch.encode_frame();
        let mut events = Vec::new();
        let mut scratch = vec![0u8; 4096];
        // A dribbled header byte: the partial clock must start…
        tx.write_all(&frame[..3]).unwrap();
        tx.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while conn.partial_since.is_none() && Instant::now() < deadline {
            conn.read_events(&mut scratch, &mut events);
        }
        assert!(conn.partial_since.is_some(), "dangling partial frame not noticed");
        assert!(events.is_empty());
        // …and clear once the frame completes.
        tx.write_all(&frame[3..]).unwrap();
        tx.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while events.is_empty() && Instant::now() < deadline {
            conn.read_events(&mut scratch, &mut events);
        }
        assert!(conn.partial_since.is_none(), "completed frame must stop the clock");
    }

    #[test]
    fn impaired_reactor_conn_delivers_intact_frames_late() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        let mut conn = ReactorConn::adopt(rx).unwrap();
        conn.set_impair(&ImpairPlan { delay_ms: 30, ..ImpairPlan::clean(5) }, 0);

        tx.write_all(&ControlMessage::Shutdown.encode_frame()).unwrap();
        tx.flush().unwrap();
        let mut events = Vec::new();
        let mut scratch = vec![0u8; 4096];
        let started = Instant::now();
        let deadline = started + Duration::from_secs(5);
        while events.is_empty() && Instant::now() < deadline {
            conn.read_events(&mut scratch, &mut events);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            matches!(&events[0], ControlEvent::Frame(f) if f.opcode == edonkey_proto::control::opcodes::SHUTDOWN)
        );
        assert!(started.elapsed() >= Duration::from_millis(25), "30 ms delay plan arrived early");

        // Outbound: enqueue, then flush until the shim releases it.
        conn.outbox.push_msg(&ControlMessage::Relaunch);
        let deadline = Instant::now() + Duration::from_secs(5);
        while conn.pending_out() > 0 && Instant::now() < deadline {
            conn.flush();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(conn.pending_out(), 0);
        tx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut got = vec![0u8; 64];
        let n = tx.read(&mut got).unwrap();
        assert_eq!(&got[..n], &ControlMessage::Relaunch.encode_frame()[..]);
    }
}
