//! Non-blocking connection plumbing for the daemon's sharded reactor.
//!
//! PR 3/4 served every agent with a dedicated blocking thread; at a
//! thousand agents that is a thousand stacks and a thousand schedulable
//! readers for a workload that is almost entirely idle.  The daemon now
//! runs a small pool of reactor shards instead: each shard owns a set of
//! non-blocking connections and drives them from one loop — read what is
//! readable, decode complete frames, flush what is writable — so one
//! thread multiplexes registration, heartbeats and chunk ingest across
//! hundreds of sockets.
//!
//! Two pieces live here:
//!
//! * [`Outbox`] — a per-connection outbound byte queue.  Everything the
//!   daemon says to an agent (acks, config pushes, relaunch/shutdown
//!   orders) is *enqueued*; only the owning shard writes to the socket,
//!   non-blockingly, so a slow agent can never stall the supervision or
//!   merge paths behind a blocking `write_all`.
//! * [`ReactorConn`] — one non-blocking connection: the stream, its
//!   incremental frame decoder and its outbox, plus the registration
//!   state the shard needs (which agent the connection authenticated as,
//!   and when it must have registered by).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use edonkey_proto::control::{ControlDecoder, ControlEvent};
use parking_lot::Mutex;

use crate::messages::ControlMessage;

/// Upper bound on bytes read per connection per loop pass, so one
/// firehosing agent cannot monopolise its shard.
const READ_BUDGET: usize = 256 * 1024;

/// Outbound byte queue of one connection.  Producers (merge thread,
/// supervision, `finish`) enqueue frames from any thread; the owning
/// reactor shard drains it to the socket without blocking.
#[derive(Default)]
pub(crate) struct Outbox {
    buf: Mutex<Vec<u8>>,
}

impl Outbox {
    pub(crate) fn new() -> Arc<Outbox> {
        Arc::new(Outbox::default())
    }

    /// Enqueues one typed message as a complete frame.
    pub(crate) fn push_msg(&self, msg: &ControlMessage) {
        self.buf.lock().extend_from_slice(&msg.encode_frame());
    }

    /// Bytes waiting to be written.
    pub(crate) fn pending(&self) -> usize {
        self.buf.lock().len()
    }

    /// Writes as much of the queue as the socket will take right now.
    /// `Ok(true)` means the queue is empty; `Ok(false)` means the socket
    /// would block with bytes still queued.  `Err` is fatal to the
    /// connection.
    pub(crate) fn flush(&self, stream: &mut TcpStream) -> std::io::Result<bool> {
        let mut buf = self.buf.lock();
        let mut written = 0usize;
        while written < buf.len() {
            match stream.write(&buf[written..]) {
                Ok(0) => {
                    buf.drain(..written);
                    return Err(std::io::ErrorKind::WriteZero.into());
                }
                Ok(n) => written += n,
                Err(e) if would_block(&e) => {
                    buf.drain(..written);
                    return Ok(false);
                }
                Err(e) => {
                    buf.drain(..written);
                    return Err(e);
                }
            }
        }
        buf.clear();
        Ok(true)
    }
}

/// Why a connection left its shard.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum CloseReason {
    /// The peer closed or the socket died.
    Gone,
    /// The agent completed a clean `Goodbye`.
    Goodbye,
    /// No `Register` arrived within the handshake deadline.
    HandshakeTimeout,
}

/// One non-blocking connection owned by a reactor shard.
pub(crate) struct ReactorConn {
    pub(crate) stream: TcpStream,
    pub(crate) decoder: ControlDecoder,
    pub(crate) outbox: Arc<Outbox>,
    /// Set once the connection registers; index into the daemon's slots.
    pub(crate) agent: Option<usize>,
    /// Registration deadline for connections that have not authenticated.
    pub(crate) opened: Instant,
    /// Close decision taken during event processing; the shard reaps the
    /// connection (with bookkeeping) at the end of the pass.
    pub(crate) close: Option<CloseReason>,
}

impl ReactorConn {
    /// Adopts an accepted stream: non-blocking, Nagle off.
    pub(crate) fn adopt(stream: TcpStream) -> std::io::Result<ReactorConn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(ReactorConn {
            stream,
            decoder: ControlDecoder::new(),
            outbox: Outbox::new(),
            agent: None,
            opened: Instant::now(),
            close: None,
        })
    }

    /// Reads whatever the socket has (up to the per-pass budget), feeds
    /// the decoder, and appends every completed [`ControlEvent`] to
    /// `events`.  Returns whether any bytes arrived.  Framing violations
    /// and dead sockets mark the connection for close.
    pub(crate) fn read_events(
        &mut self,
        scratch: &mut [u8],
        events: &mut Vec<ControlEvent>,
    ) -> bool {
        let mut total = 0usize;
        let mut activity = false;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.close = Some(CloseReason::Gone);
                    break;
                }
                Ok(n) => {
                    self.decoder.feed(&scratch[..n]);
                    activity = true;
                    total += n;
                    if total >= READ_BUDGET {
                        break;
                    }
                }
                Err(e) if would_block(&e) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close = Some(CloseReason::Gone);
                    break;
                }
            }
        }
        loop {
            match self.decoder.next_event() {
                Ok(Some(ev)) => events.push(ev),
                Ok(None) => break,
                Err(_) => {
                    // Bad magic/version or an oversized frame: the stream
                    // can never resynchronise — drop the connection.
                    self.close = Some(CloseReason::Gone);
                    break;
                }
            }
        }
        activity
    }

    /// Flushes the outbox; a dead socket marks the connection for close.
    pub(crate) fn flush(&mut self) {
        if self.close.is_some() || self.outbox.pending() == 0 {
            return;
        }
        if self.outbox.flush(&mut self.stream).is_err() {
            self.close = Some(CloseReason::Gone);
        }
    }
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    #[test]
    fn outbox_flushes_incrementally_under_backpressure() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        tx.set_nonblocking(true).unwrap();

        // Enqueue far more than the socket buffers hold.
        let outbox = Outbox::new();
        let frame = ControlMessage::ChunkAck { next_seq: 7 }.encode_frame();
        let rounds = (8 << 20) / frame.len();
        for _ in 0..rounds {
            outbox.push_msg(&ControlMessage::ChunkAck { next_seq: 7 });
        }
        let total = outbox.pending();

        // The first flush must stop at WouldBlock without losing bytes.
        let done = outbox.flush(&mut tx).unwrap();
        assert!(!done, "8 MiB cannot fit in the socket buffer");
        assert!(outbox.pending() < total);

        // Drain the receive side while re-flushing until empty.
        let mut rx = rx;
        rx.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
        let mut received = 0usize;
        let mut buf = vec![0u8; 64 * 1024];
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match rx.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => received += n,
                Err(_) => {}
            }
            if outbox.flush(&mut tx).unwrap() && outbox.pending() == 0 && received >= total {
                break;
            }
            assert!(Instant::now() < deadline, "flush never completed");
        }
        assert_eq!(received, total);
    }

    #[test]
    fn reactor_conn_reads_frames_nonblockingly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        let mut conn = ReactorConn::adopt(rx).unwrap();

        let mut events = Vec::new();
        let mut scratch = vec![0u8; 4096];
        // Nothing sent yet: no events, no close, no blocking.
        assert!(!conn.read_events(&mut scratch, &mut events));
        assert!(events.is_empty());
        assert!(conn.close.is_none());

        tx.write_all(&ControlMessage::Relaunch.encode_frame()).unwrap();
        tx.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while events.is_empty() && Instant::now() < deadline {
            conn.read_events(&mut scratch, &mut events);
        }
        assert_eq!(events.len(), 1);
        assert!(
            matches!(&events[0], ControlEvent::Frame(f) if f.opcode == edonkey_proto::control::opcodes::RELAUNCH)
        );

        drop(tx);
        let deadline = Instant::now() + Duration::from_secs(5);
        while conn.close.is_none() && Instant::now() < deadline {
            conn.read_events(&mut scratch, &mut events);
        }
        assert_eq!(conn.close, Some(CloseReason::Gone));
    }
}
