//! Durable write-ahead spool: CRC-framed, segmented, torn-tail safe.
//!
//! The paper's honeypots ran for weeks between log collections; a crash
//! must never silently lose a chunk the manager has not acknowledged.  A
//! [`Spool`] is a directory of append-only segment files.  Every record is
//! written *before* it touches the wire and trimmed only after the
//! receiving side acknowledged it, so the set of records on disk is always
//! a superset of the unacknowledged in-flight data:
//!
//! * **append** — a framed record (`magic, seq, len, payload, crc`) goes to
//!   the active segment; segments rotate at a size threshold;
//! * **trim** — once `seq` is acked, every record at or below it is
//!   dropped, and segments whose records are all acked are deleted;
//! * **replay** — on open, segments are scanned in order; the first torn or
//!   corrupt record truncates its segment at the last valid byte and drops
//!   every later segment, so recovery always yields a clean *prefix* of
//!   what was appended — a half-written tail is detected, never merged.
//!
//! The same structure serves two masters: each agent spools encoded
//! `LogUpload` payloads before transport, and the manager daemon appends
//! every *merged* chunk to a spool-backed WAL before acking it (see
//! [`crate::checkpoint`]), which is what makes the ack → trim handshake
//! safe end to end: an acked chunk is durable on the manager side.
//!
//! Durability is against process death (data reaches the kernel on every
//! append), not power loss — matching what the chaos harness exercises.
//! A sidecar `.lock` file gives the spool single-writer semantics across
//! the brief window where a relaunched incarnation overlaps the old one.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use edonkey_proto::control::crc32;

use crate::diskfault::{DiskFaultKind, DiskFaults};
use crate::obs::{HistogramHandle, Registry};

/// First byte of every spool record.
pub const SPOOL_MAGIC: u8 = 0xD5;
/// Upper bound on a record payload; anything larger is corruption.
pub const MAX_SPOOL_PAYLOAD: usize = 64 << 20;

const HEADER_LEN: usize = 1 + 8 + 4; // magic, seq (LE), payload len (LE)
const TRAILER_LEN: usize = 4; // crc32 (LE) over header + payload
const LOCK_WAIT: Duration = Duration::from_secs(2);

/// Spool tuning.
#[derive(Clone, Copy, Debug)]
pub struct SpoolConfig {
    /// Rotate the active segment once it reaches this many bytes.
    pub segment_max_bytes: u64,
}

impl Default for SpoolConfig {
    fn default() -> Self {
        SpoolConfig { segment_max_bytes: 256 << 10 }
    }
}

/// One durable record: a sequence number and an opaque payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpoolRecord {
    pub seq: u64,
    pub payload: Vec<u8>,
}

#[derive(Debug)]
struct Segment {
    path: PathBuf,
    bytes: u64,
    /// Highest record seq in the segment (`None` for a fresh empty one).
    last_seq: Option<u64>,
}

/// A directory-backed write-ahead spool.  See the module docs for the
/// contract.
#[derive(Debug)]
pub struct Spool {
    dir: PathBuf,
    cfg: SpoolConfig,
    segments: Vec<Segment>,
    /// Records appended but not yet trimmed, oldest first.
    unacked: Vec<SpoolRecord>,
    writer: Option<File>,
    locked: bool,
    faults: DiskFaults,
    /// Set when an injected short write left a half-record on the tail;
    /// only a reopen (which truncates the tear) may append again.
    torn: bool,
}

impl Spool {
    /// Opens (creating if needed) the spool at `dir` with default tuning.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Spool> {
        Spool::open_with(dir, SpoolConfig::default())
    }

    /// Opens the spool, scanning and repairing existing segments: torn
    /// tails are truncated in place, and segments after the first damaged
    /// one are deleted (they would follow a hole).  The surviving records
    /// are available from [`Spool::unacked`].
    pub fn open_with(dir: impl Into<PathBuf>, cfg: SpoolConfig) -> io::Result<Spool> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let locked = acquire_lock(&dir)?;

        let mut seg_paths: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(first_seq) = parse_segment_name(name) {
                seg_paths.push((first_seq, entry.path()));
            }
        }
        seg_paths.sort_by_key(|(first, _)| *first);

        let mut segments = Vec::new();
        let mut unacked: Vec<SpoolRecord> = Vec::new();
        let mut prev_seq: Option<u64> = None;
        let mut damaged = false;
        for (_, path) in seg_paths {
            if damaged {
                // Everything after a damaged segment would follow a hole in
                // the sequence; recovery keeps a prefix, so drop it.
                fs::remove_file(&path)?;
                continue;
            }
            let data = fs::read(&path)?;
            let scan = scan_records(&data, prev_seq);
            if scan.valid_len < data.len() as u64 {
                damaged = true;
                if scan.records.is_empty() && scan.valid_len == 0 {
                    fs::remove_file(&path)?;
                    continue;
                }
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(scan.valid_len)?;
                f.sync_all().ok();
            }
            if scan.records.is_empty() && scan.valid_len == 0 {
                fs::remove_file(&path)?;
                continue;
            }
            prev_seq = scan.records.last().map(|r| r.seq).or(prev_seq);
            segments.push(Segment { path, bytes: scan.valid_len, last_seq: prev_seq });
            unacked.extend(scan.records);
        }

        Ok(Spool {
            dir,
            cfg,
            segments,
            unacked,
            writer: None,
            locked,
            faults: DiskFaults::none(),
            torn: false,
        })
    }

    /// Attaches a shared write-fault injector; every subsequent `append`
    /// consults it.  Used by the chaos harness to model a full or failing
    /// disk without touching the real filesystem.
    pub fn set_faults(&mut self, faults: DiskFaults) {
        self.faults = faults;
    }

    /// The spool directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records on disk that have not been trimmed, oldest first.  After
    /// `open` this is the replay set (it may include records whose ack was
    /// lost in the crash; the receiver re-acks those by sequence).
    pub fn unacked(&self) -> &[SpoolRecord] {
        &self.unacked
    }

    /// Highest sequence number on disk.
    pub fn last_seq(&self) -> Option<u64> {
        self.unacked.last().map(|r| r.seq)
    }

    /// Appends one record durably (the write reaches the kernel before
    /// this returns).  `seq` must be strictly greater than every sequence
    /// already spooled.
    pub fn append(&mut self, seq: u64, payload: &[u8]) -> io::Result<()> {
        let t0 = Instant::now();
        let result = self.append_inner(seq, payload);
        // Observability only: the append-latency distribution (success or
        // failure) for the live registry; never alters the result.
        spool_append_hist().record((t0.elapsed().as_micros() as u64).max(1));
        result
    }

    fn append_inner(&mut self, seq: u64, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_SPOOL_PAYLOAD {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "spool payload too large"));
        }
        if let Some(last) = self.last_seq() {
            if seq <= last {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("spool seq {seq} not after {last}"),
                ));
            }
        }
        let record = encode_record(seq, payload);
        let rotate = match self.segments.last() {
            Some(seg) => seg.bytes + record.len() as u64 > self.cfg.segment_max_bytes,
            None => true,
        };
        if rotate || self.writer.is_none() {
            if rotate {
                let path = self.dir.join(segment_name(seq));
                self.writer = Some(OpenOptions::new().create_new(true).append(true).open(&path)?);
                self.segments.push(Segment { path, bytes: 0, last_seq: None });
            } else {
                // Re-open the tail segment (first append after `open`).
                let seg = self.segments.last().expect("tail segment");
                self.writer = Some(OpenOptions::new().append(true).open(&seg.path)?);
            }
        }
        let writer = self.writer.as_mut().expect("active segment writer");
        if self.torn {
            return Err(io::Error::other(
                "spool tail torn by earlier failed write; reopen to repair",
            ));
        }
        if let Some(kind) = self.faults.check() {
            if kind == DiskFaultKind::ShortWrite {
                // Model a torn write: a prefix of the record reaches the
                // disk before the failure.  The bytes still occupy the
                // segment (rotation math must see them); only a reopen
                // scan repairs the tail, so refuse further appends.
                let cut = record.len() / 2;
                let _ = writer.write_all(&record[..cut]);
                let seg = self.segments.last_mut().expect("active segment");
                seg.bytes += cut as u64;
                self.torn = true;
            }
            return Err(kind.to_error());
        }
        writer.write_all(&record)?;
        let seg = self.segments.last_mut().expect("active segment");
        seg.bytes += record.len() as u64;
        seg.last_seq = Some(seq);
        self.unacked.push(SpoolRecord { seq, payload: payload.to_vec() });
        Ok(())
    }

    /// Drops every record with `seq <= acked` and deletes segments whose
    /// records are all acked.  A partially-acked segment stays on disk;
    /// its acked records are simply re-acked by sequence after a replay.
    pub fn trim_acked(&mut self, acked: u64) -> io::Result<()> {
        self.unacked.retain(|r| r.seq > acked);
        let keep_from = self
            .segments
            .iter()
            .position(|s| s.last_seq.is_none_or(|last| last > acked))
            .unwrap_or(self.segments.len());
        for seg in self.segments.drain(..keep_from) {
            self.writer = None; // never hold a handle to a deleted file
            fs::remove_file(&seg.path)?;
        }
        if self.segments.is_empty() {
            self.writer = None;
        }
        Ok(())
    }
}

/// Process-wide spool append-latency histogram, resolved once.
fn spool_append_hist() -> &'static HistogramHandle {
    static HIST: std::sync::OnceLock<HistogramHandle> = std::sync::OnceLock::new();
    HIST.get_or_init(|| Registry::global().histogram("spool_append_micros"))
}

impl Drop for Spool {
    fn drop(&mut self) {
        if self.locked {
            let _ = fs::remove_file(self.dir.join(".lock"));
        }
    }
}

/// Encodes one framed record.
fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.push(SPOOL_MAGIC);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

struct Scan {
    records: Vec<SpoolRecord>,
    /// Byte length of the valid prefix; anything beyond is torn/corrupt.
    valid_len: u64,
}

/// Walks a segment's bytes, stopping at the first record that is torn
/// (runs past the end), malformed (bad magic, oversized, CRC mismatch) or
/// out of order.  Never panics: every branch is a bounds-checked slice.
fn scan_records(data: &[u8], mut prev_seq: Option<u64>) -> Scan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        let rest = &data[pos..];
        if rest.len() < HEADER_LEN + TRAILER_LEN || rest[0] != SPOOL_MAGIC {
            break;
        }
        let seq = u64::from_le_bytes(rest[1..9].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(rest[9..13].try_into().expect("4 bytes")) as usize;
        if len > MAX_SPOOL_PAYLOAD {
            break;
        }
        let total = HEADER_LEN + len + TRAILER_LEN;
        if rest.len() < total {
            break; // torn tail: the record runs past the end of the file
        }
        let stored = u32::from_le_bytes(rest[total - 4..total].try_into().expect("4 bytes"));
        if crc32(&rest[..total - 4]) != stored {
            break;
        }
        if prev_seq.is_some_and(|p| seq <= p) {
            break; // sequence must be strictly increasing
        }
        records.push(SpoolRecord { seq, payload: rest[HEADER_LEN..HEADER_LEN + len].to_vec() });
        prev_seq = Some(seq);
        pos += total;
    }
    Scan { records, valid_len: pos as u64 }
}

fn segment_name(first_seq: u64) -> String {
    format!("spool-{first_seq:016x}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("spool-")?.strip_suffix(".seg")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Takes the spool's advisory lock, waiting briefly and then stealing a
/// stale one (the previous holder crashed without its `Drop` running).
fn acquire_lock(dir: &Path) -> io::Result<bool> {
    let path = dir.join(".lock");
    let deadline = Instant::now() + LOCK_WAIT;
    loop {
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", std::process::id());
                return Ok(true);
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                if Instant::now() >= deadline {
                    let _ = fs::remove_file(&path);
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "edhp-spool-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payload(i: u64) -> Vec<u8> {
        (0..(8 + i % 32)).map(|b| (b as u8).wrapping_mul(31).wrapping_add(i as u8)).collect()
    }

    #[test]
    fn append_trim_replay_round_trip() {
        let dir = tmpdir("roundtrip");
        {
            let mut spool = Spool::open(&dir).unwrap();
            for seq in 0..5u64 {
                spool.append(seq, &payload(seq)).unwrap();
            }
            spool.trim_acked(1).unwrap();
            assert_eq!(spool.unacked().len(), 3);
        }
        let spool = Spool::open(&dir).unwrap();
        // Seqs 0-1 may survive on disk (their segment also holds 2-4); the
        // replay set must at least cover everything unacked, in order.
        let seqs: Vec<u64> = spool.unacked().iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert!(seqs.contains(&2) && seqs.contains(&3) && seqs.contains(&4));
        for r in spool.unacked() {
            assert_eq!(r.payload, payload(r.seq));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fully_acked_segments_are_deleted() {
        let dir = tmpdir("trimseg");
        let cfg = SpoolConfig { segment_max_bytes: 64 };
        let mut spool = Spool::open_with(&dir, cfg).unwrap();
        for seq in 0..10u64 {
            spool.append(seq, &payload(seq)).unwrap();
        }
        assert!(spool.segments.len() > 1, "small segments must rotate");
        spool.trim_acked(9).unwrap();
        assert!(spool.unacked().is_empty());
        assert!(spool.segments.is_empty());
        let leftover = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".seg"))
            .count();
        assert_eq!(leftover, 0);
        drop(spool);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_merged() {
        let dir = tmpdir("torn");
        {
            let mut spool = Spool::open(&dir).unwrap();
            for seq in 0..3u64 {
                spool.append(seq, &payload(seq)).unwrap();
            }
        }
        // Tear the last record in half.
        let seg = dir.join(segment_name(0));
        let data = fs::read(&seg).unwrap();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(data.len() as u64 - 7).unwrap();
        drop(f);

        let spool = Spool::open(&dir).unwrap();
        let seqs: Vec<u64> = spool.unacked().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        // The file itself was repaired: reopening again sees a clean file.
        drop(spool);
        let spool = Spool::open(&dir).unwrap();
        assert_eq!(spool.unacked().len(), 2);
        drop(spool);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_truncates_and_drops_later_segments() {
        let dir = tmpdir("corrupt");
        let cfg = SpoolConfig { segment_max_bytes: 48 };
        {
            let mut spool = Spool::open_with(&dir, cfg).unwrap();
            for seq in 0..6u64 {
                spool.append(seq, &payload(seq)).unwrap();
            }
            assert!(spool.segments.len() >= 2);
        }
        // Flip a payload bit in the very first record of the first segment.
        let seg = dir.join(segment_name(0));
        let mut data = fs::read(&seg).unwrap();
        data[HEADER_LEN] ^= 0x40;
        fs::write(&seg, &data).unwrap();

        let spool = Spool::open_with(&dir, cfg).unwrap();
        assert!(spool.unacked().is_empty(), "corrupt head yields an empty prefix");
        drop(spool);
        // Later segments were deleted: only a hole-free prefix survives.
        let segs = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".seg"))
            .count();
        assert_eq!(segs, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_after_recovery_continues_the_stream() {
        let dir = tmpdir("continue");
        {
            let mut spool = Spool::open(&dir).unwrap();
            spool.append(0, &payload(0)).unwrap();
            spool.append(1, &payload(1)).unwrap();
        }
        let mut spool = Spool::open(&dir).unwrap();
        assert_eq!(spool.last_seq(), Some(1));
        assert!(spool.append(1, &payload(1)).is_err(), "non-monotonic seq rejected");
        spool.append(2, &payload(2)).unwrap();
        drop(spool);
        let spool = Spool::open(&dir).unwrap();
        let seqs: Vec<u64> = spool.unacked().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        drop(spool);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_byte_yields_a_clean_prefix() {
        // Property (exhaustive, not sampled): however many trailing bytes a
        // crash tears off the segment, recovery either replays an exact
        // prefix of what was appended or nothing — never a panic, never a
        // record that was not written, never bytes that differ.
        let dir = tmpdir("everybyte");
        let expected: Vec<SpoolRecord> =
            (0..6u64).map(|seq| SpoolRecord { seq: seq * 3 + 1, payload: payload(seq) }).collect();
        {
            let mut spool = Spool::open(&dir).unwrap();
            for r in &expected {
                spool.append(r.seq, &r.payload).unwrap();
            }
        }
        let seg = dir.join(segment_name(expected[0].seq));
        let full = fs::read(&seg).unwrap();
        for cut in 0..=full.len() {
            fs::write(&seg, &full[..cut]).unwrap();
            let spool = Spool::open(&dir).unwrap();
            let got = spool.unacked();
            assert!(got.len() <= expected.len(), "cut at {cut}: extra records");
            assert_eq!(got, &expected[..got.len()], "cut at {cut}: not a prefix");
            drop(spool);
            // `open` repaired the file in place; restore the full bytes so
            // the next cut starts from the original image.
            fs::write(&seg, &full).unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_never_panic_and_never_invent_records() {
        // Companion property: flip any single bit anywhere in the segment;
        // recovery must still return only records that were appended (a
        // flip in one payload byte must kill that record, not mutate it).
        let dir = tmpdir("bitflip");
        let expected: Vec<SpoolRecord> =
            (0..4u64).map(|seq| SpoolRecord { seq, payload: payload(seq) }).collect();
        {
            let mut spool = Spool::open(&dir).unwrap();
            for r in &expected {
                spool.append(r.seq, &r.payload).unwrap();
            }
        }
        let seg = dir.join(segment_name(0));
        let full = fs::read(&seg).unwrap();
        for i in 0..full.len() {
            let mut doctored = full.clone();
            doctored[i] ^= 0x10;
            fs::write(&seg, &doctored).unwrap();
            let spool = Spool::open(&dir).unwrap();
            for r in spool.unacked() {
                assert!(expected.contains(r), "flip at byte {i} invented record seq {}", r.seq);
            }
            drop(spool);
            fs::write(&seg, &full).unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_enospc_writes_nothing_and_clears() {
        let dir = tmpdir("enospc");
        let faults = DiskFaults::none();
        let mut spool = Spool::open(&dir).unwrap();
        spool.set_faults(faults.clone());
        spool.append(0, &payload(0)).unwrap();
        faults.inject(DiskFaultKind::Enospc, Some(2));
        assert!(spool.append(1, &payload(1)).is_err());
        assert!(spool.append(1, &payload(1)).is_err());
        assert_eq!(faults.injected(), 2);
        // The fault burst is spent; the same seq retries cleanly and the
        // failed attempts left no bytes behind.
        spool.append(1, &payload(1)).unwrap();
        drop(spool);
        let spool = Spool::open(&dir).unwrap();
        let seqs: Vec<u64> = spool.unacked().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        drop(spool);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_short_write_tears_the_tail_and_reopen_repairs() {
        let dir = tmpdir("shortwrite");
        let faults = DiskFaults::none();
        let mut spool = Spool::open(&dir).unwrap();
        spool.set_faults(faults.clone());
        spool.append(0, &payload(0)).unwrap();
        faults.inject(DiskFaultKind::ShortWrite, Some(1));
        assert!(spool.append(1, &payload(1)).is_err());
        // The tail now holds half a record; appends stay refused until a
        // reopen truncates the tear.
        assert!(spool.append(2, &payload(2)).is_err());
        drop(spool);
        let mut spool = Spool::open(&dir).unwrap();
        let seqs: Vec<u64> = spool.unacked().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0], "torn record must not replay");
        spool.append(1, &payload(1)).unwrap();
        drop(spool);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_stolen() {
        let dir = tmpdir("lock");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(".lock"), b"stale").unwrap();
        let t0 = Instant::now();
        let spool = Spool::open(&dir).unwrap();
        assert!(t0.elapsed() >= LOCK_WAIT, "must wait before stealing");
        drop(spool);
        assert!(!dir.join(".lock").exists(), "lock released on drop");
        let _ = fs::remove_dir_all(&dir);
    }
}
