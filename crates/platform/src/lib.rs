//! # edonkey-platform — live control plane
//!
//! The paper's measurement platform (§III-A) is a *distributed* system: a
//! manager machine supervises honeypots running elsewhere, pushes their
//! configuration, watches their health, relaunches the dead ones and
//! collects their logs.  This crate is that platform as a live network
//! service over TCP:
//!
//! * [`daemon::Daemon`] — the manager: a pool of non-blocking reactor
//!   shards ([`reactor`], PR 6) multiplexes every agent connection —
//!   registration, [`messages::AgentConfig`] pushes, heartbeats, chunk
//!   ingest — from a handful of threads, a single merge thread streams
//!   sequenced log chunks into the same [`honeypot::Manager`]
//!   merge/anonymise pipeline the in-process path uses, and a supervision
//!   loop declares silent agents dead and relaunches them with
//!   exponential backoff;
//! * [`agent::run_agent`] — a supervised honeypot: wraps
//!   [`edonkey_net::HoneypotHost`], registers with the daemon, heartbeats,
//!   and ships its log as windowed, pipelined sequenced chunks (up to the
//!   granted window in flight, cumulative acks trimming the spool) that
//!   survive corruption, truncation, crashes and reconnects;
//! * [`messages`] — the typed control protocol over the versioned,
//!   CRC-protected framing of [`edonkey_proto::control`];
//! * [`fault`] — scripted agent misbehaviour for recovery testing;
//! * [`journal`] — a pre-transport chunk journal whose replay proves the
//!   transport moved every record exactly once, unmodified, in order;
//! * [`metrics`] — platform health counters (RTTs, relaunches, chunk
//!   bytes, resumes, uptime) with a JSON report;
//! * [`deployment`] — a one-call loopback deployment (manager + eDonkey
//!   server + N agents on 127.0.0.1) used by tests, the experiment
//!   runner's `--live-loopback` demo and CI.
//!
//! Crash safety (PR 4) spans three modules: [`spool`] is the durable
//! write-ahead segment log agents (and the daemon's chunk WAL) append to
//! before anything is acknowledged; [`checkpoint`] is the daemon's
//! atomically-replaced supervision snapshot plus WAL layout; [`retry`] is
//! the one seeded backoff policy every retry site (relaunch, reconnect,
//! resend) now shares.  The contract: an acknowledged chunk is always
//! recoverable, a crashed side replays exactly what was lost, and no
//! chunk is ever merged twice.
//!
//! The adversarial fault model (PR 9) adds degraded-but-alive failure
//! modes on top: [`impair`] is a deterministic seeded link-damage shim
//! (loss as retransmission stalls, duplication, reordering, delay,
//! jitter, rate caps, partitions — same seed, same byte timeline)
//! installed on both the blocking [`conn`] and nonblocking [`reactor`]
//! socket paths; [`diskfault`] is the injectable write-fault handle
//! (ENOSPC / EIO / short write) the spool, WAL and checkpoint writers
//! consult so disk death degrades the measurement visibly instead of
//! corrupting it; [`transport`] is the shared socket-error
//! classification both paths agree on.  The daemon hardens itself
//! against hostile peers (handshake/idle/slow-loris deadlines, frame
//! caps, merge-queue shedding with window shrink), and every
//! degradation surfaces as a named [`metrics`] counter.  DESIGN.md §3h
//! tabulates the full fault grid; `tests/chaos_matrix.rs` drives it.
//!
//! The observability layer (PR 10, DESIGN.md §3i) is [`obs`]: the
//! structured-event facade and per-thread flight recorder (re-exported
//! from `netsim::obs` so the sim and analysis crates share it),
//! mergeable log-linear [`obs::Histogram`]s feeding p50/p90/p99 into
//! [`metrics::PlatformMetrics`], the named-instrument
//! [`obs::Registry`], and the [`obs::Scraper`] that appends a JSONL
//! time series and answers one-shot loopback snapshot scrapes while a
//! swarm runs.  The contract: observation is *pure* — measurement logs
//! and control byte streams are bit-identical at every verbosity
//! (`tests/obs_purity.rs`).

pub mod agent;
pub mod checkpoint;
pub mod conn;
pub mod daemon;
pub mod deployment;
pub mod diskfault;
pub mod fault;
pub mod impair;
pub mod journal;
pub mod messages;
pub mod metrics;
pub mod obs;
pub(crate) mod reactor;
pub mod retry;
pub mod spool;
pub mod transport;

pub use agent::{run_agent, run_agent_with, AgentExit, AgentOptions};
pub use checkpoint::{load_checkpoint, save_checkpoint, CheckpointOptions, ManagerCheckpoint};
pub use conn::{ConnError, ConnEvent, ControlConn};
pub use daemon::{Daemon, DaemonConfig, Launcher};
pub use deployment::{LoopbackDeployment, LoopbackOptions, LoopbackOutcome, LoopbackSpec};
pub use diskfault::{DiskFaultKind, DiskFaults};
pub use fault::{FaultPlan, FaultState};
pub use impair::{ImpairPlan, ImpairStats, ImpairedLink, Partition};
pub use journal::{measurement_diff, ChunkJournal};
pub use messages::{AgentConfig, ControlMessage};
pub use metrics::{AgentMetrics, PlatformMetrics, RttStats};
pub use obs::{FlightDumpOnPanic, Histogram, ObsConfig, Registry, Scraper};
pub use retry::{Backoff, RetryPolicy};
pub use spool::{Spool, SpoolConfig, SpoolRecord};
