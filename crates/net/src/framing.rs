//! Blocking socket I/O for eDonkey frames.

use std::io::{Read, Write};
use std::net::TcpStream;

use edonkey_proto::codec::{
    encode_client_server_message, encode_peer_message, FrameDecoder, RawFrame,
};
use edonkey_proto::{ClientServerMessage, PeerMessage, ProtoError};

/// A framed connection over a blocking TCP stream.
pub struct FramedStream {
    stream: TcpStream,
    decoder: FrameDecoder,
    buf: [u8; 16 * 1024],
}

/// Errors of the framed transport.
#[derive(Debug)]
pub enum NetError {
    Io(std::io::Error),
    Proto(ProtoError),
    /// The remote closed the connection.
    Closed,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(fm, "io error: {e}"),
            NetError::Proto(e) => write!(fm, "protocol error: {e}"),
            NetError::Closed => write!(fm, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        NetError::Proto(e)
    }
}

impl FramedStream {
    pub fn new(stream: TcpStream) -> Self {
        FramedStream { stream, decoder: FrameDecoder::new(), buf: [0; 16 * 1024] }
    }

    /// The underlying stream (for peer-address queries and shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Tries to clone the underlying stream for a concurrent writer.
    pub fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.stream.try_clone()
    }

    /// Reads the next complete frame, blocking.
    pub fn read_frame(&mut self) -> Result<RawFrame, NetError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            let n = self.stream.read(&mut self.buf)?;
            if n == 0 {
                return Err(NetError::Closed);
            }
            self.decoder.feed(&self.buf[..n]);
        }
    }

    /// Reads and decodes the next peer message.
    pub fn read_peer_message(&mut self) -> Result<PeerMessage, NetError> {
        let frame = self.read_frame()?;
        Ok(PeerMessage::decode_payload(frame.opcode, &frame.payload)?)
    }

    /// Reads and decodes the next client↔server message.
    pub fn read_server_message(
        &mut self,
        from_server: bool,
    ) -> Result<ClientServerMessage, NetError> {
        let frame = self.read_frame()?;
        Ok(ClientServerMessage::decode_payload(frame.opcode, &frame.payload, from_server)?)
    }

    /// Writes a peer message.
    pub fn write_peer_message(&mut self, msg: &PeerMessage) -> Result<(), NetError> {
        self.stream.write_all(&encode_peer_message(msg))?;
        Ok(())
    }

    /// Writes a client↔server message.
    pub fn write_server_message(&mut self, msg: &ClientServerMessage) -> Result<(), NetError> {
        self.stream.write_all(&encode_client_server_message(msg))?;
        Ok(())
    }
}

/// Writes a peer message to a raw stream (used by writer threads holding a
/// cloned stream).
pub fn write_peer_message_to(stream: &mut TcpStream, msg: &PeerMessage) -> Result<(), NetError> {
    stream.write_all(&encode_peer_message(msg))?;
    Ok(())
}

/// Writes a client↔server message to a raw stream.
pub fn write_server_message_to(
    stream: &mut TcpStream,
    msg: &ClientServerMessage,
) -> Result<(), NetError> {
    stream.write_all(&encode_client_server_message(msg))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn frames_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut s = FramedStream::new(TcpStream::connect(addr).unwrap());
            s.write_peer_message(&PeerMessage::AskSharedFiles).unwrap();
            s.write_peer_message(&PeerMessage::AcceptUpload).unwrap();
        });
        let (conn, _) = listener.accept().unwrap();
        let mut r = FramedStream::new(conn);
        assert_eq!(r.read_peer_message().unwrap(), PeerMessage::AskSharedFiles);
        assert_eq!(r.read_peer_message().unwrap(), PeerMessage::AcceptUpload);
        sender.join().unwrap();
        assert!(matches!(r.read_peer_message(), Err(NetError::Closed)));
    }

    #[test]
    fn garbage_surfaces_protocol_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&[0x00, 1, 2, 3, 4, 5, 6, 7]).unwrap();
        });
        let (conn, _) = listener.accept().unwrap();
        let mut r = FramedStream::new(conn);
        assert!(matches!(r.read_peer_message(), Err(NetError::Proto(_))));
        sender.join().unwrap();
    }
}
