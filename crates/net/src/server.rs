//! A threaded TCP eDonkey index server.
//!
//! Speaks the real wire protocol over loopback (or any interface): LOGIN →
//! ID-CHANGE, OFFER-FILES indexing, GET-SOURCES → FOUND-SOURCES.  One
//! thread per connection; shared index behind a `parking_lot` lock.  This
//! is the server side of the zero-simulation proof that the honeypot
//! platform speaks genuine eDonkey.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use edonkey_proto::{ClientId, ClientServerMessage, FileId, Ipv4, PeerAddr};
use parking_lot::Mutex;

use crate::framing::{FramedStream, NetError};

#[derive(Default)]
struct Index {
    /// file → providers (address of the *peer-facing* listener the client
    /// announced as its port).
    providers: HashMap<FileId, Vec<PeerAddr>>,
    /// file → first-published (name, size), for search answering.
    metadata: HashMap<FileId, (String, u64)>,
    users: u32,
}

/// Handle to a running server.
pub struct NetServer {
    addr: SocketAddr,
    udp_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    udp_thread: Option<JoinHandle<()>>,
    index: Arc<Mutex<Index>>,
}

impl NetServer {
    /// Binds to `127.0.0.1:0` (ephemeral port) and starts accepting.
    pub fn start() -> std::io::Result<NetServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let index: Arc<Mutex<Index>> = Arc::new(Mutex::new(Index::default()));
        let next_low = Arc::new(AtomicU64::new(1));

        // Bind the UDP responder before spawning any thread: a bind
        // failure must not leak a blocking accept loop.
        let udp = UdpSocket::bind("127.0.0.1:0")?;
        let udp_addr = udp.local_addr()?;
        udp.set_read_timeout(Some(Duration::from_millis(200)))?;

        let accept_shutdown = shutdown.clone();
        let accept_index = index.clone();
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let index = accept_index.clone();
                let low = next_low.clone();
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &index, &low);
                });
            }
        });

        // UDP responder: global source queries and status pings (the side
        // channel through which peers not connected to this server still
        // find its providers — the paper's §III-B remark).
        let udp_shutdown = shutdown.clone();
        let udp_index = index.clone();
        let udp_thread = std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                if udp_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok((n, from)) = udp.recv_from(&mut buf) else { continue };
                let Ok(msg) = edonkey_proto::UdpMessage::decode(&buf[..n]) else { continue };
                match msg {
                    edonkey_proto::UdpMessage::GlobStatReq { challenge } => {
                        let idx = udp_index.lock();
                        let res = edonkey_proto::UdpMessage::GlobStatRes {
                            challenge,
                            users: idx.users,
                            files: idx.providers.len() as u32,
                        };
                        drop(idx);
                        let _ = udp.send_to(&res.encode(), from);
                    }
                    edonkey_proto::UdpMessage::GlobGetSources { files } => {
                        for file in files {
                            let sources =
                                udp_index.lock().providers.get(&file).cloned().unwrap_or_default();
                            if !sources.is_empty() {
                                let res =
                                    edonkey_proto::UdpMessage::GlobFoundSources { file, sources };
                                let _ = udp.send_to(&res.encode(), from);
                            }
                        }
                    }
                    // Server-side messages arriving at the server: ignore.
                    _ => {}
                }
            }
        });

        Ok(NetServer {
            addr,
            udp_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            udp_thread: Some(udp_thread),
            index,
        })
    }

    /// The server's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's UDP endpoint (global queries).
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// Number of logged-in users (diagnostics).
    pub fn users(&self) -> u32 {
        self.index.lock().users
    }

    /// Number of indexed files (diagnostics).
    pub fn indexed_files(&self) -> usize {
        self.index.lock().providers.len()
    }

    /// Stops accepting and joins the accept loop.  Existing per-connection
    /// threads die when their peers disconnect.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throw-away connection; the UDP
        // thread exits at its next read timeout.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.udp_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_inner();
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    index: &Mutex<Index>,
    next_low: &AtomicU64,
) -> Result<(), NetError> {
    let peer_sock = stream.peer_addr()?;
    let mut framed = FramedStream::new(stream);
    let mut announced_port = 0u16;
    let mut offered: Vec<FileId> = Vec::new();
    let mut logged_in = false;

    let result = loop {
        let msg = match framed.read_server_message(false) {
            Ok(m) => m,
            Err(e) => break Err(e),
        };
        match msg {
            ClientServerMessage::LoginRequest { port, .. } => {
                announced_port = port;
                logged_in = true;
                index.lock().users += 1;
                // Loopback peers are directly reachable: hand out a high ID
                // when the IP encodes one, a low ID otherwise.
                let ip = match peer_sock.ip() {
                    std::net::IpAddr::V4(v4) => Ipv4::from(v4),
                    std::net::IpAddr::V6(_) => Ipv4::new(127, 0, 0, 1),
                };
                let candidate = ClientId::high_from_ip(ip);
                let client_id = if candidate.is_high() {
                    candidate
                } else {
                    let n = next_low.fetch_add(1, Ordering::Relaxed) as u32;
                    ClientId::low(1 + n % (edonkey_proto::ids::LOW_ID_LIMIT - 2))
                };
                framed.write_server_message(&ClientServerMessage::IdChange { client_id })?;
                framed.write_server_message(&ClientServerMessage::ServerMessage {
                    text: "welcome to edonkey-net test server".into(),
                })?;
            }
            ClientServerMessage::OfferFiles { files } => {
                if !logged_in {
                    continue;
                }
                let ip = match peer_sock.ip() {
                    std::net::IpAddr::V4(v4) => Ipv4::from(v4),
                    std::net::IpAddr::V6(_) => Ipv4::new(127, 0, 0, 1),
                };
                let addr = PeerAddr::new(ip, announced_port);
                let mut idx = index.lock();
                for f in files {
                    let list = idx.providers.entry(f.file_id).or_default();
                    if !list.contains(&addr) {
                        list.push(addr);
                    }
                    if !offered.contains(&f.file_id) {
                        offered.push(f.file_id);
                    }
                    let meta = (f.name().unwrap_or("").to_string(), f.size().unwrap_or(0));
                    idx.metadata.entry(f.file_id).or_insert(meta);
                }
            }
            ClientServerMessage::GetSources { file_id } => {
                let sources = index.lock().providers.get(&file_id).cloned().unwrap_or_default();
                framed.write_server_message(&ClientServerMessage::FoundSources {
                    file_id,
                    sources,
                })?;
            }
            ClientServerMessage::SearchRequest { expr } => {
                let files = {
                    let idx = index.lock();
                    idx.providers
                        .iter()
                        .filter(|(_, providers)| !providers.is_empty())
                        .filter_map(|(fid, _)| {
                            let (name, size) = idx.metadata.get(fid)?;
                            expr.matches(name, *size, "")
                                .then(|| edonkey_proto::PublishedFile::new(*fid, name, *size))
                        })
                        .take(200)
                        .collect()
                };
                framed.write_server_message(&ClientServerMessage::SearchResult { files })?;
            }
            // Server-side messages arriving at the server are client bugs;
            // ignore them.
            _ => {}
        }
    };

    // Withdraw this client's state.
    let ip = match peer_sock.ip() {
        std::net::IpAddr::V4(v4) => Ipv4::from(v4),
        std::net::IpAddr::V6(_) => Ipv4::new(127, 0, 0, 1),
    };
    let addr = PeerAddr::new(ip, announced_port);
    let mut idx = index.lock();
    if logged_in {
        idx.users = idx.users.saturating_sub(1);
    }
    for f in offered {
        if let Some(list) = idx.providers.get_mut(&f) {
            list.retain(|a| *a != addr);
            if list.is_empty() {
                idx.providers.remove(&f);
                idx.metadata.remove(&f);
            }
        }
    }
    drop(idx);
    match result {
        Err(NetError::Closed) => Ok(()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::{PublishedFile, UserId};

    fn login(framed: &mut FramedStream, port: u16) -> ClientId {
        framed
            .write_server_message(&ClientServerMessage::LoginRequest {
                user_id: UserId::from_seed(b"t"),
                client_id: ClientId(0),
                port,
                tags: vec![],
            })
            .unwrap();
        let ClientServerMessage::IdChange { client_id } = framed.read_server_message(true).unwrap()
        else {
            panic!("expected ID-CHANGE")
        };
        // Swallow the welcome message.
        let ClientServerMessage::ServerMessage { .. } = framed.read_server_message(true).unwrap()
        else {
            panic!("expected SERVER-MESSAGE")
        };
        client_id
    }

    #[test]
    fn login_offer_sources_lifecycle() {
        let server = NetServer::start().unwrap();
        let mut a = FramedStream::new(TcpStream::connect(server.addr()).unwrap());
        let id = login(&mut a, 14662);
        // 127.0.0.1 little-endian is 0x0100007F ≥ 2^24: numerically a high
        // ID encoding the loopback address.
        assert!(id.is_high());
        assert_eq!(id.ip(), Some(Ipv4::new(127, 0, 0, 1)));
        assert_eq!(server.users(), 1);

        let file = FileId::from_seed(b"f");
        a.write_server_message(&ClientServerMessage::OfferFiles {
            files: vec![PublishedFile::new(file, "f.avi", 1000)],
        })
        .unwrap();
        a.write_server_message(&ClientServerMessage::GetSources { file_id: file }).unwrap();
        let ClientServerMessage::FoundSources { sources, .. } =
            a.read_server_message(true).unwrap()
        else {
            panic!("expected FOUND-SOURCES")
        };
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].port, 14662);

        // A second client sees the first one's offer.
        let mut b = FramedStream::new(TcpStream::connect(server.addr()).unwrap());
        login(&mut b, 14663);
        b.write_server_message(&ClientServerMessage::GetSources { file_id: file }).unwrap();
        let ClientServerMessage::FoundSources { sources, .. } =
            b.read_server_message(true).unwrap()
        else {
            panic!()
        };
        assert_eq!(sources.len(), 1);

        drop(a);
        // Disconnection withdraws offers (poll for the cleanup thread).
        for _ in 0..100 {
            if server.indexed_files() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(server.indexed_files(), 0, "offers withdrawn on disconnect");
        server.stop();
    }

    #[test]
    fn udp_global_queries_answered() {
        use edonkey_proto::UdpMessage;
        let server = NetServer::start().unwrap();
        let mut a = FramedStream::new(TcpStream::connect(server.addr()).unwrap());
        login(&mut a, 24662);
        let file = FileId::from_seed(b"udp-file");
        a.write_server_message(&ClientServerMessage::OfferFiles {
            files: vec![PublishedFile::new(file, "udp file.avi", 1_000)],
        })
        .unwrap();

        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(3))).unwrap();

        // Wait for the TCP offer to land in the index (it is processed by
        // another thread) before poking the UDP side.
        for _ in 0..200 {
            if server.indexed_files() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.indexed_files(), 1, "offer must be indexed first");

        // Status ping echoes the challenge.
        sock.send_to(&UdpMessage::GlobStatReq { challenge: 0xC0FFEE }.encode(), server.udp_addr())
            .unwrap();
        let mut buf = [0u8; 512];
        let (n, _) = sock.recv_from(&mut buf).unwrap();
        let UdpMessage::GlobStatRes { challenge, users, files } =
            UdpMessage::decode(&buf[..n]).unwrap()
        else {
            panic!("expected GLOB-STAT-RES")
        };
        assert_eq!(challenge, 0xC0FFEE);
        assert_eq!(users, 1);
        assert_eq!(files, 1);

        // Global source query.
        sock.send_to(&UdpMessage::GlobGetSources { files: vec![file] }.encode(), server.udp_addr())
            .unwrap();
        let (n, _) = sock.recv_from(&mut buf).unwrap();
        let UdpMessage::GlobFoundSources { file: f, sources } =
            UdpMessage::decode(&buf[..n]).unwrap()
        else {
            panic!("expected GLOB-FOUND-SOURCES")
        };
        assert_eq!(f, file);
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].port, 24662);

        // Unknown files draw no datagram (clients rely on timeouts).
        sock.send_to(
            &UdpMessage::GlobGetSources { files: vec![FileId::from_seed(b"none")] }.encode(),
            server.udp_addr(),
        )
        .unwrap();
        sock.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
        assert!(sock.recv_from(&mut buf).is_err(), "no answer expected");
        server.stop();
    }

    #[test]
    fn unknown_file_yields_empty_sources() {
        let server = NetServer::start().unwrap();
        let mut a = FramedStream::new(TcpStream::connect(server.addr()).unwrap());
        login(&mut a, 1);
        a.write_server_message(&ClientServerMessage::GetSources {
            file_id: FileId::from_seed(b"nothing"),
        })
        .unwrap();
        let ClientServerMessage::FoundSources { sources, .. } =
            a.read_server_message(true).unwrap()
        else {
            panic!()
        };
        assert!(sources.is_empty());
        server.stop();
    }
}
