//! # edonkey-net
//!
//! The real-TCP substrate: the same `honeypot` state machines and
//! `edonkey-proto` wire format as the simulation, but over genuine
//! `std::net` sockets on loopback.  This proves the measurement platform
//! speaks actual eDonkey — binary frames, directional opcodes, tag lists —
//! end to end:
//!
//! * [`framing`] — blocking framed streams over `TcpStream`;
//! * [`server`] — a threaded eDonkey index server (login / offer /
//!   get-sources);
//! * [`host`] — runs a honeypot over sockets: server session + peer
//!   listener, one thread per peer connection;
//! * [`peer`] — a scripted genuine peer driving the paper's Fig. 1 message
//!   flow for tests and examples.

pub mod framing;
pub mod host;
pub mod peer;
pub mod server;

pub use framing::{FramedStream, NetError};
pub use host::HoneypotHost;
pub use peer::{DownloadAttempt, ScriptedPeer};
pub use server::NetServer;
