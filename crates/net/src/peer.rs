//! A scripted eDonkey peer for integration tests and examples.
//!
//! Performs the genuine client-side message flow of paper Fig. 1 against a
//! real server and honeypot: login → GET-SOURCES → HELLO → (HELLO-ANSWER)
//! → START-UPLOAD → (ACCEPT-UPLOAD) → REQUEST-PARTS → observe what comes
//! back.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use edonkey_proto::tags::{special, Tag};
use edonkey_proto::{
    ClientId, ClientServerMessage, FileId, PartRange, PeerAddr, PeerMessage, PublishedFile,
    SearchExpr, UserId,
};

use crate::framing::{FramedStream, NetError};

/// A scripted peer.
pub struct ScriptedPeer {
    pub user_id: UserId,
    pub name: String,
    server: FramedStream,
    pub client_id: ClientId,
}

/// Outcome of one download attempt against a provider.
#[derive(Debug, Default)]
pub struct DownloadAttempt {
    pub hello_answered: bool,
    pub upload_accepted: bool,
    /// SENDING-PART payload bytes received.
    pub bytes_received: usize,
    /// Number of REQUEST-PARTS that received at least one answer block.
    pub answered_requests: u32,
    /// Number of REQUEST-PARTS that timed out unanswered.
    pub timed_out_requests: u32,
    /// Shared-list request received from the provider (honeypots ask).
    pub was_asked_shared_files: bool,
}

impl ScriptedPeer {
    /// Connects and logs into the server.
    pub fn login(server_addr: SocketAddr, name: &str) -> Result<Self, NetError> {
        let mut server = FramedStream::new(TcpStream::connect(server_addr)?);
        let user_id = UserId::from_seed(name.as_bytes());
        server.write_server_message(&ClientServerMessage::LoginRequest {
            user_id,
            client_id: ClientId(0),
            port: 4662,
            tags: vec![Tag::string(special::NAME, name), Tag::u32(special::VERSION, 0x49)],
        })?;
        let mut client_id = ClientId(0);
        // Consume the login burst (ID-CHANGE + MOTD).
        for _ in 0..2 {
            match server.read_server_message(true)? {
                ClientServerMessage::IdChange { client_id: id } => client_id = id,
                ClientServerMessage::ServerMessage { .. } => {}
                other => {
                    return Err(NetError::Proto(edonkey_proto::ProtoError::Invalid(Box::leak(
                        format!("unexpected login reply {other:?}").into_boxed_str(),
                    ))))
                }
            }
        }
        Ok(ScriptedPeer { user_id, name: name.to_string(), server, client_id })
    }

    /// Asks the server who provides `file_id`.
    pub fn get_sources(&mut self, file_id: FileId) -> Result<Vec<PeerAddr>, NetError> {
        self.server.write_server_message(&ClientServerMessage::GetSources { file_id })?;
        loop {
            match self.server.read_server_message(true)? {
                ClientServerMessage::FoundSources { sources, .. } => return Ok(sources),
                ClientServerMessage::ServerMessage { .. }
                | ClientServerMessage::ServerStatus { .. } => continue,
                other => {
                    return Err(NetError::Proto(edonkey_proto::ProtoError::Invalid(Box::leak(
                        format!("unexpected answer {other:?}").into_boxed_str(),
                    ))))
                }
            }
        }
    }

    /// Runs a keyword search against the server.
    pub fn search(&mut self, expr: SearchExpr) -> Result<Vec<PublishedFile>, NetError> {
        self.server.write_server_message(&ClientServerMessage::SearchRequest { expr })?;
        loop {
            match self.server.read_server_message(true)? {
                ClientServerMessage::SearchResult { files } => return Ok(files),
                ClientServerMessage::ServerMessage { .. }
                | ClientServerMessage::ServerStatus { .. } => continue,
                other => {
                    return Err(NetError::Proto(edonkey_proto::ProtoError::Invalid(Box::leak(
                        format!("unexpected answer {other:?}").into_boxed_str(),
                    ))))
                }
            }
        }
    }

    /// Publishes files (so peers can play "provider" in tests too).
    pub fn offer(&mut self, files: &[(FileId, &str, u64)]) -> Result<(), NetError> {
        self.server.write_server_message(&ClientServerMessage::OfferFiles {
            files: files.iter().map(|(id, n, s)| PublishedFile::new(*id, n, *s)).collect(),
        })?;
        Ok(())
    }

    /// Runs one download attempt against the provider at `addr`,
    /// requesting up to `max_requests` block triples of `file_id`, waiting
    /// `request_timeout` for each answer.  `shared_files` is what this
    /// peer reveals if asked for its list (empty list = sharing disabled).
    pub fn attempt_download(
        &mut self,
        addr: SocketAddr,
        file_id: FileId,
        max_requests: u32,
        request_timeout: Duration,
        shared_files: &[(FileId, &str, u64)],
    ) -> Result<DownloadAttempt, NetError> {
        let mut out = DownloadAttempt::default();
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(request_timeout))?;
        let mut conn = FramedStream::new(stream);

        conn.write_peer_message(&PeerMessage::Hello {
            user_id: self.user_id,
            client_id: self.client_id,
            port: 4662,
            tags: vec![
                Tag::string(special::NAME, self.name.clone()),
                Tag::u32(special::VERSION, 0x49),
            ],
        })?;

        // HELLO-ANSWER (and possibly ASK-SHARED-FILES) arrive first.
        loop {
            match conn.read_peer_message() {
                Ok(PeerMessage::HelloAnswer { .. }) => {
                    out.hello_answered = true;
                    break;
                }
                Ok(PeerMessage::AskSharedFiles) => {
                    out.was_asked_shared_files = true;
                    self.answer_shared(&mut conn, shared_files)?;
                }
                Ok(_) => continue,
                Err(NetError::Io(e)) if is_timeout(&e) => return Ok(out),
                Err(NetError::Closed) => return Ok(out),
                Err(e) => return Err(e),
            }
        }

        conn.write_peer_message(&PeerMessage::StartUpload { file_id })?;
        loop {
            match conn.read_peer_message() {
                Ok(PeerMessage::AcceptUpload) => {
                    out.upload_accepted = true;
                    break;
                }
                Ok(PeerMessage::AskSharedFiles) => {
                    out.was_asked_shared_files = true;
                    self.answer_shared(&mut conn, shared_files)?;
                }
                Ok(PeerMessage::QueueRank { .. }) | Ok(_) => continue,
                Err(NetError::Io(e)) if is_timeout(&e) => return Ok(out),
                Err(NetError::Closed) => return Ok(out),
                Err(e) => return Err(e),
            }
        }

        const BLOCK: u32 = edonkey_proto::parts::BLOCK_SIZE as u32;
        for i in 0..max_requests {
            let base = i * 3 * BLOCK;
            conn.write_peer_message(&PeerMessage::RequestParts {
                file_id,
                ranges: [
                    PartRange::new(base, base + BLOCK),
                    PartRange::new(base + BLOCK, base + 2 * BLOCK),
                    PartRange::new(base + 2 * BLOCK, base + 3 * BLOCK),
                ],
            })?;
            let mut answered = false;
            // Expect up to three SENDING-PART answers; any timeout ends the
            // wait for this request.
            for _ in 0..3 {
                match conn.read_peer_message() {
                    Ok(PeerMessage::SendingPart { data, .. }) => {
                        answered = true;
                        out.bytes_received += data.len();
                    }
                    Ok(PeerMessage::AskSharedFiles) => {
                        out.was_asked_shared_files = true;
                        self.answer_shared(&mut conn, shared_files)?;
                    }
                    Ok(_) => continue,
                    Err(NetError::Io(e)) if is_timeout(&e) => break,
                    Err(NetError::Closed) => break,
                    Err(e) => return Err(e),
                }
            }
            if answered {
                out.answered_requests += 1;
            } else {
                out.timed_out_requests += 1;
            }
        }
        Ok(out)
    }

    fn answer_shared(
        &self,
        conn: &mut FramedStream,
        shared_files: &[(FileId, &str, u64)],
    ) -> Result<(), NetError> {
        conn.write_peer_message(&PeerMessage::AskSharedFilesAnswer {
            files: shared_files.iter().map(|(id, n, s)| PublishedFile::new(*id, n, *s)).collect(),
        })
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}
