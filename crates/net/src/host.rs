//! Runs a [`honeypot::Honeypot`] state machine over real TCP sockets.
//!
//! The host owns two socket roles:
//!
//! * a **client connection** to the eDonkey server (login, OFFER-FILES,
//!   keep-alives) with a dedicated writer fed by a crossbeam channel, so
//!   peer-connection threads can publish greedy adoptions without sharing
//!   the socket;
//! * a **listener** for incoming peer connections; each accepted peer gets
//!   a thread that decodes frames, drives the shared honeypot state
//!   machine, and writes back the `Reply` actions.
//!
//! Time is wall-clock milliseconds since host start, mapped onto
//! [`netsim::SimTime`] so the log schema is identical to the simulation's.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use edonkey_proto::{ClientServerMessage, Ipv4};
use honeypot::{Action, ConnId, Honeypot, LogChunk, StatusReport};
use netsim::SimTime;
use parking_lot::Mutex;

use crate::framing::{write_server_message_to, FramedStream, NetError};

/// A honeypot running over TCP.
pub struct HoneypotHost {
    honeypot: Arc<Mutex<Honeypot>>,
    peer_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Set by [`stop`] before it tears down the server session, so the
    /// reader thread can tell a deliberate kill from the server dropping us.
    stopping: Arc<AtomicBool>,
    /// Latched by the reader thread when the server session dies while the
    /// host was *not* stopping.
    session_lost: Arc<AtomicBool>,
    started: Instant,
    accept_thread: Option<JoinHandle<()>>,
    server_reader: Option<JoinHandle<()>>,
    server_writer: Option<JoinHandle<()>>,
    to_server: Sender<ClientServerMessage>,
    /// A clone of the server-session stream, kept to force-shutdown the
    /// reader thread on stop.
    server_stream: TcpStream,
    status: Arc<Mutex<Vec<StatusReport>>>,
    live_peers: Arc<AtomicU64>,
}

impl HoneypotHost {
    /// Connects `honeypot` to the server at `server_addr` and starts
    /// listening for peers on an ephemeral loopback port.
    pub fn start(mut honeypot: Honeypot, server_addr: SocketAddr) -> Result<Self, NetError> {
        let started = Instant::now();
        let now = SimTime::ZERO;

        // Peer listener first: its port is announced in the login.
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let peer_addr = listener.local_addr()?;

        let server_stream = TcpStream::connect(server_addr)?;
        let mut server_framed = FramedStream::new(server_stream);
        let mut writer_stream = server_framed.try_clone_stream()?;
        let shutdown_stream = server_framed.try_clone_stream()?;

        let (to_server, from_host) = unbounded::<ClientServerMessage>();
        let status: Arc<Mutex<Vec<StatusReport>>> = Arc::new(Mutex::new(Vec::new()));

        // Kick off the login handshake.
        let connect_actions = honeypot.connect(now);
        let honeypot = Arc::new(Mutex::new(honeypot));
        route_actions(connect_actions, &to_server, &status);

        // Server writer: drains the channel onto the socket.
        let server_writer = std::thread::spawn(move || {
            while let Ok(msg) = from_host.recv() {
                // Patch the announced port into the login so peers can find
                // the real listener.
                let msg = match msg {
                    ClientServerMessage::LoginRequest { user_id, client_id, tags, .. } => {
                        ClientServerMessage::LoginRequest {
                            user_id,
                            client_id,
                            port: peer_addr.port(),
                            tags,
                        }
                    }
                    other => other,
                };
                if write_server_message_to(&mut writer_stream, &msg).is_err() {
                    break;
                }
            }
        });

        // Server reader: feeds server messages into the state machine. When
        // the session dies and we are *not* stopping, that is the server
        // dropping us mid-session: report it as a clean disconnect instead
        // of silently parking the host, so a supervisor can distinguish
        // crash from kill.
        let stopping = Arc::new(AtomicBool::new(false));
        let session_lost = Arc::new(AtomicBool::new(false));
        let reader_honeypot = honeypot.clone();
        let reader_sender = to_server.clone();
        let reader_status = status.clone();
        let reader_started = started;
        let reader_stopping = stopping.clone();
        let reader_lost = session_lost.clone();
        let server_reader = std::thread::spawn(move || {
            while let Ok(msg) = server_framed.read_server_message(true) {
                let now = SimTime::from_millis(reader_started.elapsed().as_millis() as u64);
                let actions = reader_honeypot.lock().on_server_message(now, &msg);
                route_actions(actions, &reader_sender, &reader_status);
            }
            if !reader_stopping.load(Ordering::SeqCst) {
                reader_lost.store(true, Ordering::SeqCst);
                let now = SimTime::from_millis(reader_started.elapsed().as_millis() as u64);
                let actions = reader_honeypot.lock().on_disconnected(now);
                route_actions(actions, &reader_sender, &reader_status);
            }
        });

        // Peer accept loop.
        let shutdown = Arc::new(AtomicBool::new(false));
        let live_peers = Arc::new(AtomicU64::new(0));
        let accept_shutdown = shutdown.clone();
        let accept_honeypot = honeypot.clone();
        let accept_sender = to_server.clone();
        let accept_status = status.clone();
        let accept_live = live_peers.clone();
        let next_conn = AtomicU64::new(1);
        let accept_thread = std::thread::spawn(move || {
            // Transient accept errors (EMFILE/ENFILE when peers flood in,
            // ECONNABORTED, EINTR) must not kill the listener: back off and
            // retry, escalating while the condition persists and resetting
            // on the next successful accept.
            let mut accept_errors: u32 = 0;
            for conn in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match conn {
                    Ok(s) => {
                        accept_errors = 0;
                        s
                    }
                    Err(_) => {
                        accept_errors = accept_errors.saturating_add(1);
                        let pause = (5u64 << accept_errors.min(6)).min(250);
                        std::thread::sleep(std::time::Duration::from_millis(pause));
                        continue;
                    }
                };
                let conn_id = ConnId(next_conn.fetch_add(1, Ordering::Relaxed));
                let hp = accept_honeypot.clone();
                let sender = accept_sender.clone();
                let status = accept_status.clone();
                let live = accept_live.clone();
                live.fetch_add(1, Ordering::Relaxed);
                std::thread::spawn(move || {
                    let _ = serve_peer(stream, conn_id, &hp, &sender, &status, started);
                    hp.lock().on_peer_disconnected(conn_id);
                    live.fetch_sub(1, Ordering::Relaxed);
                });
            }
        });

        Ok(HoneypotHost {
            honeypot,
            peer_addr,
            shutdown,
            stopping,
            session_lost,
            started,
            accept_thread: Some(accept_thread),
            server_reader: Some(server_reader),
            server_writer: Some(server_writer),
            to_server,
            server_stream: shutdown_stream,
            status,
            live_peers,
        })
    }

    /// The address peers connect to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer_addr
    }

    /// Milliseconds since host start, as the log's time base.
    pub fn now(&self) -> SimTime {
        SimTime::from_millis(self.started.elapsed().as_millis() as u64)
    }

    /// Waits until the honeypot reports Connected (the login round trip
    /// completed), up to `timeout`.
    pub fn wait_connected(&self, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if matches!(self.honeypot.lock().status(), honeypot::HoneypotStatus::Connected { .. }) {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        false
    }

    /// Sends a keep-alive OFFER-FILES now.
    pub fn keepalive(&self) {
        let now = self.now();
        let actions = self.honeypot.lock().keepalive(now);
        route_actions(actions, &self.to_server, &self.status);
    }

    /// Collects the honeypot's buffered log.
    pub fn collect_log(&self) -> LogChunk {
        self.honeypot.lock().collect_log()
    }

    /// Status reports seen so far.
    pub fn status_reports(&self) -> Vec<StatusReport> {
        self.status.lock().clone()
    }

    /// Currently connected peer count.
    pub fn live_peers(&self) -> u64 {
        self.live_peers.load(Ordering::Relaxed)
    }

    /// True if the server session died while the host was *not* being
    /// stopped (the server crashed or dropped us mid-session). The honeypot
    /// has already been transitioned to `Disconnected` and a status report
    /// pushed, so a supervisor can relaunch rather than hang.
    pub fn server_session_lost(&self) -> bool {
        self.session_lost.load(Ordering::SeqCst)
    }

    /// Stops the host: collects the final log chunk, closes the listener,
    /// tears down the server session and joins the service threads.
    pub fn stop(mut self) -> LogChunk {
        let chunk = self.collect_log();
        self.stopping.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throw-away connection, then join
        // the accept loop (its per-peer threads exit when their peers
        // disconnect).
        let _ = TcpStream::connect(self.peer_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Kill the server session: the reader's blocking read fails and the
        // thread exits, dropping its channel sender.
        let _ = self.server_stream.shutdown(std::net::Shutdown::Both);
        if let Some(t) = self.server_reader.take() {
            let _ = t.join();
        }
        // Drop our own sender; once every clone is gone the writer's recv
        // fails and it exits too.
        let (dummy, _) = unbounded();
        self.to_server = dummy;
        if let Some(t) = self.server_writer.take() {
            let _ = t.join();
        }
        chunk
    }
}

fn route_actions(
    actions: Vec<Action>,
    to_server: &Sender<ClientServerMessage>,
    status: &Mutex<Vec<StatusReport>>,
) {
    for a in actions {
        match a {
            Action::SendServer(msg) => {
                let _ = to_server.send(msg);
            }
            Action::Report(r) => status.lock().push(r),
            Action::Reply(_) => {
                debug_assert!(false, "replies are handled by the peer thread");
            }
        }
    }
}

fn serve_peer(
    stream: TcpStream,
    conn: ConnId,
    honeypot: &Mutex<Honeypot>,
    to_server: &Sender<ClientServerMessage>,
    status: &Mutex<Vec<StatusReport>>,
    started: Instant,
) -> Result<(), NetError> {
    let src_ip = match stream.peer_addr()?.ip() {
        std::net::IpAddr::V4(v4) => Ipv4::from(v4),
        std::net::IpAddr::V6(_) => Ipv4::new(127, 0, 0, 1),
    };
    let mut framed = FramedStream::new(stream);
    loop {
        let msg = match framed.read_peer_message() {
            Ok(m) => m,
            Err(NetError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        let now = SimTime::from_millis(started.elapsed().as_millis() as u64);
        let actions = honeypot.lock().on_peer_message(now, conn, src_ip, &msg);
        for a in actions {
            match a {
                Action::Reply(reply) => framed.write_peer_message(&reply)?,
                Action::SendServer(m) => {
                    let _ = to_server.send(m);
                }
                Action::Report(r) => status.lock().push(r),
            }
        }
    }
}
