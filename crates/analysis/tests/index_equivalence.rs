//! The index-correctness guarantee: every figure derived from
//! [`LogIndex`] equals the one computed by the original direct scan, and
//! the index itself is a pure function of the log regardless of the rayon
//! pool that builds it.  Together with `sim/tests/determinism.rs` this
//! pins both axes of the hot-path overhaul: same log whatever the queue,
//! same figures whatever the path that computes them.

use edonkey_analysis::testutil::synthetic_log_with_files;
use edonkey_analysis::{
    distinct, strategy, subset, table, timeseries, toppeer, IndexBuilder, LogIndex,
};
use honeypot::log::FILE_NONE;
use honeypot::{AnonPeerId, AnonSharedList, HoneypotId, MeasurementLog, QueryKind};
use netsim::{Rng, SimTime};

const KINDS: [QueryKind; 3] = [QueryKind::Hello, QueryKind::StartUpload, QueryKind::RequestPart];

/// A dense, deterministic three-day log: 600 records over 40 peers, 4
/// honeypots (2 per strategy), 3 files, plus a handful of shared lists.
fn busy_log(seed: u64) -> MeasurementLog {
    let mut rng = Rng::seed_from(seed);
    let mut entries = Vec::new();
    for _ in 0..600 {
        let peer = rng.below(40) as u32;
        let kind = KINDS[rng.below(3) as usize];
        let hp = rng.below(4) as u32;
        let at = SimTime(rng.below(3 * 24 * 60) * 60_000); // minute grid, 3 days
        let file = if kind == QueryKind::Hello { FILE_NONE } else { rng.below(3) as u32 };
        entries.push((peer, kind, hp, at, file));
    }
    let mut log = synthetic_log_with_files(&entries);
    for i in 0..10u64 {
        log.shared_lists.push(AnonSharedList {
            at: SimTime(rng.below(3 * 24 * 60) * 60_000),
            honeypot: HoneypotId(rng.below(4) as u32),
            peer: AnonPeerId(rng.below(40) as u32),
            files: (0..=(i % 3) as u32).collect(),
        });
    }
    log
}

fn assert_growth_eq(a: &distinct::PeerGrowth, b: &distinct::PeerGrowth, what: &str) {
    assert_eq!(a.cumulative, b.cumulative, "{what}: cumulative");
    assert_eq!(a.new_per_day, b.new_per_day, "{what}: new_per_day");
}

fn assert_cmp_eq(a: &strategy::StrategyComparison, b: &strategy::StrategyComparison, what: &str) {
    assert_eq!(a.random_content, b.random_content, "{what}: random_content");
    assert_eq!(a.no_content, b.no_content, "{what}: no_content");
}

#[test]
fn indexed_figures_equal_direct_scans() {
    for seed in [3u64, 0xED0_2009] {
        let log = busy_log(seed);
        let ix = LogIndex::build(&log);

        // Figs. 2–3 + Table I growth.
        assert_growth_eq(&ix.peer_growth(), &distinct::peer_growth(&log), "peer_growth");
        for kind in KINDS {
            assert_growth_eq(
                &ix.peer_growth_filtered(Some(kind)),
                &distinct::peer_growth_filtered(&log, Some(kind)),
                "peer_growth_filtered",
            );
        }
        assert_growth_eq(&ix.file_growth(), &distinct::file_growth(&log), "file_growth");

        // Figs. 4–9.
        for kind in KINDS {
            assert_eq!(
                ix.hourly_counts(kind).counts,
                timeseries::hourly_counts(&log, kind).counts,
                "hourly_counts"
            );
            assert_eq!(ix.first_event_ms(kind), timeseries::first_event_ms(&log, kind));
            assert_cmp_eq(
                &ix.distinct_peers_by_strategy(kind),
                &strategy::distinct_peers_by_strategy(&log, kind),
                "distinct_peers_by_strategy",
            );
            assert_cmp_eq(
                &ix.messages_by_strategy(kind),
                &strategy::messages_by_strategy(&log, kind),
                "messages_by_strategy",
            );
            assert_eq!(ix.top_peer(kind), toppeer::top_peer(&log, kind), "top_peer");
        }
        assert_eq!(
            format!("{:?}", toppeer::top_peer_summary_indexed(&log, &ix)),
            format!("{:?}", toppeer::top_peer_summary(&log)),
            "top_peer_summary"
        );

        // Figs. 10–12 input bitsets (PeerSet has no PartialEq; the Debug
        // rendering covers the exact words).
        assert_eq!(
            format!("{:?}", ix.honeypot_peer_sets()),
            format!("{:?}", subset::peer_sets_by_honeypot(&log)),
            "honeypot peer sets"
        );
        assert_eq!(
            format!("{:?}", ix.file_peer_sets()),
            format!("{:?}", subset::peer_sets_by_file(&log)),
            "file peer sets"
        );

        // The runner's self-check.
        assert_eq!(ix.recount_distinct_peers(), table::recount_distinct_peers(&log));
    }
}

#[test]
fn streaming_builder_matches_one_shot_build_for_any_chunking() {
    let log = busy_log(29);
    let reference = LogIndex::build(&log);
    // Feed the same records in several different partitions — including
    // one record at a time and ragged prime-sized chunks — interleaving
    // shared lists mid-stream.  Chunking must be invisible.
    for chunk in [1usize, 7, 113, log.records.len()] {
        let mut b = IndexBuilder::for_log(&log);
        let mut lists = log.shared_lists.iter();
        for records in log.records.chunks(chunk) {
            b.push_records(records);
            if let Some(l) = lists.next() {
                b.push_shared_list(l.at, &l.files);
            }
        }
        for l in lists {
            b.push_shared_list(l.at, &l.files);
        }
        let ix = b.finish();
        assert_growth_eq(&ix.peer_growth(), &reference.peer_growth(), "peer_growth");
        assert_growth_eq(&ix.file_growth(), &reference.file_growth(), "file_growth");
        for kind in KINDS {
            assert_eq!(ix.hourly_counts(kind).counts, reference.hourly_counts(kind).counts);
            assert_eq!(ix.top_peer(kind), reference.top_peer(kind));
            assert_eq!(ix.first_event_ms(kind), reference.first_event_ms(kind));
        }
        assert_eq!(
            format!("{:?}", ix.honeypot_peer_sets()),
            format!("{:?}", reference.honeypot_peer_sets()),
            "bitsets must be identical under chunk size {chunk}"
        );
        assert_eq!(
            format!("{:?}", ix.file_peer_sets()),
            format!("{:?}", reference.file_peer_sets()),
        );
    }
}

#[test]
fn absorbing_split_builders_matches_one_builder() {
    let log = busy_log(31);
    let reference = LogIndex::build_sequential(&log);
    let mid = log.records.len() / 2;
    let mut a = IndexBuilder::for_log(&log);
    a.push_records(&log.records[..mid]);
    let mut b = IndexBuilder::for_log(&log);
    b.push_records(&log.records[mid..]);
    for l in &log.shared_lists {
        b.push_shared_list(l.at, &l.files);
    }
    a.absorb(b);
    let ix = a.finish();
    assert_growth_eq(&ix.peer_growth(), &reference.peer_growth(), "peer_growth");
    assert_growth_eq(&ix.file_growth(), &reference.file_growth(), "file_growth");
    assert_eq!(
        format!("{:?}", ix.honeypot_peer_sets()),
        format!("{:?}", reference.honeypot_peer_sets()),
    );
}

#[test]
fn index_is_thread_count_independent() {
    let log = busy_log(11);
    let reference = LogIndex::build_sequential(&log);
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
        // Force the chunked path: build() would auto-select sequential for
        // a log this small, and the property under test is that the
        // *parallel* build is schedule-independent.
        let ix = pool.install(|| LogIndex::build_parallel(&log));
        assert_growth_eq(&ix.peer_growth(), &reference.peer_growth(), "peer_growth");
        assert_growth_eq(&ix.file_growth(), &reference.file_growth(), "file_growth");
        for kind in KINDS {
            assert_eq!(ix.hourly_counts(kind).counts, reference.hourly_counts(kind).counts);
            assert_eq!(ix.top_peer(kind), reference.top_peer(kind));
        }
        assert_eq!(
            format!("{:?}", ix.honeypot_peer_sets()),
            format!("{:?}", reference.honeypot_peer_sets()),
            "bitsets must be identical under {threads} threads"
        );
        assert_eq!(
            format!("{:?}", ix.file_peer_sets()),
            format!("{:?}", reference.file_peer_sets()),
        );
    }
}
