//! Server-side analysis: the streaming index over a server capture and the
//! cross-validation of the two measurement modalities.
//!
//! The sibling paper ("Ten weeks in the life of an eDonkey server")
//! observes the network from the *server's* vantage point; this repo's
//! main paper observes it from distributed honeypots.  On a simulated run
//! both vantage points watch the same ground truth, so their derived
//! figures must agree:
//!
//! * **peer discovery** — daily cumulative distinct peers grows in step on
//!   both sides (the server sees a superset: every peer logs in, only some
//!   reach a honeypot);
//! * **diurnal oscillation** — the hour-of-day activity profile is a
//!   property of the population, not of the observer;
//! * **file popularity** — the ranking of files by server GET-SOURCES
//!   queries matches the ranking by honeypot download queries.
//!
//! [`ServerIndexBuilder`] is the [`crate::IndexBuilder`] twin for server
//! captures: it consumes [`ServerRecord`]s one at a time (streamed off a
//! [`honeypot::ServerLogReader`], never materialising the capture) and its
//! accumulation is chunking-insensitive (min / add / max only).
//! [`cross_validate`] joins the finished [`ServerIndex`] against a
//! honeypot [`MeasurementLog`] of the same run and scores the agreement;
//! [`Tolerance`] holds the documented acceptance thresholds the CI smoke
//! gate enforces.

use std::collections::HashMap;

use edonkey_proto::FileId;
use honeypot::log::FILE_NONE;
use honeypot::serverlog::{ServerQueryKind, SERVER_QUERY_KINDS};
use honeypot::{IpHash, MeasurementLog, ServerRecord, SERVER_PEER_SESSION_BASE};
use netsim::time::{MS_PER_DAY, MS_PER_HOUR};
use netsim::SimTime;
use serde::Serialize;

use crate::distinct::peer_growth;
use crate::index::{cumulate, new_per_bucket, NEVER};
use crate::timeseries::{hourly_counts, HourlySeries};

/// Number of server query kinds.
const SERVER_KINDS: usize = SERVER_QUERY_KINDS.len();

/// Minimum per-side observation count for a file to enter the popularity
/// rank correlation (see [`cross_validate`]).
const MIN_POPULARITY_COUNT: u64 = 3;

/// Streaming accumulator over server-capture records.
///
/// Dimensioned by the capture duration (for padded hourly/daily series);
/// feed records in any order or chunking — every fold is min / add / max,
/// so any partition of the same records yields the same index.
pub struct ServerIndexBuilder {
    days: usize,
    hours: usize,
    records: u64,
    kind_counts: [u64; SERVER_KINDS],
    /// Earliest login (ms) per *peer* digest — honeypot sessions and the
    /// zero digest of server-originated rows are excluded, so this is the
    /// server's view of the genuine-peer population.
    peer_first: HashMap<IpHash, u64>,
    /// Hourly peer-query counts (Status samples excluded: they are the
    /// server talking to itself, not network activity).
    hourly: Vec<u64>,
    /// GET-SOURCES queries per file — the server-side *demand* signal.
    file_queries: HashMap<FileId, u64>,
    /// Peer OFFER-FILES per lead file (the wire record carries the first
    /// file of the offered list) — the server-side *supply* signal.
    /// Shared folders are popularity-weighted samples of the catalog, so
    /// these counts span files the honeypots never advertise.
    file_offers: HashMap<FileId, u64>,
    peak_users: u32,
    peak_indexed_files: u64,
}

impl ServerIndexBuilder {
    /// A builder dimensioned by the capture duration.
    pub fn new(duration: SimTime) -> Self {
        ServerIndexBuilder {
            days: duration.as_millis().div_ceil(MS_PER_DAY).max(1) as usize,
            hours: duration.as_millis().div_ceil(MS_PER_HOUR).max(1) as usize,
            records: 0,
            kind_counts: [0; SERVER_KINDS],
            peer_first: HashMap::new(),
            hourly: Vec::new(),
            file_queries: HashMap::new(),
            file_offers: HashMap::new(),
            peak_users: 0,
            peak_indexed_files: 0,
        }
    }

    /// Accumulates one capture record.
    pub fn push_record(&mut self, r: &ServerRecord) {
        self.records += 1;
        let at = r.at.as_millis();
        self.kind_counts[r.kind.tag() as usize] += 1;
        if r.kind == ServerQueryKind::Status {
            // Status rows snapshot server-wide gauges (users in `payload`,
            // indexed files in `session`); they carry no peer.
            self.peak_users = self.peak_users.max(r.payload);
            self.peak_indexed_files = self.peak_indexed_files.max(r.session);
            return;
        }
        let hour = (at / MS_PER_HOUR) as usize;
        if hour >= self.hourly.len() {
            self.hourly.resize(hour + 1, 0);
        }
        self.hourly[hour] += 1;
        if r.session >= SERVER_PEER_SESSION_BASE && r.kind == ServerQueryKind::Login {
            let first = self.peer_first.entry(r.peer).or_insert(NEVER);
            *first = (*first).min(at);
        }
        if r.kind == ServerQueryKind::GetSources {
            *self.file_queries.entry(r.file).or_insert(0) += 1;
        }
        if r.kind == ServerQueryKind::OfferFiles
            && r.session >= SERVER_PEER_SESSION_BASE
            && r.file != FileId([0; 16])
        {
            *self.file_offers.entry(r.file).or_insert(0) += 1;
        }
    }

    /// Accumulates a chunk of records.
    pub fn push_records(&mut self, records: &[ServerRecord]) {
        for r in records {
            self.push_record(r);
        }
    }

    /// Finalises into the immutable index.
    pub fn finish(self) -> ServerIndex {
        let firsts: Vec<u64> = self.peer_first.values().copied().collect();
        let hours = self.hours;
        let mut hourly = self.hourly;
        if hourly.len() < hours {
            hourly.resize(hours, 0);
        }
        let sorted = |m: HashMap<FileId, u64>| {
            let mut v: Vec<(FileId, u64)> = m.into_iter().collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            v
        };
        let file_queries = sorted(self.file_queries);
        let file_offers = sorted(self.file_offers);
        ServerIndex {
            records: self.records,
            kind_counts: self.kind_counts,
            distinct_peers: firsts.len() as u64,
            peer_cumulative: cumulate(new_per_bucket(&firsts, MS_PER_DAY, self.days)),
            hourly: HourlySeries { counts: hourly },
            file_queries,
            file_offers,
            peak_users: self.peak_users,
            peak_indexed_files: self.peak_indexed_files,
        }
    }
}

/// The finished server-side index: every aggregate the cross-validation
/// figures need, independent of capture length.
#[derive(Clone, Debug, Serialize)]
pub struct ServerIndex {
    /// Total capture records consumed.
    pub records: u64,
    /// Record counts per [`ServerQueryKind`], indexed by tag.
    pub kind_counts: [u64; SERVER_KINDS],
    /// Distinct genuine peers that logged in.
    pub distinct_peers: u64,
    /// Cumulative distinct peers at the end of each day (the server-side
    /// Fig. 2 twin).
    pub peer_cumulative: Vec<u64>,
    /// Hourly peer-query volume (the server-side Fig. 4 twin).
    pub hourly: HourlySeries,
    /// GET-SOURCES count per file, most-queried first (demand).
    pub file_queries: Vec<(FileId, u64)>,
    /// Peer OFFER-FILES count per lead file, most-offered first (supply).
    pub file_offers: Vec<(FileId, u64)>,
    /// Largest concurrent-user gauge seen in Status samples.
    pub peak_users: u32,
    /// Largest indexed-file gauge seen in Status samples.
    pub peak_indexed_files: u64,
}

impl ServerIndex {
    /// Count of records of one kind.
    pub fn count_of(&self, kind: ServerQueryKind) -> u64 {
        self.kind_counts[kind.tag() as usize]
    }
}

/// The cross-validation scores between a server capture and a honeypot
/// measurement of the same run.
#[derive(Clone, Debug, Serialize)]
pub struct CrossValidation {
    /// Distinct peers seen by the server.
    pub server_peers: u64,
    /// Distinct peers seen by the honeypots.
    pub honeypot_peers: u64,
    /// `honeypot_peers / server_peers` — the fraction of the population
    /// the honeypots reached.  The server sees every peer (all log in);
    /// honeypots only those that query them, so this is in `(0, 1]`.
    pub peer_coverage: f64,
    /// Pearson correlation between the two daily cumulative discovery
    /// curves.
    pub discovery_corr: f64,
    /// Pearson correlation between the two 24-bin hour-of-day activity
    /// profiles.
    pub diurnal_corr: f64,
    /// Day/night ratio of the server's hourly series.
    pub server_day_night: f64,
    /// Day/night ratio of the honeypots' HELLO series.
    pub honeypot_day_night: f64,
    /// Spearman rank correlation between server GET-SOURCES counts and
    /// honeypot per-file query counts over the joined files.
    pub popularity_rank_corr: f64,
    /// Files present in both popularity rankings (joined by [`FileId`]).
    pub files_joined: usize,
}

/// Acceptance thresholds for the cross-validation, enforced by the CI
/// smoke gate (see `server_capture --smoke`).
///
/// Defaults calibrated on `scenarios::server_ten_weeks` smoke runs (scale
/// 0.05–0.2): discovery correlation measures ≈ 0.999 (both curves are
/// near-linear arrival processes), diurnal correlation ≈ 0.97 (same
/// sinusoidal forcing observed through two samplers), popularity rank
/// correlation ≈ 0.7–0.9 (honeypot counts are a thinned sample of the
/// Zipf tail), and coverage ≈ 0.4–0.8 (honeypots advertise a subset of
/// the catalog, so disjoint-interest peers never visit).  The thresholds
/// leave headroom below the measured values while still catching a broken
/// modality: a shuffled capture or a mis-joined popularity table scores
/// near zero.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Tolerance {
    pub min_discovery_corr: f64,
    pub min_diurnal_corr: f64,
    pub min_popularity_corr: f64,
    /// Inclusive bounds on `peer_coverage`.
    pub coverage: (f64, f64),
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            min_discovery_corr: 0.95,
            min_diurnal_corr: 0.80,
            min_popularity_corr: 0.40,
            coverage: (0.05, 1.0),
        }
    }
}

impl Tolerance {
    /// The violated criteria, empty when the modalities agree.
    pub fn violations(&self, cv: &CrossValidation) -> Vec<String> {
        let mut v = Vec::new();
        if cv.discovery_corr < self.min_discovery_corr {
            v.push(format!(
                "discovery_corr {:.4} < {:.4}",
                cv.discovery_corr, self.min_discovery_corr
            ));
        }
        if cv.diurnal_corr < self.min_diurnal_corr {
            v.push(format!("diurnal_corr {:.4} < {:.4}", cv.diurnal_corr, self.min_diurnal_corr));
        }
        if cv.popularity_rank_corr < self.min_popularity_corr {
            v.push(format!(
                "popularity_rank_corr {:.4} < {:.4}",
                cv.popularity_rank_corr, self.min_popularity_corr
            ));
        }
        if cv.peer_coverage < self.coverage.0 || cv.peer_coverage > self.coverage.1 {
            v.push(format!(
                "peer_coverage {:.4} outside [{:.2}, {:.2}]",
                cv.peer_coverage, self.coverage.0, self.coverage.1
            ));
        }
        v
    }

    /// Whether the modalities agree within this tolerance.
    pub fn agree(&self, cv: &CrossValidation) -> bool {
        self.violations(cv).is_empty()
    }
}

/// Scores the agreement between a server capture and the honeypot
/// measurement of the same run.
pub fn cross_validate(server: &ServerIndex, log: &MeasurementLog) -> CrossValidation {
    let hp_growth = peer_growth(log);
    let hp_hourly = hourly_counts(log, honeypot::QueryKind::Hello);

    // Per-file honeypot popularity, keyed by FileId through the log's
    // file table for the join: download-path queries (the files the
    // honeypots advertise) plus shared-list occurrences (one count per
    // peer sharing the file), so the join spans the whole observed
    // catalog, not just the honeypots' own advertised set.
    let mut hp_files: HashMap<FileId, u64> = HashMap::new();
    for r in &log.records {
        if r.file != FILE_NONE {
            *hp_files.entry(log.files.id(r.file)).or_insert(0) += 1;
        }
    }
    for l in &log.shared_lists {
        for &f in &l.files {
            *hp_files.entry(log.files.id(f)).or_insert(0) += 1;
        }
    }
    // Server-side popularity: demand (GET-SOURCES) plus supply
    // (OFFER-FILES lead files) — together they cover both the honeypots'
    // advertised files and the wider shared catalog.
    let mut srv_files: HashMap<FileId, u64> = HashMap::new();
    for &(id, n) in server.file_queries.iter().chain(&server.file_offers) {
        *srv_files.entry(id).or_insert(0) += n;
    }
    let mut joined: Vec<(u64, u64)> =
        srv_files.iter().filter_map(|(id, &srv)| hp_files.get(id).map(|&hp| (srv, hp))).collect();
    joined.sort_unstable();
    // Rank the files both modalities observed often enough to rank at
    // all: singleton counts are pure tie noise (a file seen once by each
    // side carries no ordering information), and at small scales they
    // dominate the join.
    let (srv_pop, hp_pop): (Vec<u64>, Vec<u64>) = joined
        .iter()
        .filter(|&&(srv, hp)| srv >= MIN_POPULARITY_COUNT && hp >= MIN_POPULARITY_COUNT)
        .copied()
        .unzip();

    let server_peers = server.distinct_peers;
    let honeypot_peers = u64::from(log.distinct_peers);
    CrossValidation {
        server_peers,
        honeypot_peers,
        peer_coverage: if server_peers == 0 {
            0.0
        } else {
            honeypot_peers as f64 / server_peers as f64
        },
        discovery_corr: pearson(&server.peer_cumulative, &hp_growth.cumulative),
        diurnal_corr: pearson(
            &hour_of_day_profile(&server.hourly.counts),
            &hour_of_day_profile(&hp_hourly.counts),
        ),
        server_day_night: server.hourly.day_night_ratio(),
        honeypot_day_night: hp_hourly.day_night_ratio(),
        popularity_rank_corr: spearman(&srv_pop, &hp_pop),
        files_joined: joined.len(),
    }
}

/// Folds an hourly series into its 24-bin hour-of-day profile.
fn hour_of_day_profile(hourly: &[u64]) -> Vec<u64> {
    let mut profile = vec![0u64; 24];
    for (h, &n) in hourly.iter().enumerate() {
        profile[h % 24] += n;
    }
    profile
}

/// Pearson correlation of two series, compared over the shorter length.
/// Degenerate inputs (shorter than two points, or zero variance) score 0.
fn pearson_f64(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n < 2 {
        return 0.0;
    }
    let (a, b) = (&a[..n], &b[..n]);
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

fn pearson(a: &[u64], b: &[u64]) -> f64 {
    let af: Vec<f64> = a.iter().map(|&x| x as f64).collect();
    let bf: Vec<f64> = b.iter().map(|&x| x as f64).collect();
    pearson_f64(&af, &bf)
}

/// Mid-ranks (ties averaged) of a series.
fn ranks(v: &[u64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..v.len()).collect();
    order.sort_by_key(|&i| v[i]);
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && v[order[j + 1]] == v[order[i]] {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson over mid-ranks).
fn spearman(a: &[u64], b: &[u64]) -> f64 {
    let n = a.len().min(b.len());
    pearson_f64(&ranks(&a[..n]), &ranks(&b[..n]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_log_with_files;
    use honeypot::QueryKind;

    fn record(
        at: SimTime,
        kind: ServerQueryKind,
        peer_byte: u8,
        file_byte: u8,
        session: u64,
        payload: u32,
    ) -> ServerRecord {
        ServerRecord {
            at,
            kind,
            peer: IpHash([peer_byte; 16]),
            port: 4662,
            flag: 1,
            file: FileId::from_seed(&[file_byte]),
            session,
            payload,
        }
    }

    /// A two-day capture: three peers, logins spread over both days,
    /// GET-SOURCES traffic over two files, one Status sample.
    fn sample_records() -> Vec<ServerRecord> {
        let base = SERVER_PEER_SESSION_BASE;
        vec![
            record(SimTime::from_hours(1), ServerQueryKind::Login, 1, 0, base, 0),
            record(SimTime::from_hours(2), ServerQueryKind::GetSources, 1, 10, base, 3),
            record(SimTime::from_hours(3), ServerQueryKind::Login, 2, 0, base + 1, 0),
            record(SimTime::from_hours(3), ServerQueryKind::Search, 2, 0, base + 1, 5),
            record(SimTime::from_hours(4), ServerQueryKind::GetSources, 2, 10, base + 1, 3),
            record(SimTime::from_hours(5), ServerQueryKind::Status, 0, 0, 42, 2),
            record(SimTime::from_hours(26), ServerQueryKind::Login, 3, 0, base + 2, 0),
            record(SimTime::from_hours(27), ServerQueryKind::GetSources, 3, 11, base + 2, 1),
            // Honeypot session (< base): its login must not count as a peer.
            record(SimTime::from_hours(1), ServerQueryKind::Login, 9, 0, 5, 0),
        ]
    }

    fn build(records: &[ServerRecord]) -> ServerIndex {
        let mut b = ServerIndexBuilder::new(SimTime::from_days(2));
        b.push_records(records);
        b.finish()
    }

    #[test]
    fn builder_aggregates_the_capture() {
        let ix = build(&sample_records());
        assert_eq!(ix.records, 9);
        assert_eq!(ix.distinct_peers, 3, "honeypot login excluded");
        assert_eq!(ix.peer_cumulative, vec![2, 3]);
        assert_eq!(ix.count_of(ServerQueryKind::GetSources), 3);
        assert_eq!(ix.count_of(ServerQueryKind::Status), 1);
        assert_eq!(ix.peak_users, 2);
        assert_eq!(ix.peak_indexed_files, 42);
        assert_eq!(ix.hourly.counts.len(), 48);
        assert_eq!(ix.hourly.total(), 8, "Status not hourly-counted");
        assert_eq!(ix.file_queries[0], (FileId::from_seed(&[10]), 2), "most-queried first");
    }

    #[test]
    fn builder_is_chunking_insensitive() {
        let records = sample_records();
        let whole = build(&records);
        let mut one_at_a_time = ServerIndexBuilder::new(SimTime::from_days(2));
        for r in &records {
            one_at_a_time.push_record(r);
        }
        let split = one_at_a_time.finish();
        assert_eq!(whole.peer_cumulative, split.peer_cumulative);
        assert_eq!(whole.hourly.counts, split.hourly.counts);
        assert_eq!(whole.file_queries, split.file_queries);
        assert_eq!(whole.kind_counts, split.kind_counts);
    }

    #[test]
    fn cross_validation_scores_an_agreeing_pair() {
        // Honeypot log: peers 0 and 1 (of the server's 3) with the same
        // relative popularity ranking (file 0 above file 1, both past the
        // min-count floor) and arrival spread over both days.  File table
        // ids are file-0/file-1 seeds, so seed the server records with
        // matching FileIds.
        let log = synthetic_log_with_files(&[
            (0, QueryKind::Hello, 0, SimTime::from_hours(1), honeypot::log::FILE_NONE),
            (0, QueryKind::StartUpload, 0, SimTime::from_hours(1), 0),
            (0, QueryKind::RequestPart, 0, SimTime::from_hours(2), 0),
            (0, QueryKind::RequestPart, 0, SimTime::from_hours(2), 0),
            (0, QueryKind::RequestPart, 0, SimTime::from_hours(2), 0),
            (1, QueryKind::Hello, 1, SimTime::from_hours(26), honeypot::log::FILE_NONE),
            (1, QueryKind::StartUpload, 1, SimTime::from_hours(26), 1),
            (1, QueryKind::RequestPart, 1, SimTime::from_hours(26), 1),
            (1, QueryKind::RequestPart, 1, SimTime::from_hours(27), 1),
        ]);
        let base = SERVER_PEER_SESSION_BASE;
        let f0 = FileId::from_seed(b"file-0");
        let f1 = FileId::from_seed(b"file-1");
        let mut b = ServerIndexBuilder::new(SimTime::from_days(2));
        for (h, peer, session) in [(1u64, 1u8, base), (2, 2, base + 1), (25, 3, base + 2)] {
            b.push_record(&record(
                SimTime::from_hours(h),
                ServerQueryKind::Login,
                peer,
                0,
                session,
                0,
            ));
        }
        for (h, file) in [(1u64, f0), (2, f0), (26, f0), (26, f0), (1, f1), (2, f1), (25, f1)] {
            b.push_record(&ServerRecord {
                at: SimTime::from_hours(h),
                kind: ServerQueryKind::GetSources,
                peer: IpHash([1; 16]),
                port: 4662,
                flag: 1,
                file,
                session: base,
                payload: 1,
            });
        }
        let cv = cross_validate(&b.finish(), &log);
        assert_eq!(cv.server_peers, 3);
        assert_eq!(cv.honeypot_peers, 2);
        assert!((cv.peer_coverage - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(cv.files_joined, 2);
        assert!(cv.discovery_corr > 0.99, "both discover 2-then-3: {}", cv.discovery_corr);
        assert!(cv.popularity_rank_corr > 0.99, "same ranking: {}", cv.popularity_rank_corr);
        assert!(Tolerance::default().agree(&cv), "{:?}", Tolerance::default().violations(&cv));
    }

    #[test]
    fn tolerance_flags_disagreement() {
        let cv = CrossValidation {
            server_peers: 100,
            honeypot_peers: 1,
            peer_coverage: 0.01,
            discovery_corr: 0.2,
            diurnal_corr: 0.1,
            server_day_night: 1.0,
            honeypot_day_night: 3.0,
            popularity_rank_corr: -0.5,
            files_joined: 2,
        };
        let v = Tolerance::default().violations(&cv);
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(!Tolerance::default().agree(&cv));
    }

    #[test]
    fn correlation_helpers_behave() {
        assert!((pearson(&[1, 2, 3], &[2, 4, 6]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1, 2, 3], &[6, 4, 2]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1, 1, 1], &[1, 2, 3]), 0.0, "zero variance");
        assert_eq!(pearson(&[1], &[1]), 0.0, "too short");
        assert!((spearman(&[10, 20, 30, 40], &[1, 5, 7, 100]) - 1.0).abs() < 1e-12);
        assert!((spearman(&[10, 20, 30], &[30, 20, 10]) + 1.0).abs() < 1e-12);
        let r = ranks(&[5, 1, 5]);
        assert_eq!(r, vec![2.5, 1.0, 2.5], "ties take mid-rank");
    }
}
