//! Co-interest analysis — the paper's §V analysis agenda: "explore the
//! relationships between peers inferred from the fact that they are
//! interested in the same files, and conversely study relations between
//! files from the fact that they are downloaded by the same peers".
//!
//! The measurement log induces a bipartite peer–file graph from
//! START-UPLOAD queries; this module computes both projections:
//!
//! * the **file projection**: files weighted by the number of peers
//!   interested in both (with Jaccard similarity to normalise away
//!   popularity);
//! * the **peer projection**: how many peers share interests, and the
//!   degree distribution of the co-interest relation.

use std::collections::HashMap;

use honeypot::{MeasurementLog, QueryKind};
use serde::Serialize;

/// An edge of the file projection.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct FilePairEdge {
    pub file_a: u32,
    pub file_b: u32,
    /// Peers interested in both files.
    pub common_peers: u64,
    /// `common / (|A| + |B| - common)`.
    pub jaccard: f64,
}

/// Aggregate co-interest statistics.
#[derive(Clone, Debug, Serialize)]
pub struct CoInterestStats {
    /// Peers with at least one START-UPLOAD.
    pub querying_peers: u64,
    /// Peers interested in ≥ 2 distinct files.
    pub multi_file_peers: u64,
    /// Mean distinct files per querying peer.
    pub mean_files_per_peer: f64,
    /// Number of file pairs with ≥ 1 common peer.
    pub file_pairs: u64,
    /// Strongest file pairs by common-peer count.
    pub top_pairs: Vec<FilePairEdge>,
}

/// The peer→files incidence derived from START-UPLOAD records.
pub fn peer_file_incidence(log: &MeasurementLog) -> HashMap<u32, Vec<u32>> {
    let mut by_peer: HashMap<u32, Vec<u32>> = HashMap::new();
    for r in log.records_of(QueryKind::StartUpload) {
        if r.file == honeypot::log::FILE_NONE {
            continue;
        }
        let files = by_peer.entry(r.peer.0).or_default();
        if !files.contains(&r.file) {
            files.push(r.file);
        }
    }
    by_peer
}

/// Computes the co-interest statistics, keeping the `top_k` strongest file
/// pairs.
///
/// Complexity is `Σ_p k_p²` over per-peer file counts — cheap because real
/// (and simulated) peers query a handful of files each.  Peers with
/// enormous lists (crawlers) are capped at 64 files to keep hostile inputs
/// from going quadratic.
pub fn co_interest(log: &MeasurementLog, top_k: usize) -> CoInterestStats {
    let by_peer = peer_file_incidence(log);

    let mut per_file_peers: HashMap<u32, u64> = HashMap::new();
    let mut pair_counts: HashMap<(u32, u32), u64> = HashMap::new();
    let mut multi = 0u64;
    let mut total_files = 0u64;

    for files in by_peer.values() {
        total_files += files.len() as u64;
        if files.len() >= 2 {
            multi += 1;
        }
        for &f in files {
            *per_file_peers.entry(f).or_insert(0) += 1;
        }
        let capped = &files[..files.len().min(64)];
        for i in 0..capped.len() {
            for j in (i + 1)..capped.len() {
                let key = if capped[i] < capped[j] {
                    (capped[i], capped[j])
                } else {
                    (capped[j], capped[i])
                };
                *pair_counts.entry(key).or_insert(0) += 1;
            }
        }
    }

    let mut pairs: Vec<FilePairEdge> = pair_counts
        .into_iter()
        .map(|((a, b), common)| {
            let pa = per_file_peers[&a];
            let pb = per_file_peers[&b];
            FilePairEdge {
                file_a: a,
                file_b: b,
                common_peers: common,
                jaccard: common as f64 / (pa + pb - common) as f64,
            }
        })
        .collect();
    let file_pairs = pairs.len() as u64;
    pairs.sort_by(|x, y| {
        y.common_peers
            .cmp(&x.common_peers)
            .then_with(|| (x.file_a, x.file_b).cmp(&(y.file_a, y.file_b)))
    });
    pairs.truncate(top_k);

    let querying_peers = by_peer.len() as u64;
    CoInterestStats {
        querying_peers,
        multi_file_peers: multi,
        mean_files_per_peer: if querying_peers == 0 {
            0.0
        } else {
            total_files as f64 / querying_peers as f64
        },
        file_pairs,
        top_pairs: pairs,
    }
}

/// Histogram of co-interest degrees in the peer projection: for each peer,
/// the number of *other* peers sharing at least one file with it, bucketed
/// logarithmically (`0, 1, 2-3, 4-7, 8-15, …`).  Returns `(bucket_label,
/// count)` pairs.
pub fn peer_degree_histogram(log: &MeasurementLog) -> Vec<(String, u64)> {
    let by_peer = peer_file_incidence(log);
    let mut peers_of_file: HashMap<u32, u64> = HashMap::new();
    for files in by_peer.values() {
        for &f in files {
            *peers_of_file.entry(f).or_insert(0) += 1;
        }
    }
    // Upper-bound co-degree: peers sharing any file ≈ Σ over the peer's
    // files of (peers-on-that-file − 1).  An upper bound rather than the
    // exact union, which suffices for the distribution's shape and stays
    // linear-time.
    let mut buckets: HashMap<u32, u64> = HashMap::new();
    for files in by_peer.values() {
        let degree: u64 = files.iter().map(|f| peers_of_file[f] - 1).sum();
        let bucket = if degree == 0 { 0 } else { 64 - u64::leading_zeros(degree) };
        *buckets.entry(bucket).or_insert(0) += 1;
    }
    let mut out: Vec<(u32, u64)> = buckets.into_iter().collect();
    out.sort_unstable();
    out.into_iter()
        .map(|(b, count)| {
            let label = if b == 0 {
                "0".to_string()
            } else {
                format!("{}-{}", 1u64 << (b - 1), (1u64 << b) - 1)
            };
            (label, count)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_log_with_files;
    use honeypot::log::FILE_NONE;
    use netsim::SimTime;

    fn t(h: u64) -> SimTime {
        SimTime::from_hours(h)
    }

    #[test]
    fn incidence_dedups_per_peer() {
        let log = synthetic_log_with_files(&[
            (0, QueryKind::StartUpload, 0, t(1), 0),
            (0, QueryKind::StartUpload, 0, t(2), 0), // repeat query
            (0, QueryKind::StartUpload, 0, t(3), 1),
            (1, QueryKind::Hello, 0, t(1), FILE_NONE),
        ]);
        let inc = peer_file_incidence(&log);
        assert_eq!(inc.len(), 1, "HELLO-only peers do not appear");
        assert_eq!(inc[&0], vec![0, 1]);
    }

    #[test]
    fn co_interest_counts_common_peers() {
        // Peers 0 and 1 both want files 0 and 1; peer 2 wants only file 2.
        let log = synthetic_log_with_files(&[
            (0, QueryKind::StartUpload, 0, t(1), 0),
            (0, QueryKind::StartUpload, 0, t(1), 1),
            (1, QueryKind::StartUpload, 0, t(2), 0),
            (1, QueryKind::StartUpload, 0, t(2), 1),
            (2, QueryKind::StartUpload, 0, t(3), 2),
        ]);
        let stats = co_interest(&log, 10);
        assert_eq!(stats.querying_peers, 3);
        assert_eq!(stats.multi_file_peers, 2);
        assert!((stats.mean_files_per_peer - 5.0 / 3.0).abs() < 1e-9);
        assert_eq!(stats.file_pairs, 1);
        let top = &stats.top_pairs[0];
        assert_eq!((top.file_a, top.file_b, top.common_peers), (0, 1, 2));
        assert!((top.jaccard - 1.0).abs() < 1e-9, "both peers want both files");
    }

    #[test]
    fn jaccard_normalises_popularity() {
        // File 0 is popular (3 peers), file 1 niche (1 peer, shared).
        let log = synthetic_log_with_files(&[
            (0, QueryKind::StartUpload, 0, t(1), 0),
            (1, QueryKind::StartUpload, 0, t(1), 0),
            (2, QueryKind::StartUpload, 0, t(1), 0),
            (2, QueryKind::StartUpload, 0, t(1), 1),
        ]);
        let stats = co_interest(&log, 10);
        let top = &stats.top_pairs[0];
        assert_eq!(top.common_peers, 1);
        assert!((top.jaccard - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn top_k_truncates_deterministically() {
        let log = synthetic_log_with_files(&[
            (0, QueryKind::StartUpload, 0, t(1), 0),
            (0, QueryKind::StartUpload, 0, t(1), 1),
            (0, QueryKind::StartUpload, 0, t(1), 2),
        ]);
        let stats = co_interest(&log, 2);
        assert_eq!(stats.file_pairs, 3, "three pairs exist");
        assert_eq!(stats.top_pairs.len(), 2, "but only two reported");
        // Equal counts: ties broken by file indices.
        assert_eq!((stats.top_pairs[0].file_a, stats.top_pairs[0].file_b), (0, 1));
    }

    #[test]
    fn degree_histogram_buckets() {
        // Peers 0,1,2 all on file 0 → each has co-degree 2 (bucket "2-3").
        let log = synthetic_log_with_files(&[
            (0, QueryKind::StartUpload, 0, t(1), 0),
            (1, QueryKind::StartUpload, 0, t(1), 0),
            (2, QueryKind::StartUpload, 0, t(1), 0),
            (3, QueryKind::StartUpload, 0, t(1), 1), // loner → bucket "0"
        ]);
        let hist = peer_degree_histogram(&log);
        assert_eq!(hist, vec![("0".into(), 1), ("2-3".into(), 3)]);
    }

    #[test]
    fn empty_log() {
        let log = synthetic_log_with_files(&[]);
        let stats = co_interest(&log, 5);
        assert_eq!(stats.querying_peers, 0);
        assert_eq!(stats.mean_files_per_peer, 0.0);
        assert!(peer_degree_histogram(&log).is_empty());
    }
}
