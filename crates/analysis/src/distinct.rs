//! Distinct-peer growth over time (paper Figs. 2 and 3).
//!
//! From the merged log we derive, per measurement day, the cumulative
//! number of distinct peers observed so far and the number of peers seen
//! for the first time that day — the two curves of Figs. 2/3.

use honeypot::{AnonPeerId, MeasurementLog, QueryKind};
use netsim::metrics::FirstSeen;
use netsim::time::MS_PER_DAY;
use serde::Serialize;

use crate::index::{cumulate, new_per_bucket, LogIndex};

/// The two series of Fig. 2/3, daily buckets.
#[derive(Clone, Debug, Serialize)]
pub struct PeerGrowth {
    /// Cumulative distinct peers at the end of each day.
    pub cumulative: Vec<u64>,
    /// Peers first observed on each day.
    pub new_per_day: Vec<u64>,
}

impl PeerGrowth {
    /// Total distinct peers over the whole measurement.
    pub fn total(&self) -> u64 {
        self.cumulative.last().copied().unwrap_or(0)
    }

    /// Mean new peers per day over the last `n` days (the paper quotes
    /// ">2,500 new peers per day" at the end of the distributed run).
    pub fn tail_rate(&self, n: usize) -> f64 {
        if self.new_per_day.is_empty() {
            return 0.0;
        }
        let tail = &self.new_per_day[self.new_per_day.len().saturating_sub(n)..];
        tail.iter().sum::<u64>() as f64 / tail.len() as f64
    }
}

/// Computes peer growth over all records (any message kind counts as an
/// observation, as in the paper's "observed peers").
pub fn peer_growth(log: &MeasurementLog) -> PeerGrowth {
    peer_growth_filtered(log, None)
}

/// Computes peer growth restricted to one message kind (`Some(kind)`), or
/// any kind (`None`).
pub fn peer_growth_filtered(log: &MeasurementLog, kind: Option<QueryKind>) -> PeerGrowth {
    let mut first: FirstSeen<AnonPeerId> = FirstSeen::new();
    for r in &log.records {
        if kind.is_none_or(|k| r.kind == k) {
            first.observe(r.peer, r.at);
        }
    }
    let days = log.duration.as_millis().div_ceil(MS_PER_DAY).max(1) as usize;
    let new_per_day = first.new_per_bucket(MS_PER_DAY, days);
    let mut cumulative = Vec::with_capacity(new_per_day.len());
    let mut acc = 0;
    for &n in &new_per_day {
        acc += n;
        cumulative.push(acc);
    }
    PeerGrowth { cumulative, new_per_day }
}

/// Distinct-file growth (Table I's "distinct files" and the file-side
/// counterpart of Figs. 2/3): files are observed through START-UPLOAD /
/// REQUEST-PART queries and through shared-file lists.
pub fn file_growth(log: &MeasurementLog) -> PeerGrowth {
    let mut first: FirstSeen<u32> = FirstSeen::new();
    for r in &log.records {
        if r.file != honeypot::log::FILE_NONE {
            first.observe(r.file, r.at);
        }
    }
    for l in &log.shared_lists {
        for &f in &l.files {
            first.observe(f, l.at);
        }
    }
    let days = log.duration.as_millis().div_ceil(MS_PER_DAY).max(1) as usize;
    let new_per_day = first.new_per_bucket(MS_PER_DAY, days);
    let mut cumulative = Vec::with_capacity(new_per_day.len());
    let mut acc = 0;
    for &n in &new_per_day {
        acc += n;
        cumulative.push(acc);
    }
    PeerGrowth { cumulative, new_per_day }
}

/// Index-backed equivalents of this module's scans; asserted equal to the
/// direct functions in `tests/index_equivalence.rs`.
impl LogIndex {
    /// Indexed [`peer_growth`].
    pub fn peer_growth(&self) -> PeerGrowth {
        self.peer_growth_filtered(None)
    }

    /// Indexed [`peer_growth_filtered`].
    pub fn peer_growth_filtered(&self, kind: Option<QueryKind>) -> PeerGrowth {
        let firsts = self.peer_first_merged(kind);
        let new_per_day = new_per_bucket(&firsts, MS_PER_DAY, self.days());
        PeerGrowth { cumulative: cumulate(new_per_day.clone()), new_per_day }
    }

    /// Indexed [`file_growth`].
    pub fn file_growth(&self) -> PeerGrowth {
        let new_per_day = new_per_bucket(self.file_first(), MS_PER_DAY, self.days());
        PeerGrowth { cumulative: cumulate(new_per_day.clone()), new_per_day }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_log;
    use netsim::SimTime;

    #[test]
    fn growth_counts_each_peer_once() {
        // Peer 0 appears on days 0 and 2; peer 1 on day 1.
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 0, SimTime::from_hours(1)),
            (0, QueryKind::Hello, 0, SimTime::from_hours(50)),
            (1, QueryKind::Hello, 0, SimTime::from_hours(30)),
        ]);
        let g = peer_growth(&log);
        assert_eq!(g.new_per_day[0], 1);
        assert_eq!(g.new_per_day[1], 1);
        assert_eq!(g.new_per_day[2], 0);
        assert_eq!(g.cumulative, vec![1, 2, 2]);
        assert_eq!(g.total(), 2);
    }

    #[test]
    fn filtered_growth_respects_kind() {
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 0, SimTime::from_hours(1)),
            (1, QueryKind::StartUpload, 0, SimTime::from_hours(2)),
        ]);
        let g = peer_growth_filtered(&log, Some(QueryKind::StartUpload));
        assert_eq!(g.total(), 1);
        let g = peer_growth_filtered(&log, None);
        assert_eq!(g.total(), 2);
    }

    #[test]
    fn tail_rate_averages_last_days() {
        let g = PeerGrowth { cumulative: vec![10, 30, 40], new_per_day: vec![10, 20, 10] };
        assert!((g.tail_rate(2) - 15.0).abs() < 1e-9);
        assert!((g.tail_rate(10) - 40.0 / 3.0).abs() < 1e-9, "clamped to available days");
        let empty = PeerGrowth { cumulative: vec![], new_per_day: vec![] };
        assert_eq!(empty.tail_rate(5), 0.0);
    }

    #[test]
    fn series_span_full_duration_even_when_quiet() {
        let log = synthetic_log(&[(0, QueryKind::Hello, 0, SimTime::from_hours(1))]);
        let g = peer_growth(&log);
        assert_eq!(g.cumulative.len(), 3, "duration is 3 days in the fixture");
    }

    #[test]
    fn file_growth_sees_queries_and_lists() {
        let mut log = synthetic_log(&[
            (0, QueryKind::StartUpload, 0, SimTime::from_hours(1)), // file 0
        ]);
        log.shared_lists.push(honeypot::AnonSharedList {
            at: SimTime::from_hours(30),
            honeypot: honeypot::HoneypotId(0),
            peer: honeypot::AnonPeerId(0),
            files: vec![1, 2],
        });
        let g = file_growth(&log);
        assert_eq!(g.total(), 3);
        assert_eq!(g.new_per_day[0], 1);
        assert_eq!(g.new_per_day[1], 2);
    }
}
