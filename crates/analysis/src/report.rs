//! Plain-text rendering of tables, series and quick ASCII charts for the
//! experiment binaries and EXPERIMENTS.md.

use std::fmt::Write as _;

/// Renders an aligned ASCII table.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        debug_assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+-{:-<w$}-", "", w = *w);
        }
        out.push_str("+\n");
    };
    rule(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {h:w$} ", w = widths[i]);
    }
    out.push_str("|\n");
    rule(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "| {cell:>w$} ", w = widths[i]);
        }
        out.push_str("|\n");
    }
    rule(&mut out);
    out
}

/// Renders labelled series as columns: `x  series1  series2 …`.
pub fn series_table(x_label: &str, xs: &[u64], series: &[(&str, &[u64])]) -> String {
    let mut headers = vec![x_label];
    headers.extend(series.iter().map(|(l, _)| *l));
    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let mut row = vec![x.to_string()];
            for (_, s) in series {
                row.push(s.get(i).map_or_else(|| "-".into(), |v| v.to_string()));
            }
            row
        })
        .collect();
    ascii_table(&headers, &rows)
}

/// Renders a compact ASCII line chart of one or more series (marker per
/// series: `*`, `o`, `+`, `x`).
pub fn ascii_chart(series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    const MARKS: [char; 4] = ['*', 'o', '+', 'x'];
    let max = series.iter().flat_map(|(_, s)| s.iter()).fold(0.0f64, |m, &v| m.max(v));
    let longest = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    if max <= 0.0 || longest == 0 {
        return String::from("(no data)\n");
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for (i, &v) in s.iter().enumerate() {
            let x = if longest <= 1 { 0 } else { i * (width - 1) / (longest - 1) };
            let y = ((v / max) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x] = mark;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "max = {max:.0}");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    let mut legend = String::new();
    for (si, (label, _)) in series.iter().enumerate() {
        let _ = write!(legend, "  {} {label}", MARKS[si % MARKS.len()]);
    }
    let _ = writeln!(out, "{}", legend.trim_start());
    out
}

/// Human-readable byte count in the units Table I uses.
pub fn format_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e12 {
        format!("{:.1} TB", b / 1e12)
    } else if b >= 1e9 {
        format!("{:.1} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a count with thousands separators (`110,049` style, as in the
/// paper).
pub fn format_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = ascii_table(
            &["metric", "value"],
            &[vec!["peers".into(), "110049".into()], vec!["files".into(), "28007".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "ragged output:\n{t}");
        assert!(t.contains("110049"));
    }

    #[test]
    fn series_table_handles_short_series() {
        let t = series_table("day", &[0, 1, 2], &[("a", &[5, 6][..]), ("b", &[7, 8, 9][..])]);
        assert!(t.contains('-'), "missing value placeholder expected:\n{t}");
        assert!(t.contains('9'));
    }

    #[test]
    fn chart_renders_marks_and_legend() {
        let c = ascii_chart(&[("up", &[1.0, 2.0, 3.0][..]), ("down", &[3.0, 2.0, 1.0][..])], 30, 8);
        assert!(c.contains('*') && c.contains('o'));
        assert!(c.contains("up") && c.contains("down"));
    }

    #[test]
    fn chart_empty_input() {
        assert_eq!(ascii_chart(&[("e", &[][..])], 10, 4), "(no data)\n");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(9_000_000_000_000), "9.0 TB");
        assert_eq!(format_bytes(1_500_000_000), "1.5 GB");
        assert_eq!(format_bytes(2_000_000), "2.0 MB");
        assert_eq!(format_bytes(312), "312 B");
    }

    #[test]
    fn count_formatting() {
        assert_eq!(format_count(110_049), "110,049");
        assert_eq!(format_count(999), "999");
        assert_eq!(format_count(1_000), "1,000");
        assert_eq!(format_count(0), "0");
    }
}
