//! # edonkey-analysis
//!
//! Analytics over merged honeypot measurement logs — one module per family
//! of results in the paper's evaluation (§IV):
//!
//! * [`table`] — Table I basic statistics;
//! * [`distinct`] — distinct-peer/file growth and new-per-day series
//!   (Figs. 2–3);
//! * [`timeseries`] — hourly message volumes and the day/night ratio
//!   (Fig. 4);
//! * [`strategy`] — random-content vs no-content comparisons (Figs. 5–7);
//! * [`toppeer`] — single-peer query series and plateau detection
//!   (Figs. 8–9);
//! * [`subset`] — Monte-Carlo subset sampling over honeypots and files
//!   (Figs. 10–12), rayon-parallel;
//! * [`cointerest`] — peer–peer and file–file co-interest projections (the
//!   paper's §V analysis agenda);
//! * [`population`] — demographics: high/low IDs, client software,
//!   per-peer query volumes, honeypot load balance;
//! * [`server`] — the server-capture index and honeypot/server
//!   cross-validation (the "ten weeks of an eDonkey server" modality);
//! * [`report`] — ASCII tables/charts and formatting helpers.
//!
//! All functions are pure over [`honeypot::MeasurementLog`].

pub mod cointerest;
pub mod distinct;
pub mod index;
pub mod population;
pub mod report;
pub mod server;
pub mod strategy;
pub mod subset;
pub mod table;
pub mod testutil;
pub mod timeseries;
pub mod toppeer;

pub use cointerest::{co_interest, peer_degree_histogram, CoInterestStats, FilePairEdge};
pub use distinct::{file_growth, peer_growth, peer_growth_filtered, PeerGrowth};
pub use index::{IndexBuilder, LogIndex};
pub use population::{
    client_software, gini, honeypot_load_gini, id_status_breakdown, queries_per_peer_histogram,
    IdStatusBreakdown,
};
pub use server::{cross_validate, CrossValidation, ServerIndex, ServerIndexBuilder, Tolerance};
pub use strategy::{distinct_peers_by_strategy, messages_by_strategy, StrategyComparison};
pub use subset::{
    file_peer_counts, peer_sets_by_file, peer_sets_by_honeypot, popular_files, random_files,
    subset_curve, subset_curve_sequential, PeerSet, SubsetPoint,
};
pub use table::{basic_stats, BasicStats};
pub use timeseries::{first_event_ms, hourly_counts, HourlySeries};
pub use toppeer::{
    peer_series, plateaus, top_peer, top_peer_summary, top_peer_summary_indexed, TopPeerSummary,
};
