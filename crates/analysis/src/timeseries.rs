//! Hourly message-volume series (paper Fig. 4: HELLO messages per hour over
//! the first week, exhibiting the day-night oscillation).

use honeypot::{MeasurementLog, QueryKind};
use netsim::metrics::BucketSeries;
use netsim::time::MS_PER_HOUR;
use serde::Serialize;

use crate::index::LogIndex;

/// An hourly count series.
#[derive(Clone, Debug, Serialize)]
pub struct HourlySeries {
    pub counts: Vec<u64>,
}

impl HourlySeries {
    /// Restricts to the first `hours` buckets (Fig. 4 plots 168 h).
    pub fn first_hours(&self, hours: usize) -> Vec<u64> {
        let mut v = self.counts.clone();
        v.truncate(hours);
        v.resize(hours.min(v.len().max(hours)), 0);
        v
    }

    /// Ratio between the mean of the daily maxima and the mean of the
    /// daily minima — the strength of the day/night oscillation.
    pub fn day_night_ratio(&self) -> f64 {
        let days = self.counts.len() / 24;
        if days == 0 {
            return 1.0;
        }
        let mut max_sum = 0.0;
        let mut min_sum = 0.0;
        for d in 0..days {
            let day = &self.counts[d * 24..(d + 1) * 24];
            max_sum += *day.iter().max().expect("24 entries") as f64;
            min_sum += *day.iter().min().expect("24 entries") as f64;
        }
        if min_sum == 0.0 {
            f64::INFINITY
        } else {
            max_sum / min_sum
        }
    }

    /// Time (in ms from start) of the first non-empty bucket's first event
    /// is not recoverable from buckets; see [`first_event_ms`] instead.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Hourly counts of one message kind across the whole measurement.
pub fn hourly_counts(log: &MeasurementLog, kind: QueryKind) -> HourlySeries {
    let mut series = BucketSeries::hourly();
    for r in log.records_of(kind) {
        series.record(r.at);
    }
    let hours = log.duration.as_millis().div_ceil(MS_PER_HOUR).max(1) as usize;
    HourlySeries { counts: series.to_vec(hours) }
}

/// Timestamp (ms) of the earliest record of the given kind — the paper
/// notes its first query arrived ten minutes into the measurement.
pub fn first_event_ms(log: &MeasurementLog, kind: QueryKind) -> Option<u64> {
    log.records_of(kind).map(|r| r.at.as_millis()).min()
}

/// Index-backed equivalents of this module's scans; asserted equal to the
/// direct functions in `tests/index_equivalence.rs`.
impl LogIndex {
    /// Indexed [`hourly_counts`].
    pub fn hourly_counts(&self, kind: QueryKind) -> HourlySeries {
        HourlySeries { counts: self.hourly_padded(kind) }
    }

    /// Indexed [`first_event_ms`].
    pub fn first_event_ms(&self, kind: QueryKind) -> Option<u64> {
        self.kind_first(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_log;
    use netsim::SimTime;

    #[test]
    fn hourly_counts_bucket_correctly() {
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 0, SimTime::from_mins(10)),
            (1, QueryKind::Hello, 0, SimTime::from_mins(50)),
            (2, QueryKind::Hello, 0, SimTime::from_mins(70)),
            (3, QueryKind::StartUpload, 0, SimTime::from_mins(20)),
        ]);
        let s = hourly_counts(&log, QueryKind::Hello);
        assert_eq!(s.counts[0], 2);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.total(), 3, "START-UPLOAD not counted");
        assert_eq!(s.counts.len(), 72, "3-day fixture spans 72 hours");
    }

    #[test]
    fn first_event_found() {
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 0, SimTime::from_mins(10)),
            (1, QueryKind::Hello, 0, SimTime::from_mins(5)),
        ]);
        assert_eq!(first_event_ms(&log, QueryKind::Hello), Some(300_000));
        assert_eq!(first_event_ms(&log, QueryKind::RequestPart), None);
    }

    #[test]
    fn day_night_ratio_detects_oscillation() {
        // Hand-build: 10 by day, 1 by night for two days.
        let counts: Vec<u64> =
            (0..48).map(|h| if (8..20).contains(&(h % 24)) { 10 } else { 1 }).collect();
        let s = HourlySeries { counts };
        assert!((s.day_night_ratio() - 10.0).abs() < 1e-9);
        let flat = HourlySeries { counts: vec![5; 48] };
        assert!((flat.day_night_ratio() - 1.0).abs() < 1e-9);
        let short = HourlySeries { counts: vec![5; 10] };
        assert_eq!(short.day_night_ratio(), 1.0, "under a day: no ratio");
    }

    #[test]
    fn first_hours_truncates() {
        let s = HourlySeries { counts: (0..100u64).collect() };
        let week = s.first_hours(24);
        assert_eq!(week.len(), 24);
        assert_eq!(week[23], 23);
    }
}
