//! Peer-population demographics: the metadata dimensions the honeypots log
//! beyond identity — high/low ID status, client software, per-peer query
//! volumes — plus how evenly the measurement load spreads over honeypots.
//!
//! The paper logs all of these fields (§III-B) without analysing them; a
//! measurement platform's users will want the breakdowns.

use std::collections::HashMap;

use honeypot::{IdStatus, MeasurementLog, QueryKind};
use serde::Serialize;

/// High/low ID breakdown over distinct peers.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct IdStatusBreakdown {
    pub high: u64,
    pub low: u64,
}

impl IdStatusBreakdown {
    /// Fraction of peers behind NAT/firewall.
    pub fn low_fraction(&self) -> f64 {
        let total = self.high + self.low;
        if total == 0 {
            0.0
        } else {
            self.low as f64 / total as f64
        }
    }
}

/// Counts distinct peers by ID status (a peer's status can differ between
/// server sessions; the first observation wins, as in the logs).
pub fn id_status_breakdown(log: &MeasurementLog) -> IdStatusBreakdown {
    let mut seen: HashMap<u32, IdStatus> = HashMap::new();
    for r in &log.records {
        seen.entry(r.peer.0).or_insert(r.id_status);
    }
    let mut out = IdStatusBreakdown { high: 0, low: 0 };
    for s in seen.values() {
        match s {
            IdStatus::High => out.high += 1,
            IdStatus::Low => out.low += 1,
        }
    }
    out
}

/// Distinct peers per client-software name, descending.
pub fn client_software(log: &MeasurementLog) -> Vec<(String, u64)> {
    let mut first_name: HashMap<u32, u32> = HashMap::new();
    for r in &log.records {
        first_name.entry(r.peer.0).or_insert(r.name);
    }
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for &n in first_name.values() {
        *counts.entry(n).or_insert(0) += 1;
    }
    let mut out: Vec<(String, u64)> = counts
        .into_iter()
        .map(|(idx, c)| (log.peer_names.get(idx as usize).cloned().unwrap_or_default(), c))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Log₂-bucketed histogram of per-peer query counts of one kind:
/// `(bucket_label, peers)` with buckets `1, 2-3, 4-7, …`.
pub fn queries_per_peer_histogram(log: &MeasurementLog, kind: QueryKind) -> Vec<(String, u64)> {
    let mut per_peer: HashMap<u32, u64> = HashMap::new();
    for r in log.records_of(kind) {
        *per_peer.entry(r.peer.0).or_insert(0) += 1;
    }
    let mut buckets: HashMap<u32, u64> = HashMap::new();
    for &c in per_peer.values() {
        let b = 64 - c.leading_zeros(); // c ≥ 1 ⇒ b ≥ 1
        *buckets.entry(b).or_insert(0) += 1;
    }
    let mut out: Vec<(u32, u64)> = buckets.into_iter().collect();
    out.sort_unstable();
    out.into_iter()
        .map(|(b, count)| {
            let lo = 1u64 << (b - 1);
            let hi = (1u64 << b) - 1;
            let label = if lo == hi { lo.to_string() } else { format!("{lo}-{hi}") };
            (label, count)
        })
        .collect()
}

/// Gini coefficient of the per-honeypot record counts: 0 = perfectly even
/// load, →1 = one honeypot absorbs everything.  A distributed measurement
/// wants this low; Fig. 10's attractiveness spread makes it non-zero.
pub fn honeypot_load_gini(log: &MeasurementLog) -> f64 {
    let mut loads = vec![0u64; log.honeypots.len()];
    for r in &log.records {
        loads[r.honeypot.0 as usize] += 1;
    }
    gini(&loads)
}

/// Gini coefficient of a non-negative sample.
pub fn gini(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let total: u64 = values.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    // G = (2·Σ i·xᵢ)/(n·Σ xᵢ) − (n+1)/n with 1-based ranks over the sorted
    // sample.
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x as f64).sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_log;
    use netsim::SimTime;

    fn t(h: u64) -> SimTime {
        SimTime::from_hours(h)
    }

    #[test]
    fn id_status_counts_distinct_peers_once() {
        // Fixture: peer % 3 == 0 → Low.
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 0, t(1)), // low
            (0, QueryKind::Hello, 1, t(2)), // same peer again
            (1, QueryKind::Hello, 0, t(1)), // high
            (2, QueryKind::Hello, 0, t(1)), // high
        ]);
        let b = id_status_breakdown(&log);
        assert_eq!((b.high, b.low), (2, 1));
        assert!((b.low_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown() {
        let log = synthetic_log(&[]);
        assert_eq!(id_status_breakdown(&log).low_fraction(), 0.0);
        assert!(client_software(&log).is_empty());
        assert!(queries_per_peer_histogram(&log, QueryKind::Hello).is_empty());
    }

    #[test]
    fn client_software_aggregates() {
        let log = synthetic_log(&[(0, QueryKind::Hello, 0, t(1)), (1, QueryKind::Hello, 0, t(1))]);
        let soft = client_software(&log);
        assert_eq!(soft, vec![("eMule".to_string(), 2)]);
    }

    #[test]
    fn query_histogram_buckets_correctly() {
        // Peer 0: 1 HELLO (bucket "1"); peer 1: 3 HELLOs (bucket "2-3");
        // peer 2: 5 HELLOs (bucket "4-7").
        let mut entries = vec![(0, QueryKind::Hello, 0, t(1))];
        for i in 0..3 {
            entries.push((1, QueryKind::Hello, 0, t(2 + i)));
        }
        for i in 0..5 {
            entries.push((2, QueryKind::Hello, 0, t(10 + i)));
        }
        let log = synthetic_log(&entries);
        let hist = queries_per_peer_histogram(&log, QueryKind::Hello);
        assert_eq!(
            hist,
            vec![("1".to_string(), 1), ("2-3".to_string(), 1), ("4-7".to_string(), 1)]
        );
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
        assert!((gini(&[5, 5, 5, 5])).abs() < 1e-9, "even load → 0");
        // One honeypot takes all: G = (n-1)/n.
        let g = gini(&[0, 0, 0, 100]);
        assert!((g - 0.75).abs() < 1e-9, "got {g}");
        // Moderate skew sits between.
        let g = gini(&[1, 2, 3, 4]);
        assert!(g > 0.0 && g < 0.75);
    }

    #[test]
    fn honeypot_load_gini_over_log() {
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 0, t(1)),
            (1, QueryKind::Hello, 0, t(1)),
            (2, QueryKind::Hello, 0, t(1)),
            (3, QueryKind::Hello, 1, t(1)),
        ]);
        let g = honeypot_load_gini(&log);
        assert!((g - gini(&[3, 1])).abs() < 1e-12);
    }
}
