//! Single-peer query series (paper Figs. 8–9).
//!
//! The paper singles out the peer that sent the most queries and plots, per
//! strategy group, the cumulative START-UPLOAD (Fig. 8) and REQUEST-PART
//! (Fig. 9) messages received from it — exposing both the pacing difference
//! (timeout-clocked vs transfer-clocked) and the plateaus of its off
//! periods.

use std::collections::HashMap;

use honeypot::{AnonPeerId, ContentStrategy, MeasurementLog, QueryKind};
use netsim::metrics::BucketSeries;
use netsim::time::MS_PER_DAY;
use serde::Serialize;

use crate::index::LogIndex;
use crate::strategy::StrategyComparison;

/// Identifies the peer with the most records of `kind` (ties broken by the
/// smaller anonymised ID, i.e. earlier first appearance).
pub fn top_peer(log: &MeasurementLog, kind: QueryKind) -> Option<AnonPeerId> {
    let mut counts: HashMap<AnonPeerId, u64> = HashMap::new();
    for r in log.records_of(kind) {
        *counts.entry(r.peer).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(peer, count)| (count, std::cmp::Reverse(peer.0)))
        .map(|(peer, _)| peer)
}

/// Cumulative per-day messages of `kind` received *from one peer* by each
/// strategy group.
pub fn peer_series(log: &MeasurementLog, peer: AnonPeerId, kind: QueryKind) -> StrategyComparison {
    let mut rc = BucketSeries::daily();
    let mut nc = BucketSeries::daily();
    for r in log.records_of(kind).filter(|r| r.peer == peer) {
        match log.honeypots[r.honeypot.0 as usize].content {
            ContentStrategy::RandomContent => rc.record(r.at),
            ContentStrategy::NoContent => nc.record(r.at),
        }
    }
    let days = log.duration.as_millis().div_ceil(MS_PER_DAY).max(1) as usize;
    StrategyComparison { random_content: rc.cumulative(days), no_content: nc.cumulative(days) }
}

/// Detects plateaus — runs of ≥ `min_days` consecutive days with no growth
/// — in a cumulative series (the paper points at the top peer's silent
/// periods).
pub fn plateaus(cumulative: &[u64], min_days: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut run_start = None;
    for i in 1..cumulative.len() {
        if cumulative[i] == cumulative[i - 1] {
            run_start.get_or_insert(i);
        } else if let Some(s) = run_start.take() {
            if i - s >= min_days {
                out.push((s, i - 1));
            }
        }
    }
    if let Some(s) = run_start {
        if cumulative.len() - s >= min_days {
            out.push((s, cumulative.len() - 1));
        }
    }
    out
}

/// Summary row for reports.
#[derive(Clone, Debug, Serialize)]
pub struct TopPeerSummary {
    pub peer: u32,
    pub start_upload_rc: u64,
    pub start_upload_nc: u64,
    pub request_part_rc: u64,
    pub request_part_nc: u64,
}

/// Computes the full Fig. 8/9 summary for the top peer (by START-UPLOAD
/// volume, as in the paper).
pub fn top_peer_summary(log: &MeasurementLog) -> Option<TopPeerSummary> {
    let peer = top_peer(log, QueryKind::StartUpload)?;
    let su = peer_series(log, peer, QueryKind::StartUpload);
    let rp = peer_series(log, peer, QueryKind::RequestPart);
    let (su_rc, su_nc) = su.finals();
    let (rp_rc, rp_nc) = rp.finals();
    Some(TopPeerSummary {
        peer: peer.0,
        start_upload_rc: su_rc,
        start_upload_nc: su_nc,
        request_part_rc: rp_rc,
        request_part_nc: rp_nc,
    })
}

/// Index-backed equivalents of this module's scans; asserted equal to the
/// direct functions in `tests/index_equivalence.rs`.
impl LogIndex {
    /// Indexed [`top_peer`]: reads the per-peer count array instead of
    /// re-tallying the records, same tie-break (smaller anonymised ID).
    pub fn top_peer(&self, kind: QueryKind) -> Option<AnonPeerId> {
        self.peer_counts(kind)
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .max_by_key(|&(peer, &count)| (count, std::cmp::Reverse(peer)))
            .map(|(peer, _)| AnonPeerId(peer as u32))
    }
}

/// [`top_peer_summary`] with the top-peer search served from the index;
/// the single-peer series stay direct scans (they touch one peer's records
/// only, and per-peer-per-day series are deliberately not materialised in
/// the index).
pub fn top_peer_summary_indexed(log: &MeasurementLog, ix: &LogIndex) -> Option<TopPeerSummary> {
    let peer = ix.top_peer(QueryKind::StartUpload)?;
    let su = peer_series(log, peer, QueryKind::StartUpload);
    let rp = peer_series(log, peer, QueryKind::RequestPart);
    let (su_rc, su_nc) = su.finals();
    let (rp_rc, rp_nc) = rp.finals();
    Some(TopPeerSummary {
        peer: peer.0,
        start_upload_rc: su_rc,
        start_upload_nc: su_nc,
        request_part_rc: rp_rc,
        request_part_nc: rp_nc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_log;
    use netsim::SimTime;

    #[test]
    fn top_peer_is_the_busiest() {
        let log = synthetic_log(&[
            (0, QueryKind::StartUpload, 0, SimTime::from_hours(1)),
            (1, QueryKind::StartUpload, 0, SimTime::from_hours(1)),
            (1, QueryKind::StartUpload, 1, SimTime::from_hours(2)),
            (1, QueryKind::StartUpload, 1, SimTime::from_hours(3)),
        ]);
        assert_eq!(top_peer(&log, QueryKind::StartUpload), Some(AnonPeerId(1)));
        assert_eq!(top_peer(&log, QueryKind::RequestPart), None);
    }

    #[test]
    fn peer_series_filters_to_one_peer() {
        let log = synthetic_log(&[
            (1, QueryKind::RequestPart, 1, SimTime::from_hours(1)),
            (1, QueryKind::RequestPart, 0, SimTime::from_hours(30)),
            (2, QueryKind::RequestPart, 1, SimTime::from_hours(1)), // other peer
        ]);
        let s = peer_series(&log, AnonPeerId(1), QueryKind::RequestPart);
        assert_eq!(s.random_content, vec![1, 1, 1]);
        assert_eq!(s.no_content, vec![0, 1, 1]);
    }

    #[test]
    fn plateaus_found() {
        let series = [1, 5, 5, 5, 8, 8, 9, 9, 9, 9];
        let p = plateaus(&series, 2);
        assert_eq!(p, vec![(2, 3), (7, 9)]);
        assert!(plateaus(&series, 4).is_empty());
        assert!(plateaus(&[], 1).is_empty());
    }

    #[test]
    fn summary_combines_both_kinds() {
        let log = synthetic_log(&[
            (3, QueryKind::StartUpload, 1, SimTime::from_hours(1)),
            (3, QueryKind::StartUpload, 0, SimTime::from_hours(2)),
            (3, QueryKind::RequestPart, 1, SimTime::from_hours(3)),
            (3, QueryKind::RequestPart, 1, SimTime::from_hours(4)),
        ]);
        let s = top_peer_summary(&log).unwrap();
        assert_eq!(s.peer, 3);
        assert_eq!((s.start_upload_rc, s.start_upload_nc), (1, 1));
        assert_eq!((s.request_part_rc, s.request_part_nc), (2, 0));
    }
}
