//! Synthetic [`MeasurementLog`] fixtures for tests.
//!
//! Public (not `cfg(test)`) so that downstream crates' tests can reuse the
//! same fixtures; hidden from docs.

#![doc(hidden)]

use edonkey_proto::{FileId, Ipv4, UserId};
use honeypot::log::{FileTable, FILE_NONE};
use honeypot::{
    AnonPeerId, AnonRecord, ContentStrategy, HoneypotId, HoneypotMeta, IdStatus, MeasurementLog,
    QueryKind, ServerInfo,
};
use netsim::SimTime;

/// Builds a three-day, two-honeypot log (hp0 = no-content, hp1 =
/// random-content) with three known files, from `(peer, kind, honeypot,
/// time)` tuples.  Non-HELLO records reference file 0 by default; use
/// [`synthetic_log_with_files`] to control the file per record.
pub fn synthetic_log(entries: &[(u32, QueryKind, u32, SimTime)]) -> MeasurementLog {
    let with_files: Vec<(u32, QueryKind, u32, SimTime, u32)> = entries
        .iter()
        .map(|&(p, k, h, t)| (p, k, h, t, if k == QueryKind::Hello { FILE_NONE } else { 0 }))
        .collect();
    synthetic_log_with_files(&with_files)
}

/// Like [`synthetic_log`], with an explicit file index per record
/// (`FILE_NONE` for none).
pub fn synthetic_log_with_files(entries: &[(u32, QueryKind, u32, SimTime, u32)]) -> MeasurementLog {
    let server = ServerInfo::new("srv", Ipv4::new(195, 0, 0, 1), 4661);
    let mut files = FileTable::new();
    files.intern(FileId::from_seed(b"file-0"), "file zero.avi", 700 << 20);
    files.intern(FileId::from_seed(b"file-1"), "file one.mp3", 5 << 20);
    files.intern(FileId::from_seed(b"file-2"), "file two.iso", 650 << 20);

    let max_peer = entries.iter().map(|e| e.0).max().map_or(0, |m| m + 1);
    let max_hp = entries.iter().map(|e| e.2).max().map_or(1, |m| m + 1).max(2);

    MeasurementLog {
        honeypots: (0..max_hp)
            .map(|i| HoneypotMeta {
                id: HoneypotId(i),
                content: if i % 2 == 0 {
                    ContentStrategy::NoContent
                } else {
                    ContentStrategy::RandomContent
                },
                server: server.clone(),
            })
            .collect(),
        records: entries
            .iter()
            .map(|&(peer, kind, hp, at, file)| AnonRecord {
                at,
                honeypot: HoneypotId(hp),
                kind,
                peer: AnonPeerId(peer),
                port: 4662,
                id_status: if peer % 3 == 0 { IdStatus::Low } else { IdStatus::High },
                user_id: UserId::from_seed(&peer.to_le_bytes()),
                name: 0,
                version: 0x49,
                file,
            })
            .collect(),
        shared_lists: Vec::new(),
        peer_names: vec!["eMule".into()],
        files,
        distinct_peers: max_peer,
        duration: SimTime::from_days(3),
        shared_files_final: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_valid() {
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 0, SimTime::from_hours(1)),
            (1, QueryKind::RequestPart, 1, SimTime::from_hours(2)),
        ]);
        assert!(log.validate().is_empty(), "{:?}", log.validate());
        assert_eq!(log.honeypots.len(), 2);
        assert_eq!(log.distinct_peers, 2);
    }
}
