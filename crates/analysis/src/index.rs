//! A one-pass index over a [`MeasurementLog`].
//!
//! Every figure of the paper scans the same record vector, and the full
//! experiment pipeline used to re-scan it once per figure — a dozen passes
//! over hundreds of thousands of records.  [`LogIndex`] makes a single
//! (rayon-parallel) pass and materialises every aggregate the analysis
//! modules need:
//!
//! * per-peer first-seen times, split by `(strategy, kind)` — from which
//!   the Figs. 2/3/5/6 growth curves derive by min-merging;
//! * per-peer query counts per kind (the Figs. 8/9 top-peer search);
//! * per-kind hourly and per-`(strategy, kind)` daily count series
//!   (Figs. 4 and 7);
//! * per-honeypot and per-file distinct-peer bitsets (Figs. 10–12);
//! * per-file first-seen times including shared-list observations
//!   (Table I's distinct-file count and growth).
//!
//! The index-derived results are asserted identical to the direct-scan
//! functions in `tests/index_equivalence.rs`; each analysis module hosts
//! the `impl LogIndex` block for its own figures, so the module stays the
//! home of that figure family's logic.
//!
//! # Streaming
//! The scan itself lives in [`IndexBuilder`], which consumes records
//! chunk-at-a-time (or one at a time): a caller replaying a spooled
//! measurement can feed records as they decode and never hold the full
//! record vector alongside the index.  [`LogIndex::build`] and both forced
//! variants are thin drivers over the builder — the sequential path feeds
//! one builder, the parallel path feeds one builder per fixed chunk and
//! [`IndexBuilder::absorb`]s them in chunk order.
//!
//! # Determinism
//! The parallel build splits the record vector into a *fixed* number of
//! chunks (independent of worker-thread count) and merges partial
//! accumulators in chunk order with order-insensitive operations (min,
//! add, bitwise or).  The result is therefore a pure function of the log,
//! whatever rayon pool it runs on — asserted by
//! `tests/index_equivalence.rs::index_is_thread_count_independent`.  The
//! same argument makes the streaming builder chunking-insensitive: any
//! partition of the records into pushes yields the same index.

use std::collections::HashMap;

use honeypot::log::FILE_NONE;
use honeypot::{AnonRecord, ContentStrategy, MeasurementLog, QueryKind};
use netsim::time::{MS_PER_DAY, MS_PER_HOUR};
use netsim::SimTime;
use rayon::prelude::*;

use crate::subset::PeerSet;

/// Number of query kinds (`QueryKind` variants).
pub(crate) const KINDS: usize = 3;
/// Number of content strategies.
pub(crate) const STRATEGIES: usize = 2;
/// Chunks the record vector is split into for the parallel build.  Fixed —
/// not derived from the thread count — so the merge order, and with it the
/// result, never depends on the pool executing it.
const BUILD_CHUNKS: usize = 16;

/// Below this record count [`LogIndex::build`] stays sequential.  Each
/// parallel chunk allocates its own universe-sized accumulators
/// (`Partial::new` holds 9 peer-indexed vectors), so on small logs the
/// 16-way split costs more in allocation + merge than the scan saves —
/// `BENCH_baseline.json` measured the parallel path at 45.8M records/s vs
/// 57.5M sequential on a 547k-record log.  Both paths produce identical
/// results (see `tests/index_equivalence.rs`); this is purely a
/// performance crossover.  Public so the bench binary can report which
/// path `build()` selects for a given log.
pub const PAR_BUILD_MIN_RECORDS: usize = 2_000_000;

/// Sentinel for "never observed" in first-seen arrays.
pub(crate) const NEVER: u64 = u64::MAX;

pub(crate) fn kind_idx(kind: QueryKind) -> usize {
    match kind {
        QueryKind::Hello => 0,
        QueryKind::StartUpload => 1,
        QueryKind::RequestPart => 2,
    }
}

pub(crate) fn strategy_idx(strategy: ContentStrategy) -> usize {
    match strategy {
        ContentStrategy::NoContent => 0,
        ContentStrategy::RandomContent => 1,
    }
}

/// The shared one-pass index.  Build once with [`LogIndex::build`], then
/// derive every figure from it; the analysis modules attach their
/// index-based entry points as `impl LogIndex` blocks.
pub struct LogIndex {
    /// Number of distinct peers (array dimension of the per-peer data).
    universe: usize,
    /// Measurement duration in whole days (≥ 1), the figures' x-axis.
    days: usize,
    /// Measurement duration in whole hours (≥ 1).
    hours: usize,
    /// `first_seen[s][k][peer]` = earliest time (ms) peer sent kind `k` to
    /// a honeypot of strategy `s`; [`NEVER`] if it never did.
    first_seen: [[Vec<u64>; KINDS]; STRATEGIES],
    /// `counts[k][peer]` = number of records of kind `k` from `peer`.
    counts: [Vec<u64>; KINDS],
    /// Hourly record counts per kind (ragged; padded on read).
    hourly: [Vec<u64>; KINDS],
    /// Daily record counts per `(strategy, kind)` (ragged; padded on read).
    daily: [[Vec<u64>; KINDS]; STRATEGIES],
    /// Earliest record timestamp (ms) per kind; [`NEVER`] if none.
    kind_first_ms: [u64; KINDS],
    /// Distinct peers per honeypot, any kind (Fig. 10).
    honeypot_peers: Vec<PeerSet>,
    /// Distinct peers per START-UPLOADed file, sorted by file index
    /// (Figs. 11–12).
    file_peers: Vec<(u32, PeerSet)>,
    /// `file_first[file]` = earliest observation (query or shared list) of
    /// the file; [`NEVER`] sentinel.  Ragged: grown to the largest index
    /// observed.
    file_first: Vec<u64>,
}

/// Per-chunk accumulator of the parallel build.
struct Partial {
    first_seen: [[Vec<u64>; KINDS]; STRATEGIES],
    counts: [Vec<u64>; KINDS],
    hourly: [Vec<u64>; KINDS],
    daily: [[Vec<u64>; KINDS]; STRATEGIES],
    kind_first_ms: [u64; KINDS],
    honeypot_peers: Vec<PeerSet>,
    file_peers: HashMap<u32, PeerSet>,
    file_first: Vec<u64>,
}

impl Partial {
    fn new(universe: usize, honeypots: usize) -> Self {
        Partial {
            first_seen: std::array::from_fn(|_| std::array::from_fn(|_| vec![NEVER; universe])),
            counts: std::array::from_fn(|_| vec![0; universe]),
            hourly: std::array::from_fn(|_| Vec::new()),
            daily: std::array::from_fn(|_| std::array::from_fn(|_| Vec::new())),
            kind_first_ms: [NEVER; KINDS],
            honeypot_peers: (0..honeypots).map(|_| PeerSet::new(universe)).collect(),
            file_peers: HashMap::new(),
            file_first: Vec::new(),
        }
    }

    /// Folds `other` into `self`.  Every operation is order-insensitive
    /// (min / add / or), so any merge order yields the same index.
    fn merge(mut self, other: Partial) -> Self {
        for s in 0..STRATEGIES {
            for k in 0..KINDS {
                for (a, b) in self.first_seen[s][k].iter_mut().zip(&other.first_seen[s][k]) {
                    *a = (*a).min(*b);
                }
                add_ragged(&mut self.daily[s][k], &other.daily[s][k]);
            }
        }
        for k in 0..KINDS {
            for (a, b) in self.counts[k].iter_mut().zip(&other.counts[k]) {
                *a += *b;
            }
            add_ragged(&mut self.hourly[k], &other.hourly[k]);
            self.kind_first_ms[k] = self.kind_first_ms[k].min(other.kind_first_ms[k]);
        }
        for (a, b) in self.honeypot_peers.iter_mut().zip(&other.honeypot_peers) {
            a.union_with(b);
        }
        for (file, set) in other.file_peers {
            match self.file_peers.entry(file) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(set);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().union_with(&set);
                }
            }
        }
        min_ragged(&mut self.file_first, &other.file_first);
        self
    }
}

/// `a[i] += b[i]`, growing `a` as needed.
fn add_ragged(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (x, y) in a.iter_mut().zip(b) {
        *x += *y;
    }
}

/// `a[i] = min(a[i], b[i])` under the [`NEVER`] sentinel, growing `a`.
fn min_ragged(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), NEVER);
    }
    for (x, y) in a.iter_mut().zip(b) {
        *x = (*x).min(*y);
    }
}

/// Sets `v[idx] = min(v[idx], value)`, growing `v` with [`NEVER`].
fn observe_ragged(v: &mut Vec<u64>, idx: usize, value: u64) {
    if idx >= v.len() {
        v.resize(idx + 1, NEVER);
    }
    v[idx] = v[idx].min(value);
}

/// `v[idx] += 1`, growing `v` with zeros (the `BucketSeries` contract).
fn bump_ragged(v: &mut Vec<u64>, idx: usize) {
    if idx >= v.len() {
        v.resize(idx + 1, 0);
    }
    v[idx] += 1;
}

/// Incremental construction of a [`LogIndex`].
///
/// The builder is seeded from the measurement *header* — distinct-peer
/// count, honeypot strategies, duration — and then fed records in any
/// chunking: whole log, storage-decode batches, or one at a time.  Every
/// accumulation is order- and chunking-insensitive (min / add / bitwise
/// or), so any partition of the same records yields the same index.  Two
/// builders over disjoint record subsets can also be combined with
/// [`IndexBuilder::absorb`], which is how the parallel build merges its
/// per-chunk workers.
pub struct IndexBuilder {
    universe: usize,
    days: usize,
    hours: usize,
    /// Honeypot id → strategy index, from the header.
    strategy_of: Vec<usize>,
    acc: Partial,
}

impl IndexBuilder {
    /// A builder dimensioned by the log's header (its records are *not*
    /// read here — feed them via [`IndexBuilder::push_records`]).
    pub fn for_log(log: &MeasurementLog) -> IndexBuilder {
        let strategies: Vec<ContentStrategy> = log.honeypots.iter().map(|h| h.content).collect();
        Self::new(log.distinct_peers, &strategies, log.duration)
    }

    /// A builder from bare header values, for callers streaming a log that
    /// is never materialised in memory.
    pub fn new(distinct_peers: u32, strategies: &[ContentStrategy], duration: SimTime) -> Self {
        let universe = distinct_peers as usize;
        IndexBuilder {
            universe,
            days: duration.as_millis().div_ceil(MS_PER_DAY).max(1) as usize,
            hours: duration.as_millis().div_ceil(MS_PER_HOUR).max(1) as usize,
            strategy_of: strategies.iter().map(|&s| strategy_idx(s)).collect(),
            acc: Partial::new(universe, strategies.len()),
        }
    }

    /// Accumulates one record.
    pub fn push_record(&mut self, r: &AnonRecord) {
        let p = &mut self.acc;
        let at = r.at.as_millis();
        let k = kind_idx(r.kind);
        let s = self.strategy_of[r.honeypot.0 as usize];
        let peer = r.peer.0 as usize;
        let fs = &mut p.first_seen[s][k][peer];
        *fs = (*fs).min(at);
        p.counts[k][peer] += 1;
        bump_ragged(&mut p.hourly[k], (at / MS_PER_HOUR) as usize);
        bump_ragged(&mut p.daily[s][k], (at / MS_PER_DAY) as usize);
        p.kind_first_ms[k] = p.kind_first_ms[k].min(at);
        p.honeypot_peers[r.honeypot.0 as usize].insert(r.peer.0);
        if r.file != FILE_NONE {
            observe_ragged(&mut p.file_first, r.file as usize, at);
            if r.kind == QueryKind::StartUpload {
                p.file_peers
                    .entry(r.file)
                    .or_insert_with(|| PeerSet::new(self.universe))
                    .insert(r.peer.0);
            }
        }
    }

    /// Accumulates a chunk of records.
    pub fn push_records(&mut self, records: &[AnonRecord]) {
        for r in records {
            self.push_record(r);
        }
    }

    /// Accumulates one shared-list observation: lists establish file
    /// first-seen times (Table I's distinct-file growth) but carry no
    /// query-kind data.
    pub fn push_shared_list(&mut self, at: SimTime, files: &[u32]) {
        let at = at.as_millis();
        for &f in files {
            observe_ragged(&mut self.acc.file_first, f as usize, at);
        }
    }

    /// Folds another builder's accumulation into this one.  The two must
    /// share dimensions (built from the same header); the merge is
    /// order-insensitive.
    pub fn absorb(&mut self, other: IndexBuilder) {
        debug_assert_eq!(self.universe, other.universe, "builders from different headers");
        let acc = std::mem::replace(&mut self.acc, Partial::new(0, 0));
        self.acc = acc.merge(other.acc);
    }

    /// Finalises into the immutable index.
    pub fn finish(self) -> LogIndex {
        let Partial {
            first_seen,
            counts,
            hourly,
            daily,
            kind_first_ms,
            honeypot_peers,
            file_peers,
            file_first,
        } = self.acc;
        let mut file_peers: Vec<(u32, PeerSet)> = file_peers.into_iter().collect();
        file_peers.sort_by_key(|(f, _)| *f);
        LogIndex {
            universe: self.universe,
            days: self.days,
            hours: self.hours,
            first_seen,
            counts,
            hourly,
            daily,
            kind_first_ms,
            honeypot_peers,
            file_peers,
            file_first,
        }
    }
}

impl LogIndex {
    /// Builds the index in one pass over the log, auto-selecting the
    /// execution: sequential below [`PAR_BUILD_MIN_RECORDS`] or on a
    /// single-thread pool (where the chunked build only adds allocation
    /// and merge overhead), rayon-parallel otherwise.  The two paths are
    /// result-identical, so the choice is invisible to callers.
    pub fn build(log: &MeasurementLog) -> LogIndex {
        if log.records.len() < PAR_BUILD_MIN_RECORDS || rayon::current_num_threads() <= 1 {
            Self::build_sequential(log)
        } else {
            Self::build_parallel(log)
        }
    }

    /// The rayon-parallel chunked build (forced; [`LogIndex::build`]
    /// normally decides).
    pub fn build_parallel(log: &MeasurementLog) -> LogIndex {
        let chunk = log.records.len().div_ceil(BUILD_CHUNKS).max(1);
        Self::build_chunked(log, chunk)
    }

    /// Sequential reference build (single chunk) — the baseline for the
    /// equivalence tests and the `perf_baseline` binary.
    pub fn build_sequential(log: &MeasurementLog) -> LogIndex {
        Self::build_chunked(log, log.records.len().max(1))
    }

    fn build_chunked(log: &MeasurementLog, chunk_size: usize) -> LogIndex {
        // Span events keyed on record counts (deterministic for a given
        // log), so index builds show up in the flight recorder with
        // enough context to reconstruct what was being built.
        netsim::obs_event!(
            netsim::obs::Level::Trace,
            "analysis",
            "index_build_begin",
            records = log.records.len(),
            chunk_size = chunk_size,
            universe = log.distinct_peers
        );
        let builders: Vec<IndexBuilder> = log
            .records
            .par_chunks(chunk_size)
            .map(|records| {
                let mut b = IndexBuilder::for_log(log);
                b.push_records(records);
                b
            })
            .collect();
        // Merge sequentially in chunk order: with order-insensitive fold
        // operations this is equivalent to any parallel reduction tree,
        // and it keeps the merge cost off the worker threads.
        let mut merged = builders
            .into_iter()
            .reduce(|mut a, b| {
                a.absorb(b);
                a
            })
            .unwrap_or_else(|| IndexBuilder::for_log(log));

        // Shared-list observations also establish file first-seen times
        // (they are few compared to records; a sequential pass suffices).
        for list in &log.shared_lists {
            merged.push_shared_list(list.at, &list.files);
        }
        netsim::obs_event!(
            netsim::obs::Level::Trace,
            "analysis",
            "index_build_end",
            records = log.records.len(),
            shared_lists = log.shared_lists.len()
        );
        merged.finish()
    }

    /// Number of distinct peers (the per-peer array dimension).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Whole measurement days (≥ 1).
    pub fn days(&self) -> usize {
        self.days
    }

    /// Whole measurement hours (≥ 1).
    pub fn hours(&self) -> usize {
        self.hours
    }

    /// Per-peer first-seen times (ms, [`NEVER`] sentinel) min-merged over
    /// the requested kinds: a specific kind, or all kinds (`None`).
    pub(crate) fn peer_first_merged(&self, kind: Option<QueryKind>) -> Vec<u64> {
        let mut merged = vec![NEVER; self.universe];
        for s in 0..STRATEGIES {
            for k in 0..KINDS {
                if kind.is_none_or(|want| kind_idx(want) == k) {
                    for (m, &t) in merged.iter_mut().zip(&self.first_seen[s][k]) {
                        *m = (*m).min(t);
                    }
                }
            }
        }
        merged
    }

    /// Per-peer first-seen times for one `(strategy, kind)` cell.
    pub(crate) fn peer_first_cell(&self, strategy: ContentStrategy, kind: QueryKind) -> &[u64] {
        &self.first_seen[strategy_idx(strategy)][kind_idx(kind)]
    }

    /// Per-peer record counts of one kind.
    pub(crate) fn peer_counts(&self, kind: QueryKind) -> &[u64] {
        &self.counts[kind_idx(kind)]
    }

    /// Hourly record counts of one kind, padded to the measurement span.
    pub(crate) fn hourly_padded(&self, kind: QueryKind) -> Vec<u64> {
        let mut v = self.hourly[kind_idx(kind)].clone();
        if v.len() < self.hours {
            v.resize(self.hours, 0);
        }
        v
    }

    /// Daily record counts for one `(strategy, kind)` cell, padded.
    pub(crate) fn daily_padded(&self, strategy: ContentStrategy, kind: QueryKind) -> Vec<u64> {
        let mut v = self.daily[strategy_idx(strategy)][kind_idx(kind)].clone();
        if v.len() < self.days {
            v.resize(self.days, 0);
        }
        v
    }

    /// Earliest record timestamp (ms) of a kind.
    pub(crate) fn kind_first(&self, kind: QueryKind) -> Option<u64> {
        let t = self.kind_first_ms[kind_idx(kind)];
        (t != NEVER).then_some(t)
    }

    /// Per-file first-seen times ([`NEVER`] sentinel), queries and shared
    /// lists combined.
    pub(crate) fn file_first(&self) -> &[u64] {
        &self.file_first
    }

    /// Per-honeypot distinct-peer sets, any query kind — the indexed
    /// equivalent of [`crate::subset::peer_sets_by_honeypot`] (Fig. 10).
    pub fn honeypot_peer_sets(&self) -> &[PeerSet] {
        &self.honeypot_peers
    }

    /// Per-file distinct-peer sets over START-UPLOAD queries, sorted by
    /// file index — the indexed equivalent of
    /// [`crate::subset::peer_sets_by_file`] (Figs. 11–12).
    pub fn file_peer_sets(&self) -> &[(u32, PeerSet)] {
        &self.file_peers
    }
}

/// Turns a first-seen array into a new-keys-per-bucket series with
/// [`netsim::metrics::FirstSeen::new_per_bucket`] semantics: length is the
/// max of `min_len` and the last occupied bucket + 1.
pub(crate) fn new_per_bucket(firsts: &[u64], bucket_ms: u64, min_len: usize) -> Vec<u64> {
    assert!(bucket_ms > 0);
    let len = firsts
        .iter()
        .filter(|&&t| t != NEVER)
        .map(|&t| (t / bucket_ms) as usize + 1)
        .max()
        .unwrap_or(0)
        .max(min_len);
    let mut counts = vec![0u64; len];
    for &t in firsts {
        if t != NEVER {
            counts[(t / bucket_ms) as usize] += 1;
        }
    }
    counts
}

/// Running sum of a count series.
pub(crate) fn cumulate(mut series: Vec<u64>) -> Vec<u64> {
    let mut acc = 0u64;
    for v in &mut series {
        acc += *v;
        *v = acc;
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_log;
    use netsim::SimTime;

    #[test]
    fn empty_log_builds_an_empty_index() {
        let ix = LogIndex::build(&synthetic_log(&[]));
        assert_eq!(ix.universe(), 0, "no records, no peers");
        assert_eq!(ix.days(), 3);
        assert_eq!(ix.hours(), 72);
        assert_eq!(ix.kind_first(QueryKind::Hello), None);
        assert_eq!(ix.honeypot_peer_sets().len(), 2, "fixture always has 2 honeypots");
        assert!(ix.honeypot_peer_sets().iter().all(|s| s.count() == 0));
        assert!(ix.file_peer_sets().is_empty());
    }

    #[test]
    fn chunked_and_sequential_builds_agree() {
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 0, SimTime::from_hours(1)),
            (1, QueryKind::StartUpload, 1, SimTime::from_hours(2)),
            (2, QueryKind::RequestPart, 0, SimTime::from_hours(26)),
            (0, QueryKind::Hello, 1, SimTime::from_hours(50)),
        ]);
        let a = LogIndex::build_chunked(&log, 1); // 4 chunks
        let b = LogIndex::build_sequential(&log);
        assert_eq!(a.peer_first_merged(None), b.peer_first_merged(None));
        assert_eq!(a.peer_counts(QueryKind::Hello), b.peer_counts(QueryKind::Hello));
        assert_eq!(a.hourly_padded(QueryKind::Hello), b.hourly_padded(QueryKind::Hello));
        assert_eq!(a.kind_first(QueryKind::RequestPart), b.kind_first(QueryKind::RequestPart));
        assert_eq!(a.file_first(), b.file_first());
    }

    #[test]
    fn new_per_bucket_matches_first_seen_semantics() {
        // Mirror of metrics.rs::new_and_cumulative_per_day.
        let firsts = [
            SimTime::from_hours(1).as_millis(),
            SimTime::from_hours(30).as_millis(),
            SimTime::from_hours(31).as_millis(),
            NEVER,
        ];
        assert_eq!(new_per_bucket(&firsts, MS_PER_DAY, 3), vec![1, 2, 0]);
        assert_eq!(cumulate(new_per_bucket(&firsts, MS_PER_DAY, 3)), vec![1, 3, 3]);
        assert_eq!(new_per_bucket(&firsts, MS_PER_HOUR, 0).len(), 32);
        assert_eq!(new_per_bucket(&[NEVER], MS_PER_DAY, 2), vec![0, 0]);
    }
}
