//! Random-content vs no-content comparison (paper Figs. 5–7).
//!
//! The 24 honeypots of the distributed measurement split into two groups of
//! 12 by content strategy; the paper compares, per group and per day:
//! the number of distinct peers having sent HELLO (Fig. 5) and START-UPLOAD
//! (Fig. 6), and the cumulative number of REQUEST-PART messages (Fig. 7).

use honeypot::{AnonPeerId, ContentStrategy, HoneypotId, MeasurementLog, QueryKind};
use netsim::metrics::{BucketSeries, FirstSeen};
use netsim::time::MS_PER_DAY;
use serde::Serialize;

use crate::index::{cumulate, new_per_bucket, LogIndex};

/// A per-day cumulative series for each strategy group.
#[derive(Clone, Debug, Serialize)]
pub struct StrategyComparison {
    /// Cumulative value per day for the random-content group.
    pub random_content: Vec<u64>,
    /// Cumulative value per day for the no-content group.
    pub no_content: Vec<u64>,
}

impl StrategyComparison {
    /// Final values `(random_content, no_content)`.
    pub fn finals(&self) -> (u64, u64) {
        (
            self.random_content.last().copied().unwrap_or(0),
            self.no_content.last().copied().unwrap_or(0),
        )
    }

    /// Whether random-content dominates no-content at the end — the
    /// paper's headline §IV-B finding.
    pub fn random_wins(&self) -> bool {
        let (rc, nc) = self.finals();
        rc > nc
    }
}

fn group_of(log: &MeasurementLog, hp: HoneypotId) -> ContentStrategy {
    log.honeypots[hp.0 as usize].content
}

fn days_of(log: &MeasurementLog) -> usize {
    log.duration.as_millis().div_ceil(MS_PER_DAY).max(1) as usize
}

/// Distinct peers having sent `kind` to each group, cumulative per day
/// (Figs. 5 and 6).
pub fn distinct_peers_by_strategy(log: &MeasurementLog, kind: QueryKind) -> StrategyComparison {
    let mut rc: FirstSeen<AnonPeerId> = FirstSeen::new();
    let mut nc: FirstSeen<AnonPeerId> = FirstSeen::new();
    for r in log.records_of(kind) {
        match group_of(log, r.honeypot) {
            ContentStrategy::RandomContent => rc.observe(r.peer, r.at),
            ContentStrategy::NoContent => nc.observe(r.peer, r.at),
        };
    }
    let days = days_of(log);
    StrategyComparison {
        random_content: rc.cumulative_per_bucket(MS_PER_DAY, days),
        no_content: nc.cumulative_per_bucket(MS_PER_DAY, days),
    }
}

/// Total messages of `kind` received by each group, cumulative per day
/// (Fig. 7 with `QueryKind::RequestPart`).
pub fn messages_by_strategy(log: &MeasurementLog, kind: QueryKind) -> StrategyComparison {
    let mut rc = BucketSeries::daily();
    let mut nc = BucketSeries::daily();
    for r in log.records_of(kind) {
        match group_of(log, r.honeypot) {
            ContentStrategy::RandomContent => rc.record(r.at),
            ContentStrategy::NoContent => nc.record(r.at),
        }
    }
    let days = days_of(log);
    StrategyComparison { random_content: rc.cumulative(days), no_content: nc.cumulative(days) }
}

/// Index-backed equivalents of this module's scans; asserted equal to the
/// direct functions in `tests/index_equivalence.rs`.
impl LogIndex {
    /// Indexed [`distinct_peers_by_strategy`].
    pub fn distinct_peers_by_strategy(&self, kind: QueryKind) -> StrategyComparison {
        let days = self.days();
        let per_group = |s: ContentStrategy| {
            cumulate(new_per_bucket(self.peer_first_cell(s, kind), MS_PER_DAY, days))
        };
        StrategyComparison {
            random_content: per_group(ContentStrategy::RandomContent),
            no_content: per_group(ContentStrategy::NoContent),
        }
    }

    /// Indexed [`messages_by_strategy`].
    pub fn messages_by_strategy(&self, kind: QueryKind) -> StrategyComparison {
        StrategyComparison {
            random_content: cumulate(self.daily_padded(ContentStrategy::RandomContent, kind)),
            no_content: cumulate(self.daily_padded(ContentStrategy::NoContent, kind)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_log;
    use netsim::SimTime;

    // Fixture convention: hp0 = no-content, hp2 = no-content, hp1 =
    // random-content.

    #[test]
    fn distinct_peers_split_by_group() {
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 0, SimTime::from_hours(1)), // nc
            (0, QueryKind::Hello, 1, SimTime::from_hours(2)), // rc (same peer)
            (1, QueryKind::Hello, 1, SimTime::from_hours(3)), // rc
            (1, QueryKind::Hello, 1, SimTime::from_hours(40)), // repeat, day 1
        ]);
        let c = distinct_peers_by_strategy(&log, QueryKind::Hello);
        assert_eq!(c.no_content, vec![1, 1, 1]);
        assert_eq!(c.random_content, vec![2, 2, 2], "repeat contact not double-counted");
        assert_eq!(c.finals(), (2, 1));
        assert!(c.random_wins());
    }

    #[test]
    fn messages_accumulate_per_group() {
        let log = synthetic_log(&[
            (0, QueryKind::RequestPart, 0, SimTime::from_hours(1)),
            (0, QueryKind::RequestPart, 0, SimTime::from_hours(30)),
            (0, QueryKind::RequestPart, 1, SimTime::from_hours(30)),
            (0, QueryKind::RequestPart, 1, SimTime::from_hours(31)),
            (0, QueryKind::RequestPart, 1, SimTime::from_hours(60)),
        ]);
        let c = messages_by_strategy(&log, QueryKind::RequestPart);
        assert_eq!(c.no_content, vec![1, 2, 2]);
        assert_eq!(c.random_content, vec![0, 2, 3]);
    }

    #[test]
    fn kinds_do_not_mix() {
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 1, SimTime::from_hours(1)),
            (1, QueryKind::StartUpload, 1, SimTime::from_hours(1)),
        ]);
        let c = distinct_peers_by_strategy(&log, QueryKind::StartUpload);
        assert_eq!(c.finals(), (1, 0));
    }

    #[test]
    fn empty_log_yields_flat_series() {
        let log = synthetic_log(&[]);
        let c = distinct_peers_by_strategy(&log, QueryKind::Hello);
        assert_eq!(c.finals(), (0, 0));
        assert!(!c.random_wins());
        assert_eq!(c.no_content.len(), 3);
    }
}
