//! Table I — basic statistics of a measurement.

use honeypot::MeasurementLog;
use serde::Serialize;

use crate::distinct::peer_growth;
use crate::index::LogIndex;

/// One column of the paper's Table I.
#[derive(Clone, Debug, Serialize)]
pub struct BasicStats {
    pub honeypots: usize,
    pub duration_days: f64,
    pub shared_files: u32,
    pub distinct_peers: u32,
    pub distinct_files: usize,
    /// Total size of distinct observed files, bytes.
    pub distinct_files_bytes: u64,
}

impl BasicStats {
    /// Space used by distinct files in terabytes (the unit Table I uses).
    pub fn distinct_files_tb(&self) -> f64 {
        self.distinct_files_bytes as f64 / 1e12
    }
}

/// Computes the Table I column for a measurement.
pub fn basic_stats(log: &MeasurementLog) -> BasicStats {
    BasicStats {
        honeypots: log.honeypots.len(),
        duration_days: log.duration.as_days(),
        shared_files: log.shared_files_final,
        distinct_peers: log.distinct_peers,
        distinct_files: log.distinct_files(),
        distinct_files_bytes: log.distinct_files_size(),
    }
}

/// Sanity: `distinct_peers` must agree with a full scan (used by tests and
/// the experiment runner's self-check).
pub fn recount_distinct_peers(log: &MeasurementLog) -> u64 {
    peer_growth(log).total()
}

impl LogIndex {
    /// Indexed [`recount_distinct_peers`] — the runner's self-check without
    /// the extra record scan.
    pub fn recount_distinct_peers(&self) -> u64 {
        self.peer_growth().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_log;
    use honeypot::QueryKind;
    use netsim::SimTime;

    #[test]
    fn stats_reflect_log() {
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 0, SimTime::from_hours(1)),
            (1, QueryKind::Hello, 1, SimTime::from_hours(2)),
        ]);
        let s = basic_stats(&log);
        assert_eq!(s.honeypots, 2);
        assert_eq!(s.distinct_peers, 2);
        assert!((s.duration_days - 3.0).abs() < 1e-9);
        assert_eq!(s.shared_files, 4);
        assert_eq!(s.distinct_files, 3);
        assert_eq!(recount_distinct_peers(&log), 2);
    }

    #[test]
    fn tb_conversion() {
        let log = synthetic_log(&[]);
        let mut s = basic_stats(&log);
        s.distinct_files_bytes = 9_000_000_000_000;
        assert!((s.distinct_files_tb() - 9.0).abs() < 1e-9);
    }
}
