//! Monte-Carlo subset sampling (paper Figs. 10–12).
//!
//! "Given n honeypots (resp. advertised files), how many distinct peers
//! would a measurement using only those n have observed?"  The paper
//! samples 100 random subsets per n and plots average, minimum and maximum.
//!
//! Enumerating independent subsets for every `n` re-does almost all union
//! work; instead each Monte-Carlo *permutation* of the full set yields, via
//! incremental unions, one sample for every `n` at once (a uniformly random
//! permutation's n-prefix is a uniformly random n-subset).  Permutations
//! run in parallel with rayon.

use honeypot::{MeasurementLog, QueryKind};
use netsim::Rng;
use rayon::prelude::*;
use serde::Serialize;

/// A set of peers as a fixed-width bitset.
#[derive(Clone, Debug, Default)]
pub struct PeerSet {
    words: Vec<u64>,
}

impl PeerSet {
    /// An empty set sized for `universe` peers.
    pub fn new(universe: usize) -> Self {
        PeerSet { words: vec![0; universe.div_ceil(64)] }
    }

    pub fn insert(&mut self, peer: u32) {
        let idx = peer as usize;
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    pub fn contains(&self, peer: u32) -> bool {
        let idx = peer as usize;
        self.words.get(idx / 64).is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    /// Number of peers in the set.
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// In-place union; returns the new cardinality.
    pub fn union_with(&mut self, other: &PeerSet) -> u64 {
        debug_assert_eq!(self.words.len(), other.words.len(), "mismatched universes");
        let mut count = 0u64;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
            count += u64::from(a.count_ones());
        }
        count
    }

    fn clear(&mut self) {
        self.words.fill(0);
    }
}

/// One point of a subset curve.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SubsetPoint {
    /// Subset size.
    pub n: usize,
    pub avg: f64,
    pub min: u64,
    pub max: u64,
}

/// Computes the subset curve over `sets` with `samples` Monte-Carlo
/// permutations.  Point `i` (1-based `n = i + 1`) aggregates the union
/// cardinality of each permutation's `n`-prefix.
pub fn subset_curve(sets: &[PeerSet], samples: usize, seed: u64) -> Vec<SubsetPoint> {
    if sets.is_empty() || samples == 0 {
        return Vec::new();
    }
    let universe_words = sets[0].words.len();
    let per_permutation: Vec<Vec<u64>> = (0..samples)
        .into_par_iter()
        .map(|s| {
            let mut rng = Rng::seed_from(seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut order: Vec<usize> = (0..sets.len()).collect();
            rng.shuffle(&mut order);
            let mut acc = PeerSet { words: vec![0; universe_words] };
            let mut sizes = Vec::with_capacity(sets.len());
            for &idx in &order {
                sizes.push(acc.union_with(&sets[idx]));
            }
            acc.clear();
            sizes
        })
        .collect();

    (0..sets.len())
        .map(|i| {
            let values = per_permutation.iter().map(|p| p[i]);
            let min = values.clone().min().expect("samples > 0");
            let max = values.clone().max().expect("samples > 0");
            let sum: u64 = values.sum();
            SubsetPoint { n: i + 1, avg: sum as f64 / samples as f64, min, max }
        })
        .collect()
}

/// Sequential reference implementation of [`subset_curve`] (same
/// permutation trick, no rayon) — used by the parallelism ablation bench
/// and as a cross-check in tests.
pub fn subset_curve_sequential(sets: &[PeerSet], samples: usize, seed: u64) -> Vec<SubsetPoint> {
    if sets.is_empty() || samples == 0 {
        return Vec::new();
    }
    let universe_words = sets[0].words.len();
    let mut per_permutation: Vec<Vec<u64>> = Vec::with_capacity(samples);
    for s in 0..samples {
        let mut rng = Rng::seed_from(seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut order: Vec<usize> = (0..sets.len()).collect();
        rng.shuffle(&mut order);
        let mut acc = PeerSet { words: vec![0; universe_words] };
        let mut sizes = Vec::with_capacity(sets.len());
        for &idx in &order {
            sizes.push(acc.union_with(&sets[idx]));
        }
        per_permutation.push(sizes);
    }
    (0..sets.len())
        .map(|i| {
            let values = per_permutation.iter().map(|p| p[i]);
            let min = values.clone().min().expect("samples > 0");
            let max = values.clone().max().expect("samples > 0");
            let sum: u64 = values.sum();
            SubsetPoint { n: i + 1, avg: sum as f64 / samples as f64, min, max }
        })
        .collect()
}

/// Per-honeypot distinct-peer sets (any query kind), for Fig. 10.
pub fn peer_sets_by_honeypot(log: &MeasurementLog) -> Vec<PeerSet> {
    let universe = log.distinct_peers as usize;
    let mut sets: Vec<PeerSet> = (0..log.honeypots.len()).map(|_| PeerSet::new(universe)).collect();
    for r in &log.records {
        sets[r.honeypot.0 as usize].insert(r.peer.0);
    }
    sets
}

/// Per-file distinct-peer sets over the files peers actually queried
/// (START-UPLOAD), for Figs. 11–12.  Returns `(file_idx, set)` pairs.
pub fn peer_sets_by_file(log: &MeasurementLog) -> Vec<(u32, PeerSet)> {
    use std::collections::HashMap;
    let universe = log.distinct_peers as usize;
    let mut by_file: HashMap<u32, PeerSet> = HashMap::new();
    for r in log.records_of(QueryKind::StartUpload) {
        if r.file != honeypot::log::FILE_NONE {
            by_file.entry(r.file).or_insert_with(|| PeerSet::new(universe)).insert(r.peer.0);
        }
    }
    let mut out: Vec<(u32, PeerSet)> = by_file.into_iter().collect();
    // Deterministic order (HashMap iteration is not).
    out.sort_by_key(|(f, _)| *f);
    out
}

/// Selects the Fig. 11 *random-files* sample: `k` files drawn uniformly
/// from the queried set.
pub fn random_files(sets: &[(u32, PeerSet)], k: usize, seed: u64) -> Vec<PeerSet> {
    let mut rng = Rng::seed_from(seed);
    let k = k.min(sets.len());
    rng.sample_indices(sets.len(), k).into_iter().map(|i| sets[i].1.clone()).collect()
}

/// Selects the Fig. 12 *popular-files* sample: the `k` files whose queries
/// came from the most distinct peers.
pub fn popular_files(sets: &[(u32, PeerSet)], k: usize) -> Vec<PeerSet> {
    let mut by_count: Vec<(u64, usize)> =
        sets.iter().enumerate().map(|(i, (_, s))| (s.count(), i)).collect();
    by_count.sort_unstable_by_key(|&(c, i)| (std::cmp::Reverse(c), i));
    by_count.into_iter().take(k).map(|(_, i)| sets[i].1.clone()).collect()
}

/// Per-file peer counts sorted descending (the paper quotes the best file
/// at 13,373 peers and the worst at 2).
pub fn file_peer_counts(sets: &[(u32, PeerSet)]) -> Vec<u64> {
    let mut counts: Vec<u64> = sets.iter().map(|(_, s)| s.count()).collect();
    counts.sort_unstable_by_key(|&c| std::cmp::Reverse(c));
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_log;
    use netsim::SimTime;

    #[test]
    fn peer_set_basics() {
        let mut s = PeerSet::new(100);
        assert_eq!(s.count(), 0);
        s.insert(0);
        s.insert(64);
        s.insert(99);
        assert_eq!(s.count(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        let mut t = PeerSet::new(100);
        t.insert(64);
        t.insert(7);
        assert_eq!(t.union_with(&s), 4);
    }

    #[test]
    fn subset_curve_monotone_and_exact_at_extremes() {
        // Three sets: {0,1}, {1,2}, {3}.  Union of all = 4.
        let mut a = PeerSet::new(10);
        a.insert(0);
        a.insert(1);
        let mut b = PeerSet::new(10);
        b.insert(1);
        b.insert(2);
        let mut c = PeerSet::new(10);
        c.insert(3);
        let curve = subset_curve(&[a, b, c], 50, 42);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[2].min, 4, "full union is permutation-independent");
        assert_eq!(curve[2].max, 4);
        assert!(curve[0].avg <= curve[1].avg && curve[1].avg <= curve[2].avg);
        assert_eq!(curve[0].min, 1, "some single set has 1 peer");
        assert_eq!(curve[0].max, 2, "some single set has 2 peers");
        for p in &curve {
            assert!(f64::from(p.min as u32) <= p.avg && p.avg <= p.max as f64);
        }
    }

    #[test]
    fn sequential_matches_parallel() {
        let mut a = PeerSet::new(200);
        let mut b = PeerSet::new(200);
        let mut c = PeerSet::new(200);
        for i in 0..50 {
            a.insert(i);
            b.insert(i + 30);
            c.insert(i * 3);
        }
        let par = subset_curve(&[a.clone(), b.clone(), c.clone()], 20, 5);
        let seq = subset_curve_sequential(&[a, b, c], 20, 5);
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!((p.n, p.min, p.max), (s.n, s.min, s.max));
            assert!((p.avg - s.avg).abs() < 1e-9);
        }
    }

    #[test]
    fn subset_curve_deterministic_per_seed() {
        let mut a = PeerSet::new(8);
        a.insert(1);
        let mut b = PeerSet::new(8);
        b.insert(2);
        let c1 = subset_curve(&[a.clone(), b.clone()], 10, 7);
        let c2 = subset_curve(&[a, b], 10, 7);
        assert_eq!(c1[0].avg, c2[0].avg);
    }

    #[test]
    fn empty_inputs() {
        assert!(subset_curve(&[], 10, 1).is_empty());
        let s = PeerSet::new(4);
        assert!(subset_curve(&[s], 0, 1).is_empty());
    }

    #[test]
    fn honeypot_sets_from_log() {
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 0, SimTime::from_hours(1)),
            (1, QueryKind::Hello, 0, SimTime::from_hours(1)),
            (1, QueryKind::Hello, 1, SimTime::from_hours(1)),
        ]);
        let sets = peer_sets_by_honeypot(&log);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].count(), 2);
        assert_eq!(sets[1].count(), 1);
    }

    #[test]
    fn file_sets_from_start_uploads_only() {
        let log = synthetic_log(&[
            (0, QueryKind::StartUpload, 0, SimTime::from_hours(1)), // file 0
            (1, QueryKind::StartUpload, 0, SimTime::from_hours(1)),
            (2, QueryKind::Hello, 0, SimTime::from_hours(1)), // no file
            (2, QueryKind::RequestPart, 0, SimTime::from_hours(1)), // file 0, but not SU
        ]);
        let sets = peer_sets_by_file(&log);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].0, 0);
        assert_eq!(sets[0].1.count(), 2);
    }

    #[test]
    fn popular_and_random_selection() {
        let mk = |peers: &[u32]| {
            let mut s = PeerSet::new(50);
            for &p in peers {
                s.insert(p);
            }
            s
        };
        let sets = vec![(0u32, mk(&[1])), (1u32, mk(&[1, 2, 3])), (2u32, mk(&[4, 5]))];
        let top = popular_files(&sets, 2);
        assert_eq!(top[0].count(), 3);
        assert_eq!(top[1].count(), 2);
        let rnd = random_files(&sets, 2, 9);
        assert_eq!(rnd.len(), 2);
        assert_eq!(file_peer_counts(&sets), vec![3, 2, 1]);
    }
}
