//! # honeypot — the distributed eDonkey measurement platform
//!
//! This crate is the paper's primary contribution (Allali, Latapy &
//! Magnien, *Measurement of eDonkey Activity with Distributed Honeypots*,
//! 2009, §III): a manager plus a set of honeypot peers that pretend to
//! offer files and log every query they receive.
//!
//! * [`honeypot`] — the honeypot peer as a transport-agnostic state
//!   machine: it advertises files, answers HELLO / START-UPLOAD /
//!   REQUEST-PART per its [`strategy::ContentStrategy`], optionally adopts
//!   files greedily, and logs everything (step-1 anonymised);
//! * [`manager`] — launches and monitors honeypots, collects their logs,
//!   performs step-2 anonymisation and merging;
//! * [`anonymize`] — the two-step IP anonymisation and the file-name word
//!   anonymiser (§III-C);
//! * [`log`] / [`measurement`] — the raw per-honeypot log schema and the
//!   merged dataset consumed by `edonkey-analysis`.
//!
//! The same honeypot code runs inside the discrete-event simulation
//! (`edonkey-sim`) and over real TCP sockets (`edonkey-net`).

pub mod anonymize;
pub mod export;
pub mod honeypot;
pub mod log;
pub mod manager;
pub mod measurement;
pub mod merge;
pub mod serverlog;
pub mod storage;
pub mod strategy;
pub mod types;

pub use anonymize::{AnonMap, AnonPeerId, IpHash, IpHasher};
pub use honeypot::{Action, ConnId, Honeypot, HoneypotConfig};
pub use log::{
    HoneypotLog, LogChunk, PackedQueryRecord, QueryKind, QueryRecord, SharedListView, SharedLists,
};
pub use manager::{HoneypotSpec, Manager};
pub use measurement::{AnonRecord, AnonSharedList, HoneypotMeta, MeasurementLog};
pub use merge::{merge_lanes, LaneHarvest};
pub use serverlog::{
    PackedServerRecord, ServerLogReader, ServerLogStats, ServerLogWriter, ServerQueryKind,
    ServerRecord, SERVER_PEER_SESSION_BASE,
};
pub use storage::{
    load as load_measurement, save as save_measurement, StorageError, VERSION as STORAGE_VERSION,
};
pub use strategy::{AdvertisedFile, ContentStrategy, FileStrategy};
pub use types::{HoneypotId, HoneypotStatus, IdStatus, ServerInfo, StatusReport};
