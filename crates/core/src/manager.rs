//! The measurement manager (paper §III-A).
//!
//! The manager (1) launches honeypots and assigns each to a server,
//! (2) tells them which files to advertise, (3) monitors their status and
//! flags dead ones for relaunch, and (4) periodically collects their log
//! chunks, merging them into one coherent dataset while performing step-2
//! anonymisation (hash → dense integer) on the fly.  At the end of a
//! measurement, [`Manager::finalize`] applies file-name word anonymisation
//! and emits the [`MeasurementLog`].

use std::collections::HashMap;

use netsim::SimTime;

use crate::anonymize::{AnonMap, NameAnonymizer};
use crate::log::{FileTable, LogChunk, FILE_NONE};
use crate::measurement::{AnonRecord, AnonSharedList, HoneypotMeta, MeasurementLog};
use crate::strategy::ContentStrategy;
use crate::types::{HoneypotId, HoneypotStatus, ServerInfo, StatusReport};

/// Launch specification for one honeypot.
#[derive(Clone, Debug)]
pub struct HoneypotSpec {
    pub id: HoneypotId,
    pub content: ContentStrategy,
    pub server: ServerInfo,
}

/// The manager.
pub struct Manager {
    specs: Vec<HoneypotSpec>,
    status: Vec<HoneypotStatus>,
    status_at: Vec<SimTime>,
    relaunches: u64,

    // Merge state (step-2 anonymisation and table unification).
    anon: AnonMap,
    records: Vec<AnonRecord>,
    shared_lists: Vec<AnonSharedList>,
    peer_names: Vec<String>,
    peer_name_index: HashMap<String, u32>,
    files: FileTable,
    chunks_collected: u64,
    /// Per-honeypot upload sequence numbers already merged (networked
    /// collection may re-deliver a chunk after an ack is lost).
    collected_seqs: Vec<std::collections::BTreeSet<u64>>,
}

impl Manager {
    /// Creates a manager that will run the given honeypots.
    ///
    /// # Panics
    /// If the specs' IDs are not the dense sequence `0..n` (the platform
    /// indexes honeypots by ID everywhere).
    pub fn new(specs: Vec<HoneypotSpec>) -> Self {
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.id.0 as usize, i, "honeypot IDs must be dense and ordered");
        }
        let n = specs.len();
        Manager {
            specs,
            status: vec![HoneypotStatus::Pending; n],
            status_at: vec![SimTime::ZERO; n],
            relaunches: 0,
            anon: AnonMap::new(),
            records: Vec::new(),
            shared_lists: Vec::new(),
            peer_names: Vec::new(),
            peer_name_index: HashMap::new(),
            files: FileTable::new(),
            chunks_collected: 0,
            collected_seqs: vec![std::collections::BTreeSet::new(); n],
        }
    }

    /// The launch plan.
    pub fn specs(&self) -> &[HoneypotSpec] {
        &self.specs
    }

    /// Number of managed honeypots.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Ingests a status report from a honeypot.
    pub fn on_status(&mut self, report: StatusReport) {
        let idx = report.honeypot.0 as usize;
        self.status[idx] = report.status;
        self.status_at[idx] = report.at;
    }

    /// Current status of a honeypot.
    pub fn status_of(&self, id: HoneypotId) -> HoneypotStatus {
        self.status[id.0 as usize]
    }

    /// The periodic status check: honeypots that must be (re)launched
    /// (paper: "This makes it possible to re-launch dead honeypots …  The
    /// manager regularly checks the status of each honeypot").
    ///
    /// This is a pure query — polling it repeatedly never changes any
    /// accounting.  Call [`Manager::mark_relaunched`] once a relaunch is
    /// actually issued for an id.
    pub fn needing_relaunch(&self) -> Vec<HoneypotId> {
        self.specs
            .iter()
            .filter(|s| self.status[s.id.0 as usize].needs_relaunch())
            .map(|s| s.id)
            .collect()
    }

    /// Records that a (re)launch was issued for `id`: a first launch from
    /// `Pending` is free, everything else counts as one relaunch.  The
    /// status moves to `Pending` ("launch in flight"), so a supervision
    /// loop that polls [`Manager::needing_relaunch`] between issuing the
    /// relaunch and the honeypot's first status report cannot count the
    /// same incident twice.
    pub fn mark_relaunched(&mut self, id: HoneypotId) {
        let idx = id.0 as usize;
        if !matches!(self.status[idx], HoneypotStatus::Pending) {
            self.relaunches += 1;
        }
        self.status[idx] = HoneypotStatus::Pending;
    }

    /// Number of relaunches issued so far (diagnostics).
    pub fn relaunch_count(&self) -> u64 {
        self.relaunches
    }

    fn intern_peer_name(&mut self, name: &str) -> u32 {
        if let Some(&idx) = self.peer_name_index.get(name) {
            return idx;
        }
        let idx = self.peer_names.len() as u32;
        self.peer_names.push(name.to_string());
        self.peer_name_index.insert(name.to_string(), idx);
        idx
    }

    /// Ingests one collected log chunk, translating per-honeypot interned
    /// indices into the global tables and applying step-2 anonymisation.
    pub fn collect(&mut self, chunk: LogChunk) {
        self.chunks_collected += 1;
        // Translate the chunk's name table into global indices.
        let name_map: Vec<u32> =
            chunk.peer_names.iter().map(|n| self.intern_peer_name(n)).collect();
        // Translate the chunk's file table.
        let file_map: Vec<u32> = (0..chunk.files.len())
            .map(|i| {
                let idx = i as u32;
                self.files.intern(chunk.files.id(idx), chunk.files.name(idx), chunk.files.size(idx))
            })
            .collect();
        for r in chunk.records {
            self.records.push(AnonRecord {
                at: r.at,
                honeypot: chunk.honeypot,
                kind: r.kind,
                peer: self.anon.intern(r.peer),
                port: r.port,
                id_status: r.id_status,
                user_id: r.user_id,
                name: name_map[r.name as usize],
                version: r.version,
                file: if r.file == FILE_NONE { FILE_NONE } else { file_map[r.file as usize] },
            });
        }
        for l in chunk.shared_lists.iter() {
            self.shared_lists.push(AnonSharedList {
                at: l.at,
                honeypot: chunk.honeypot,
                peer: self.anon.intern(l.peer),
                files: l.files.iter().map(|&f| file_map[f as usize]).collect(),
            });
        }
    }

    /// Ingests a chunk tagged with its per-honeypot upload sequence number,
    /// dropping duplicates: the networked collection path retransmits a
    /// chunk when its ack is lost, and exactly-once merging must hold
    /// regardless.  Returns whether the chunk was merged (`false` =
    /// duplicate).
    pub fn collect_sequenced(&mut self, seq: u64, chunk: LogChunk) -> bool {
        let idx = chunk.honeypot.0 as usize;
        if !self.collected_seqs[idx].insert(seq) {
            return false;
        }
        self.collect(chunk);
        true
    }

    /// Highest upload sequence number merged for `id` (`None` before the
    /// first sequenced chunk).  The control plane resumes an agent's upload
    /// stream from the next number after a reconnect.
    pub fn collected_seq_high(&self, id: HoneypotId) -> Option<u64> {
        self.collected_seqs[id.0 as usize].iter().next_back().copied()
    }

    /// Number of chunks collected so far.
    pub fn chunks_collected(&self) -> u64 {
        self.chunks_collected
    }

    /// Distinct peers seen so far (live view of the step-2 dictionary).
    pub fn distinct_peers(&self) -> usize {
        self.anon.len()
    }

    /// Extracts the manager's pre-finalisation merge state for the global
    /// merge of a lane-sharded run (see [`crate::merge`]).
    ///
    /// Unlike [`Manager::finalize`], no file-name anonymisation happens
    /// here: the word-frequency threshold is defined over the *whole*
    /// corpus, so it must be applied once after all lanes are merged, not
    /// per lane.  Peer ids in the harvested records are lane-local; the
    /// accompanying `peer_hashes` table lets the merge re-intern them into
    /// a global dictionary.
    pub fn harvest(self) -> crate::merge::LaneHarvest {
        crate::merge::LaneHarvest {
            honeypots: self
                .specs
                .iter()
                .map(|s| HoneypotMeta { id: s.id, content: s.content, server: s.server.clone() })
                .collect(),
            records: self.records,
            shared_lists: self.shared_lists,
            peer_names: self.peer_names,
            peer_hashes: self.anon.hashes().to_vec(),
            files: self.files,
        }
    }

    /// Completes the measurement: applies file-name word anonymisation and
    /// returns the merged dataset.
    ///
    /// * `duration` — the configured measurement horizon;
    /// * `shared_files_final` — the advertised-list size at the end (Table
    ///   I reports it);
    /// * `name_threshold` — words occurring fewer than this many times
    ///   across all observed file names are replaced by integer tokens.
    pub fn finalize(
        mut self,
        duration: SimTime,
        shared_files_final: u32,
        name_threshold: u32,
    ) -> MeasurementLog {
        let mut counter = NameAnonymizer::new();
        for i in 0..self.files.len() {
            counter.count(self.files.name(i as u32));
        }
        let frozen = counter.freeze(name_threshold);
        self.files.map_names(|n| frozen.anonymize(n));

        MeasurementLog {
            honeypots: self
                .specs
                .iter()
                .map(|s| HoneypotMeta { id: s.id, content: s.content, server: s.server.clone() })
                .collect(),
            records: self.records,
            shared_lists: self.shared_lists,
            peer_names: self.peer_names,
            files: self.files,
            distinct_peers: self.anon.len() as u32,
            duration,
            shared_files_final,
        }
    }
}

impl std::fmt::Debug for Manager {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("Manager")
            .field("honeypots", &self.specs.len())
            .field("records", &self.records.len())
            .field("distinct_peers", &self.anon.len())
            .field("chunks", &self.chunks_collected)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymize::{AnonPeerId, IpHasher};
    use crate::log::{HoneypotLog, QueryKind, QueryRecord};
    use crate::types::IdStatus;
    use edonkey_proto::{ClientId, FileId, Ipv4, UserId};

    fn server() -> ServerInfo {
        ServerInfo::new("srv", Ipv4::new(9, 9, 9, 9), 4661)
    }

    fn specs(n: u32) -> Vec<HoneypotSpec> {
        (0..n)
            .map(|i| HoneypotSpec {
                id: HoneypotId(i),
                content: if i % 2 == 0 {
                    ContentStrategy::NoContent
                } else {
                    ContentStrategy::RandomContent
                },
                server: server(),
            })
            .collect()
    }

    fn chunk_with_peers(hp: u32, ips: &[Ipv4]) -> LogChunk {
        let hasher = IpHasher::from_seed(7);
        let mut log = HoneypotLog::new(HoneypotId(hp), server());
        let name = log.intern_name("eMule");
        let file = log.files.intern(FileId::from_seed(b"f"), "some file.avi", 100);
        for (i, ip) in ips.iter().enumerate() {
            log.push(QueryRecord {
                at: SimTime::from_secs(i as u64),
                kind: QueryKind::Hello,
                peer: hasher.hash(*ip),
                port: 4662,
                id_status: IdStatus::High,
                user_id: UserId::from_seed(b"u"),
                name,
                version: 1,
                file: FILE_NONE,
            });
            log.push(QueryRecord {
                at: SimTime::from_secs(i as u64 + 1),
                kind: QueryKind::StartUpload,
                peer: hasher.hash(*ip),
                port: 4662,
                id_status: IdStatus::High,
                user_id: UserId::from_seed(b"u"),
                name,
                version: 1,
                file,
            });
        }
        log.shared_lists.push(SimTime::from_secs(99), hasher.hash(ips[0]), [file]);
        log.take_chunk()
    }

    #[test]
    fn step2_is_coherent_across_honeypots() {
        let mut mgr = Manager::new(specs(2));
        let shared_ip = Ipv4::new(10, 0, 0, 1);
        mgr.collect(chunk_with_peers(0, &[shared_ip, Ipv4::new(10, 0, 0, 2)]));
        mgr.collect(chunk_with_peers(1, &[shared_ip, Ipv4::new(10, 0, 0, 3)]));
        assert_eq!(mgr.distinct_peers(), 3, "shared IP counted once");
        let log = mgr.finalize(SimTime::from_days(1), 4, 1);
        // The shared peer got id 0 (first seen) in both honeypots' records.
        let hp0_first = log.records.iter().find(|r| r.honeypot == HoneypotId(0)).unwrap();
        let hp1_first = log.records.iter().find(|r| r.honeypot == HoneypotId(1)).unwrap();
        assert_eq!(hp0_first.peer, hp1_first.peer);
        assert_eq!(hp0_first.peer, AnonPeerId(0));
        assert!(log.validate().is_empty());
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut mgr = Manager::new(specs(1));
        mgr.collect(chunk_with_peers(0, &[Ipv4::new(1, 1, 1, 1), Ipv4::new(2, 2, 2, 2)]));
        let log = mgr.finalize(SimTime::from_days(1), 4, 1);
        let peers: Vec<u32> = log.records.iter().map(|r| r.peer.0).collect();
        assert_eq!(peers, vec![0, 0, 1, 1]);
        assert_eq!(log.distinct_peers, 2);
    }

    #[test]
    fn relaunch_tracking() {
        let mut mgr = Manager::new(specs(3));
        // Everything pending → all need a first launch, none counted as
        // relaunch.
        assert_eq!(mgr.needing_relaunch().len(), 3);
        assert_eq!(mgr.relaunch_count(), 0);
        for id in mgr.needing_relaunch() {
            mgr.mark_relaunched(id);
        }
        assert_eq!(mgr.relaunch_count(), 0, "first launches are not relaunches");
        for i in 0..3 {
            mgr.on_status(StatusReport {
                honeypot: HoneypotId(i),
                at: SimTime::from_secs(5),
                status: HoneypotStatus::Connected { client_id: ClientId(0x5000_0000) },
            });
        }
        assert!(mgr.needing_relaunch().is_empty());
        mgr.on_status(StatusReport {
            honeypot: HoneypotId(1),
            at: SimTime::from_secs(9),
            status: HoneypotStatus::Dead,
        });
        assert_eq!(mgr.needing_relaunch(), vec![HoneypotId(1)]);
        assert_eq!(mgr.status_of(HoneypotId(1)), HoneypotStatus::Dead);
        // The query is pure: polling does not count anything.
        assert_eq!(mgr.needing_relaunch(), vec![HoneypotId(1)]);
        assert_eq!(mgr.relaunch_count(), 0);
        mgr.mark_relaunched(HoneypotId(1));
        assert_eq!(mgr.relaunch_count(), 1);
        assert_eq!(mgr.status_of(HoneypotId(1)), HoneypotStatus::Pending);
        // A supervision poll between the relaunch and the honeypot's first
        // status report must not double-count the same incident.
        assert_eq!(mgr.needing_relaunch(), vec![HoneypotId(1)]);
        mgr.mark_relaunched(HoneypotId(1));
        assert_eq!(mgr.relaunch_count(), 1, "repeated marks on a pending launch are free");
    }

    #[test]
    fn sequenced_collection_dedups_redelivered_chunks() {
        let mut mgr = Manager::new(specs(2));
        let chunk = chunk_with_peers(0, &[Ipv4::new(10, 0, 0, 1)]);
        assert_eq!(mgr.collected_seq_high(HoneypotId(0)), None);
        assert!(mgr.collect_sequenced(0, chunk.clone()));
        assert!(!mgr.collect_sequenced(0, chunk.clone()), "redelivery dropped");
        assert!(mgr.collect_sequenced(1, chunk_with_peers(0, &[Ipv4::new(10, 0, 0, 2)])));
        assert!(mgr.collect_sequenced(7, chunk_with_peers(1, &[Ipv4::new(10, 0, 0, 3)])));
        assert_eq!(mgr.chunks_collected(), 3, "duplicates never reach the merge");
        assert_eq!(mgr.collected_seq_high(HoneypotId(0)), Some(1));
        assert_eq!(mgr.collected_seq_high(HoneypotId(1)), Some(7));
        let log = mgr.finalize(SimTime::from_days(1), 4, 1);
        assert!(log.validate().is_empty());
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn non_dense_ids_rejected() {
        let _ = Manager::new(vec![HoneypotSpec {
            id: HoneypotId(5),
            content: ContentStrategy::NoContent,
            server: server(),
        }]);
    }

    #[test]
    fn file_tables_unify_and_names_anonymise() {
        let mut mgr = Manager::new(specs(2));
        mgr.collect(chunk_with_peers(0, &[Ipv4::new(1, 1, 1, 1)]));
        mgr.collect(chunk_with_peers(1, &[Ipv4::new(2, 2, 2, 2)]));
        assert_eq!(mgr.chunks_collected(), 2);
        // Threshold 5: every word of "some file.avi" is rare (appears once
        // in the unified table) and gets tokenised.
        let log = mgr.finalize(SimTime::from_days(1), 4, 5);
        assert_eq!(log.files.len(), 1, "same FileId unified across honeypots");
        let name = log.files.name(0);
        assert!(!name.contains("some"), "rare words tokenised: {name}");
        assert!(name.contains('.') && name.contains(' '), "separators kept: {name}");
    }

    #[test]
    fn shared_lists_carry_global_indices() {
        let mut mgr = Manager::new(specs(1));
        mgr.collect(chunk_with_peers(0, &[Ipv4::new(1, 1, 1, 1)]));
        let log = mgr.finalize(SimTime::from_days(2), 3, 1);
        assert_eq!(log.shared_lists.len(), 1);
        assert_eq!(log.shared_lists[0].files, vec![0]);
        assert_eq!(log.duration, SimTime::from_days(2));
        assert_eq!(log.shared_files_final, 3);
    }
}
