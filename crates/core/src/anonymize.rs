//! The two-step anonymisation pipeline (paper §III-C).
//!
//! **Step 1 — at the honeypot, before anything touches disk or network:**
//! each peer IP address is replaced by a salted one-way hash
//! ([`IpHasher`]).  The salt is shared by all honeypots of one measurement
//! so that the *same* peer hashes identically everywhere (the logs stay
//! coherent), but an attacker without the salt cannot build a 2³²-entry
//! reverse dictionary.
//!
//! **Step 2 — at the manager, after collection:** every hash value is
//! replaced, coherently across all honeypot logs, by a small integer in
//! order of first appearance ([`AnonMap`]): the first hash becomes 0, the
//! second 1, and so on.  The final data cannot be linked back to IP
//! addresses at all.
//!
//! File names can carry personal information, so they pass through a third
//! device: every *word* occurring less often than a threshold across the
//! whole corpus is replaced by an integer token ([`NameAnonymizer`]).

use std::collections::HashMap;

use edonkey_proto::md4::Md4;
use edonkey_proto::Ipv4;
use serde::{Deserialize, Serialize};

/// The salted one-way hash of one peer IP (step 1 output).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct IpHash(pub [u8; 16]);

/// Step-1 hasher: IP → salted MD4.
///
/// MD4 is what the platform already ships for protocol purposes; the
/// security requirement here is one-wayness *given a secret salt*, which the
/// keyed construction provides (the salt never leaves the measurement
/// infrastructure and is discarded after step 2).
#[derive(Clone, Debug)]
pub struct IpHasher {
    salt: [u8; 16],
}

impl IpHasher {
    /// Builds the hasher from a measurement-wide secret salt.
    pub fn new(salt: [u8; 16]) -> Self {
        IpHasher { salt }
    }

    /// Derives the salt from a seed (used by simulations; real deployments
    /// would draw it from the OS entropy pool).
    pub fn from_seed(seed: u64) -> Self {
        let mut h = Md4::new();
        h.update(b"edonkey-honeypot-ip-salt");
        h.update(&seed.to_le_bytes());
        IpHasher { salt: h.finalize() }
    }

    /// Hashes one IP address.
    pub fn hash(&self, ip: Ipv4) -> IpHash {
        let mut h = Md4::new();
        h.update(&self.salt);
        h.update(&ip.octets());
        IpHash(h.finalize())
    }
}

/// The anonymised peer identifier produced by step 2 (dense, 0-based, in
/// order of first appearance across the merged logs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct AnonPeerId(pub u32);

/// Step-2 mapping: hash → dense integer, coherent across honeypot logs.
#[derive(Clone, Debug, Default)]
pub struct AnonMap {
    map: HashMap<IpHash, AnonPeerId>,
    order: Vec<IpHash>,
}

impl AnonMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the stable integer for `hash`, assigning the next free one on
    /// first sight.
    pub fn intern(&mut self, hash: IpHash) -> AnonPeerId {
        let next = AnonPeerId(self.map.len() as u32);
        let id = *self.map.entry(hash).or_insert(next);
        if id == next {
            self.order.push(hash);
        }
        id
    }

    /// Lookup without assignment.
    pub fn get(&self, hash: &IpHash) -> Option<AnonPeerId> {
        self.map.get(hash).copied()
    }

    /// The interned hashes in assignment order: `hashes()[id.0]` is the hash
    /// that was mapped to `id`.  Lane-sharded execution uses this to carry a
    /// lane's peer identities into the global merge without re-reading any
    /// raw log.
    pub fn hashes(&self) -> &[IpHash] {
        &self.order
    }

    /// Number of distinct peers interned.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Word-frequency file-name anonymiser.
///
/// Built in two passes: [`NameAnonymizer::count`] over every name in the
/// corpus, then [`NameAnonymizer::freeze`] with the threshold, after which
/// [`FrozenNameAnonymizer::anonymize`] rewrites names, replacing each word
/// seen fewer than `threshold` times by a stable integer token.
#[derive(Clone, Debug, Default)]
pub struct NameAnonymizer {
    counts: HashMap<String, u32>,
}

/// Splits a file name into words: maximal runs of alphanumeric characters;
/// separators (dots, dashes, brackets, spaces…) are preserved verbatim by
/// the rewriter.
fn words(name: &str) -> impl Iterator<Item = &str> {
    name.split(|c: char| !c.is_alphanumeric()).filter(|w| !w.is_empty())
}

impl NameAnonymizer {
    pub fn new() -> Self {
        Self::default()
    }

    /// First pass: count the words of one name.
    pub fn count(&mut self, name: &str) {
        for w in words(name) {
            *self.counts.entry(w.to_ascii_lowercase()).or_insert(0) += 1;
        }
    }

    /// Second pass setup: fix the threshold and assign integer tokens to
    /// rare words in deterministic (sorted) order.
    pub fn freeze(self, threshold: u32) -> FrozenNameAnonymizer {
        // Partition the count map by moving its keys: rare words become
        // token keys, frequent words keep their counts for `is_public` (a
        // word absent from `counts` reads as count 0 there, i.e. rare —
        // exactly what dropping the rare entries preserves).
        let mut rare: Vec<String> = Vec::new();
        let mut counts = HashMap::with_capacity(self.counts.len());
        for (w, c) in self.counts {
            if c < threshold {
                rare.push(w);
            } else {
                counts.insert(w, c);
            }
        }
        rare.sort_unstable();
        let tokens = rare.into_iter().enumerate().map(|(i, w)| (w, i as u32)).collect();
        FrozenNameAnonymizer { threshold, counts, tokens }
    }
}

/// Appends the decimal rendering of `v` to `out` without a heap-allocated
/// intermediate (`u32::MAX` is 10 digits).
fn push_u32(out: &mut String, v: u32) {
    let mut buf = [0u8; 10];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

/// The frozen, ready-to-rewrite anonymiser.
#[derive(Clone, Debug)]
pub struct FrozenNameAnonymizer {
    threshold: u32,
    counts: HashMap<String, u32>,
    tokens: HashMap<String, u32>,
}

impl FrozenNameAnonymizer {
    /// Rewrites one name, replacing rare words by `<n>` tokens and keeping
    /// frequent words and all separators.
    pub fn anonymize(&self, name: &str) -> String {
        let mut out = String::with_capacity(name.len());
        let mut rest = name;
        while !rest.is_empty() {
            let word_end = rest.find(|c: char| !c.is_alphanumeric()).unwrap_or(rest.len());
            if word_end > 0 {
                let word = &rest[..word_end];
                // Look the word up without allocating: keys are lowercase,
                // so only mixed-case words need a scratch buffer.
                let tok = if word.bytes().any(|b| b.is_ascii_uppercase()) {
                    self.tokens.get(&word.to_ascii_lowercase())
                } else {
                    self.tokens.get(word)
                };
                match tok {
                    Some(&tok) => {
                        out.push('<');
                        push_u32(&mut out, tok);
                        out.push('>');
                    }
                    None => out.push_str(word),
                }
                rest = &rest[word_end..];
            } else {
                let mut it = rest.chars();
                let sep = it.next().expect("non-empty");
                out.push(sep);
                rest = it.as_str();
            }
        }
        out
    }

    /// Whether a word survives anonymisation (diagnostics/tests).
    pub fn is_public(&self, word: &str) -> bool {
        self.counts.get(&word.to_ascii_lowercase()).copied().unwrap_or(0) >= self.threshold
    }

    /// Number of distinct rare words replaced.
    pub fn replaced_words(&self) -> usize {
        self.tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_ip_same_hash_across_hashers_with_same_salt() {
        let a = IpHasher::from_seed(42);
        let b = IpHasher::from_seed(42);
        let ip = Ipv4::new(134, 157, 8, 1);
        assert_eq!(a.hash(ip), b.hash(ip), "coherence across honeypots");
    }

    #[test]
    fn different_salt_different_hash() {
        let a = IpHasher::from_seed(1);
        let b = IpHasher::from_seed(2);
        let ip = Ipv4::new(134, 157, 8, 1);
        assert_ne!(a.hash(ip), b.hash(ip), "reverse dictionaries must not transfer");
    }

    #[test]
    fn different_ips_different_hashes() {
        let h = IpHasher::from_seed(7);
        assert_ne!(h.hash(Ipv4::new(1, 2, 3, 4)), h.hash(Ipv4::new(1, 2, 3, 5)));
    }

    #[test]
    fn anon_map_assigns_dense_ids_in_first_seen_order() {
        let hasher = IpHasher::from_seed(0);
        let mut map = AnonMap::new();
        let h1 = hasher.hash(Ipv4::new(10, 0, 0, 1));
        let h2 = hasher.hash(Ipv4::new(10, 0, 0, 2));
        assert_eq!(map.intern(h1), AnonPeerId(0));
        assert_eq!(map.intern(h2), AnonPeerId(1));
        assert_eq!(map.intern(h1), AnonPeerId(0), "stable on re-intern");
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&h2), Some(AnonPeerId(1)));
        assert_eq!(map.get(&hasher.hash(Ipv4::new(9, 9, 9, 9))), None);
    }

    #[test]
    fn rare_words_replaced_frequent_words_kept() {
        let mut counter = NameAnonymizer::new();
        for _ in 0..10 {
            counter.count("ubuntu linux iso");
        }
        counter.count("john.holiday-video.avi");
        let frozen = counter.freeze(3);
        assert!(frozen.is_public("ubuntu"));
        assert!(!frozen.is_public("john"));
        let out = frozen.anonymize("john.holiday-video.avi ubuntu");
        assert!(out.contains("ubuntu"), "frequent word kept: {out}");
        assert!(!out.contains("john"), "rare word hidden: {out}");
        assert!(out.contains('.') && out.contains('-'), "separators preserved: {out}");
    }

    #[test]
    fn tokens_are_stable_per_word() {
        let mut counter = NameAnonymizer::new();
        counter.count("secret thing");
        counter.count("secret other");
        let frozen = counter.freeze(10);
        // All three words are rare ⇒ three tokens assigned.
        assert_eq!(frozen.replaced_words(), 3);
        let a = frozen.anonymize("secret thing");
        let b = frozen.anonymize("thing secret");
        let first = |s: &str| s.split(' ').next().unwrap().to_string();
        let last = |s: &str| s.split(' ').next_back().unwrap().to_string();
        assert_eq!(first(&a), last(&b), "token for 'secret' is position-independent");
        assert_eq!(last(&a), first(&b), "token for 'thing' is position-independent");
        assert_ne!(first(&a), last(&a), "different words get different tokens");
    }

    #[test]
    fn anonymize_case_insensitive_counting() {
        let mut counter = NameAnonymizer::new();
        counter.count("Linux");
        counter.count("linux");
        counter.count("LINUX");
        let frozen = counter.freeze(3);
        assert!(frozen.is_public("Linux"));
    }

    #[test]
    fn push_u32_matches_display() {
        for v in [0u32, 1, 9, 10, 99, 100, 12345, u32::MAX] {
            let mut s = String::new();
            push_u32(&mut s, v);
            assert_eq!(s, v.to_string());
        }
    }

    #[test]
    fn anon_map_hashes_follow_assignment_order() {
        let hasher = IpHasher::from_seed(3);
        let mut map = AnonMap::new();
        let hs: Vec<IpHash> = (0..5).map(|i| hasher.hash(Ipv4::new(10, 0, 0, i))).collect();
        for h in &hs {
            map.intern(*h);
        }
        map.intern(hs[0]); // re-intern must not duplicate
        assert_eq!(map.hashes(), &hs[..]);
        for (i, h) in hs.iter().enumerate() {
            assert_eq!(map.get(h), Some(AnonPeerId(i as u32)));
        }
    }

    #[test]
    fn empty_and_separator_only_names() {
        let counter = NameAnonymizer::new();
        let frozen = counter.freeze(5);
        assert_eq!(frozen.anonymize(""), "");
        assert_eq!(frozen.anonymize("..--.."), "..--..");
    }
}
