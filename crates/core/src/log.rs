//! Query-log schema.
//!
//! Each honeypot records the message types the paper names — `HELLO`,
//! `START-UPLOAD` and `REQUEST-PART` — together with the peer metadata the
//! eDonkey protocol exposes (hashed IP, port, name, user hash, client
//! version, high/low ID status), the server the honeypot is connected to,
//! and the reception timestamp (paper §III-B).  It also records the
//! shared-file lists retrieved from contacting peers, which Table I's
//! "distinct files" statistics and the greedy strategy both consume.
//!
//! Logs are kept compact: peer names are interned into a per-log string
//! table and file metadata into a [`FileTable`], so a month-scale
//! measurement with tens of millions of records stays within memory.

use std::collections::HashMap;

use edonkey_proto::{FileId, UserId};
use netsim::SimTime;
use serde::{Deserialize, Serialize};

use crate::anonymize::IpHash;
use crate::types::{HoneypotId, IdStatus, ServerInfo};

/// The message types a honeypot logs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum QueryKind {
    Hello,
    StartUpload,
    RequestPart,
}

impl QueryKind {
    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Hello => "HELLO",
            QueryKind::StartUpload => "START-UPLOAD",
            QueryKind::RequestPart => "REQUEST-PART",
        }
    }
}

/// Index into a log's interned peer-name table.
pub type NameIdx = u32;

/// Index into a [`FileTable`]; `FILE_NONE` marks "no file" (HELLO records).
pub type FileIdx = u32;

/// Sentinel for records without an associated file.
pub const FILE_NONE: FileIdx = u32::MAX;

/// One logged query, as written by the honeypot (step-1 anonymised: the
/// peer IP appears only as its salted hash).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Reception timestamp.
    pub at: SimTime,
    /// Message type.
    pub kind: QueryKind,
    /// Step-1 anonymised peer IP.
    pub peer: IpHash,
    /// Peer TCP port.
    pub port: u16,
    /// High/low ID status.
    pub id_status: IdStatus,
    /// Peer user hash (stable across sessions).
    pub user_id: UserId,
    /// Interned peer client name.
    pub name: NameIdx,
    /// Client version tag value.
    pub version: u32,
    /// File the query concerns (`FILE_NONE` for HELLO).
    pub file: FileIdx,
}

/// One shared-file list retrieved from a peer.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SharedListRecord {
    pub at: SimTime,
    pub peer: IpHash,
    /// Indices into the log's [`FileTable`].
    pub files: Vec<FileIdx>,
}

/// Deduplicated file metadata observed during a measurement.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct FileTable {
    ids: Vec<FileId>,
    names: Vec<String>,
    sizes: Vec<u64>,
    #[serde(skip)]
    index: HashMap<FileId, FileIdx>,
}

// Manual impls: the lookup index is a rebuildable cache (serde also skips
// it), equality is defined by the table contents alone, and rendering a
// HashMap would make the Debug output — which tests compare across runs —
// depend on per-map iteration order.
impl PartialEq for FileTable {
    fn eq(&self, other: &Self) -> bool {
        self.ids == other.ids && self.names == other.names && self.sizes == other.sizes
    }
}

impl Eq for FileTable {}

impl std::fmt::Debug for FileTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileTable")
            .field("ids", &self.ids)
            .field("names", &self.names)
            .field("sizes", &self.sizes)
            .finish_non_exhaustive()
    }
}

impl FileTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a file, keeping the first-seen name/size.
    pub fn intern(&mut self, id: FileId, name: &str, size: u64) -> FileIdx {
        if let Some(&idx) = self.index.get(&id) {
            return idx;
        }
        let idx = self.ids.len() as FileIdx;
        self.ids.push(id);
        self.names.push(name.to_string());
        self.sizes.push(size);
        self.index.insert(id, idx);
        idx
    }

    /// Looks a file up by ID.
    pub fn lookup(&self, id: &FileId) -> Option<FileIdx> {
        self.index.get(id).copied()
    }

    pub fn id(&self, idx: FileIdx) -> FileId {
        self.ids[idx as usize]
    }

    pub fn name(&self, idx: FileIdx) -> &str {
        &self.names[idx as usize]
    }

    pub fn size(&self, idx: FileIdx) -> u64 {
        self.sizes[idx as usize]
    }

    /// Number of distinct files.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total size of all distinct files (Table I's "space used by distinct
    /// files").
    pub fn total_size(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Rewrites every stored name through `f` (used by the manager's
    /// file-name anonymisation pass).
    pub fn map_names(&mut self, mut f: impl FnMut(&str) -> String) {
        for n in &mut self.names {
            *n = f(n);
        }
    }

    /// Rebuilds the lookup index (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.index = self.ids.iter().enumerate().map(|(i, id)| (*id, i as FileIdx)).collect();
    }
}

/// The full log of one honeypot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HoneypotLog {
    pub honeypot: HoneypotId,
    /// Server the honeypot was connected to while recording.
    pub server: ServerInfo,
    pub records: Vec<QueryRecord>,
    pub shared_lists: Vec<SharedListRecord>,
    /// Interned peer client names.
    pub peer_names: Vec<String>,
    #[serde(skip)]
    name_index: HashMap<String, NameIdx>,
    /// Files observed (advertised files, queried files, shared-list files).
    pub files: FileTable,
}

impl HoneypotLog {
    pub fn new(honeypot: HoneypotId, server: ServerInfo) -> Self {
        HoneypotLog {
            honeypot,
            server,
            records: Vec::new(),
            shared_lists: Vec::new(),
            peer_names: Vec::new(),
            name_index: HashMap::new(),
            files: FileTable::new(),
        }
    }

    /// Interns a peer client name.
    pub fn intern_name(&mut self, name: &str) -> NameIdx {
        if let Some(&idx) = self.name_index.get(name) {
            return idx;
        }
        let idx = self.peer_names.len() as NameIdx;
        self.peer_names.push(name.to_string());
        self.name_index.insert(name.to_string(), idx);
        idx
    }

    /// Appends a query record.
    pub fn push(&mut self, record: QueryRecord) {
        self.records.push(record);
    }

    /// Number of records of a given kind.
    pub fn count_kind(&self, kind: QueryKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// Drains the buffered records/lists into a fresh log chunk, leaving
    /// interning tables in place — the honeypot keeps logging while the
    /// manager periodically collects (paper §III-A: "the manager
    /// periodically gathers the data collected by honeypots").
    pub fn take_chunk(&mut self) -> LogChunk {
        LogChunk {
            honeypot: self.honeypot,
            server: self.server.clone(),
            records: std::mem::take(&mut self.records),
            shared_lists: std::mem::take(&mut self.shared_lists),
            peer_names: self.peer_names.clone(),
            files: self.files.clone(),
        }
    }
}

/// A collected batch of log data handed from a honeypot to the manager.
///
/// Name/file tables are snapshots of the honeypot's interning state; record
/// indices refer to them.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LogChunk {
    pub honeypot: HoneypotId,
    pub server: ServerInfo,
    pub records: Vec<QueryRecord>,
    pub shared_lists: Vec<SharedListRecord>,
    pub peer_names: Vec<String>,
    pub files: FileTable,
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::Ipv4;

    fn server() -> ServerInfo {
        ServerInfo::new("BigServer", Ipv4::new(195, 1, 2, 3), 4661)
    }

    fn sample_record(log: &mut HoneypotLog, kind: QueryKind) -> QueryRecord {
        let name = log.intern_name("eMule v0.49a");
        QueryRecord {
            at: SimTime::from_secs(12),
            kind,
            peer: IpHash([1; 16]),
            port: 4662,
            id_status: IdStatus::High,
            user_id: UserId::from_seed(b"u"),
            name,
            version: 0x49,
            file: FILE_NONE,
        }
    }

    #[test]
    fn interning_dedups_names() {
        let mut log = HoneypotLog::new(HoneypotId(0), server());
        let a = log.intern_name("eMule");
        let b = log.intern_name("aMule");
        let c = log.intern_name("eMule");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(log.peer_names.len(), 2);
    }

    #[test]
    fn file_table_interns_and_sums() {
        let mut t = FileTable::new();
        let f1 = FileId::from_seed(b"a");
        let f2 = FileId::from_seed(b"b");
        let i1 = t.intern(f1, "a.avi", 700);
        let i2 = t.intern(f2, "b.mp3", 5);
        assert_eq!(t.intern(f1, "other-name.avi", 9999), i1, "first name/size win");
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_size(), 705);
        assert_eq!(t.name(i1), "a.avi");
        assert_eq!(t.size(i2), 5);
        assert_eq!(t.lookup(&f2), Some(i2));
        assert_eq!(t.id(i1), f1);
    }

    #[test]
    fn file_table_index_rebuild() {
        let mut t = FileTable::new();
        let f = FileId::from_seed(b"x");
        t.intern(f, "x", 1);
        let json = serde_json::to_string(&t).unwrap();
        let mut back: FileTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lookup(&f), None, "index is not serialised");
        back.rebuild_index();
        assert_eq!(back.lookup(&f), Some(0));
    }

    #[test]
    fn take_chunk_drains_records_but_keeps_tables() {
        let mut log = HoneypotLog::new(HoneypotId(3), server());
        let r = sample_record(&mut log, QueryKind::Hello);
        log.push(r);
        let chunk = log.take_chunk();
        assert_eq!(chunk.records.len(), 1);
        assert_eq!(chunk.honeypot, HoneypotId(3));
        assert!(log.records.is_empty(), "records drained");
        assert_eq!(log.peer_names.len(), 1, "interning survives");
        // A second chunk still carries the name table snapshot.
        let r2 = sample_record(&mut log, QueryKind::StartUpload);
        log.push(r2);
        let chunk2 = log.take_chunk();
        assert_eq!(chunk2.peer_names, vec!["eMule v0.49a".to_string()]);
    }

    #[test]
    fn count_kind_filters() {
        let mut log = HoneypotLog::new(HoneypotId(0), server());
        for kind in [QueryKind::Hello, QueryKind::Hello, QueryKind::RequestPart] {
            let r = sample_record(&mut log, kind);
            log.push(r);
        }
        assert_eq!(log.count_kind(QueryKind::Hello), 2);
        assert_eq!(log.count_kind(QueryKind::RequestPart), 1);
        assert_eq!(log.count_kind(QueryKind::StartUpload), 0);
    }

    #[test]
    fn query_kind_names() {
        assert_eq!(QueryKind::Hello.name(), "HELLO");
        assert_eq!(QueryKind::StartUpload.name(), "START-UPLOAD");
        assert_eq!(QueryKind::RequestPart.name(), "REQUEST-PART");
    }
}
