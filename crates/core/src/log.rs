//! Query-log schema.
//!
//! Each honeypot records the message types the paper names — `HELLO`,
//! `START-UPLOAD` and `REQUEST-PART` — together with the peer metadata the
//! eDonkey protocol exposes (hashed IP, port, name, user hash, client
//! version, high/low ID status), the server the honeypot is connected to,
//! and the reception timestamp (paper §III-B).  It also records the
//! shared-file lists retrieved from contacting peers, which Table I's
//! "distinct files" statistics and the greedy strategy both consume.
//!
//! Logs are kept compact: peer names are interned into a per-log string
//! table and file metadata into a [`FileTable`], so a month-scale
//! measurement with tens of millions of records stays within memory.

use std::collections::HashMap;

use edonkey_proto::{FileId, UserId};
use netsim::SimTime;
use serde::{Deserialize, Serialize};

use crate::anonymize::IpHash;
use crate::types::{HoneypotId, IdStatus, ServerInfo};

/// The message types a honeypot logs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum QueryKind {
    Hello,
    StartUpload,
    RequestPart,
}

impl QueryKind {
    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Hello => "HELLO",
            QueryKind::StartUpload => "START-UPLOAD",
            QueryKind::RequestPart => "REQUEST-PART",
        }
    }
}

/// Index into a log's interned peer-name table.
pub type NameIdx = u32;

/// Index into a [`FileTable`]; `FILE_NONE` marks "no file" (HELLO records).
pub type FileIdx = u32;

/// Sentinel for records without an associated file.
pub const FILE_NONE: FileIdx = u32::MAX;

/// One logged query, as written by the honeypot (step-1 anonymised: the
/// peer IP appears only as its salted hash).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Reception timestamp.
    pub at: SimTime,
    /// Message type.
    pub kind: QueryKind,
    /// Step-1 anonymised peer IP.
    pub peer: IpHash,
    /// Peer TCP port.
    pub port: u16,
    /// High/low ID status.
    pub id_status: IdStatus,
    /// Peer user hash (stable across sessions).
    pub user_id: UserId,
    /// Interned peer client name.
    pub name: NameIdx,
    /// Client version tag value.
    pub version: u32,
    /// File the query concerns (`FILE_NONE` for HELLO).
    pub file: FileIdx,
}

/// Byte size of [`PackedQueryRecord`] — and of [`QueryRecord`] itself:
/// the layout audit below pins both, so a record costs 56 bytes in the
/// hot log vector and exactly 56 bytes in storage, no padding either way.
pub const PACKED_RECORD_BYTES: usize = 56;

/// The `#[repr(C)]`-stable compact storage form of a [`QueryRecord`].
///
/// `QueryRecord` lets rustc order fields freely (it packs to 56 bytes
/// today, but the layout is not a contract).  This form *is* a contract:
/// fields are declared largest-first so `repr(C)` yields zero padding,
/// enums are collapsed to their wire tags, and the struct converts to and
/// from the on-disk/wire byte order via [`Self::to_wire_bytes`] — which is
/// byte-identical to the field-by-field encoding the platform codec has
/// always produced (pinned by `platform::messages` tests).
#[repr(C)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PackedQueryRecord {
    /// Reception timestamp in milliseconds.
    pub at_ms: u64,
    /// Step-1 anonymised peer IP digest.
    pub peer: [u8; 16],
    /// Peer user hash.
    pub user_id: [u8; 16],
    /// Interned peer client name index.
    pub name: u32,
    /// Client version tag value.
    pub version: u32,
    /// File index ([`FILE_NONE`] for HELLO).
    pub file: u32,
    /// Peer TCP port.
    pub port: u16,
    /// Wire tag: 0 = HELLO, 1 = START-UPLOAD, 2 = REQUEST-PART.
    pub kind: u8,
    /// Wire tag: 0 = high ID, 1 = low ID.
    pub id_status: u8,
}

// The layout audit, enforced at compile time: the packed form has no
// padding, and the logical record is already as small as the packed one —
// shrinking further would mean dropping data the figures need.
const _: () = assert!(std::mem::size_of::<PackedQueryRecord>() == PACKED_RECORD_BYTES);
const _: () = assert!(std::mem::size_of::<QueryRecord>() == PACKED_RECORD_BYTES);
const _: () = assert!(std::mem::align_of::<PackedQueryRecord>() == 8);

impl PackedQueryRecord {
    /// Collapses a logical record into the storage form.
    pub fn pack(r: &QueryRecord) -> Self {
        PackedQueryRecord {
            at_ms: r.at.as_millis(),
            peer: r.peer.0,
            user_id: r.user_id.0,
            name: r.name,
            version: r.version,
            file: r.file,
            port: r.port,
            kind: match r.kind {
                QueryKind::Hello => 0,
                QueryKind::StartUpload => 1,
                QueryKind::RequestPart => 2,
            },
            id_status: match r.id_status {
                IdStatus::High => 0,
                IdStatus::Low => 1,
            },
        }
    }

    /// Expands back to the logical record; `None` on an invalid enum tag
    /// (corrupt storage).
    pub fn unpack(&self) -> Option<QueryRecord> {
        Some(QueryRecord {
            at: SimTime::from_millis(self.at_ms),
            kind: match self.kind {
                0 => QueryKind::Hello,
                1 => QueryKind::StartUpload,
                2 => QueryKind::RequestPart,
                _ => return None,
            },
            peer: IpHash(self.peer),
            port: self.port,
            id_status: match self.id_status {
                0 => IdStatus::High,
                1 => IdStatus::Low,
                _ => return None,
            },
            user_id: UserId(self.user_id),
            name: self.name,
            version: self.version,
            file: self.file,
        })
    }

    /// Serialises in the historical wire field order (at, kind, peer,
    /// port, id_status, user_id, name, version, file; little-endian
    /// integers) — the exact bytes the platform codec has emitted since
    /// the format's introduction.
    pub fn to_wire_bytes(&self) -> [u8; PACKED_RECORD_BYTES] {
        let mut b = [0u8; PACKED_RECORD_BYTES];
        b[0..8].copy_from_slice(&self.at_ms.to_le_bytes());
        b[8] = self.kind;
        b[9..25].copy_from_slice(&self.peer);
        b[25..27].copy_from_slice(&self.port.to_le_bytes());
        b[27] = self.id_status;
        b[28..44].copy_from_slice(&self.user_id);
        b[44..48].copy_from_slice(&self.name.to_le_bytes());
        b[48..52].copy_from_slice(&self.version.to_le_bytes());
        b[52..56].copy_from_slice(&self.file.to_le_bytes());
        b
    }

    /// Inverse of [`Self::to_wire_bytes`].
    pub fn from_wire_bytes(b: &[u8; PACKED_RECORD_BYTES]) -> Self {
        let arr = |lo: usize| -> [u8; 16] { b[lo..lo + 16].try_into().expect("fixed range") };
        PackedQueryRecord {
            at_ms: u64::from_le_bytes(b[0..8].try_into().expect("fixed range")),
            kind: b[8],
            peer: arr(9),
            port: u16::from_le_bytes(b[25..27].try_into().expect("fixed range")),
            id_status: b[27],
            user_id: arr(28),
            name: u32::from_le_bytes(b[44..48].try_into().expect("fixed range")),
            version: u32::from_le_bytes(b[48..52].try_into().expect("fixed range")),
            file: u32::from_le_bytes(b[52..56].try_into().expect("fixed range")),
        }
    }
}

/// Shared-file lists in struct-of-arrays form.
///
/// A month-scale measurement retrieves millions of shared lists; storing
/// each as its own record with an owned `Vec<FileIdx>` costs a heap
/// allocation (and an eventual cache miss) per list.  This container keeps
/// one backing arena of file indices shared by *all* lists, with parallel
/// `at`/`peer` columns and an offsets column: list `i` owns
/// `files[bounds[i]..bounds[i+1]]`.  Appending a list is a few `Vec`
/// pushes into already-warm tails, and iterating lists in log order walks
/// the arena sequentially.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SharedLists {
    at: Vec<SimTime>,
    peer: Vec<IpHash>,
    /// `bounds[i]..bounds[i+1]` delimits list `i`'s slice of `files`;
    /// always `len() + 1` entries, starting at 0.
    bounds: Vec<u32>,
    /// The shared arena of [`FileTable`] indices.
    files: Vec<FileIdx>,
}

impl Default for SharedLists {
    fn default() -> Self {
        SharedLists { at: Vec::new(), peer: Vec::new(), bounds: vec![0], files: Vec::new() }
    }
}

/// Borrowed view of one shared-file list inside a [`SharedLists`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SharedListView<'a> {
    pub at: SimTime,
    pub peer: IpHash,
    /// Indices into the log's [`FileTable`].
    pub files: &'a [FileIdx],
}

impl SharedLists {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lists recorded.
    pub fn len(&self) -> usize {
        self.at.len()
    }

    pub fn is_empty(&self) -> bool {
        self.at.is_empty()
    }

    /// Total number of file entries across all lists.
    pub fn total_files(&self) -> usize {
        self.files.len()
    }

    /// Appends a complete list.
    pub fn push(&mut self, at: SimTime, peer: IpHash, files: impl IntoIterator<Item = FileIdx>) {
        self.begin(at, peer);
        for f in files {
            self.append_file(f);
        }
    }

    /// Opens a new (initially empty) list; the honeypot's hot path interns
    /// file metadata and [`Self::append_file`]s each index without ever
    /// materialising a temporary `Vec`.
    pub fn begin(&mut self, at: SimTime, peer: IpHash) {
        self.at.push(at);
        self.peer.push(peer);
        self.bounds.push(self.files.len() as u32);
    }

    /// Appends one file index to the list opened by the last
    /// [`Self::begin`].
    pub fn append_file(&mut self, file: FileIdx) {
        debug_assert!(self.bounds.len() > 1, "append_file before begin");
        self.files.push(file);
        *self.bounds.last_mut().expect("bounds never empty") += 1;
    }

    /// The `i`-th list, in log order.
    pub fn get(&self, i: usize) -> SharedListView<'_> {
        let lo = self.bounds[i] as usize;
        let hi = self.bounds[i + 1] as usize;
        SharedListView { at: self.at[i], peer: self.peer[i], files: &self.files[lo..hi] }
    }

    /// Iterates lists in log order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = SharedListView<'_>> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// Deduplicated file metadata observed during a measurement.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct FileTable {
    ids: Vec<FileId>,
    names: Vec<String>,
    sizes: Vec<u64>,
    #[serde(skip)]
    index: HashMap<FileId, FileIdx>,
}

// Manual impls: the lookup index is a rebuildable cache (serde also skips
// it), equality is defined by the table contents alone, and rendering a
// HashMap would make the Debug output — which tests compare across runs —
// depend on per-map iteration order.
impl PartialEq for FileTable {
    fn eq(&self, other: &Self) -> bool {
        self.ids == other.ids && self.names == other.names && self.sizes == other.sizes
    }
}

impl Eq for FileTable {}

impl std::fmt::Debug for FileTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileTable")
            .field("ids", &self.ids)
            .field("names", &self.names)
            .field("sizes", &self.sizes)
            .finish_non_exhaustive()
    }
}

impl FileTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a file, keeping the first-seen name/size.
    pub fn intern(&mut self, id: FileId, name: &str, size: u64) -> FileIdx {
        if let Some(&idx) = self.index.get(&id) {
            return idx;
        }
        let idx = self.ids.len() as FileIdx;
        self.ids.push(id);
        self.names.push(name.to_string());
        self.sizes.push(size);
        self.index.insert(id, idx);
        idx
    }

    /// Looks a file up by ID.
    pub fn lookup(&self, id: &FileId) -> Option<FileIdx> {
        self.index.get(id).copied()
    }

    pub fn id(&self, idx: FileIdx) -> FileId {
        self.ids[idx as usize]
    }

    pub fn name(&self, idx: FileIdx) -> &str {
        &self.names[idx as usize]
    }

    pub fn size(&self, idx: FileIdx) -> u64 {
        self.sizes[idx as usize]
    }

    /// Number of distinct files.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total size of all distinct files (Table I's "space used by distinct
    /// files").
    pub fn total_size(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Rewrites every stored name through `f` (used by the manager's
    /// file-name anonymisation pass).
    pub fn map_names(&mut self, mut f: impl FnMut(&str) -> String) {
        for n in &mut self.names {
            *n = f(n);
        }
    }

    /// Rebuilds the lookup index (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.index = self.ids.iter().enumerate().map(|(i, id)| (*id, i as FileIdx)).collect();
    }
}

/// The full log of one honeypot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HoneypotLog {
    pub honeypot: HoneypotId,
    /// Server the honeypot was connected to while recording.
    pub server: ServerInfo,
    pub records: Vec<QueryRecord>,
    pub shared_lists: SharedLists,
    /// Interned peer client names.
    pub peer_names: Vec<String>,
    #[serde(skip)]
    name_index: HashMap<String, NameIdx>,
    /// Files observed (advertised files, queried files, shared-list files).
    pub files: FileTable,
}

impl HoneypotLog {
    pub fn new(honeypot: HoneypotId, server: ServerInfo) -> Self {
        HoneypotLog {
            honeypot,
            server,
            records: Vec::new(),
            shared_lists: SharedLists::new(),
            peer_names: Vec::new(),
            name_index: HashMap::new(),
            files: FileTable::new(),
        }
    }

    /// Interns a peer client name.
    pub fn intern_name(&mut self, name: &str) -> NameIdx {
        if let Some(&idx) = self.name_index.get(name) {
            return idx;
        }
        let idx = self.peer_names.len() as NameIdx;
        self.peer_names.push(name.to_string());
        self.name_index.insert(name.to_string(), idx);
        idx
    }

    /// Appends a query record.
    pub fn push(&mut self, record: QueryRecord) {
        self.records.push(record);
    }

    /// Number of records of a given kind.
    pub fn count_kind(&self, kind: QueryKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// Drains the buffered records/lists into a fresh log chunk, leaving
    /// interning tables in place — the honeypot keeps logging while the
    /// manager periodically collects (paper §III-A: "the manager
    /// periodically gathers the data collected by honeypots").
    pub fn take_chunk(&mut self) -> LogChunk {
        LogChunk {
            honeypot: self.honeypot,
            server: self.server.clone(),
            records: std::mem::take(&mut self.records),
            shared_lists: std::mem::take(&mut self.shared_lists),
            peer_names: self.peer_names.clone(),
            files: self.files.clone(),
        }
    }
}

/// A collected batch of log data handed from a honeypot to the manager.
///
/// Name/file tables are snapshots of the honeypot's interning state; record
/// indices refer to them.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LogChunk {
    pub honeypot: HoneypotId,
    pub server: ServerInfo,
    pub records: Vec<QueryRecord>,
    pub shared_lists: SharedLists,
    pub peer_names: Vec<String>,
    pub files: FileTable,
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::Ipv4;

    fn server() -> ServerInfo {
        ServerInfo::new("BigServer", Ipv4::new(195, 1, 2, 3), 4661)
    }

    fn sample_record(log: &mut HoneypotLog, kind: QueryKind) -> QueryRecord {
        let name = log.intern_name("eMule v0.49a");
        QueryRecord {
            at: SimTime::from_secs(12),
            kind,
            peer: IpHash([1; 16]),
            port: 4662,
            id_status: IdStatus::High,
            user_id: UserId::from_seed(b"u"),
            name,
            version: 0x49,
            file: FILE_NONE,
        }
    }

    #[test]
    fn interning_dedups_names() {
        let mut log = HoneypotLog::new(HoneypotId(0), server());
        let a = log.intern_name("eMule");
        let b = log.intern_name("aMule");
        let c = log.intern_name("eMule");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(log.peer_names.len(), 2);
    }

    #[test]
    fn file_table_interns_and_sums() {
        let mut t = FileTable::new();
        let f1 = FileId::from_seed(b"a");
        let f2 = FileId::from_seed(b"b");
        let i1 = t.intern(f1, "a.avi", 700);
        let i2 = t.intern(f2, "b.mp3", 5);
        assert_eq!(t.intern(f1, "other-name.avi", 9999), i1, "first name/size win");
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_size(), 705);
        assert_eq!(t.name(i1), "a.avi");
        assert_eq!(t.size(i2), 5);
        assert_eq!(t.lookup(&f2), Some(i2));
        assert_eq!(t.id(i1), f1);
    }

    #[test]
    fn file_table_index_rebuild() {
        let mut t = FileTable::new();
        let f = FileId::from_seed(b"x");
        t.intern(f, "x", 1);
        let json = serde_json::to_string(&t).unwrap();
        let mut back: FileTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lookup(&f), None, "index is not serialised");
        back.rebuild_index();
        assert_eq!(back.lookup(&f), Some(0));
    }

    #[test]
    fn take_chunk_drains_records_but_keeps_tables() {
        let mut log = HoneypotLog::new(HoneypotId(3), server());
        let r = sample_record(&mut log, QueryKind::Hello);
        log.push(r);
        let chunk = log.take_chunk();
        assert_eq!(chunk.records.len(), 1);
        assert_eq!(chunk.honeypot, HoneypotId(3));
        assert!(log.records.is_empty(), "records drained");
        assert_eq!(log.peer_names.len(), 1, "interning survives");
        // A second chunk still carries the name table snapshot.
        let r2 = sample_record(&mut log, QueryKind::StartUpload);
        log.push(r2);
        let chunk2 = log.take_chunk();
        assert_eq!(chunk2.peer_names, vec!["eMule v0.49a".to_string()]);
    }

    #[test]
    fn packed_record_round_trips() {
        let mut log = HoneypotLog::new(HoneypotId(0), server());
        for kind in [QueryKind::Hello, QueryKind::StartUpload, QueryKind::RequestPart] {
            for id_status in [IdStatus::High, IdStatus::Low] {
                let mut r = sample_record(&mut log, kind);
                r.id_status = id_status;
                r.file = if kind == QueryKind::Hello { FILE_NONE } else { 7 };
                let p = PackedQueryRecord::pack(&r);
                assert_eq!(p.unpack(), Some(r), "pack/unpack must be lossless");
                let bytes = p.to_wire_bytes();
                assert_eq!(PackedQueryRecord::from_wire_bytes(&bytes), p, "byte round trip");
            }
        }
    }

    #[test]
    fn packed_record_rejects_corrupt_tags() {
        let mut log = HoneypotLog::new(HoneypotId(0), server());
        let mut p = PackedQueryRecord::pack(&sample_record(&mut log, QueryKind::Hello));
        p.kind = 9;
        assert_eq!(p.unpack(), None);
        p.kind = 0;
        p.id_status = 9;
        assert_eq!(p.unpack(), None);
    }

    #[test]
    fn packed_record_wire_layout_is_pinned() {
        // The byte offsets are the storage contract; a change here is a
        // format break and must bump the platform codec version instead.
        let r = QueryRecord {
            at: SimTime::from_millis(0x0102_0304_0506_0708),
            kind: QueryKind::StartUpload,
            peer: IpHash([0xAA; 16]),
            port: 0xBEEF,
            id_status: IdStatus::Low,
            user_id: UserId([0xBB; 16]),
            name: 0x11121314,
            version: 0x21222324,
            file: 0x31323334,
        };
        let b = PackedQueryRecord::pack(&r).to_wire_bytes();
        assert_eq!(&b[0..8], &0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(b[8], 1, "START-UPLOAD tag");
        assert_eq!(&b[9..25], &[0xAA; 16]);
        assert_eq!(&b[25..27], &0xBEEFu16.to_le_bytes());
        assert_eq!(b[27], 1, "low-ID tag");
        assert_eq!(&b[28..44], &[0xBB; 16]);
        assert_eq!(&b[44..48], &0x11121314u32.to_le_bytes());
        assert_eq!(&b[48..52], &0x21222324u32.to_le_bytes());
        assert_eq!(&b[52..56], &0x31323334u32.to_le_bytes());
    }

    #[test]
    fn shared_lists_arena_round_trips() {
        let mut lists = SharedLists::new();
        lists.push(SimTime::from_secs(1), IpHash([1; 16]), [3, 4, 5]);
        lists.begin(SimTime::from_secs(2), IpHash([2; 16]));
        lists.push(SimTime::from_secs(3), IpHash([3; 16]), [9]);
        assert_eq!(lists.len(), 3);
        assert_eq!(lists.total_files(), 4);
        assert_eq!(lists.get(0).files, &[3, 4, 5]);
        assert_eq!(lists.get(1).files, &[] as &[FileIdx], "begin with no files is an empty list");
        assert_eq!(lists.get(2).at, SimTime::from_secs(3));
        assert_eq!(lists.get(2).peer, IpHash([3; 16]));
        let collected: Vec<&[FileIdx]> = lists.iter().map(|v| v.files).collect();
        let expected: Vec<&[FileIdx]> = vec![&[3, 4, 5], &[], &[9]];
        assert_eq!(collected, expected);
    }

    #[test]
    fn shared_lists_append_extends_open_list() {
        let mut lists = SharedLists::new();
        lists.begin(SimTime::ZERO, IpHash([0; 16]));
        lists.append_file(7);
        lists.append_file(8);
        lists.push(SimTime::from_secs(1), IpHash([1; 16]), []);
        assert_eq!(lists.get(0).files, &[7, 8]);
        assert_eq!(lists.get(1).files, &[] as &[FileIdx]);
        // Draining via take leaves a valid empty arena behind.
        let taken = std::mem::take(&mut lists);
        assert_eq!(taken.len(), 2);
        assert!(lists.is_empty());
        lists.push(SimTime::from_secs(2), IpHash([2; 16]), [1]);
        assert_eq!(lists.get(0).files, &[1]);
    }

    #[test]
    fn count_kind_filters() {
        let mut log = HoneypotLog::new(HoneypotId(0), server());
        for kind in [QueryKind::Hello, QueryKind::Hello, QueryKind::RequestPart] {
            let r = sample_record(&mut log, kind);
            log.push(r);
        }
        assert_eq!(log.count_kind(QueryKind::Hello), 2);
        assert_eq!(log.count_kind(QueryKind::RequestPart), 1);
        assert_eq!(log.count_kind(QueryKind::StartUpload), 0);
    }

    #[test]
    fn query_kind_names() {
        assert_eq!(QueryKind::Hello.name(), "HELLO");
        assert_eq!(QueryKind::StartUpload.name(), "START-UPLOAD");
        assert_eq!(QueryKind::RequestPart.name(), "REQUEST-PART");
    }
}
