//! The honeypot peer: a fake eDonkey client that advertises files, logs the
//! queries it receives, and answers (or not) according to its content
//! strategy — the modified-aMule client of paper §III-B, reimplemented as a
//! transport-agnostic state machine.
//!
//! The honeypot never touches a socket or the simulator directly: every
//! entry point takes what arrived and returns a list of [`Action`]s for the
//! host (the discrete-event world, or the real-TCP adapter in
//! `edonkey-net`) to carry out.  One honeypot implementation therefore runs
//! identically in simulation and over the network.

use std::collections::HashMap;

use edonkey_proto::tags::{self, special, Tag};
use edonkey_proto::{ClientId, ClientServerMessage, FileId, Ipv4, PeerMessage, UserId};
use netsim::{Rng, SimTime};

use crate::anonymize::IpHasher;
use crate::log::{HoneypotLog, QueryKind, QueryRecord, FILE_NONE};
use crate::strategy::{AdvertisedFile, ContentStrategy, FileStrategy};
use crate::types::{HoneypotId, HoneypotStatus, IdStatus, ServerInfo, StatusReport};

/// Opaque identifier of one peer connection, assigned by the host
/// transport.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ConnId(pub u64);

/// What the host must do on the honeypot's behalf.
#[derive(Clone, PartialEq, Debug)]
pub enum Action {
    /// Send a message back on the connection the triggering message arrived
    /// on.
    Reply(PeerMessage),
    /// Send a message to the honeypot's server.
    SendServer(ClientServerMessage),
    /// Report status to the manager.
    Report(StatusReport),
}

/// Static configuration of one honeypot.
#[derive(Clone, Debug)]
pub struct HoneypotConfig {
    pub id: HoneypotId,
    pub content: ContentStrategy,
    pub files: FileStrategy,
    /// Ask every contacting peer for its shared-file list (always on for
    /// the greedy measurement; on in the distributed one too, since the
    /// paper's Table I reports distinct files for both).
    pub ask_shared_files: bool,
    /// Generate actual random bytes in SENDING-PART replies.  On for the
    /// TCP substrate; off in simulation, where block payloads would only
    /// burn memory (peers there model corruption detection statistically).
    pub materialize_content: bool,
    /// TCP port advertised in HELLO-ANSWER.
    pub port: u16,
    /// Client name shown to peers.
    pub client_name: String,
}

impl HoneypotConfig {
    /// A baseline configuration advertising a fixed file list.
    pub fn fixed(id: HoneypotId, content: ContentStrategy, files: Vec<AdvertisedFile>) -> Self {
        HoneypotConfig {
            id,
            content,
            files: FileStrategy::Fixed(files),
            ask_shared_files: true,
            materialize_content: false,
            port: 4662,
            client_name: format!("client-{}", id.0),
        }
    }
}

/// Per-connection session state (metadata captured from HELLO, used to
/// annotate subsequent log records on the same connection).
#[derive(Clone, Debug)]
struct PeerSession {
    ip_hash: crate::anonymize::IpHash,
    port: u16,
    id_status: IdStatus,
    user_id: UserId,
    name_idx: u32,
    version: u32,
    /// Set once we asked this peer for its shared list, to ask only once
    /// per session.
    asked_shared: bool,
}

/// The honeypot state machine.
pub struct Honeypot {
    config: HoneypotConfig,
    user_id: UserId,
    ip_hasher: IpHasher,
    rng: Rng,
    log: HoneypotLog,
    shared: Vec<AdvertisedFile>,
    shared_ids: HashMap<FileId, u32>,
    sessions: HashMap<ConnId, PeerSession>,
    status: HoneypotStatus,
    server: ServerInfo,
}

impl Honeypot {
    /// Creates a honeypot bound (but not yet connected) to `server`.
    ///
    /// `ip_hasher` must be shared by all honeypots of the measurement so
    /// step-1 anonymisation stays coherent (see [`crate::anonymize`]).
    pub fn new(config: HoneypotConfig, server: ServerInfo, ip_hasher: IpHasher, rng: Rng) -> Self {
        let mut hp = Honeypot {
            user_id: UserId::from_seed(format!("honeypot-{}", config.id.0).as_bytes()),
            log: HoneypotLog::new(config.id, server.clone()),
            shared: Vec::new(),
            shared_ids: HashMap::new(),
            sessions: HashMap::new(),
            status: HoneypotStatus::Pending,
            server,
            ip_hasher,
            rng,
            config,
        };
        for f in hp.config.files.initial_files().to_vec() {
            hp.add_shared(f);
        }
        hp
    }

    fn add_shared(&mut self, f: AdvertisedFile) -> bool {
        if self.shared_ids.contains_key(&f.id) || self.shared.len() >= self.config.files.max_files()
        {
            return false;
        }
        self.log.files.intern(f.id, &f.name, f.size);
        self.shared_ids.insert(f.id, self.shared.len() as u32);
        self.shared.push(f);
        true
    }

    /// The currently advertised files.
    pub fn shared_files(&self) -> &[AdvertisedFile] {
        &self.shared
    }

    /// Whether this honeypot advertises `id`.
    pub fn advertises(&self, id: &FileId) -> bool {
        self.shared_ids.contains_key(id)
    }

    pub fn id(&self) -> HoneypotId {
        self.config.id
    }

    pub fn content_strategy(&self) -> ContentStrategy {
        self.config.content
    }

    pub fn status(&self) -> HoneypotStatus {
        self.status
    }

    pub fn server(&self) -> &ServerInfo {
        &self.server
    }

    /// Read access to the in-progress log (tests, live monitoring).
    pub fn log(&self) -> &HoneypotLog {
        &self.log
    }

    /// Hands the buffered log data to the manager (periodic collection).
    pub fn collect_log(&mut self) -> crate::log::LogChunk {
        self.log.take_chunk()
    }

    /// The OFFER-FILES message describing files, as published to the
    /// server.
    fn offer_message(&self, files: &[AdvertisedFile]) -> ClientServerMessage {
        ClientServerMessage::OfferFiles {
            files: files
                .iter()
                .map(|f| edonkey_proto::PublishedFile::new(f.id, &f.name, f.size))
                .collect(),
        }
    }

    /// Begins a (re)connection to the server: returns the LOGIN-REQUEST the
    /// host must deliver.
    pub fn connect(&mut self, now: SimTime) -> Vec<Action> {
        self.status = HoneypotStatus::Disconnected;
        self.sessions.clear();
        let login = ClientServerMessage::LoginRequest {
            user_id: self.user_id,
            client_id: ClientId(0),
            port: self.config.port,
            tags: vec![
                Tag::string(special::NAME, self.config.client_name.clone()),
                Tag::u32(special::VERSION, 0x3c),
                Tag::u32(special::PORT, u32::from(self.config.port)),
            ],
        };
        let _ = now;
        vec![Action::SendServer(login)]
    }

    /// Handles a message from the server.
    pub fn on_server_message(&mut self, now: SimTime, msg: &ClientServerMessage) -> Vec<Action> {
        match msg {
            ClientServerMessage::IdChange { client_id } => {
                self.status = HoneypotStatus::Connected { client_id: *client_id };
                // Advertise immediately after the session is granted
                // (paper §III-B, "File display").
                vec![
                    Action::SendServer(self.offer_message(&self.shared.clone())),
                    Action::Report(StatusReport {
                        honeypot: self.config.id,
                        at: now,
                        status: self.status,
                    }),
                ]
            }
            ClientServerMessage::ServerMessage { .. }
            | ClientServerMessage::ServerStatus { .. }
            | ClientServerMessage::FoundSources { .. } => Vec::new(),
            // Client→server messages arriving here indicate a host bug.
            other => {
                debug_assert!(false, "honeypot received client-side message {other:?}");
                Vec::new()
            }
        }
    }

    /// Periodic keep-alive: re-offers the shared list so the server keeps
    /// listing the honeypot as a provider.
    pub fn keepalive(&mut self, _now: SimTime) -> Vec<Action> {
        if matches!(self.status, HoneypotStatus::Connected { .. }) {
            vec![Action::SendServer(self.offer_message(&self.shared.clone()))]
        } else {
            Vec::new()
        }
    }

    /// Signals loss of the server connection.
    pub fn on_disconnected(&mut self, now: SimTime) -> Vec<Action> {
        self.status = HoneypotStatus::Disconnected;
        self.sessions.clear();
        vec![Action::Report(StatusReport {
            honeypot: self.config.id,
            at: now,
            status: self.status,
        })]
    }

    /// Kills the honeypot (failure injection in tests/simulations).
    pub fn kill(&mut self, now: SimTime) -> Vec<Action> {
        self.status = HoneypotStatus::Dead;
        self.sessions.clear();
        vec![Action::Report(StatusReport {
            honeypot: self.config.id,
            at: now,
            status: self.status,
        })]
    }

    /// Handles one message from a peer connection.
    ///
    /// `src_ip` is the connection's source address as seen by the
    /// transport; it is hashed before any storage (step-1 anonymisation).
    pub fn on_peer_message(
        &mut self,
        now: SimTime,
        conn: ConnId,
        src_ip: Ipv4,
        msg: &PeerMessage,
    ) -> Vec<Action> {
        if !matches!(self.status, HoneypotStatus::Connected { .. }) {
            return Vec::new();
        }
        match msg {
            PeerMessage::Hello { user_id, client_id, port, tags } => {
                let name = tags::get_string(tags, special::NAME).unwrap_or("");
                let version = tags::get_u32(tags, special::VERSION).unwrap_or(0);
                let name_idx = self.log.intern_name(name);
                let session = PeerSession {
                    ip_hash: self.ip_hasher.hash(src_ip),
                    port: *port,
                    id_status: IdStatus::of(*client_id),
                    user_id: *user_id,
                    name_idx,
                    version,
                    asked_shared: false,
                };
                self.log.push(QueryRecord {
                    at: now,
                    kind: QueryKind::Hello,
                    peer: session.ip_hash,
                    port: session.port,
                    id_status: session.id_status,
                    user_id: session.user_id,
                    name: name_idx,
                    version,
                    file: FILE_NONE,
                });
                let mut actions = vec![Action::Reply(PeerMessage::HelloAnswer {
                    user_id: self.user_id,
                    client_id: match self.status {
                        HoneypotStatus::Connected { client_id } => client_id,
                        _ => ClientId(0),
                    },
                    port: self.config.port,
                    tags: vec![
                        Tag::string(special::NAME, self.config.client_name.clone()),
                        Tag::u32(special::VERSION, 0x3c),
                    ],
                })];
                let mut session = session;
                if self.config.ask_shared_files {
                    session.asked_shared = true;
                    actions.push(Action::Reply(PeerMessage::AskSharedFiles));
                }
                self.sessions.insert(conn, session);
                actions
            }
            PeerMessage::StartUpload { file_id } => {
                let Some(session) = self.sessions.get(&conn) else {
                    // START-UPLOAD without HELLO: protocol violation; drop.
                    return Vec::new();
                };
                let file_idx = self
                    .shared_ids
                    .get(file_id)
                    .map(|_| {
                        // Queried file is one of ours: already interned.
                        self.log.files.lookup(file_id).expect("advertised files are interned")
                    })
                    .unwrap_or_else(|| self.log.files.intern(*file_id, "", 0));
                self.log.push(QueryRecord {
                    at: now,
                    kind: QueryKind::StartUpload,
                    peer: session.ip_hash,
                    port: session.port,
                    id_status: session.id_status,
                    user_id: session.user_id,
                    name: session.name_idx,
                    version: session.version,
                    file: file_idx,
                });
                // Always accept: the honeypot wants to see part requests
                // (paper Fig. 1: START-UPLOAD → ACCEPT-UPLOAD).
                vec![Action::Reply(PeerMessage::AcceptUpload)]
            }
            PeerMessage::RequestParts { file_id, ranges } => {
                let Some(session) = self.sessions.get(&conn) else {
                    return Vec::new();
                };
                let file_idx = self
                    .log
                    .files
                    .lookup(file_id)
                    .unwrap_or_else(|| self.log.files.intern(*file_id, "", 0));
                self.log.push(QueryRecord {
                    at: now,
                    kind: QueryKind::RequestPart,
                    peer: session.ip_hash,
                    port: session.port,
                    id_status: session.id_status,
                    user_id: session.user_id,
                    name: session.name_idx,
                    version: session.version,
                    file: file_idx,
                });
                match self.config.content {
                    // The no-content strategy: stay silent.
                    ContentStrategy::NoContent => Vec::new(),
                    ContentStrategy::RandomContent => ranges
                        .iter()
                        .filter(|rg| !rg.is_empty())
                        .map(|rg| {
                            let data = if self.config.materialize_content {
                                let mut buf = vec![0u8; rg.len() as usize];
                                self.rng.fill_bytes(&mut buf);
                                buf
                            } else {
                                Vec::new()
                            };
                            Action::Reply(PeerMessage::SendingPart {
                                file_id: *file_id,
                                start: rg.start,
                                end: rg.end,
                                data,
                            })
                        })
                        .collect(),
                }
            }
            PeerMessage::AskSharedFilesAnswer { files } => {
                let Some(session) = self.sessions.get(&conn) else {
                    return Vec::new();
                };
                let ip_hash = session.ip_hash;
                let mut adopted = Vec::new();
                let adopting = self.config.files.adopting(now);
                // The list goes straight into the shared-arena columns: no
                // per-record `Vec` on this hot path.
                self.log.shared_lists.begin(now, ip_hash);
                for f in files {
                    let name = f.name().unwrap_or("");
                    let size = f.size().unwrap_or(0);
                    let idx = self.log.files.intern(f.file_id, name, size);
                    self.log.shared_lists.append_file(idx);
                    if adopting {
                        let fresh =
                            self.add_shared(AdvertisedFile::new(f.file_id, name.to_string(), size));
                        if fresh {
                            adopted.push(self.shared.last().expect("just pushed").clone());
                        }
                    }
                }
                if adopted.is_empty() {
                    Vec::new()
                } else {
                    // Publish only the newly adopted files; OFFER-FILES is
                    // additive on the server side.
                    vec![Action::SendServer(self.offer_message(&adopted))]
                }
            }
            PeerMessage::FileRequest { file_id } => {
                let name =
                    self.shared_ids.get(file_id).map(|&i| self.shared[i as usize].name.clone());
                match name {
                    Some(name) => vec![Action::Reply(PeerMessage::FileRequestAnswer {
                        file_id: *file_id,
                        name,
                    })],
                    None => Vec::new(),
                }
            }
            // Messages a provider-side honeypot ignores.
            PeerMessage::HelloAnswer { .. }
            | PeerMessage::AcceptUpload
            | PeerMessage::QueueRank { .. }
            | PeerMessage::SendingPart { .. }
            | PeerMessage::AskSharedFiles
            | PeerMessage::FileRequestAnswer { .. } => Vec::new(),
        }
    }

    /// Forgets a peer connection (transport closed it).
    pub fn on_peer_disconnected(&mut self, conn: ConnId) {
        self.sessions.remove(&conn);
    }

    /// Number of live peer sessions.
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }
}

impl std::fmt::Debug for Honeypot {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("Honeypot")
            .field("id", &self.config.id)
            .field("status", &self.status)
            .field("shared_files", &self.shared.len())
            .field("records", &self.log.records.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::PartRange;

    fn server() -> ServerInfo {
        ServerInfo::new("srv", Ipv4::new(195, 0, 0, 1), 4661)
    }

    fn advertised() -> Vec<AdvertisedFile> {
        vec![
            AdvertisedFile::new(FileId::from_seed(b"movie"), "movie.avi", 700 << 20),
            AdvertisedFile::new(FileId::from_seed(b"song"), "song.mp3", 5 << 20),
        ]
    }

    fn honeypot(content: ContentStrategy) -> Honeypot {
        let config = HoneypotConfig::fixed(HoneypotId(0), content, advertised());
        Honeypot::new(config, server(), IpHasher::from_seed(1), Rng::seed_from(2))
    }

    fn connected(content: ContentStrategy) -> Honeypot {
        let mut hp = honeypot(content);
        let actions = hp.connect(SimTime::ZERO);
        assert!(matches!(actions[0], Action::SendServer(ClientServerMessage::LoginRequest { .. })));
        let actions = hp.on_server_message(
            SimTime::from_secs(1),
            &ClientServerMessage::IdChange { client_id: ClientId(0x5000_0000) },
        );
        assert!(
            matches!(&actions[0], Action::SendServer(ClientServerMessage::OfferFiles { files }) if files.len() == 2),
            "connect must advertise the shared list"
        );
        assert!(matches!(actions[1], Action::Report(_)));
        hp
    }

    fn hello(user: &[u8]) -> PeerMessage {
        PeerMessage::Hello {
            user_id: UserId::from_seed(user),
            client_id: ClientId(0x5101_0101),
            port: 4662,
            tags: vec![Tag::string(special::NAME, "eMule user"), Tag::u32(special::VERSION, 0x49)],
        }
    }

    #[test]
    fn hello_is_logged_and_answered() {
        let mut hp = connected(ContentStrategy::NoContent);
        let t = SimTime::from_secs(10);
        let actions = hp.on_peer_message(t, ConnId(1), Ipv4::new(81, 1, 1, 1), &hello(b"peer-1"));
        assert!(matches!(actions[0], Action::Reply(PeerMessage::HelloAnswer { .. })));
        assert!(matches!(actions[1], Action::Reply(PeerMessage::AskSharedFiles)));
        assert_eq!(hp.log().count_kind(QueryKind::Hello), 1);
        let rec = hp.log().records[0];
        assert_eq!(rec.at, t);
        assert_eq!(rec.id_status, IdStatus::High);
        assert_eq!(rec.file, FILE_NONE);
        assert_eq!(hp.log().peer_names[rec.name as usize], "eMule user");
    }

    #[test]
    fn ip_never_stored_raw() {
        let mut hp = connected(ContentStrategy::NoContent);
        let ip = Ipv4::new(81, 2, 3, 4);
        hp.on_peer_message(SimTime::ZERO, ConnId(1), ip, &hello(b"p"));
        let rec = hp.log().records[0];
        assert_eq!(rec.peer, IpHasher::from_seed(1).hash(ip), "stored value is the salted hash");
        assert_ne!(&rec.peer.0[..4], &ip.octets()[..], "raw IP must not leak into the hash prefix");
    }

    #[test]
    fn start_upload_accepted_and_logged() {
        let mut hp = connected(ContentStrategy::NoContent);
        let ip = Ipv4::new(81, 1, 1, 1);
        hp.on_peer_message(SimTime::ZERO, ConnId(1), ip, &hello(b"p"));
        let file_id = FileId::from_seed(b"movie");
        let actions = hp.on_peer_message(
            SimTime::from_secs(2),
            ConnId(1),
            ip,
            &PeerMessage::StartUpload { file_id },
        );
        assert_eq!(actions, vec![Action::Reply(PeerMessage::AcceptUpload)]);
        assert_eq!(hp.log().count_kind(QueryKind::StartUpload), 1);
        let rec = hp.log().records.last().unwrap();
        assert_eq!(hp.log().files.id(rec.file), file_id);
    }

    #[test]
    fn start_upload_without_hello_dropped() {
        let mut hp = connected(ContentStrategy::NoContent);
        let actions = hp.on_peer_message(
            SimTime::ZERO,
            ConnId(9),
            Ipv4::new(1, 1, 1, 1),
            &PeerMessage::StartUpload { file_id: FileId::from_seed(b"movie") },
        );
        assert!(actions.is_empty());
        assert_eq!(hp.log().records.len(), 0);
    }

    fn request(file: FileId) -> PeerMessage {
        PeerMessage::RequestParts {
            file_id: file,
            ranges: [
                PartRange::new(0, 184_320),
                PartRange::new(184_320, 368_640),
                PartRange::new(0, 0),
            ],
        }
    }

    #[test]
    fn no_content_honeypot_stays_silent_on_part_requests() {
        let mut hp = connected(ContentStrategy::NoContent);
        let ip = Ipv4::new(81, 1, 1, 1);
        hp.on_peer_message(SimTime::ZERO, ConnId(1), ip, &hello(b"p"));
        let actions = hp.on_peer_message(
            SimTime::from_secs(3),
            ConnId(1),
            ip,
            &request(FileId::from_seed(b"movie")),
        );
        assert!(actions.is_empty(), "no-content honeypots do not reply to part requests");
        assert_eq!(hp.log().count_kind(QueryKind::RequestPart), 1, "…but they log them");
    }

    #[test]
    fn random_content_honeypot_sends_blocks() {
        let mut hp = connected(ContentStrategy::RandomContent);
        let ip = Ipv4::new(81, 1, 1, 1);
        hp.on_peer_message(SimTime::ZERO, ConnId(1), ip, &hello(b"p"));
        let actions = hp.on_peer_message(
            SimTime::from_secs(3),
            ConnId(1),
            ip,
            &request(FileId::from_seed(b"movie")),
        );
        assert_eq!(actions.len(), 2, "one SENDING-PART per non-empty range");
        for a in &actions {
            assert!(matches!(a, Action::Reply(PeerMessage::SendingPart { .. })));
        }
    }

    #[test]
    fn materialized_content_is_random_bytes_of_right_length() {
        let mut config =
            HoneypotConfig::fixed(HoneypotId(1), ContentStrategy::RandomContent, advertised());
        config.materialize_content = true;
        let mut hp = Honeypot::new(config, server(), IpHasher::from_seed(1), Rng::seed_from(7));
        hp.connect(SimTime::ZERO);
        hp.on_server_message(
            SimTime::ZERO,
            &ClientServerMessage::IdChange { client_id: ClientId(0x5000_0000) },
        );
        let ip = Ipv4::new(81, 1, 1, 1);
        hp.on_peer_message(SimTime::ZERO, ConnId(1), ip, &hello(b"p"));
        let actions =
            hp.on_peer_message(SimTime::ZERO, ConnId(1), ip, &request(FileId::from_seed(b"movie")));
        let Action::Reply(PeerMessage::SendingPart { data, start, end, .. }) = &actions[0] else {
            panic!("expected SENDING-PART");
        };
        assert_eq!(data.len() as u32, end - start);
        assert!(data.iter().any(|&b| b != 0));
    }

    #[test]
    fn greedy_adopts_during_window_only() {
        let seeds = vec![AdvertisedFile::new(FileId::from_seed(b"seed"), "seed", 1)];
        let config = HoneypotConfig {
            id: HoneypotId(0),
            content: ContentStrategy::NoContent,
            files: FileStrategy::Greedy {
                seeds,
                adopt_until: SimTime::from_days(1),
                max_files: 100,
            },
            ask_shared_files: true,
            materialize_content: false,
            port: 4662,
            client_name: "hp".into(),
        };
        let mut hp = Honeypot::new(config, server(), IpHasher::from_seed(1), Rng::seed_from(2));
        hp.connect(SimTime::ZERO);
        hp.on_server_message(
            SimTime::ZERO,
            &ClientServerMessage::IdChange { client_id: ClientId(0x5000_0000) },
        );
        let ip = Ipv4::new(81, 1, 1, 1);
        hp.on_peer_message(SimTime::from_hours(1), ConnId(1), ip, &hello(b"p"));
        let answer = PeerMessage::AskSharedFilesAnswer {
            files: vec![
                edonkey_proto::PublishedFile::new(FileId::from_seed(b"x"), "x.avi", 100),
                edonkey_proto::PublishedFile::new(FileId::from_seed(b"y"), "y.mp3", 50),
            ],
        };
        let actions = hp.on_peer_message(SimTime::from_hours(2), ConnId(1), ip, &answer);
        assert_eq!(hp.shared_files().len(), 3, "adopted both files");
        assert!(
            matches!(&actions[0], Action::SendServer(ClientServerMessage::OfferFiles { files }) if files.len() == 2),
            "newly adopted files are published"
        );
        // Re-announcing the same list adopts nothing new.
        let actions = hp.on_peer_message(SimTime::from_hours(3), ConnId(1), ip, &answer);
        assert!(actions.is_empty());
        // After the window, lists are recorded but not adopted.
        hp.on_peer_message(SimTime::from_days(2), ConnId(1), ip, &hello(b"p"));
        let late = PeerMessage::AskSharedFilesAnswer {
            files: vec![edonkey_proto::PublishedFile::new(FileId::from_seed(b"z"), "z", 9)],
        };
        let actions = hp.on_peer_message(SimTime::from_days(2), ConnId(1), ip, &late);
        assert!(actions.is_empty());
        assert_eq!(hp.shared_files().len(), 3);
        assert_eq!(hp.log().shared_lists.len(), 3, "all lists recorded regardless");
    }

    #[test]
    fn shared_list_cap_respected() {
        let seeds = vec![AdvertisedFile::new(FileId::from_seed(b"seed"), "seed", 1)];
        let config = HoneypotConfig {
            id: HoneypotId(0),
            content: ContentStrategy::NoContent,
            files: FileStrategy::Greedy { seeds, adopt_until: SimTime::from_days(1), max_files: 2 },
            ask_shared_files: true,
            materialize_content: false,
            port: 4662,
            client_name: "hp".into(),
        };
        let mut hp = Honeypot::new(config, server(), IpHasher::from_seed(1), Rng::seed_from(2));
        hp.connect(SimTime::ZERO);
        hp.on_server_message(
            SimTime::ZERO,
            &ClientServerMessage::IdChange { client_id: ClientId(0x5000_0000) },
        );
        let ip = Ipv4::new(81, 1, 1, 1);
        hp.on_peer_message(SimTime::ZERO, ConnId(1), ip, &hello(b"p"));
        let answer = PeerMessage::AskSharedFilesAnswer {
            files: (0..10)
                .map(|i| {
                    edonkey_proto::PublishedFile::new(
                        FileId::from_seed(format!("f{i}").as_bytes()),
                        "f",
                        1,
                    )
                })
                .collect(),
        };
        hp.on_peer_message(SimTime::from_hours(1), ConnId(1), ip, &answer);
        assert_eq!(hp.shared_files().len(), 2, "cap holds");
    }

    #[test]
    fn dead_honeypot_ignores_peers() {
        let mut hp = connected(ContentStrategy::NoContent);
        hp.kill(SimTime::from_secs(5));
        let actions = hp.on_peer_message(
            SimTime::from_secs(6),
            ConnId(1),
            Ipv4::new(1, 1, 1, 1),
            &hello(b"p"),
        );
        assert!(actions.is_empty());
        assert_eq!(hp.log().records.len(), 0);
        assert!(hp.status().needs_relaunch());
    }

    #[test]
    fn relaunch_after_death_works() {
        let mut hp = connected(ContentStrategy::NoContent);
        hp.kill(SimTime::from_secs(5));
        let actions = hp.connect(SimTime::from_secs(60));
        assert!(matches!(actions[0], Action::SendServer(ClientServerMessage::LoginRequest { .. })));
        hp.on_server_message(
            SimTime::from_secs(61),
            &ClientServerMessage::IdChange { client_id: ClientId(0x5000_0000) },
        );
        assert!(matches!(hp.status(), HoneypotStatus::Connected { .. }));
    }

    #[test]
    fn keepalive_reoffers_when_connected_only() {
        let mut hp = honeypot(ContentStrategy::NoContent);
        assert!(hp.keepalive(SimTime::ZERO).is_empty(), "not connected yet");
        let mut hp = connected(ContentStrategy::NoContent);
        let actions = hp.keepalive(SimTime::from_mins(30));
        assert!(matches!(&actions[0], Action::SendServer(ClientServerMessage::OfferFiles { .. })));
    }

    #[test]
    fn file_request_answered_for_advertised_files_only() {
        let mut hp = connected(ContentStrategy::NoContent);
        let ip = Ipv4::new(81, 1, 1, 1);
        hp.on_peer_message(SimTime::ZERO, ConnId(1), ip, &hello(b"p"));
        let known = FileId::from_seed(b"movie");
        let actions = hp.on_peer_message(
            SimTime::ZERO,
            ConnId(1),
            ip,
            &PeerMessage::FileRequest { file_id: known },
        );
        assert!(matches!(
            &actions[0],
            Action::Reply(PeerMessage::FileRequestAnswer { name, .. }) if name == "movie.avi"
        ));
        let unknown = FileId::from_seed(b"nope");
        let actions = hp.on_peer_message(
            SimTime::ZERO,
            ConnId(1),
            ip,
            &PeerMessage::FileRequest { file_id: unknown },
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn disconnect_clears_sessions() {
        let mut hp = connected(ContentStrategy::NoContent);
        let ip = Ipv4::new(81, 1, 1, 1);
        hp.on_peer_message(SimTime::ZERO, ConnId(1), ip, &hello(b"p"));
        assert_eq!(hp.live_sessions(), 1);
        hp.on_peer_disconnected(ConnId(1));
        assert_eq!(hp.live_sessions(), 0);
    }

    #[test]
    fn log_collection_is_incremental() {
        let mut hp = connected(ContentStrategy::NoContent);
        let ip = Ipv4::new(81, 1, 1, 1);
        hp.on_peer_message(SimTime::ZERO, ConnId(1), ip, &hello(b"p1"));
        let chunk1 = hp.collect_log();
        assert_eq!(chunk1.records.len(), 1);
        hp.on_peer_message(SimTime::from_secs(9), ConnId(2), ip, &hello(b"p2"));
        let chunk2 = hp.collect_log();
        assert_eq!(chunk2.records.len(), 1, "only new records in the second chunk");
    }
}
