//! Deterministic merge of lane-sharded measurement output.
//!
//! Lane-sharded execution (see the `edonkey-sim` crate) runs each honeypot
//! — or, for the greedy strategy, each group of honeypots that must share
//! state — in its own *lane*: an independent world with its own arrival
//! process and RNG stream.  Each lane ends with a [`LaneHarvest`]: the
//! lane manager's merge state *before* finalisation, with lane-local peer
//! ids, name indices and file indices.
//!
//! This module folds the harvests into one [`MeasurementLog`] with a fully
//! deterministic discipline, independent of how lanes were scheduled:
//!
//! 1. every lane event is tagged `(at, lane, seq)` where `seq` is its
//!    position inside its lane — a **unique** sort key, so the merged
//!    order never depends on comparison ties;
//! 2. records are sorted by that key and walked in order, re-interning
//!    each lane-local peer id (via the lane's hash table) into a global
//!    step-2 dictionary — global ids are dense in order of first
//!    appearance in the merged, time-ordered stream, the same contract
//!    [`crate::anonymize::AnonMap`] gives a coupled run;
//! 3. shared lists follow, under the same key;
//! 4. file-name word anonymisation runs once over the *unified* file
//!    table — the paper's rarity threshold is a whole-corpus property, so
//!    it cannot be applied per lane.

use std::collections::HashMap;

use netsim::SimTime;

use crate::anonymize::{AnonMap, IpHash, NameAnonymizer};
use crate::log::FileTable;
use crate::measurement::{AnonRecord, AnonSharedList, HoneypotMeta, MeasurementLog};
use crate::types::HoneypotId;

/// One lane's contribution to a sharded measurement: the lane manager's
/// pre-finalisation state (see [`crate::manager::Manager::harvest`]).
#[derive(Clone, Debug)]
pub struct LaneHarvest {
    /// The lane's honeypots, with lane-local dense ids `0..n`.
    pub honeypots: Vec<HoneypotMeta>,
    /// Records with lane-local peer/name/file indices.
    pub records: Vec<AnonRecord>,
    /// Shared lists with lane-local peer/file indices.
    pub shared_lists: Vec<AnonSharedList>,
    /// Lane-local peer-name table.
    pub peer_names: Vec<String>,
    /// Lane-local peer id → step-1 IP hash, in assignment order
    /// (`peer_hashes[id]` is the hash behind lane-local id `id`).
    pub peer_hashes: Vec<IpHash>,
    /// Lane-local file table, names **not** yet anonymised.
    pub files: FileTable,
}

/// Merges lane harvests into one measurement log.
///
/// Lane order is significant: honeypot ids are renumbered by offsetting
/// each lane's local ids with the sizes of the preceding lanes, so callers
/// must pass lanes in global honeypot order.  The result is a pure
/// function of the harvest list — bit-identical no matter how the lanes
/// themselves were computed.
pub fn merge_lanes(
    lanes: Vec<LaneHarvest>,
    duration: SimTime,
    shared_files_final: u32,
    name_threshold: u32,
) -> MeasurementLog {
    // Honeypot id offsets: lane l's local id j becomes offsets[l] + j.
    let mut offsets = Vec::with_capacity(lanes.len());
    let mut total_hps = 0u32;
    for lane in &lanes {
        offsets.push(total_hps);
        total_hps += lane.honeypots.len() as u32;
    }

    let mut honeypots = Vec::with_capacity(total_hps as usize);
    let mut peer_names: Vec<String> = Vec::new();
    let mut peer_name_index: HashMap<String, u32> = HashMap::new();
    let mut files = FileTable::new();
    // Per-lane translation tables, built in lane order so the global
    // name/file tables are themselves deterministic.
    let mut name_maps: Vec<Vec<u32>> = Vec::with_capacity(lanes.len());
    let mut file_maps: Vec<Vec<u32>> = Vec::with_capacity(lanes.len());
    for (l, lane) in lanes.iter().enumerate() {
        honeypots.extend(lane.honeypots.iter().map(|h| HoneypotMeta {
            id: HoneypotId(offsets[l] + h.id.0),
            content: h.content,
            server: h.server.clone(),
        }));
        let name_map = lane
            .peer_names
            .iter()
            .map(|n| {
                if let Some(&idx) = peer_name_index.get(n) {
                    return idx;
                }
                let idx = peer_names.len() as u32;
                peer_names.push(n.clone());
                peer_name_index.insert(n.clone(), idx);
                idx
            })
            .collect();
        name_maps.push(name_map);
        let file_map = (0..lane.files.len() as u32)
            .map(|i| files.intern(lane.files.id(i), lane.files.name(i), lane.files.size(i)))
            .collect();
        file_maps.push(file_map);
    }

    // Deterministic event order: (at, lane, seq).  `seq` is the event's
    // position within its lane, so the key is unique and the sort can
    // never depend on tie-breaking.
    let mut keyed: Vec<(SimTime, u32, u32, usize)> = Vec::new();
    for (l, lane) in lanes.iter().enumerate() {
        keyed.extend(
            lane.records.iter().enumerate().map(|(seq, r)| (r.at, l as u32, seq as u32, l)),
        );
    }
    keyed.sort_unstable_by_key(|&(at, lane, seq, _)| (at, lane, seq));

    // Walk the merged stream, re-interning peers into the global step-2
    // dictionary: ids come out dense in first-appearance order.
    let mut anon = AnonMap::new();
    let mut records = Vec::with_capacity(keyed.len());
    for (_, lane_no, seq, l) in keyed {
        let lane = &lanes[l];
        let r = &lane.records[seq as usize];
        records.push(AnonRecord {
            at: r.at,
            honeypot: HoneypotId(offsets[l] + r.honeypot.0),
            kind: r.kind,
            peer: anon.intern(lane.peer_hashes[r.peer.0 as usize]),
            port: r.port,
            id_status: r.id_status,
            user_id: r.user_id,
            name: name_maps[l][r.name as usize],
            version: r.version,
            file: if r.file == crate::log::FILE_NONE {
                crate::log::FILE_NONE
            } else {
                file_maps[l][r.file as usize]
            },
        });
        debug_assert_eq!(lane_no as usize, l);
    }

    // Shared lists follow the records under the same key; a peer that only
    // ever appears in shared lists is interned here, after all record
    // peers.
    let mut list_keys: Vec<(SimTime, u32, u32)> = Vec::new();
    for (l, lane) in lanes.iter().enumerate() {
        list_keys.extend(
            lane.shared_lists.iter().enumerate().map(|(seq, s)| (s.at, l as u32, seq as u32)),
        );
    }
    list_keys.sort_unstable();
    let mut shared_lists = Vec::with_capacity(list_keys.len());
    for (_, l, seq) in list_keys {
        let lane = &lanes[l as usize];
        let s = &lane.shared_lists[seq as usize];
        shared_lists.push(AnonSharedList {
            at: s.at,
            honeypot: HoneypotId(offsets[l as usize] + s.honeypot.0),
            peer: anon.intern(lane.peer_hashes[s.peer.0 as usize]),
            files: s.files.iter().map(|&f| file_maps[l as usize][f as usize]).collect(),
        });
    }

    // Whole-corpus file-name anonymisation, as in Manager::finalize.
    let mut counter = NameAnonymizer::new();
    for i in 0..files.len() as u32 {
        counter.count(files.name(i));
    }
    let frozen = counter.freeze(name_threshold);
    files.map_names(|n| frozen.anonymize(n));

    MeasurementLog {
        honeypots,
        records,
        shared_lists,
        peer_names,
        files,
        distinct_peers: anon.len() as u32,
        duration,
        shared_files_final,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymize::{AnonPeerId, IpHasher};
    use crate::log::{HoneypotLog, QueryKind, QueryRecord, FILE_NONE};
    use crate::manager::{HoneypotSpec, Manager};
    use crate::strategy::ContentStrategy;
    use crate::types::{IdStatus, ServerInfo};
    use edonkey_proto::{FileId, Ipv4, UserId};

    fn server() -> ServerInfo {
        ServerInfo::new("srv", Ipv4::new(9, 9, 9, 9), 4661)
    }

    /// Builds one single-honeypot lane whose records hit the given IPs at
    /// the given times.
    fn lane(ips_at: &[(Ipv4, u64)], list_ip: Option<Ipv4>) -> LaneHarvest {
        let hasher = IpHasher::from_seed(7);
        let mut log = HoneypotLog::new(HoneypotId(0), server());
        let name = log.intern_name("eMule");
        let file = log.files.intern(FileId::from_seed(b"f"), "holiday video.avi", 100);
        for (ip, secs) in ips_at {
            log.push(QueryRecord {
                at: SimTime::from_secs(*secs),
                kind: QueryKind::Hello,
                peer: hasher.hash(*ip),
                port: 4662,
                id_status: IdStatus::High,
                user_id: UserId::from_seed(b"u"),
                name,
                version: 1,
                file: FILE_NONE,
            });
        }
        if let Some(ip) = list_ip {
            log.shared_lists.push(SimTime::from_secs(999), hasher.hash(ip), [file]);
        }
        let mut mgr = Manager::new(vec![HoneypotSpec {
            id: HoneypotId(0),
            content: ContentStrategy::NoContent,
            server: server(),
        }]);
        mgr.collect(log.take_chunk());
        mgr.harvest()
    }

    #[test]
    fn merge_orders_by_time_then_lane() {
        let a = lane(&[(Ipv4::new(1, 1, 1, 1), 10), (Ipv4::new(1, 1, 1, 2), 30)], None);
        let b = lane(&[(Ipv4::new(2, 2, 2, 1), 20), (Ipv4::new(2, 2, 2, 2), 30)], None);
        let log = merge_lanes(vec![a, b], SimTime::from_days(1), 4, 1);
        let times: Vec<f64> = log.records.iter().map(|r| r.at.as_secs()).collect();
        assert_eq!(times, vec![10.0, 20.0, 30.0, 30.0]);
        // The tie at t=30 resolves by lane: lane 0's record first.
        assert_eq!(log.records[2].honeypot, HoneypotId(0));
        assert_eq!(log.records[3].honeypot, HoneypotId(1));
        // Peer ids are dense in merged-stream order.
        let peers: Vec<u32> = log.records.iter().map(|r| r.peer.0).collect();
        assert_eq!(peers, vec![0, 1, 2, 3]);
        assert_eq!(log.distinct_peers, 4);
        assert!(log.validate().is_empty());
    }

    #[test]
    fn same_ip_across_lanes_is_one_peer() {
        let shared = Ipv4::new(5, 5, 5, 5);
        let a = lane(&[(shared, 10)], None);
        let b = lane(&[(shared, 20), (Ipv4::new(6, 6, 6, 6), 25)], None);
        let log = merge_lanes(vec![a, b], SimTime::from_days(1), 4, 1);
        assert_eq!(log.distinct_peers, 2, "step-1 hashes unify across lanes");
        assert_eq!(log.records[0].peer, log.records[1].peer);
        assert_eq!(log.records[0].peer, AnonPeerId(0));
    }

    #[test]
    fn honeypot_ids_offset_by_lane_and_tables_unify() {
        let a = lane(&[(Ipv4::new(1, 1, 1, 1), 10)], Some(Ipv4::new(1, 1, 1, 1)));
        let b = lane(&[(Ipv4::new(2, 2, 2, 1), 20)], Some(Ipv4::new(2, 2, 2, 1)));
        let log = merge_lanes(vec![a, b], SimTime::from_days(2), 3, 5);
        assert_eq!(log.honeypots.len(), 2);
        assert_eq!(log.honeypots[1].id, HoneypotId(1), "lane 1's local id 0 offset to 1");
        assert_eq!(log.shared_lists[1].honeypot, HoneypotId(1));
        // Both lanes interned the same FileId and client name: unified once.
        assert_eq!(log.files.len(), 1);
        assert_eq!(log.peer_names, vec!["eMule".to_string()]);
        // Name anonymisation ran over the merged corpus (threshold 5 ⇒ all
        // words rare).
        let name = log.files.name(0);
        assert!(!name.contains("holiday"), "rare words tokenised: {name}");
        assert_eq!(log.duration, SimTime::from_days(2));
        assert_eq!(log.shared_files_final, 3);
        assert!(log.validate().is_empty());
    }

    #[test]
    fn empty_merge_is_empty_log() {
        let log = merge_lanes(Vec::new(), SimTime::from_days(1), 0, 1);
        assert!(log.records.is_empty() && log.honeypots.is_empty());
        assert_eq!(log.distinct_peers, 0);
        assert!(log.validate().is_empty());
    }
}
