//! Plain-text trace export.
//!
//! Analysts outside this codebase want flat files, not Rust structs: these
//! writers emit the anonymised measurement as tab-separated traces, one
//! line per query (and one per shared-list observation), in the spirit of
//! the trace files measurement papers of the era published alongside their
//! datasets.
//!
//! Query trace columns:
//!
//! ```text
//! timestamp_ms  honeypot  kind  peer  port  id_status  user_hash  client_name  version  file_hash
//! ```
//!
//! Fields that do not apply carry `-`.  Everything written here is already
//! anonymised (step-2 integers, hashed user IDs, word-anonymised names).

use std::io::{self, Write};

use crate::log::FILE_NONE;
use crate::measurement::MeasurementLog;
use crate::types::IdStatus;

/// Writes the query trace.
pub fn write_query_trace(log: &MeasurementLog, mut w: impl Write) -> io::Result<()> {
    writeln!(
        w,
        "#timestamp_ms\thoneypot\tkind\tpeer\tport\tid_status\tuser_hash\tclient_name\tversion\tfile_hash"
    )?;
    for r in &log.records {
        let file =
            if r.file == FILE_NONE { "-".to_string() } else { log.files.id(r.file).to_hex() };
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.at.as_millis(),
            r.honeypot.0,
            r.kind.name(),
            r.peer.0,
            r.port,
            match r.id_status {
                IdStatus::High => "high",
                IdStatus::Low => "low",
            },
            r.user_id.to_hex(),
            log.peer_names.get(r.name as usize).map(String::as_str).unwrap_or("-"),
            r.version,
            file,
        )?;
    }
    Ok(())
}

/// Writes the shared-list trace: one line per observation,
/// `timestamp_ms  honeypot  peer  n_files  file_hash,file_hash,…`.
pub fn write_shared_list_trace(log: &MeasurementLog, mut w: impl Write) -> io::Result<()> {
    writeln!(w, "#timestamp_ms\thoneypot\tpeer\tn_files\tfile_hashes")?;
    for l in &log.shared_lists {
        let hashes: Vec<String> = l.files.iter().map(|&f| log.files.id(f).to_hex()).collect();
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}",
            l.at.as_millis(),
            l.honeypot.0,
            l.peer.0,
            l.files.len(),
            hashes.join(",")
        )?;
    }
    Ok(())
}

/// Writes the observed-file catalog:
/// `file_hash  size_bytes  anonymised_name`.
pub fn write_file_catalog(log: &MeasurementLog, mut w: impl Write) -> io::Result<()> {
    writeln!(w, "#file_hash\tsize_bytes\tname")?;
    for i in 0..log.files.len() as u32 {
        writeln!(w, "{}\t{}\t{}", log.files.id(i).to_hex(), log.files.size(i), log.files.name(i))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymize::AnonPeerId;
    use crate::log::{FileTable, QueryKind};
    use crate::measurement::{AnonRecord, AnonSharedList, HoneypotMeta};
    use crate::strategy::ContentStrategy;
    use crate::types::{HoneypotId, ServerInfo};
    use edonkey_proto::{FileId, Ipv4, UserId};
    use netsim::SimTime;

    fn sample() -> MeasurementLog {
        let mut files = FileTable::new();
        let f = files.intern(FileId::from_seed(b"x"), "some file.avi", 700);
        MeasurementLog {
            honeypots: vec![HoneypotMeta {
                id: HoneypotId(0),
                content: ContentStrategy::NoContent,
                server: ServerInfo::new("s", Ipv4::new(1, 1, 1, 1), 4661),
            }],
            records: vec![
                AnonRecord {
                    at: SimTime::from_secs(1),
                    honeypot: HoneypotId(0),
                    kind: QueryKind::Hello,
                    peer: AnonPeerId(0),
                    port: 4662,
                    id_status: IdStatus::High,
                    user_id: UserId::from_seed(b"u"),
                    name: 0,
                    version: 0x49,
                    file: FILE_NONE,
                },
                AnonRecord {
                    at: SimTime::from_secs(2),
                    honeypot: HoneypotId(0),
                    kind: QueryKind::StartUpload,
                    peer: AnonPeerId(0),
                    port: 4662,
                    id_status: IdStatus::Low,
                    user_id: UserId::from_seed(b"u"),
                    name: 0,
                    version: 0x49,
                    file: f,
                },
            ],
            shared_lists: vec![AnonSharedList {
                at: SimTime::from_secs(3),
                honeypot: HoneypotId(0),
                peer: AnonPeerId(0),
                files: vec![f],
            }],
            peer_names: vec!["eMule".into()],
            files,
            distinct_peers: 1,
            duration: SimTime::from_days(1),
            shared_files_final: 1,
        }
    }

    #[test]
    fn query_trace_format() {
        let mut out = Vec::new();
        write_query_trace(&sample(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + two records");
        assert!(lines[0].starts_with('#'));
        let fields: Vec<&str> = lines[1].split('\t').collect();
        assert_eq!(fields.len(), 10);
        assert_eq!(fields[0], "1000");
        assert_eq!(fields[2], "HELLO");
        assert_eq!(fields[9], "-", "HELLO carries no file");
        let fields: Vec<&str> = lines[2].split('\t').collect();
        assert_eq!(fields[2], "START-UPLOAD");
        assert_eq!(fields[5], "low");
        assert_eq!(fields[9], FileId::from_seed(b"x").to_hex());
    }

    #[test]
    fn shared_list_trace_format() {
        let mut out = Vec::new();
        write_shared_list_trace(&sample(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let line = text.lines().nth(1).unwrap();
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields[3], "1");
        assert!(fields[4].contains(&FileId::from_seed(b"x").to_hex()));
    }

    #[test]
    fn file_catalog_format() {
        let mut out = Vec::new();
        write_file_catalog(&sample(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("some file.avi"));
        assert!(text.contains("700"));
    }

    #[test]
    fn traces_never_contain_raw_ips() {
        // The trace must not contain anything shaped like a dotted quad
        // (IPs were hashed at step 1 and renumbered at step 2).
        let mut out = Vec::new();
        write_query_trace(&sample(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        for token in text.split_whitespace() {
            let dots = token.chars().filter(|&c| c == '.').count();
            if dots == 3 && token.chars().all(|c| c.is_ascii_digit() || c == '.') {
                panic!("dotted quad leaked into trace: {token}");
            }
        }
    }
}
